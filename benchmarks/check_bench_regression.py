#!/usr/bin/env python3
"""Bench-regression gate: smoke benches vs the committed baselines.

Usage::

    PYTHONPATH=src python benchmarks/check_bench_regression.py

Runs the circuit-reuse and engine-compare benches in **smoke mode**
(small workloads, one repetition) and compares them against the
committed ``BENCH_circuits.json`` / ``BENCH_engine.json`` baselines.
Absolute seconds are meaningless across machines — the committed
baselines were recorded on different hardware than any CI runner — so
the gate checks the two **machine-independent ratios** each bench
measures inside a single run:

* ``speedup_warm_vs_cold`` (circuits): warm circuit re-evaluation vs
  cold exact recompute.  Baseline ≈ 145×; the gate fails if a smoke run
  cannot reach ``max(2, baseline / SLACK)`` — an order-of-magnitude
  collapse of the circuits subsystem.
* ``session_vs_interned`` (engine): batched session confidences vs the
  per-tuple engine loop.  Baseline ≈ 1.0; the gate fails if batching
  becomes ``SLACK×`` slower than the loop — a pathological regression
  in ``compute_many`` / the session façade.
* ``speedup_vectorized_vs_scalar`` (sweep): the numpy kernel batch vs
  the per-world scalar sweep.  Baseline ≈ 30×; checked only when numpy
  is importable — without it the bench has nothing to race, and the
  gate prints a skip notice instead.
* ``speedup_incremental_vs_full`` (updates): incremental re-query after
  a DML mutation (cone-level eviction, warm remainder) vs a full
  from-scratch rebuild.  Baseline from the recorded full run; the gate
  fails if a smoke run cannot reach ``max(2, baseline / SLACK)``.
* ``steps_ratio_guided_vs_widest`` (refine): gradient-guided top-k
  refinement vs the widest-interval scheduler.  Step counts are
  scheduling-deterministic — no timing involved — so this gate is held
  tight: the smoke ratio may not exceed ``max(baseline, 1.0) × 1.05``
  and guided ranking must certify the **identical** ordering.
* ``response_hit_ratio`` (fleet): the share of the repetition-heavy
  socket workload answered from worker response caches.  The ratio is
  fixed by the workload's repeat structure, not the hardware, so the
  gate fails if it halves — the cache stopped carrying repeats.  The
  fleet check also verifies more than one worker actually served and
  that per-worker throughput did not collapse by ``SLACK×`` against
  the committed baseline.

``SLACK`` is deliberately generous (hosted runners are noisy, smoke
workloads are small): the gate exists to catch *order-of-magnitude*
regressions on every PR, not single-digit percentages — those are the
job of the recorded full benches.

Every gate loads its committed baseline through :func:`load_baseline`,
which fails **loudly** — a missing, unparseable, or non-object
``BENCH_*.json`` raises :class:`RegressionError` instead of letting
the gate silently skip a broken baseline.

Smoke outputs are written to a temp directory; the committed baselines
are never touched.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

#: How much worse than baseline a smoke ratio may be before failing.
SLACK = 15.0
#: The warm-vs-cold speedup below which circuits are considered broken
#: regardless of baseline (warm evaluation must beat recompute easily).
CIRCUIT_SPEEDUP_FLOOR = 2.0
#: Likewise for the vectorized sweep vs the scalar per-world loop.
SWEEP_SPEEDUP_FLOOR = 2.0
#: And for incremental re-query vs from-scratch rebuild after DML.
UPDATES_SPEEDUP_FLOOR = 2.0


class RegressionError(AssertionError):
    pass


def load_baseline(name: str) -> dict:
    path = os.path.join(REPO_ROOT, name)
    if not os.path.exists(path):
        raise RegressionError(
            f"committed baseline {name} is missing — record it with the "
            "matching bench script before gating on it"
        )
    try:
        with open(path) as handle:
            baseline = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
        raise RegressionError(
            f"committed baseline {name} is unreadable ({error}) — "
            "re-record it with the matching bench script; a corrupt "
            "baseline must never silently pass the gate"
        ) from error
    if not isinstance(baseline, dict):
        raise RegressionError(
            f"committed baseline {name} is not a JSON object — "
            "re-record it with the matching bench script"
        )
    return baseline


def run_bench(script: str, env: dict, *args: str) -> None:
    command = [sys.executable, os.path.join(BENCH_DIR, script), *args]
    merged_env = dict(os.environ)
    merged_env.update(env)
    merged_env.setdefault(
        "PYTHONPATH", os.path.join(REPO_ROOT, "src")
    )
    completed = subprocess.run(
        command, env=merged_env, capture_output=True, text=True
    )
    if completed.returncode != 0:
        raise RegressionError(
            f"{script} {' '.join(args)} failed:\n{completed.stdout}\n"
            f"{completed.stderr}"
        )


def check_circuit_speedup(failures: list) -> None:
    baseline = load_baseline("BENCH_circuits.json")
    baseline_speedup = baseline["totals"]["speedup_warm_vs_cold"]
    threshold = max(CIRCUIT_SPEEDUP_FLOOR, baseline_speedup / SLACK)

    with tempfile.TemporaryDirectory() as temp_dir:
        output = os.path.join(temp_dir, "circuits_smoke.json")
        run_bench(
            "bench_circuit_reuse.py",
            {
                "CIRCUIT_BENCH_SMOKE": "1",
                "CIRCUIT_BENCH_OUTPUT": output,
                # The gate applies its own threshold below.
                "CIRCUIT_BENCH_NO_ASSERT": "1",
            },
        )
        with open(output) as handle:
            smoke = json.load(handle)
    smoke_speedup = smoke["totals"]["speedup_warm_vs_cold"]
    verdict = "ok" if smoke_speedup >= threshold else "FAIL"
    print(
        f"[circuits] warm-vs-cold speedup: smoke {smoke_speedup:.1f}x, "
        f"baseline {baseline_speedup:.1f}x, threshold "
        f">= {threshold:.1f}x ... {verdict}"
    )
    if smoke_speedup < threshold:
        failures.append(
            f"circuit warm re-evaluation speedup collapsed: "
            f"{smoke_speedup:.1f}x < {threshold:.1f}x (baseline "
            f"{baseline_speedup:.1f}x / slack {SLACK:g})"
        )


def check_session_ratio(failures: list) -> None:
    baseline = load_baseline("BENCH_engine.json")
    try:
        baseline_ratio = baseline["session_vs_interned"]["overall_ratio"]
    except KeyError:
        raise RegressionError(
            "BENCH_engine.json has no session_vs_interned section — "
            "re-record the 'interned' and 'session' labels"
        ) from None
    # Batching may legitimately run a little over the loop on tiny
    # smoke workloads; it must never be an order of magnitude over.
    threshold = max(baseline_ratio, 1.0) * SLACK

    with tempfile.TemporaryDirectory() as temp_dir:
        output = os.path.join(temp_dir, "engine_smoke.json")
        env = {"ENGINE_BENCH_SMOKE": "1", "ENGINE_BENCH_OUTPUT": output}
        run_bench("bench_engine_compare.py", env, "interned")
        run_bench("bench_engine_compare.py", env, "session")
        with open(output) as handle:
            smoke = json.load(handle)
    smoke_ratio = smoke["session_vs_interned"]["overall_ratio"]
    verdict = "ok" if smoke_ratio <= threshold else "FAIL"
    print(
        f"[engine] session/interned ratio: smoke {smoke_ratio:.3f}, "
        f"baseline {baseline_ratio:.3f}, threshold "
        f"<= {threshold:.1f} ... {verdict}"
    )
    if smoke_ratio > threshold:
        failures.append(
            f"batched session confidences regressed vs the per-tuple "
            f"loop: ratio {smoke_ratio:.3f} > {threshold:.1f} "
            f"(baseline {baseline_ratio:.3f} × slack {SLACK:g})"
        )


def check_sweep_speedup(failures: list) -> None:
    try:
        import numpy  # noqa: F401
    except ImportError:
        print(
            "[sweep] skipped: numpy unavailable, scalar fallback has "
            "nothing to race against"
        )
        return
    baseline = load_baseline("BENCH_sweep.json")
    baseline_speedup = baseline["totals"]["speedup_vectorized_vs_scalar"]
    threshold = max(SWEEP_SPEEDUP_FLOOR, baseline_speedup / SLACK)

    with tempfile.TemporaryDirectory() as temp_dir:
        output = os.path.join(temp_dir, "sweep_smoke.json")
        run_bench(
            "bench_scenario_sweep.py",
            {
                "SWEEP_BENCH_SMOKE": "1",
                "SWEEP_BENCH_OUTPUT": output,
                # The gate applies its own threshold below.
                "SWEEP_BENCH_NO_ASSERT": "1",
            },
        )
        with open(output) as handle:
            smoke = json.load(handle)
    smoke_speedup = smoke["totals"]["speedup_vectorized_vs_scalar"]
    verdict = "ok" if smoke_speedup >= threshold else "FAIL"
    print(
        f"[sweep] vectorized-vs-scalar speedup: smoke "
        f"{smoke_speedup:.1f}x, baseline {baseline_speedup:.1f}x, "
        f"threshold >= {threshold:.1f}x ... {verdict}"
    )
    if smoke_speedup < threshold:
        failures.append(
            f"vectorized sweep speedup collapsed: {smoke_speedup:.1f}x "
            f"< {threshold:.1f}x (baseline {baseline_speedup:.1f}x / "
            f"slack {SLACK:g})"
        )


def check_updates(failures: list) -> None:
    baseline = load_baseline("BENCH_updates.json")
    baseline_speedup = baseline["totals"]["speedup_incremental_vs_full"]
    threshold = max(UPDATES_SPEEDUP_FLOOR, baseline_speedup / SLACK)

    with tempfile.TemporaryDirectory() as temp_dir:
        output = os.path.join(temp_dir, "updates_smoke.json")
        run_bench(
            "bench_incremental_updates.py",
            {
                "UPDATES_BENCH_SMOKE": "1",
                "UPDATES_BENCH_OUTPUT": output,
                # The gate applies its own threshold below.
                "UPDATES_BENCH_NO_ASSERT": "1",
            },
        )
        with open(output) as handle:
            smoke = json.load(handle)
    totals = smoke["totals"]
    smoke_speedup = totals["speedup_incremental_vs_full"]
    verdict = "ok" if smoke_speedup >= threshold else "FAIL"
    print(
        f"[updates] incremental-vs-full speedup: smoke "
        f"{smoke_speedup:.1f}x ({totals['mutation_throughput_per_s']:.0f} "
        f"mutations/s, re-query p50 {totals['requery_p50_ms']:.2f} ms / "
        f"p99 {totals['requery_p99_ms']:.2f} ms), baseline "
        f"{baseline_speedup:.1f}x, threshold >= {threshold:.1f}x "
        f"... {verdict}"
    )
    if smoke_speedup < threshold:
        failures.append(
            f"incremental re-query speedup collapsed: "
            f"{smoke_speedup:.1f}x < {threshold:.1f}x (baseline "
            f"{baseline_speedup:.1f}x / slack {SLACK:g})"
        )


def check_serving_overhead(failures: list) -> None:
    baseline = load_baseline("BENCH_serving.json")
    baseline_overhead = baseline["totals"]["overhead_ratio"]
    # The wire stack (JSON + routing + admission + batching windows)
    # legitimately costs a multiple of a direct call; it must not
    # explode by another order of magnitude on top of the baseline.
    threshold = max(baseline_overhead, 1.0) * SLACK

    with tempfile.TemporaryDirectory() as temp_dir:
        output = os.path.join(temp_dir, "serving_smoke.json")
        run_bench(
            "bench_serving_latency.py",
            {
                "SERVING_BENCH_SMOKE": "1",
                "SERVING_BENCH_OUTPUT": output,
                # Occupancy is gated below alongside the overhead.
                "SERVING_BENCH_NO_ASSERT": "1",
            },
        )
        with open(output) as handle:
            smoke = json.load(handle)
    totals = smoke["totals"]
    smoke_overhead = totals["overhead_ratio"]
    occupancy = totals["batch_occupancy"]
    verdict = (
        "ok" if smoke_overhead <= threshold and occupancy > 1.0 else "FAIL"
    )
    print(
        f"[serving] overhead vs direct calls: smoke "
        f"{smoke_overhead:.1f}x (p50 {totals['p50_ms']:.2f} ms, p99 "
        f"{totals['p99_ms']:.2f} ms, {totals['throughput_rps']:.0f} "
        f"req/s, occupancy {occupancy:.2f}), baseline "
        f"{baseline_overhead:.1f}x, threshold <= {threshold:.1f}x "
        f"... {verdict}"
    )
    if smoke_overhead > threshold:
        failures.append(
            f"serving-tier overhead exploded: {smoke_overhead:.1f}x "
            f"direct calls > {threshold:.1f}x (baseline "
            f"{baseline_overhead:.1f}x × slack {SLACK:g})"
        )
    if occupancy <= 1.0:
        failures.append(
            f"serving micro-batching stopped coalescing: occupancy "
            f"{occupancy:.2f} <= 1.0"
        )


def check_fleet(failures: list) -> None:
    baseline = load_baseline("BENCH_fleet.json")
    baseline_totals = baseline["totals"]
    baseline_ratio = baseline_totals["response_hit_ratio"]
    baseline_per_worker = baseline_totals["throughput_per_worker"]
    # The hit ratio is workload-determined (unique specs × repeats), so
    # even a smoke run on slow hardware reproduces it; halving means
    # the response cache stopped carrying repeated requests.
    ratio_threshold = baseline_ratio / 2.0
    # Per-worker throughput of mostly-cached JSON responses is gated
    # only against an order-of-magnitude collapse — hosted runners are
    # slower than the recording machine, never SLACK× slower at
    # answering cache hits over loopback.
    per_worker_threshold = baseline_per_worker / SLACK

    with tempfile.TemporaryDirectory() as temp_dir:
        output = os.path.join(temp_dir, "fleet_smoke.json")
        run_bench(
            "bench_fleet_throughput.py",
            {
                "FLEET_BENCH_SMOKE": "1",
                "FLEET_BENCH_OUTPUT": output,
                # The gate applies its own thresholds below.
                "FLEET_BENCH_NO_ASSERT": "1",
            },
        )
        with open(output) as handle:
            smoke = json.load(handle)
    totals = smoke["totals"]
    workers = totals["workers"]
    hit_ratio = totals["response_hit_ratio"]
    per_worker = totals["throughput_per_worker"]
    ok = (
        workers > 1
        and hit_ratio >= ratio_threshold
        and per_worker >= per_worker_threshold
    )
    print(
        f"[fleet] {int(workers)} workers, response hit ratio "
        f"{hit_ratio:.3f} (threshold >= {ratio_threshold:.3f}), "
        f"{per_worker:.0f} req/s/worker (threshold "
        f">= {per_worker_threshold:.0f}) ... {'ok' if ok else 'FAIL'}"
    )
    if workers <= 1:
        failures.append(
            f"fleet smoke served with {int(workers)} worker(s); "
            "scale-out needs more than one"
        )
    if hit_ratio < ratio_threshold:
        failures.append(
            f"fleet response-cache hit ratio collapsed: "
            f"{hit_ratio:.3f} < {ratio_threshold:.3f} (baseline "
            f"{baseline_ratio:.3f} / 2)"
        )
    if per_worker < per_worker_threshold:
        failures.append(
            f"fleet per-worker throughput collapsed: {per_worker:.0f} "
            f"req/s < {per_worker_threshold:.0f} req/s (baseline "
            f"{baseline_per_worker:.0f} / slack {SLACK:g})"
        )


def check_refine(failures: list) -> None:
    baseline = load_baseline("BENCH_refine.json")
    baseline_totals = baseline["totals"]
    baseline_ratio = baseline_totals["steps_ratio_guided_vs_widest"]
    if not baseline_totals["orderings_identical"]:
        raise RegressionError(
            "BENCH_refine.json baseline recorded diverging orderings — "
            "re-record it; guided ranking must certify the same top-k"
        )
    # Step counts are scheduling-deterministic, not timings, so the
    # gate holds them tight: guided must certify the same ordering and
    # never spend materially more steps than widest-interval.
    ratio_threshold = max(baseline_ratio, 1.0) * 1.05

    with tempfile.TemporaryDirectory() as temp_dir:
        output = os.path.join(temp_dir, "refine_smoke.json")
        run_bench(
            "bench_refine.py",
            {
                "REFINE_BENCH_SMOKE": "1",
                "REFINE_BENCH_OUTPUT": output,
                # The gate applies its own thresholds below.
                "REFINE_BENCH_NO_ASSERT": "1",
            },
        )
        with open(output) as handle:
            smoke = json.load(handle)
    totals = smoke["totals"]
    smoke_ratio = totals["steps_ratio_guided_vs_widest"]
    identical = totals["orderings_identical"]
    ok = identical and smoke_ratio <= ratio_threshold
    print(
        f"[refine] guided/widest step ratio: smoke {smoke_ratio:.3f}, "
        f"baseline {baseline_ratio:.3f}, threshold "
        f"<= {ratio_threshold:.3f}, orderings "
        f"{'identical' if identical else 'DIVERGED'} "
        f"... {'ok' if ok else 'FAIL'}"
    )
    if not identical:
        failures.append(
            "guided top-k ranking certified a different ordering than "
            "widest-interval refinement on the smoke batch"
        )
    if smoke_ratio > ratio_threshold:
        failures.append(
            f"guided refinement step efficiency regressed: ratio "
            f"{smoke_ratio:.3f} > {ratio_threshold:.3f} (baseline "
            f"{baseline_ratio:.3f})"
        )


def main() -> int:
    failures: list = []
    check_circuit_speedup(failures)
    check_session_ratio(failures)
    check_sweep_speedup(failures)
    check_updates(failures)
    check_serving_overhead(failures)
    check_fleet(failures)
    check_refine(failures)
    if failures:
        print("\nbench-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench-regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
