"""Incremental recompilation vs from-scratch rebuild under mutations.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental_updates.py
    UPDATES_BENCH_SMOKE=1 PYTHONPATH=src python benchmarks/bench_incremental_updates.py

The workload the mutation subsystem exists for: the Fig. 7 hard TPC-H
batch (B2, B9, B20, B21) served from a warm session while the underlying
tuples mutate — probability re-weighting through the DML API
(``session.update(..., probability=...)``).  Each mutation runs the
cone-level invalidation pass of :mod:`repro.circuits.incremental`:
only circuits and decomposition cones whose variable sets touch the
changed tuples are evicted.

Each round is one mutation followed by one full batch re-query — the
read-your-writes serving pattern:

* applies one random probability-only update via the DML API (timed —
  the mutation throughput number);
* **incremental** — re-answers the whole batch on the warm session:
  untouched answers are O(|circuit|) sweeps, touched answers recompute
  against the surviving memo cones (per-answer latencies recorded for
  the p50/p99 numbers);
* **full** — rebuilds from scratch: a fresh registry at the current
  probabilities, a fresh engine and cache, full decomposition for
  every answer (what a system without cone-level invalidation must do
  — any mutation invalidates everything);
* asserts the two agree to 1e-9 (both are exact), and times both.

Results are written to ``BENCH_updates.json`` at the repo root.  The
acceptance bar — ``speedup_incremental_vs_full >= 5×`` — is asserted
unless ``UPDATES_BENCH_NO_ASSERT=1``.

Smoke mode (``UPDATES_BENCH_SMOKE=1``, used by CI): smallest scale,
six mutations.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time

from repro import ConfidenceEngine, EngineConfig
from repro.core.formulas import AtomNode
from repro.core.variables import VariableRegistry
from repro.datasets.tpch import TPCHConfig, generate_tpch
from repro.datasets.tpch_queries import HARD_QUERIES, make_query
from repro.db.engine import answer_selector, evaluate_to_dnf
from repro.db.session import ProbDB

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT = os.environ.get(
    "UPDATES_BENCH_OUTPUT", os.path.join(REPO_ROOT, "BENCH_updates.json")
)

SMOKE = os.environ.get("UPDATES_BENCH_SMOKE") == "1"
ASSERT_SPEEDUP = os.environ.get("UPDATES_BENCH_NO_ASSERT") != "1"
SCALE = 0.05 if SMOKE else 0.1
#: One mutation + one batch re-query per round.
ROUNDS = 6 if SMOKE else 24
SPEEDUP_TARGET = 5.0


def build_session():
    database = generate_tpch(
        TPCHConfig(
            scale_factor=SCALE, probability_range=(0.0, 1.0), seed=1
        )
    )
    selector = answer_selector(database)
    config = EngineConfig(
        choose_variable=selector, mc_fallback=False, compile_circuits=True
    )
    session = ProbDB(database, config)
    batch = []
    for query_name in HARD_QUERIES:
        for values, dnf in evaluate_to_dnf(
            make_query(query_name), database
        ):
            batch.append((f"{query_name}{values!r}", dnf))
    return session, batch


def mutation_pool(session):
    """Every ``(table, where-triples, variable)`` a probability update
    can target: tuple-independent rows, matched exactly by value."""
    pool = []
    for table in session.database.relation_names():
        relation = session.database[table]
        for values, lineage in relation.rows:
            if isinstance(lineage, AtomNode) and lineage.atom.value is True:
                where = [
                    (attribute, "=", literal)
                    for attribute, literal in zip(
                        relation.attributes, values
                    )
                ]
                pool.append((table, where, lineage.atom.variable))
    return pool


def percentile(sorted_values, fraction):
    if not sorted_values:
        return None
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def main() -> int:
    session, batch = build_session()
    registry = session.registry
    dnfs = [dnf for _label, dnf in batch]
    cold_config = EngineConfig(
        choose_variable=session.config.choose_variable, mc_fallback=False
    )

    # Warm the session once: compile + cache every answer's circuit.
    started = time.perf_counter()
    warm_pairs = session.lineage(
        [((label,), dnf) for label, dnf in batch]
    ).confidences()
    warmup_seconds = time.perf_counter() - started
    assert all(result.converged for _v, result in warm_pairs)

    pool = mutation_pool(session)
    rng = random.Random(2024)
    per_round = []
    mutation_seconds_total = 0.0
    incremental_seconds_total = 0.0
    full_seconds_total = 0.0
    mutations_total = 0
    requery_latencies = []

    for round_index in range(ROUNDS):
        # --- mutate: one probability-only update through the DML API -
        table, where, variable = rng.choice(pool)
        base = registry.probability(variable, True)
        shifted = min(0.99, max(0.01, base * rng.uniform(0.5, 1.5)))
        started = time.perf_counter()
        result = session.update(table, probability=shifted, where=where)
        mutation_elapsed = time.perf_counter() - started
        evicted_circuits = result.invalidation.circuits_evicted
        mutation_seconds_total += mutation_elapsed
        mutations_total += 1

        # --- incremental: re-answer the batch on the warm session ----
        started = time.perf_counter()
        incremental_values = []
        warm_hits = 0
        for dnf in dnfs:
            answer_started = time.perf_counter()
            result = session.confidence(dnf)
            requery_latencies.append(
                time.perf_counter() - answer_started
            )
            if result.strategy == "circuit":
                warm_hits += 1
            incremental_values.append(result.probability)
        incremental = time.perf_counter() - started
        incremental_seconds_total += incremental

        # --- full: from-scratch rebuild at the current probabilities -
        started = time.perf_counter()
        fresh = VariableRegistry()
        for name in registry.variables():
            if registry.is_boolean(name):
                fresh.add_boolean(name, registry.probability(name, True))
            else:  # pragma: no cover - TPC-H tuples are Boolean
                fresh.add_variable(name, registry.distribution(name))
        cold_engine = ConfidenceEngine(fresh, cold_config)
        full_results = cold_engine.compute_many(dnfs)
        full = time.perf_counter() - started
        full_seconds_total += full

        for (label, _dnf), incremental_value, full_result in zip(
            batch, incremental_values, full_results
        ):
            drift = abs(incremental_value - full_result.probability)
            assert drift <= 1e-9, (
                f"incremental/full disagreement on {label} round "
                f"{round_index}: {incremental_value!r} vs "
                f"{full_result.probability!r}"
            )
        per_round.append(
            {
                "round": round_index,
                "mutated_table": table,
                "circuits_evicted": evicted_circuits,
                "warm_circuit_answers": warm_hits,
                "answers": len(dnfs),
                "mutation_seconds": round(mutation_elapsed, 6),
                "incremental_requery_seconds": round(incremental, 6),
                "full_rebuild_seconds": round(full, 6),
                "speedup": (
                    round(full / incremental, 1) if incremental > 0 else None
                ),
            }
        )
        print(
            f"round {round_index}: update {table} "
            f"({evicted_circuits} circuits evicted), incremental "
            f"{incremental:.3f}s ({warm_hits}/{len(dnfs)} warm), full "
            f"{full:.3f}s, speedup {full / incremental:,.1f}x"
        )

    speedup = (
        full_seconds_total / incremental_seconds_total
        if incremental_seconds_total > 0
        else float("inf")
    )
    requery_latencies.sort()
    p50 = percentile(requery_latencies, 0.50)
    p99 = percentile(requery_latencies, 0.99)
    throughput = (
        mutations_total / mutation_seconds_total
        if mutation_seconds_total > 0
        else float("inf")
    )
    report = {
        "experiment": (
            "Incremental recompilation under DML mutations on the "
            "Fig. 7 hard batch (benchmarks/bench_incremental_updates.py)"
        ),
        "workload": (
            f"{','.join(HARD_QUERIES)} sf={SCALE}: {len(batch)} answer "
            f"lineages re-queried after each of {ROUNDS} probability-"
            "only DML updates (uniform over tuple-independent rows); "
            "exact (epsilon=0) on both paths"
        ),
        "environment": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
            "smoke": SMOKE,
        },
        "warmup_seconds": round(warmup_seconds, 6),
        "mutation_pool_size": len(pool),
        "rounds": per_round,
        "totals": {
            "mutations": mutations_total,
            "mutation_seconds": round(mutation_seconds_total, 6),
            "mutation_throughput_per_s": round(throughput, 1),
            "incremental_requery_seconds": round(
                incremental_seconds_total, 6
            ),
            "full_rebuild_seconds": round(full_seconds_total, 6),
            "speedup_incremental_vs_full": round(speedup, 1),
            "requery_p50_ms": round(p50 * 1000, 3),
            "requery_p99_ms": round(p99 * 1000, 3),
        },
        "differential": (
            "incremental re-query agreed with the from-scratch rebuild "
            "to 1e-9 on every answer and round"
        ),
    }
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"\ntotals: speedup {speedup:,.1f}x, {throughput:,.0f} "
        f"mutations/s, re-query p50 {p50 * 1000:.2f} ms / p99 "
        f"{p99 * 1000:.2f} ms -> {OUTPUT}"
    )
    session.close()
    if ASSERT_SPEEDUP:
        assert speedup >= SPEEDUP_TARGET, (
            f"incremental re-query speedup {speedup:.1f}x below the "
            f"{SPEEDUP_TARGET:.0f}x acceptance bar"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
