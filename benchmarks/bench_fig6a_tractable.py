"""Fig. 6(a): tractable TPC-H queries, tuple probabilities in (0, 1).

Paper series: wall-clock time per query for aconf(rel 0.01),
d-tree(rel 0.01), d-tree(error 0), and SPROUT on the six hierarchical
queries 1, 15, B1, B6, B16, B17.

Expected shape (paper): d-tree finishes everything quickly — often with
*zero* compilation because the initial bucket bounds already certify the
approximation (B16/B17); SPROUT is comparable; aconf is orders of
magnitude slower and hits the work cap on most queries.
"""

import pytest

from conftest import (
    aconf_status,
    pair_status,
    pair_strategies,
    tpch_answers,
)
from repro import EngineConfig, ProbDB
from repro.bench import Harness
from repro.core.exact import exact_probability
from repro.datasets.tpch_queries import HIERARCHICAL_QUERIES, make_query
from repro.db.sprout import sprout_confidence
from repro.mc.aconf import aconf

HARNESS = Harness("Fig 6a tractable TPC-H probs (0,1)")
SCALE = 0.1
PROBS = (0.0, 1.0)
ACONF_CAP = 3000  # per answer; stands in for the paper's 300 s timeout
QUERIES = list(HIERARCHICAL_QUERIES)


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    HARNESS.print_series()
    HARNESS.write_csv()


@pytest.mark.parametrize("query_name", QUERIES)
def test_aconf_rel_001(benchmark, query_name):
    answers, database, _sel = tpch_answers(query_name, SCALE, *PROBS)

    def run():
        return HARNESS.run(
            query_name,
            "aconf(0.01)",
            lambda: [
                aconf(
                    dnf,
                    database.registry,
                    epsilon=0.01,
                    seed=0,
                    max_samples=ACONF_CAP,
                )
                for _v, dnf in answers
            ],
            status_of=aconf_status,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("query_name", QUERIES)
def test_dtree_rel_001(benchmark, query_name):
    """The raw d-tree algorithm through the façade: read-once and MC
    rungs disabled so the series keeps measuring Section V."""
    answers, database, selector = tpch_answers(query_name, SCALE, *PROBS)
    config = EngineConfig(
        epsilon=0.01,
        error_kind="relative",
        choose_variable=selector,
        try_read_once=False,
        mc_fallback=False,
    )
    session = ProbDB(database, config)

    def run():
        return HARNESS.run(
            query_name,
            "d-tree(0.01)",
            lambda: session.lineage(answers).confidences(),
            status_of=pair_status,
            engine_config=config,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("query_name", QUERIES)
def test_dtree_exact(benchmark, query_name):
    answers, database, selector = tpch_answers(query_name, SCALE, *PROBS)

    def run():
        return HARNESS.run(
            query_name,
            "d-tree(0)",
            lambda: [
                exact_probability(
                    dnf, database.registry, choose_variable=selector
                )
                for _v, dnf in answers
            ],
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("query_name", QUERIES)
def test_session(benchmark, query_name):
    """The session façade: the planner resolves these queries exactly
    via read-once, batched over the answer set on one cache."""
    answers, database, selector = tpch_answers(query_name, SCALE, *PROBS)
    config = EngineConfig(
        epsilon=0.01, error_kind="relative", choose_variable=selector
    )
    session = ProbDB(database, config)

    def run():
        return HARNESS.run(
            query_name,
            "session(0.01)",
            lambda: session.lineage(answers).confidences(),
            status_of=pair_status,
            strategy_of=pair_strategies,
            engine_config=config,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("query_name", QUERIES)
def test_sprout(benchmark, query_name):
    _answers, database, _sel = tpch_answers(query_name, SCALE, *PROBS)
    query = make_query(query_name)

    def run():
        return HARNESS.run(
            query_name,
            "SPROUT",
            lambda: sprout_confidence(query, database),
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
