"""Fig. 6(a): tractable TPC-H queries, tuple probabilities in (0, 1).

Paper series: wall-clock time per query for aconf(rel 0.01),
d-tree(rel 0.01), d-tree(error 0), and SPROUT on the six hierarchical
queries 1, 15, B1, B6, B16, B17.

Expected shape (paper): d-tree finishes everything quickly — often with
*zero* compilation because the initial bucket bounds already certify the
approximation (B16/B17); SPROUT is comparable; aconf is orders of
magnitude slower and hits the work cap on most queries.
"""

import pytest

from conftest import (
    aconf_status,
    dtree_status,
    engine_strategies,
    tpch_answers,
)
from repro.bench import Harness
from repro.core.approx import approximate_probability
from repro.core.exact import exact_probability
from repro.datasets.tpch_queries import HIERARCHICAL_QUERIES, make_query
from repro.db.sprout import sprout_confidence
from repro.engine import ConfidenceEngine
from repro.mc.aconf import aconf

HARNESS = Harness("Fig 6a tractable TPC-H probs (0,1)")
SCALE = 0.1
PROBS = (0.0, 1.0)
ACONF_CAP = 3000  # per answer; stands in for the paper's 300 s timeout
QUERIES = list(HIERARCHICAL_QUERIES)


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    HARNESS.print_series()
    HARNESS.write_csv()


@pytest.mark.parametrize("query_name", QUERIES)
def test_aconf_rel_001(benchmark, query_name):
    answers, database, _sel = tpch_answers(query_name, SCALE, *PROBS)

    def run():
        return HARNESS.run(
            query_name,
            "aconf(0.01)",
            lambda: [
                aconf(
                    dnf,
                    database.registry,
                    epsilon=0.01,
                    seed=0,
                    max_samples=ACONF_CAP,
                )
                for _v, dnf in answers
            ],
            status_of=aconf_status,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("query_name", QUERIES)
def test_dtree_rel_001(benchmark, query_name):
    answers, database, selector = tpch_answers(query_name, SCALE, *PROBS)

    def run():
        return HARNESS.run(
            query_name,
            "d-tree(0.01)",
            lambda: [
                approximate_probability(
                    dnf,
                    database.registry,
                    epsilon=0.01,
                    error_kind="relative",
                    choose_variable=selector,
                )
                for _v, dnf in answers
            ],
            status_of=dtree_status,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("query_name", QUERIES)
def test_dtree_exact(benchmark, query_name):
    answers, database, selector = tpch_answers(query_name, SCALE, *PROBS)

    def run():
        return HARNESS.run(
            query_name,
            "d-tree(0)",
            lambda: [
                exact_probability(
                    dnf, database.registry, choose_variable=selector
                )
                for _v, dnf in answers
            ],
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("query_name", QUERIES)
def test_engine(benchmark, query_name):
    """The unified planner: read-once resolves these queries exactly."""
    answers, database, selector = tpch_answers(query_name, SCALE, *PROBS)
    engine = ConfidenceEngine(
        database.registry,
        epsilon=0.01,
        error_kind="relative",
        choose_variable=selector,
    )

    def run():
        return HARNESS.run(
            query_name,
            "engine(0.01)",
            lambda: [engine.compute(dnf) for _v, dnf in answers],
            status_of=dtree_status,
            strategy_of=engine_strategies,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("query_name", QUERIES)
def test_sprout(benchmark, query_name):
    _answers, database, _sel = tpch_answers(query_name, SCALE, *PROBS)
    query = make_query(query_name)

    def run():
        return HARNESS.run(
            query_name,
            "SPROUT",
            lambda: sprout_confidence(query, database),
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
