"""Circuit reuse: recompute vs. re-evaluate under shifted probabilities.

Usage::

    PYTHONPATH=src python benchmarks/bench_circuit_reuse.py
    CIRCUIT_BENCH_SMOKE=1 PYTHONPATH=src python benchmarks/bench_circuit_reuse.py

The workload the circuits subsystem exists for: the Fig. 7 hard TPC-H
batch (B2, B9, B20, B21) asked repeatedly while the tuple probabilities
drift — sensor recalibration, feedback re-weighting, what-if probing.
Without circuits every round pays full d-tree decomposition from
scratch (a fresh engine and cache per probability map, which is exactly
what a cache keyed by lineage+probabilities amounts to); with circuits
the lineage is compiled **once** and every round is an O(|circuit|)
sweep under a probability override map.

Per round the bench:

* builds a shifted probability map for every tuple variable (seeded);
* **cold** — registers a fresh registry carrying the shifted
  probabilities and recomputes the whole batch exactly on a fresh
  engine;
* **warm** — evaluates each answer's compiled circuit under the
  override map;
* asserts the two agree to 1e-9 (both are exact), and times both.

Results (plus a per-answer sensitivity sweep timing) are written to
``BENCH_circuits.json`` at the repo root.  The acceptance bar —
``speedup >= 10×`` for warm re-evaluation vs cold recompute — is
asserted unless ``CIRCUIT_BENCH_NO_ASSERT=1``.

Smoke mode (``CIRCUIT_BENCH_SMOKE=1``, used by CI): smallest scale,
two rounds.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time

from repro import ConfidenceEngine, EngineConfig
from repro.core.variables import VariableRegistry
from repro.datasets.tpch import TPCHConfig, generate_tpch
from repro.datasets.tpch_queries import HARD_QUERIES, make_query
from repro.db.engine import answer_selector, evaluate_to_dnf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: Result file; override with CIRCUIT_BENCH_OUTPUT so comparison runs
#: (benchmarks/check_bench_regression.py) don't clobber the committed
#: baseline.
OUTPUT = os.environ.get(
    "CIRCUIT_BENCH_OUTPUT", os.path.join(REPO_ROOT, "BENCH_circuits.json")
)

SMOKE = os.environ.get("CIRCUIT_BENCH_SMOKE") == "1"
ASSERT_SPEEDUP = os.environ.get("CIRCUIT_BENCH_NO_ASSERT") != "1"
SCALE = 0.05 if SMOKE else 0.1
ROUNDS = 2 if SMOKE else 5
SPEEDUP_TARGET = 10.0


def build_workload():
    database = generate_tpch(
        TPCHConfig(
            scale_factor=SCALE, probability_range=(0.0, 1.0), seed=1
        )
    )
    selector = answer_selector(database)
    batch = []
    for query_name in HARD_QUERIES:
        for values, dnf in evaluate_to_dnf(
            make_query(query_name), database
        ):
            batch.append((f"{query_name}{values!r}", dnf))
    return database, selector, batch


def shifted_probabilities(registry, seed):
    """A full probability map for round ``seed``, nudged off the base."""
    rng = random.Random(10_000 + seed)
    overrides = {}
    for name in registry.variables():
        if not registry.is_boolean(name):
            continue
        base = registry.probability(name, True)
        overrides[name] = min(0.99, max(0.01, base * rng.uniform(0.5, 1.5)))
    return overrides


def main() -> int:
    database, selector, batch = build_workload()
    registry = database.registry
    dnfs = [dnf for _label, dnf in batch]
    config = EngineConfig(choose_variable=selector, mc_fallback=False)

    # Compile once, on a session-style engine with a shared cache.
    compiler_engine = ConfidenceEngine(registry, config)
    started = time.perf_counter()
    circuits = [compiler_engine.compile_circuit(dnf) for dnf in dnfs]
    compile_seconds = time.perf_counter() - started
    assert all(circuit.is_exact for circuit in circuits)

    cold_seconds = []
    warm_seconds = []
    per_round = []
    for round_index in range(ROUNDS):
        overrides = shifted_probabilities(registry, round_index)

        # Cold: the no-circuits world — a fresh registry carrying the
        # shifted probabilities, a fresh engine and cache, full
        # decomposition for every answer.
        started = time.perf_counter()
        shifted = VariableRegistry()
        for name in registry.variables():
            if name in overrides:
                shifted.add_boolean(name, overrides[name])
            else:  # pragma: no cover - TPC-H tuples are Boolean
                shifted.add_variable(name, registry.distribution(name))
        cold_engine = ConfidenceEngine(shifted, config)
        cold_results = cold_engine.compute_many(dnfs)
        cold = time.perf_counter() - started

        # Warm: one sweep per compiled circuit, same probability map.
        started = time.perf_counter()
        warm_values = [
            circuit.evaluate(overrides) for circuit in circuits
        ]
        warm = time.perf_counter() - started

        for (label, _dnf), cold_result, warm_value in zip(
            batch, cold_results, warm_values
        ):
            drift = abs(cold_result.probability - warm_value)
            assert drift <= 1e-9, (
                f"warm/cold disagreement on {label} round {round_index}:"
                f" {warm_value!r} vs {cold_result.probability!r}"
            )
        cold_seconds.append(cold)
        warm_seconds.append(warm)
        per_round.append(
            {
                "round": round_index,
                "cold_recompute_seconds": round(cold, 6),
                "warm_evaluate_seconds": round(warm, 6),
                "speedup": round(cold / warm, 1) if warm > 0 else None,
            }
        )
        print(
            f"round {round_index}: cold {cold:.3f}s  warm {warm:.6f}s  "
            f"speedup {cold / warm:,.0f}x"
        )

    # Sensitivity sweep: every tuple's gradient for every answer.
    started = time.perf_counter()
    gradient_counts = [
        len(circuit.gradients()) for circuit in circuits
    ]
    gradients_seconds = time.perf_counter() - started

    total_cold = sum(cold_seconds)
    total_warm = sum(warm_seconds)
    speedup = total_cold / total_warm if total_warm > 0 else float("inf")
    report = {
        "experiment": (
            "Circuit reuse on the Fig. 7 hard batch "
            "(benchmarks/bench_circuit_reuse.py)"
        ),
        "workload": (
            f"{','.join(HARD_QUERIES)} sf={SCALE}: {len(batch)} answer "
            f"lineages, {ROUNDS} shifted probability maps; exact "
            "(epsilon=0) on both paths"
        ),
        "environment": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
            "smoke": SMOKE,
        },
        "engine_config": config.describe(),
        "compile_once_seconds": round(compile_seconds, 6),
        "circuit_nodes": [len(circuit) for circuit in circuits],
        "rounds": per_round,
        "totals": {
            "cold_recompute_seconds": round(total_cold, 6),
            "warm_evaluate_seconds": round(total_warm, 6),
            "speedup_warm_vs_cold": round(speedup, 1),
            "speedup_including_compile": round(
                total_cold / (total_warm + compile_seconds), 1
            ),
        },
        "sensitivities": {
            "seconds_all_answers": round(gradients_seconds, 6),
            "tuples_ranked": gradient_counts,
        },
        "differential": (
            "warm circuit evaluation agreed with cold exact recompute "
            "to 1e-9 on every answer and round"
        ),
    }
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\ncompile once: {compile_seconds:.3f}s")
    print(
        f"total: cold {total_cold:.3f}s  warm {total_warm:.6f}s  "
        f"speedup {speedup:,.0f}x  -> {OUTPUT}"
    )
    if ASSERT_SPEEDUP:
        assert speedup >= SPEEDUP_TARGET, (
            f"warm re-evaluation speedup {speedup:.1f}x is below the "
            f"{SPEEDUP_TARGET}x acceptance bar"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
