"""Ablation benchmarks for the design choices DESIGN.md calls out.

Beyond the paper's figures, these quantify the individual ingredients:

* **bucket sorting** (Example 5.2's refinement): sorted vs. unsorted
  first-fit bucket construction;
* **leaf closing** (Theorem 5.12): closing enabled vs. disabled;
* **read-once buckets** (Remark 5.3): the optional 1OF bucket extension;
* **Karp–Luby estimator variant**: fractional vs. zero-one sample
  variance at a fixed sample count;
* **IQ variable order** (Lemma 6.8): IQ-aware vs. max-frequency pivots on
  inequality lineage.
"""

import functools
import random

import pytest

from conftest import pair_status, tpch_answers
from repro import EngineConfig, ProbDB
from repro.bench import Harness
from repro.datasets.graphs import random_graph, triangle_dnf
from repro.mc.karp_luby import FRACTIONAL, ZERO_ONE, KarpLubyEstimator

#: Base config for the d-tree ablations: the read-once and MC rungs are
#: disabled so each toggle isolates exactly one Section V ingredient.
ABLATION_BASE = EngineConfig(
    error_kind="relative",
    try_read_once=False,
    mc_fallback=False,
)

HARNESS = Harness("Ablations")
DEADLINE = 20.0
#: triangle lineage on an 8-clique with edge probability 0.4 at relative
#: error 0.05 — calibrated so that every configuration converges while the
#: ingredients still differ measurably (e.g. closing ≈ 2.4× faster).
ABLATION_GRAPH = (8, 0.4)
ABLATION_EPSILON = 0.05


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    HARNESS.print_series()
    HARNESS.write_csv()


@functools.lru_cache(maxsize=None)
def _graph_instance():
    graph = random_graph(*ABLATION_GRAPH)
    return triangle_dnf(graph), graph.registry


@pytest.mark.parametrize("sort_buckets", [True, False])
def test_bucket_sorting(benchmark, sort_buckets):
    dnf, registry = _graph_instance()
    label = "sorted" if sort_buckets else "unsorted"
    config = ABLATION_BASE.replace(
        epsilon=ABLATION_EPSILON,
        sort_buckets=sort_buckets,
        deadline_seconds=DEADLINE,
    )
    session = ProbDB.from_registry(registry, config)

    def run():
        return HARNESS.run(
            "bucket construction",
            f"buckets {label}",
            lambda: session.confidence(dnf),
            value_of=lambda r: r.estimate,
            status_of=lambda r: "ok" if r.converged else "capped",
            detail_of=lambda r: f"steps={r.steps}",
            engine_config=config,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("allow_closing", [True, False])
def test_leaf_closing(benchmark, allow_closing):
    dnf, registry = _graph_instance()
    label = "on" if allow_closing else "off"
    config = ABLATION_BASE.replace(
        epsilon=ABLATION_EPSILON,
        allow_closing=allow_closing,
        deadline_seconds=DEADLINE,
    )
    session = ProbDB.from_registry(registry, config)

    def run():
        return HARNESS.run(
            "leaf closing",
            f"closing {label}",
            lambda: session.confidence(dnf),
            value_of=lambda r: r.estimate,
            status_of=lambda r: "ok" if r.converged else "capped",
            detail_of=lambda r: (
                f"steps={r.steps} "
                f"closed={r.details['dtree'].leaves_closed}"
            ),
            engine_config=config,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("read_once", [True, False])
def test_read_once_buckets(benchmark, read_once):
    dnf, registry = _graph_instance()
    label = "1OF" if read_once else "plain"
    config = ABLATION_BASE.replace(
        epsilon=ABLATION_EPSILON,
        read_once_buckets=read_once,
        deadline_seconds=DEADLINE,
    )
    session = ProbDB.from_registry(registry, config)

    def run():
        return HARNESS.run(
            "bucket kind",
            f"buckets {label}",
            lambda: session.confidence(dnf),
            value_of=lambda r: r.estimate,
            status_of=lambda r: "ok" if r.converged else "capped",
            detail_of=lambda r: f"steps={r.steps}",
            engine_config=config,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("variant", [FRACTIONAL, ZERO_ONE])
def test_karp_luby_variant_variance(benchmark, variant):
    dnf, registry = _graph_instance()
    estimator = KarpLubyEstimator(
        dnf, registry, variant=variant, rng=random.Random(0)
    )

    def variance():
        values = [estimator.sample_unit() for _ in range(5000)]
        mean = sum(values) / len(values)
        return sum((v - mean) ** 2 for v in values) / len(values)

    def run():
        return HARNESS.run(
            "KL estimator variance (5k samples)",
            variant,
            variance,
            value_of=lambda v: v,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("use_iq_order", [True, False])
def test_iq_variable_order(benchmark, use_iq_order):
    answers, database, selector = tpch_answers("IQ B4", 0.1, 0.0, 1.0)
    chosen = selector if use_iq_order else None
    label = "Lemma 6.8 order" if use_iq_order else "max-frequency"
    config = EngineConfig(
        epsilon=0.0,
        choose_variable=chosen,
        deadline_seconds=DEADLINE,
        try_read_once=False,
        mc_fallback=False,
    )
    # A bare engine (not for_database) so max-frequency stays the
    # fallback when the IQ order is ablated away.
    from repro.engine import ConfidenceEngine

    session = ProbDB(
        database, engine=ConfidenceEngine(database.registry, config)
    )

    def run():
        return HARNESS.run(
            "IQ B4 exact",
            label,
            lambda: session.lineage(answers).confidences(),
            status_of=pair_status,
            engine_config=config,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
