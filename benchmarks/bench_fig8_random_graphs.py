"""Fig. 8: motif queries on random graphs.

Three panels from the paper:

* triangle query, time vs. clique size, edge probabilities 0.3 / 0.7,
  relative error 0.01;
* path-of-length-2 query, same setup;
* triangle & path2 at *absolute* error 0.05 with tiny edge probabilities
  (0.01 / 0.1) — where the absolute criterion converges almost instantly
  because the upper bounds are already small.

Expected shape: with p = 0.7 the d-tree converges immediately (result
probability ≈ 1); with p = 0.3 the instance sits in the hard region of
the easy-hard-easy pattern and grows steeply (runs are capped by a
deadline, the analogue of the paper's 200 s ceiling).  aconf cost grows
with the clique size everywhere.
"""

import functools

import pytest

from conftest import aconf_status, dtree_status
from repro import EngineConfig, ProbDB
from repro.bench import Harness
from repro.datasets.graphs import path2_dnf, random_graph, triangle_dnf
from repro.mc.aconf import aconf

HARNESS = Harness("Fig 8 random graphs")
NODE_COUNTS = (6, 10, 15, 20)
EDGE_PROBS = (0.3, 0.7)
ACONF_CAP = 2000
DTREE_DEADLINE = 10.0

_QUERIES = {"triangle": triangle_dnf, "path2": path2_dnf}


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    HARNESS.print_series()
    HARNESS.write_csv()


@functools.lru_cache(maxsize=None)
def _instance(node_count, edge_prob, query):
    graph = random_graph(node_count, edge_prob)
    return _QUERIES[query](graph), graph.registry


@pytest.mark.parametrize("edge_prob", EDGE_PROBS)
@pytest.mark.parametrize("node_count", NODE_COUNTS)
@pytest.mark.parametrize("query", list(_QUERIES))
def test_dtree_rel_001(benchmark, query, node_count, edge_prob):
    dnf, registry = _instance(node_count, edge_prob, query)
    config = EngineConfig(
        epsilon=0.01,
        error_kind="relative",
        deadline_seconds=DTREE_DEADLINE,
        try_read_once=False,
        mc_fallback=False,
    )
    session = ProbDB.from_registry(registry, config)

    def run():
        return HARNESS.run(
            f"{query} n={node_count} p={edge_prob}",
            "d-tree(0.01)",
            lambda: [session.confidence(dnf)],
            status_of=dtree_status,
            engine_config=config,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("edge_prob", EDGE_PROBS)
@pytest.mark.parametrize("node_count", NODE_COUNTS)
@pytest.mark.parametrize("query", list(_QUERIES))
def test_aconf_rel_001(benchmark, query, node_count, edge_prob):
    dnf, registry = _instance(node_count, edge_prob, query)

    def run():
        return HARNESS.run(
            f"{query} n={node_count} p={edge_prob}",
            "aconf(0.01)",
            lambda: [
                aconf(
                    dnf,
                    registry,
                    epsilon=0.01,
                    seed=0,
                    max_samples=ACONF_CAP,
                )
            ],
            status_of=aconf_status,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


# ----------------------------------------------------------------------
# Bottom panel: absolute error 0.05, tiny edge probabilities.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("edge_prob", (0.01, 0.1))
@pytest.mark.parametrize("node_count", (6, 10, 15))
@pytest.mark.parametrize("query", list(_QUERIES))
def test_dtree_absolute_005(benchmark, query, node_count, edge_prob):
    dnf, registry = _instance(node_count, edge_prob, query)
    config = EngineConfig(
        epsilon=0.05,
        error_kind="absolute",
        deadline_seconds=DTREE_DEADLINE,
        try_read_once=False,
        mc_fallback=False,
    )
    session = ProbDB.from_registry(registry, config)

    def run():
        return HARNESS.run(
            f"{query} n={node_count} p={edge_prob} abs",
            "d-tree(abs 0.05)",
            lambda: [session.confidence(dnf)],
            status_of=dtree_status,
            engine_config=config,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
