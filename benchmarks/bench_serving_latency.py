"""Serving-tier latency/throughput: concurrent wire requests vs direct calls.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_latency.py
    SERVING_BENCH_SMOKE=1 PYTHONPATH=src python benchmarks/bench_serving_latency.py

The deployment question the serving tier answers: what does it cost to
put compiled circuits behind an async JSON front-end instead of
calling them in-process?  The bench:

* compiles a pool of monotone lineage DNFs into a store file (the PR 5
  serialization format), then serves it through the full wire path —
  :class:`ServingApp` driven by the in-process :class:`ASGIClient`, so
  every request pays JSON encode/decode, routing, admission,
  semaphores, and micro-batching, everything but the socket;
* storms the app with ``CONCURRENCY`` async workers issuing a mixed
  ``evaluate`` / ``what_if`` / ``sweep`` / ``top_k`` workload, and
  reads throughput plus p50/p99 request latency from
  :class:`ServingStats`;
* times the same logical work as direct in-process circuit sweeps, and
  reports ``overhead_ratio`` = direct rps / serving rps — the
  machine-independent number the regression gate watches (absolute
  seconds differ per machine; the overhead of the serving stack over
  direct calls should not).

Results go to ``BENCH_serving.json`` at the repo root.  The built-in
acceptance bar — micro-batch occupancy above 1.0, i.e. concurrent
same-circuit requests actually coalesced into shared kernel flushes —
is asserted unless ``SERVING_BENCH_NO_ASSERT=1``.

Smoke mode (``SERVING_BENCH_SMOKE=1``, used by CI): fewer workers and
rounds.  Runs on the scalar backend too (no numpy required); the
occupancy bar holds either way because batching happens above the
kernel.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import sys
import tempfile
import time

from repro.circuits import CircuitCache
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.variables import VariableRegistry
from repro.engine import ConfidenceEngine
from repro.serving import (
    ASGIClient,
    CircuitStoreService,
    ServingApp,
    ServingConfig,
    ServingEngine,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT = os.environ.get(
    "SERVING_BENCH_OUTPUT", os.path.join(REPO_ROOT, "BENCH_serving.json")
)

SMOKE = os.environ.get("SERVING_BENCH_SMOKE") == "1"
ASSERT_OCCUPANCY = os.environ.get("SERVING_BENCH_NO_ASSERT") != "1"

VARIABLES = 16
CIRCUITS = 6 if SMOKE else 12
CONCURRENCY = 8 if SMOKE else 32
ROUNDS = 6 if SMOKE else 40
WHAT_IF_POINTS = 5
SWEEP_SCENARIOS = 8
SEED = 20260808


def build_store(registry, path):
    """Compile the lineage pool and persist it; returns the lineages."""
    rng = random.Random(SEED)
    names = [f"t{i}" for i in range(VARIABLES)]
    engine = ConfidenceEngine(registry)
    cache = CircuitCache()
    lineages = []
    for _ in range(CIRCUITS):
        clauses = []
        for _ in range(rng.randint(3, 6)):
            width = rng.randint(1, 3)
            clauses.append(
                Clause({v: True for v in rng.sample(names, width)})
            )
        lineage = DNF(clauses)
        cache.put(lineage, engine.compile_circuit(lineage))
        lineages.append(lineage)
    cache.save(path)
    return lineages


def build_requests(lineages):
    """The mixed workload, fully materialised so both paths replay it."""
    rng = random.Random(SEED + 1)
    requests = []
    for round_index in range(ROUNDS):
        for worker in range(CONCURRENCY):
            lineage = lineages[(round_index + worker) % len(lineages)]
            p = round(rng.uniform(0.05, 0.95), 6)
            kind = (round_index + worker) % 4
            if kind == 0:
                requests.append(("evaluate", lineage, {"t0": p}))
            elif kind == 1:
                grid = [
                    round(p * step / (WHAT_IF_POINTS - 1), 6)
                    for step in range(WHAT_IF_POINTS)
                ]
                requests.append(("what_if", lineage, grid))
            elif kind == 2:
                scenarios = [
                    {"t1": round(rng.uniform(0.0, 1.0), 6)}
                    for _ in range(SWEEP_SCENARIOS)
                ]
                requests.append(("sweep", lineage, scenarios))
            else:
                requests.append(("top_k", lineage, {"t2": p}))
    return requests


async def drive(client, requests, lineages):
    semaphore = asyncio.Semaphore(CONCURRENCY)

    async def one(spec):
        kind, lineage, payload = spec
        async with semaphore:
            if kind == "evaluate":
                return await client.evaluate(lineage, overrides=payload)
            if kind == "what_if":
                return await client.what_if(lineage, "t3", payload)
            if kind == "sweep":
                return await client.sweep(lineage, payload)
            return await client.top_k(
                lineages, 3, overrides=payload
            )

    return await asyncio.gather(*[one(spec) for spec in requests])


def direct_pass(cache, requests, lineages):
    """The same logical work as plain in-process circuit calls."""
    results = []
    for kind, lineage, payload in requests:
        circuit = cache.get(lineage)
        if kind == "evaluate":
            results.append(circuit.evaluate(payload))
        elif kind == "what_if":
            results.append(
                [circuit.evaluate({"t3": p}) for p in payload]
            )
        elif kind == "sweep":
            results.append(
                [circuit.evaluate(scenario) for scenario in payload]
            )
        else:
            values = [
                cache.get(entry).evaluate(payload)
                for entry in lineages
            ]
            results.append(
                sorted(range(len(values)), key=lambda i: (-values[i], i))[:3]
            )
    return results


def main() -> int:
    registry = VariableRegistry()
    rng = random.Random(SEED + 2)
    for index in range(VARIABLES):
        registry.add_boolean(f"t{index}", round(rng.uniform(0.05, 0.6), 6))

    with tempfile.TemporaryDirectory() as temp_dir:
        store_path = os.path.join(temp_dir, "store.bin")
        lineages = build_store(registry, store_path)
        cache = CircuitCache()
        cache.load_into(store_path, registry)
        requests = build_requests(lineages)

        stores = CircuitStoreService(registry, {"bench": store_path})
        serving = ServingEngine(
            stores,
            ConfidenceEngine(registry),
            ServingConfig(max_inflight=CONCURRENCY),
        )
        client = ASGIClient(ServingApp(serving))

        # Warm-up: lowers kernels and exercises every route once.
        asyncio.run(drive(client, requests[: CONCURRENCY], lineages))

        started = time.perf_counter()
        asyncio.run(drive(client, requests, lineages))
        serving_seconds = time.perf_counter() - started

        started = time.perf_counter()
        direct_pass(cache, requests, lineages)
        direct_seconds = time.perf_counter() - started

    stats = serving.stats
    latency = stats.latency_percentiles()
    serving_rps = len(requests) / serving_seconds
    direct_rps = len(requests) / direct_seconds
    occupancy = stats.occupancy()
    results = {
        "config": {
            "smoke": SMOKE,
            "circuits": CIRCUITS,
            "concurrency": CONCURRENCY,
            "requests": len(requests),
            "python": sys.version.split()[0],
        },
        "totals": {
            "throughput_rps": serving_rps,
            "p50_ms": latency["p50_ms"],
            "p99_ms": latency["p99_ms"],
            "mean_ms": latency["mean_ms"],
            "batch_occupancy": occupancy,
            "direct_rps": direct_rps,
            "overhead_ratio": direct_rps / serving_rps,
            "shed": stats.shed,
            "engine_fallbacks": stats.engine_fallbacks,
            "max_inflight": stats.max_inflight,
        },
    }
    with open(OUTPUT, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")

    totals = results["totals"]
    print(
        f"serving: {totals['throughput_rps']:.0f} req/s "
        f"(p50 {totals['p50_ms']:.2f} ms, p99 {totals['p99_ms']:.2f} ms, "
        f"occupancy {occupancy:.2f}); direct: {direct_rps:.0f} req/s "
        f"-> overhead {totals['overhead_ratio']:.2f}x"
    )
    print(f"results -> {OUTPUT}")

    if ASSERT_OCCUPANCY and occupancy <= 1.0:
        print(
            f"FAIL: micro-batch occupancy {occupancy:.2f} <= 1.0 — "
            "concurrent same-circuit requests are not coalescing",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
