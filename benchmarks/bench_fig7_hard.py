"""Fig. 7: #P-hard TPC-H queries B2, B9, B20, B21 — time vs. scale factor.

Paper series: per query, aconf and d-tree at relative errors 0.01 and
0.05, swept over the TPC-H scale factor.  Expected shape: d-tree beats
aconf by orders of magnitude throughout; both grow with the scale factor;
the larger error is cheaper; B20/B21 stay nearly flat because after
eliminating the single nation variable the residual lineage falls apart
into independent clauses (the paper's observation).

The d-tree runs carry a deadline (the analogue of the paper's 100 s
timeout); capped points are flagged.
"""

import pytest

from conftest import (
    aconf_status,
    pair_status,
    pair_strategies,
    tpch_answers,
)
from repro import EngineConfig, ProbDB
from repro.bench import Harness
from repro.datasets.tpch_queries import HARD_QUERIES
from repro.mc.aconf import aconf

HARNESS = Harness("Fig 7 hard TPC-H queries")
PROBS = (0.0, 1.0)
SCALES = (0.05, 0.1, 0.15)
ERRORS = (0.05, 0.01)
ACONF_CAP = 2000
DTREE_DEADLINE = 15.0
QUERIES = list(HARD_QUERIES)


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    HARNESS.print_series()
    HARNESS.write_csv()


def _workload(query_name, scale, epsilon):
    return f"{query_name} sf={scale} ε={epsilon}"


@pytest.mark.parametrize("epsilon", ERRORS)
@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("query_name", QUERIES)
def test_dtree(benchmark, query_name, scale, epsilon):
    answers, database, selector = tpch_answers(query_name, scale, *PROBS)
    # A fresh session per point: sharing the decomposition cache across
    # epsilons/scales would make later points unrealistically fast.  MC
    # fallback is off — this series measures the d-tree algorithm, and
    # aconf has its own series; with it on, a deadline-capped point
    # would silently include sampling time and report "ok".  The batched
    # confidences() path shares the cache *within* the answer set.
    config = EngineConfig(
        epsilon=epsilon,
        error_kind="relative",
        choose_variable=selector,
        deadline_seconds=DTREE_DEADLINE,
        mc_fallback=False,
    )
    session = ProbDB(database, config)

    def run():
        return HARNESS.run(
            _workload(query_name, scale, epsilon),
            "d-tree",
            lambda: session.lineage(answers).confidences(),
            status_of=pair_status,
            strategy_of=pair_strategies,
            engine_config=config,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("epsilon", ERRORS)
@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("query_name", QUERIES)
def test_aconf(benchmark, query_name, scale, epsilon):
    answers, database, _sel = tpch_answers(query_name, scale, *PROBS)

    def run():
        return HARNESS.run(
            _workload(query_name, scale, epsilon),
            "aconf",
            lambda: [
                aconf(
                    dnf,
                    database.registry,
                    epsilon=epsilon,
                    seed=0,
                    max_samples=ACONF_CAP,
                )
                for _v, dnf in answers
            ],
            status_of=aconf_status,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
