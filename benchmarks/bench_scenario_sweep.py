"""Scenario sweeps: vectorized kernel batch vs per-scenario scalar sweeps.

Usage::

    PYTHONPATH=src python benchmarks/bench_scenario_sweep.py
    SWEEP_BENCH_SMOKE=1 PYTHONPATH=src python benchmarks/bench_scenario_sweep.py

The workload the kernel layer exists for: the Fig. 7 hard TPC-H batch
(B2, B9, B20, B21), compiled once, then asked under **thousands of
probability worlds** — sensitivity grids, stress batches, what-if
scans.  The scalar path pays one Python circuit sweep per world; the
numpy backend lowers each circuit once into op-segmented arrays and
pushes the whole world-matrix through in a handful of array sweeps.

Per circuit the bench:

* generates ``WORLDS`` seeded override scenarios (1–4 tuple
  probabilities nudged per world, the shape of a sensitivity probe);
* times the scalar sweep (``vectorized=False``), recording per-world
  latencies for p50/p99;
* times the vectorized sweep and asserts the values are
  **bit-identical** to the scalar ones;
* repeats the comparison for batched gradients on a subset of worlds
  (agreement there is ~1e-12, not bit-exact).

A Monte-Carlo section times the circuit-native sampler
(:func:`repro.circuits.kernels.circuit_monte_carlo`) against the
Karp–Luby ``aconf`` baseline at the same ``(ε, δ)`` on the hardest
answer of the batch.

Results go to ``BENCH_sweep.json`` at the repo root.  The acceptance
bar — vectorized sweep ``>= 10×`` the scalar scenarios/sec — is
asserted unless ``SWEEP_BENCH_NO_ASSERT=1``; the regression gate
(``benchmarks/check_bench_regression.py``) re-checks the committed
ratio with generous slack since it is machine-independent.

Smoke mode (``SWEEP_BENCH_SMOKE=1``, used by CI): smallest scale,
fewer worlds.  Requires numpy (exits 0 with a notice otherwise — the
scalar fallback has nothing to compare against itself).
"""

from __future__ import annotations

import json
import os
import random
import statistics
import sys
import time

from repro import ConfidenceEngine, EngineConfig
from repro.circuits.kernels import circuit_monte_carlo, numpy_available
from repro.circuits.sweep import sweep_gradients, sweep_values
from repro.datasets.tpch import TPCHConfig, generate_tpch
from repro.datasets.tpch_queries import HARD_QUERIES, make_query
from repro.db.engine import answer_selector, evaluate_to_dnf
from repro.mc.aconf import aconf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: Result file; override with SWEEP_BENCH_OUTPUT so comparison runs
#: don't clobber the committed baseline.
OUTPUT = os.environ.get(
    "SWEEP_BENCH_OUTPUT", os.path.join(REPO_ROOT, "BENCH_sweep.json")
)

SMOKE = os.environ.get("SWEEP_BENCH_SMOKE") == "1"
ASSERT_SPEEDUP = os.environ.get("SWEEP_BENCH_NO_ASSERT") != "1"
SCALE = 0.05 if SMOKE else 0.1
WORLDS = 200 if SMOKE else 1200
GRADIENT_WORLDS = 40 if SMOKE else 200
SPEEDUP_TARGET = 10.0

MC_EPSILON = 0.2
MC_DELTA = 0.05
MC_MAX_SAMPLES = 5_000 if SMOKE else 20_000


def build_workload():
    database = generate_tpch(
        TPCHConfig(
            scale_factor=SCALE, probability_range=(0.0, 1.0), seed=1
        )
    )
    selector = answer_selector(database)
    batch = []
    for query_name in HARD_QUERIES:
        for values, dnf in evaluate_to_dnf(
            make_query(query_name), database
        ):
            batch.append((f"{query_name}{values!r}", dnf))
    return database, selector, batch


def world_scenarios(registry, count, seed=2024):
    """``count`` seeded sensitivity worlds over the tuple variables."""
    rng = random.Random(seed)
    names = [
        name
        for name in registry.variables()
        if registry.is_boolean(name)
    ]
    scenarios = []
    for _ in range(count):
        overrides = {}
        for _ in range(rng.randint(1, 4)):
            name = rng.choice(names)
            base = registry.probability(name, True)
            overrides[name] = min(
                0.99, max(0.01, base * rng.uniform(0.25, 1.75))
            )
        scenarios.append(overrides)
    return scenarios


def percentile(latencies, fraction):
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def main() -> int:
    if not numpy_available():
        print(
            "numpy unavailable: the scalar fallback has nothing to race "
            "against — install the repro[fast] extra to run this bench"
        )
        return 0

    database, selector, batch = build_workload()
    registry = database.registry
    config = EngineConfig(choose_variable=selector, mc_fallback=False)
    engine = ConfidenceEngine(registry, config)

    started = time.perf_counter()
    circuits = [
        (label, engine.compile_circuit(dnf)) for label, dnf in batch
    ]
    compile_seconds = time.perf_counter() - started
    scenarios = world_scenarios(registry, WORLDS)

    scalar_total = 0.0
    vector_total = 0.0
    scalar_latencies = []
    per_circuit = []
    for label, circuit in circuits:
        # Scalar: one Python sweep per world, individually timed so the
        # report carries the per-world latency distribution.
        values_scalar = []
        started = time.perf_counter()
        for overrides in scenarios:
            tick = time.perf_counter()
            values_scalar.append(circuit.evaluate(overrides))
            scalar_latencies.append(time.perf_counter() - tick)
        scalar = time.perf_counter() - started

        started = time.perf_counter()
        values_vector = sweep_values(circuit, scenarios)
        vector = time.perf_counter() - started

        assert values_vector == values_scalar, (
            f"vectorized sweep diverged from scalar on {label}"
        )
        scalar_total += scalar
        vector_total += vector
        per_circuit.append(
            {
                "answer": label,
                "circuit_nodes": len(circuit),
                "scalar_seconds": round(scalar, 6),
                "vectorized_seconds": round(vector, 6),
                "speedup": round(scalar / vector, 1)
                if vector > 0
                else None,
            }
        )

    speedup = (
        scalar_total / vector_total if vector_total > 0 else float("inf")
    )
    world_count = WORLDS * len(circuits)
    print(
        f"values sweep: {len(circuits)} circuits x {WORLDS} worlds  "
        f"scalar {scalar_total:.3f}s  vectorized {vector_total:.3f}s  "
        f"speedup {speedup:,.0f}x"
    )

    # Gradients: the full sensitivity matrix per world, subset of worlds.
    gradient_scenarios = scenarios[:GRADIENT_WORLDS]
    started = time.perf_counter()
    for _label, circuit in circuits:
        sweep_gradients(circuit, gradient_scenarios, vectorized=False)
    gradients_scalar = time.perf_counter() - started
    started = time.perf_counter()
    for _label, circuit in circuits:
        sweep_gradients(circuit, gradient_scenarios)
    gradients_vector = time.perf_counter() - started
    gradient_speedup = (
        gradients_scalar / gradients_vector
        if gradients_vector > 0
        else float("inf")
    )
    print(
        f"gradient sweep: scalar {gradients_scalar:.3f}s  vectorized "
        f"{gradients_vector:.3f}s  speedup {gradient_speedup:,.0f}x"
    )

    # Monte Carlo: circuit sampler vs Karp-Luby at the same (eps, delta)
    # on the biggest circuit of the batch.
    mc_label, mc_circuit = max(circuits, key=lambda item: len(item[1]))
    mc_dnf = next(dnf for label, dnf in batch if label == mc_label)
    started = time.perf_counter()
    circuit_mc = circuit_monte_carlo(
        mc_circuit,
        epsilon=MC_EPSILON,
        delta=MC_DELTA,
        seed=7,
        max_samples=MC_MAX_SAMPLES,
    )
    circuit_mc_seconds = time.perf_counter() - started
    started = time.perf_counter()
    karp_luby = aconf(
        mc_dnf,
        registry,
        epsilon=MC_EPSILON,
        delta=MC_DELTA,
        seed=7,
        max_samples=MC_MAX_SAMPLES,
    )
    karp_luby_seconds = time.perf_counter() - started
    mc_rate_circuit = (
        circuit_mc.samples / circuit_mc_seconds
        if circuit_mc_seconds > 0
        else float("inf")
    )
    mc_rate_karp_luby = (
        karp_luby.samples / karp_luby_seconds
        if karp_luby_seconds > 0
        else float("inf")
    )
    print(
        f"monte carlo on {mc_label}: circuit {mc_rate_circuit:,.0f} "
        f"samples/s  karp-luby {mc_rate_karp_luby:,.0f} samples/s"
    )

    report = {
        "experiment": (
            "Vectorized scenario sweeps on the Fig. 7 hard batch "
            "(benchmarks/bench_scenario_sweep.py)"
        ),
        "workload": (
            f"{','.join(HARD_QUERIES)} sf={SCALE}: {len(circuits)} "
            f"compiled answer circuits x {WORLDS} sensitivity worlds "
            "(1-4 tuple probabilities nudged per world)"
        ),
        "environment": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
            "smoke": SMOKE,
        },
        "engine_config": config.describe(),
        "compile_once_seconds": round(compile_seconds, 6),
        "per_circuit": per_circuit,
        "totals": {
            "worlds_evaluated": world_count,
            "scalar_seconds": round(scalar_total, 6),
            "vectorized_seconds": round(vector_total, 6),
            "scalar_worlds_per_second": round(
                world_count / scalar_total, 1
            ),
            "vectorized_worlds_per_second": round(
                world_count / vector_total, 1
            ),
            "speedup_vectorized_vs_scalar": round(speedup, 1),
            "scalar_world_latency_p50_us": round(
                percentile(scalar_latencies, 0.50) * 1e6, 2
            ),
            "scalar_world_latency_p99_us": round(
                percentile(scalar_latencies, 0.99) * 1e6, 2
            ),
            "vectorized_world_latency_us": round(
                vector_total / world_count * 1e6, 2
            ),
        },
        "gradients": {
            "worlds": GRADIENT_WORLDS,
            "scalar_seconds": round(gradients_scalar, 6),
            "vectorized_seconds": round(gradients_vector, 6),
            "speedup": round(gradient_speedup, 1),
        },
        "monte_carlo": {
            "answer": mc_label,
            "epsilon": MC_EPSILON,
            "delta": MC_DELTA,
            "circuit_samples_per_second": round(mc_rate_circuit, 1),
            "karp_luby_samples_per_second": round(mc_rate_karp_luby, 1),
            "circuit_estimate": circuit_mc.estimate,
            "karp_luby_estimate": karp_luby.estimate,
        },
        "differential": (
            "vectorized sweep values were bit-identical to per-world "
            "scalar evaluation on every circuit and world"
        ),
    }
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"\ntotal: scalar {scalar_total:.3f}s  vectorized "
        f"{vector_total:.3f}s  speedup {speedup:,.0f}x  -> {OUTPUT}"
    )
    if ASSERT_SPEEDUP:
        assert speedup >= SPEEDUP_TARGET, (
            f"vectorized sweep speedup {speedup:.1f}x is below the "
            f"{SPEEDUP_TARGET}x acceptance bar"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
