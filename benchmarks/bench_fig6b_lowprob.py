"""Fig. 6(b): tractable TPC-H queries, tuple probabilities in (0, 0.01).

The low-probability regime: result confidences are far from 1, so the
relative-error termination check has to work much harder than in
Fig. 6(a), and the paper observes d-tree(error 0) beating d-tree(0.01)
because the exact path skips per-leaf bound computation.
"""

import pytest

from conftest import aconf_status, pair_status, tpch_answers
from repro import EngineConfig, ProbDB
from repro.bench import Harness
from repro.core.exact import exact_probability
from repro.datasets.tpch_queries import HIERARCHICAL_QUERIES, make_query
from repro.db.sprout import sprout_confidence
from repro.mc.aconf import aconf

HARNESS = Harness("Fig 6b tractable TPC-H probs (0,0.01)")
SCALE = 0.1
PROBS = (0.0, 0.01)
ACONF_CAP = 3000
QUERIES = list(HIERARCHICAL_QUERIES)


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    HARNESS.print_series()
    HARNESS.write_csv()


@pytest.mark.parametrize("query_name", QUERIES)
def test_aconf_rel_001(benchmark, query_name):
    answers, database, _sel = tpch_answers(query_name, SCALE, *PROBS)

    def run():
        return HARNESS.run(
            query_name,
            "aconf(0.01)",
            lambda: [
                aconf(
                    dnf,
                    database.registry,
                    epsilon=0.01,
                    seed=0,
                    max_samples=ACONF_CAP,
                )
                for _v, dnf in answers
            ],
            status_of=aconf_status,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("query_name", QUERIES)
def test_dtree_rel_001(benchmark, query_name):
    """The raw d-tree algorithm through the façade (read-once/MC rungs
    off): the low-probability regime stresses the relative-error check."""
    answers, database, selector = tpch_answers(query_name, SCALE, *PROBS)
    config = EngineConfig(
        epsilon=0.01,
        error_kind="relative",
        choose_variable=selector,
        try_read_once=False,
        mc_fallback=False,
    )
    session = ProbDB(database, config)

    def run():
        return HARNESS.run(
            query_name,
            "d-tree(0.01)",
            lambda: session.lineage(answers).confidences(),
            status_of=pair_status,
            engine_config=config,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("query_name", QUERIES)
def test_dtree_exact(benchmark, query_name):
    answers, database, selector = tpch_answers(query_name, SCALE, *PROBS)

    def run():
        return HARNESS.run(
            query_name,
            "d-tree(0)",
            lambda: [
                exact_probability(
                    dnf, database.registry, choose_variable=selector
                )
                for _v, dnf in answers
            ],
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("query_name", QUERIES)
def test_sprout(benchmark, query_name):
    _answers, database, _sel = tpch_answers(query_name, SCALE, *PROBS)
    query = make_query(query_name)

    def run():
        return HARNESS.run(
            query_name,
            "SPROUT",
            lambda: sprout_confidence(query, database),
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
