"""Record decomposition-heavy timings across engine generations.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_compare.py seed
    PYTHONPATH=src python benchmarks/bench_engine_compare.py interned
    PYTHONPATH=src python benchmarks/bench_engine_compare.py session

Each invocation times the Fig. 7 hard-query workload (the paper's
decomposition-heavy case) plus the Fig. 6a tractable workload, and merges
its timings under the given label into ``BENCH_engine.json`` at the repo
root:

* ``seed``      — the pre-refactor tree (raw ``approximate_probability``);
* ``interned``  — the interned-core ``ConfidenceEngine``, one
  ``compute()`` call per answer (the per-tuple loop);
* ``session``   — the ``ProbDB`` façade: ``QueryResult.confidences()``
  batching the whole answer set through ``compute_many`` on one shared
  cache.

Every labelled run records the exact :class:`repro.engine.EngineConfig`
it used (``engine_config`` key), so recorded rows are reproducible.  The
merge step reports per-query speedups seed→interned and the
session-vs-interned ratio (the PR-2 acceptance check: batching must do
no worse than the per-tuple loop).
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.core.approx import approximate_probability
from repro.datasets.tpch import TPCHConfig, generate_tpch
from repro.datasets.tpch_queries import make_query
from repro.db.engine import answer_selector, evaluate_to_dnf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: Result file; override with ENGINE_BENCH_OUTPUT so comparison runs
#: (benchmarks/check_bench_regression.py) don't clobber the committed
#: baseline.
OUTPUT = os.environ.get(
    "ENGINE_BENCH_OUTPUT", os.path.join(REPO_ROOT, "BENCH_engine.json")
)

#: Smoke mode (ENGINE_BENCH_SMOKE=1): a small slice of the workload,
#: one repetition, tight deadline — CI-sized, for regression *ratio*
#: checks, not for recording baselines.
SMOKE = os.environ.get("ENGINE_BENCH_SMOKE") == "1"

#: (query, scale factor, epsilon) — ε = 0 is the exact d-tree mode.
WORKLOADS = (
    [
        ("B9", 0.05, 0.01),
        ("1", 0.1, 0.0),
    ]
    if SMOKE
    else [
        ("B9", 0.15, 0.005),
        ("B9", 0.2, 0.01),
        ("B2", 0.3, 0.01),
        ("B21", 1.0, 0.01),
        ("1", 0.3, 0.0),
        ("15", 1.0, 0.0),
    ]
)
DEADLINE = 30.0 if SMOKE else 120.0
REPEATS = 1 if SMOKE else 3


def _strategies_of(results) -> list:
    return sorted({getattr(r, "strategy", "d-tree") for r in results})


def run_workloads(label: str) -> dict:
    timings: dict = {}
    try:
        from repro.engine import ConfidenceEngine, EngineConfig
    except ImportError:  # seed tree: no planner yet
        ConfidenceEngine = EngineConfig = None

    databases: dict = {}
    for query_name, scale, epsilon in WORKLOADS:
        if scale not in databases:
            databases[scale] = generate_tpch(
                TPCHConfig(scale_factor=scale,
                           probability_range=(0.0, 1.0), seed=1)
            )
        database = databases[scale]
        query = make_query(query_name)
        answers = evaluate_to_dnf(query, database)
        selector = answer_selector(database)

        config = None
        session_config = None
        if EngineConfig is not None:
            # MC fallback off: the comparison is against the seed's raw
            # d-tree runs, so sampling time must not leak in.
            config = EngineConfig(
                epsilon=epsilon,
                error_kind="relative",
                choose_variable=selector,
                deadline_seconds=DEADLINE,
                mc_fallback=False,
            )
            # compute_many's deadline bounds the whole batch; the
            # per-tuple loop gets DEADLINE per answer, so the session
            # run gets the same aggregate ceiling — otherwise a capped
            # session run would look fast by doing less work.
            session_config = config.replace(
                deadline_seconds=DEADLINE * max(1, len(answers))
            )

        def once():
            if label == "session" and session_config is not None:
                from repro.db.session import ProbDB

                session = ProbDB(database, session_config)
                return [
                    result
                    for _v, result in
                    session.lineage(answers).confidences()
                ]
            if ConfidenceEngine is not None:
                engine = ConfidenceEngine(database.registry, config)
                return [engine.compute(dnf) for _v, dnf in answers]
            return [
                approximate_probability(
                    dnf,
                    database.registry,
                    epsilon=epsilon,
                    error_kind="relative",
                    choose_variable=selector,
                    deadline_seconds=DEADLINE,
                )
                for _v, dnf in answers
            ]

        best = float("inf")
        results = []
        for _ in range(REPEATS):
            started = time.perf_counter()
            results = once()
            best = min(best, time.perf_counter() - started)
        key = f"{query_name} sf={scale} eps={epsilon}"
        timings[key] = {
            "seconds": best,
            "answers": len(answers),
            "strategies": _strategies_of(results),
        }
        used_config = session_config if label == "session" else config
        if used_config is not None:
            timings[key]["engine_config"] = used_config.describe()
        print(f"[{label}] {key}: {best:.3f}s "
              f"({len(answers)} answers, {_strategies_of(results)})")
    return timings


def main() -> None:
    label = sys.argv[1] if len(sys.argv) > 1 else "session"
    if label not in ("seed", "interned", "session"):
        raise SystemExit(f"unknown label {label!r}")
    data = {}
    if os.path.exists(OUTPUT):
        with open(OUTPUT) as handle:
            data = json.load(handle)
    data.setdefault("config", {
        "workloads": [
            {"query": q, "scale_factor": s, "epsilon": e}
            for q, s, e in WORKLOADS
        ],
        "error_kind": "relative",
        "deadline_seconds": DEADLINE,
        "repeats": REPEATS,
        "workload": "fig7 hard + fig6a tractable TPC-H queries",
    })
    data[label] = run_workloads(label)
    if "seed" in data and "interned" in data:
        speedups = {}
        for name, seed_point in data["seed"].items():
            interned_point = data["interned"].get(name)
            if interned_point and interned_point["seconds"] > 0:
                speedups[name] = round(
                    seed_point["seconds"] / interned_point["seconds"], 2
                )
        total_seed = sum(p["seconds"] for p in data["seed"].values())
        total_interned = sum(
            p["seconds"] for p in data["interned"].values()
        )
        data["speedup"] = {
            "per_query": speedups,
            "overall": round(total_seed / total_interned, 2)
            if total_interned
            else None,
        }
    if "interned" in data and "session" in data:
        # The acceptance ratio: batched session time / per-tuple loop
        # time; ≤ 1.0 (within noise) means batching does no worse.
        ratios = {}
        for name, interned_point in data["interned"].items():
            session_point = data["session"].get(name)
            if session_point and interned_point["seconds"] > 0:
                ratios[name] = round(
                    session_point["seconds"]
                    / interned_point["seconds"], 3
                )
        total_interned = sum(
            p["seconds"] for p in data["interned"].values()
        )
        total_session = sum(
            p["seconds"] for p in data["session"].values()
        )
        data["session_vs_interned"] = {
            "per_query_ratio": ratios,
            "overall_ratio": round(total_session / total_interned, 3)
            if total_interned
            else None,
        }
    with open(OUTPUT, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
