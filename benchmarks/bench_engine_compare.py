"""Record decomposition-heavy timings for the seed-vs-interned comparison.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_compare.py seed
    PYTHONPATH=src python benchmarks/bench_engine_compare.py interned

Each invocation times the Fig. 7 hard-query workload (the paper's
decomposition-heavy case) plus the Fig. 6a tractable workload, and merges
its timings under the given label into ``BENCH_engine.json`` at the repo
root.  Running it once on the seed tree and once after the interned-core
refactor yields the speedup table the engine PR reports.

When the unified planner is available (post-refactor), the chosen strategy
per answer is recorded alongside the timing.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.core.approx import approximate_probability
from repro.datasets.tpch_queries import HARD_QUERIES, HIERARCHICAL_QUERIES
from repro.datasets.tpch import TPCHConfig, generate_tpch
from repro.db.engine import answer_selector, evaluate_to_dnf
from repro.datasets.tpch_queries import make_query

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT = os.path.join(REPO_ROOT, "BENCH_engine.json")

#: (query, scale factor, epsilon) — ε = 0 is the exact d-tree mode.
WORKLOADS = [
    ("B9", 0.15, 0.005),
    ("B9", 0.2, 0.01),
    ("B2", 0.3, 0.01),
    ("B21", 1.0, 0.01),
    ("1", 0.3, 0.0),
    ("15", 1.0, 0.0),
]
DEADLINE = 120.0
REPEATS = 3


def _strategies_of(results) -> list:
    return sorted({getattr(r, "strategy", "d-tree") for r in results})


def run_workloads(label: str) -> dict:
    timings: dict = {}
    try:
        from repro.engine import ConfidenceEngine
    except ImportError:  # seed tree: no planner yet
        ConfidenceEngine = None

    databases: dict = {}
    for query_name, scale, epsilon in WORKLOADS:
        if scale not in databases:
            databases[scale] = generate_tpch(
                TPCHConfig(scale_factor=scale,
                           probability_range=(0.0, 1.0), seed=1)
            )
        database = databases[scale]
        query = make_query(query_name)
        answers = evaluate_to_dnf(query, database)
        selector = answer_selector(database)

        def once():
            if ConfidenceEngine is not None:
                # MC fallback off: the comparison is against the seed's
                # raw d-tree runs, so sampling time must not leak in.
                engine = ConfidenceEngine(
                    database.registry,
                    epsilon=epsilon,
                    error_kind="relative",
                    choose_variable=selector,
                    deadline_seconds=DEADLINE,
                    mc_fallback=False,
                )
                return [engine.compute(dnf) for _v, dnf in answers]
            return [
                approximate_probability(
                    dnf,
                    database.registry,
                    epsilon=epsilon,
                    error_kind="relative",
                    choose_variable=selector,
                    deadline_seconds=DEADLINE,
                )
                for _v, dnf in answers
            ]

        best = float("inf")
        results = []
        for _ in range(REPEATS):
            started = time.perf_counter()
            results = once()
            best = min(best, time.perf_counter() - started)
        key = f"{query_name} sf={scale} eps={epsilon}"
        timings[key] = {
            "seconds": best,
            "answers": len(answers),
            "strategies": _strategies_of(results),
        }
        print(f"[{label}] {key}: {best:.3f}s "
              f"({len(answers)} answers, {_strategies_of(results)})")
    return timings


def main() -> None:
    label = sys.argv[1] if len(sys.argv) > 1 else "interned"
    data = {}
    if os.path.exists(OUTPUT):
        with open(OUTPUT) as handle:
            data = json.load(handle)
    data.setdefault("config", {
        "workloads": [
            {"query": q, "scale_factor": s, "epsilon": e}
            for q, s, e in WORKLOADS
        ],
        "error_kind": "relative",
        "deadline_seconds": DEADLINE,
        "repeats": REPEATS,
        "workload": "fig7 hard + fig6a tractable TPC-H queries",
    })
    data[label] = run_workloads(label)
    if "seed" in data and "interned" in data:
        speedups = {}
        for name, seed_point in data["seed"].items():
            interned_point = data["interned"].get(name)
            if interned_point and interned_point["seconds"] > 0:
                speedups[name] = round(
                    seed_point["seconds"] / interned_point["seconds"], 2
                )
        total_seed = sum(p["seconds"] for p in data["seed"].values())
        total_interned = sum(
            p["seconds"] for p in data["interned"].values()
        )
        data["speedup"] = {
            "per_query": speedups,
            "overall": round(total_seed / total_interned, 2)
            if total_interned
            else None,
        }
    with open(OUTPUT, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
