"""Shared fixtures and helpers for the benchmark suite.

Each benchmark module reproduces one figure of the paper's evaluation
(Section VII).  Conventions:

* workloads are scaled down for a pure-Python engine (see DESIGN.md);
  absolute times are not comparable to the paper's C/Postgres numbers,
  but the *relative* behaviour of the methods is;
* the paper's wall-clock timeouts are replaced by deterministic work caps
  (sample counts for aconf, deadlines/steps for the d-tree algorithm);
  capped runs are reported with a ``capped`` status, mirroring the
  "Timeout" line in the paper's plots;
* every module prints its series table (the data behind the figure) and
  writes a CSV under ``benchmarks/results/``.
"""

import functools

import pytest

from repro.datasets.tpch import TPCHConfig, generate_tpch
from repro.db.engine import answer_selector, evaluate_to_dnf


@functools.lru_cache(maxsize=None)
def tpch_database(scale_factor: float, prob_low: float, prob_high: float,
                  seed: int = 1):
    """Cached TPC-H database for a configuration."""
    return generate_tpch(
        TPCHConfig(
            scale_factor=scale_factor,
            probability_range=(prob_low, prob_high),
            seed=seed,
        )
    )


@functools.lru_cache(maxsize=None)
def tpch_answers(query_name: str, scale_factor: float, prob_low: float,
                 prob_high: float, seed: int = 1):
    """Cached (answers, database, selector) for a query configuration."""
    from repro.datasets.tpch_queries import make_query

    database = tpch_database(scale_factor, prob_low, prob_high, seed)
    query = make_query(query_name)
    answers = evaluate_to_dnf(query, database)
    return answers, database, answer_selector(database)


def aconf_status(results):
    """Status string for a list of AconfResult."""
    return "capped" if any(r.capped for r in results) else "ok"


def dtree_status(results):
    """Status string for a list of ApproximationResult/EngineResult."""
    return "ok" if all(r.converged for r in results) else "capped"


def engine_strategies(results):
    """Comma-joined strategy rungs a list of EngineResults used."""
    return ",".join(sorted({r.strategy for r in results}))


def pair_status(pairs):
    """Status for ``QueryResult.confidences()`` output
    (``(values, EngineResult)`` pairs)."""
    return dtree_status([result for _values, result in pairs])


def pair_strategies(pairs):
    """Strategy rungs used by ``(values, EngineResult)`` pairs."""
    return engine_strategies([result for _values, result in pairs])


def pytest_terminal_summary(terminalreporter):
    """Print every experiment's series table after the benchmark stats.

    This is the data behind the paper's figures; plain prints from module
    fixtures are swallowed by pytest's capture, terminal-summary output is
    not.
    """
    from repro.bench.harness import ALL_HARNESSES

    for harness in ALL_HARNESSES:
        if harness.points:
            terminalreporter.write_line(harness.series_table())
