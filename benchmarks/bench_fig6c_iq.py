"""Fig. 6(c): tractable TPC-H queries with inequality joins (IQ B1, IQ B4,
IQ 6).

Paper series: aconf(0.01) does not finish in the allotted time; d-tree
(with the Lemma 6.8 variable order discovered from variable provenance)
closely follows the specialised exact engine.  Our "SPROUT-IQ" column is
the d-tree exact path with the IQ order — per Theorem 6.9 that *is* a
polynomial exact algorithm for IQ lineage (see DESIGN.md).
"""

import pytest

from conftest import aconf_status, pair_status, tpch_answers
from repro import EngineConfig, ProbDB
from repro.bench import Harness
from repro.core.exact import exact_probability
from repro.datasets.tpch_queries import IQ_QUERIES
from repro.mc.aconf import aconf

HARNESS = Harness("Fig 6c IQ TPC-H queries")
SCALE = 0.1
PROBS = (0.0, 1.0)
ACONF_CAP = 3000
QUERIES = list(IQ_QUERIES)


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    HARNESS.print_series()
    HARNESS.write_csv()


@pytest.mark.parametrize("query_name", QUERIES)
def test_aconf_rel_001(benchmark, query_name):
    answers, database, _sel = tpch_answers(query_name, SCALE, *PROBS)

    def run():
        return HARNESS.run(
            query_name,
            "aconf(0.01)",
            lambda: [
                aconf(
                    dnf,
                    database.registry,
                    epsilon=0.01,
                    seed=0,
                    max_samples=ACONF_CAP,
                )
                for _v, dnf in answers
            ],
            status_of=aconf_status,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("query_name", QUERIES)
def test_dtree_rel_001(benchmark, query_name):
    """The raw d-tree algorithm (Lemma 6.8 order) through the façade."""
    answers, database, selector = tpch_answers(query_name, SCALE, *PROBS)
    config = EngineConfig(
        epsilon=0.01,
        error_kind="relative",
        choose_variable=selector,
        try_read_once=False,
        mc_fallback=False,
    )
    session = ProbDB(database, config)

    def run():
        return HARNESS.run(
            query_name,
            "d-tree(0.01)",
            lambda: session.lineage(answers).confidences(),
            status_of=pair_status,
            engine_config=config,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("query_name", QUERIES)
def test_dtree_exact_iq_order(benchmark, query_name):
    """d-tree(0) with the Lemma 6.8 order — the SPROUT-IQ stand-in."""
    answers, database, selector = tpch_answers(query_name, SCALE, *PROBS)

    def run():
        return HARNESS.run(
            query_name,
            "d-tree(0)/IQ-order",
            lambda: [
                exact_probability(
                    dnf, database.registry, choose_variable=selector
                )
                for _v, dnf in answers
            ],
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
