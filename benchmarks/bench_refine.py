"""Guided vs widest-interval refinement scheduling for top-k ranking.

Usage::

    PYTHONPATH=src python benchmarks/bench_refine.py
    REFINE_BENCH_SMOKE=1 PYTHONPATH=src python benchmarks/bench_refine.py

The workload gradient-guided ranking exists for: a mixed-hardness
answer batch — most answers cheap, a few carrying dense lineages that
dominate refinement cost — ranked to a certified top-k.  The widest
-interval scheduler refines whichever straddler has the loosest
bounds; the gradient-guided scheduler (``rank_answers(guided=True)``,
the default) scores every boundary candidate by how far its blocking
bound sits from the certification threshold and, for answers backed by
a partial circuit, how much the widest residual leaf can actually move
the answer probability (sum of |∂P/∂p| over the leaf's variables).

Per seed the bench builds the same batch twice — once per scheduler —
with partial circuits (``max_nodes=48``) pre-compiled into a
:class:`~repro.circuits.cache.CircuitCache` wired up as the engine's
``circuit_source``, ranks to top-3, and records the total refinement
steps each scheduler spent.  Both metrics are **deterministic** (step
counts depend only on the scheduling policy, never on wall-clock), so
the regression gate can hold them tight across machines:

* ``orderings_identical`` — guided ranking must certify the *same*
  top-k ordering as widest-interval on every seed;
* ``steps_ratio_guided_vs_widest`` — total guided steps over total
  widest steps; the acceptance bar is ``<= 1.05`` (guided must never
  cost materially more than the baseline policy it replaces), asserted
  unless ``REFINE_BENCH_NO_ASSERT=1``.

Results go to ``BENCH_refine.json`` at the repo root (override with
``REFINE_BENCH_OUTPUT``).  Smoke mode (``REFINE_BENCH_SMOKE=1``, used
by CI): 6 seeds instead of 20.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time

from repro.circuits.cache import CircuitCache
from repro.core.dnf import DNF
from repro.core.variables import VariableRegistry
from repro.db.topk import _rank_batch
from repro.engine import ConfidenceEngine

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: Result file; override with REFINE_BENCH_OUTPUT so comparison runs
#: (benchmarks/check_bench_regression.py) don't clobber the committed
#: baseline.
OUTPUT = os.environ.get(
    "REFINE_BENCH_OUTPUT", os.path.join(REPO_ROOT, "BENCH_refine.json")
)

SMOKE = os.environ.get("REFINE_BENCH_SMOKE") == "1"
ASSERT_RATIO = os.environ.get("REFINE_BENCH_NO_ASSERT") != "1"
SEEDS = range(1, 7) if SMOKE else range(1, 21)
ANSWERS = 8
HARD = frozenset({1, 4, 6})
K = 3
MAX_NODES = 48
MAX_TOTAL_STEPS = 200_000
#: Guided scheduling must not cost more steps than the widest-interval
#: policy it replaces; the counts are deterministic, so the bar is
#: tight.
RATIO_BAR = 1.05


def make_answers(registry, seed):
    """A mixed-hardness batch: answers in HARD get dense lineages."""
    rng = random.Random(seed)
    answers = []
    for index in range(ANSWERS):
        n_vars, n_clauses = (30, 26) if index in HARD else (14, 10)
        names = [f"x{index}_{i}" for i in range(n_vars)]
        for name in names:
            registry.add_boolean(name, rng.uniform(0.05, 0.35))
        groups = [
            rng.sample(names, rng.choice([2, 3]))
            for _ in range(n_clauses)
        ]
        answers.append(((f"a{index}",), DNF.from_positive_clauses(groups)))
    return answers


def rank_once(seed, guided):
    """Rank one seeded batch; return (ordering, steps, seconds)."""
    registry = VariableRegistry()
    answers = make_answers(registry, seed)
    engine = ConfidenceEngine(registry, epsilon=0.0)
    cache = CircuitCache()
    for _values, dnf in answers:
        cache.put(
            dnf,
            engine.compile_circuit(dnf, max_nodes=MAX_NODES),
            exact_only=False,
        )
    engine.circuit_source = cache.get
    started = time.perf_counter()
    batch = engine.refine_many(
        [dnf for _values, dnf in answers],
        epsilon=0.0,
        initial_steps=4,
        step_growth=2,
    )
    ranked = _rank_batch(
        batch, answers, K, MAX_TOTAL_STEPS, 0.0, guided=guided
    )
    seconds = time.perf_counter() - started
    return [row.values for row in ranked], batch.total_steps, seconds


def main() -> int:
    per_seed = []
    total_widest = total_guided = 0
    seconds_widest = seconds_guided = 0.0
    orderings_identical = True
    for seed in SEEDS:
        widest_order, widest_steps, widest_s = rank_once(seed, False)
        guided_order, guided_steps, guided_s = rank_once(seed, True)
        same = widest_order == guided_order
        orderings_identical = orderings_identical and same
        total_widest += widest_steps
        total_guided += guided_steps
        seconds_widest += widest_s
        seconds_guided += guided_s
        per_seed.append(
            {
                "seed": seed,
                "widest_steps": widest_steps,
                "guided_steps": guided_steps,
                "ordering_identical": same,
            }
        )
        print(
            f"seed {seed:2d}: widest {widest_steps:5d}  guided "
            f"{guided_steps:5d}  ordering "
            f"{'same' if same else 'DIFFERS'}"
        )

    ratio = (
        total_guided / total_widest if total_widest > 0 else float("inf")
    )
    report = {
        "experiment": (
            "Gradient-guided vs widest-interval top-k refinement "
            "(benchmarks/bench_refine.py)"
        ),
        "workload": (
            f"{len(list(SEEDS))} seeded batches of {ANSWERS} answers "
            f"({len(HARD)} dense), partial circuits at "
            f"max_nodes={MAX_NODES}, certified top-{K}"
        ),
        "environment": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
            "smoke": SMOKE,
        },
        "per_seed": per_seed,
        "totals": {
            "widest_steps": total_widest,
            "guided_steps": total_guided,
            "steps_ratio_guided_vs_widest": round(ratio, 4),
            "orderings_identical": orderings_identical,
            "widest_seconds": round(seconds_widest, 6),
            "guided_seconds": round(seconds_guided, 6),
        },
        "differential": (
            "step counts are scheduling-policy-deterministic; the "
            "ratio and ordering flags are machine-independent"
        ),
    }
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"\ntotal: widest {total_widest} steps  guided {total_guided} "
        f"steps  ratio {ratio:.3f}  orderings "
        f"{'identical' if orderings_identical else 'DIVERGED'}"
        f"  -> {OUTPUT}"
    )
    if ASSERT_RATIO:
        assert orderings_identical, (
            "guided ranking certified a different top-k ordering than "
            "widest-interval on at least one seed"
        )
        assert ratio <= RATIO_BAR, (
            f"guided scheduling spent {ratio:.3f}x the widest-interval "
            f"steps, above the {RATIO_BAR}x acceptance bar"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
