"""Fleet throughput: multi-worker scale-out over real sockets.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet_throughput.py
    FLEET_BENCH_SMOKE=1 PYTHONPATH=src python benchmarks/bench_fleet_throughput.py

The deployment question the fleet answers: when one serving process is
not enough, does scaling *out* — N shared-nothing worker processes over
the same persisted store files — actually buy aggregate throughput,
and does the per-worker response cache carry the load it is supposed
to?  The bench:

* compiles a pool of monotone lineage DNFs into a store file and
  starts a real :class:`ServingFleet` (worker processes, ephemeral
  TCP ports, the stdlib HTTP/1.1 bridge — the exact configuration CI
  runs, since the container ships no uvicorn);
* replays a **repetition-heavy** mixed workload (point evaluates,
  what-if grids, scenario sweeps; every unique request repeated many
  times) through ``CLIENTS`` concurrent :class:`FleetClient` drivers.
  Lineage-affinity routing pins each repeated request onto the same
  worker, so after the first miss the answers come from that worker's
  response cache — the dashboard/monitoring shape the cache exists
  for;
* reads fleet-wide counters over the wire (``aggregate_stats``) and
  records ``throughput_rps``, ``throughput_per_worker`` and
  ``response_hit_ratio`` — the last one machine-independent (it is
  fixed by the workload's repeat structure, not the hardware) and the
  number the regression gate watches;
* spot-checks that a cache hit is **bit-identical** to the miss that
  populated it (same ``==`` floats over the wire, ``cached: true``
  stamped).

Results go to ``BENCH_fleet.json`` at the repo root.  Built-in
acceptance bars (skipped with ``FLEET_BENCH_NO_ASSERT=1``): more than
one worker served, response hits dominate misses, and — full mode
only — aggregate socket throughput beats the committed single-process
in-process baseline in ``BENCH_serving.json``, which is the point of
having a fleet at all.

Smoke mode (``FLEET_BENCH_SMOKE=1``, used by CI): fewer clients,
circuits and repeats; the hit-ratio structure survives because it is
workload-determined.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import sys
import tempfile
import time

from repro.circuits import CircuitCache
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.variables import VariableRegistry
from repro.engine import ConfidenceEngine
from repro.serving import (
    FleetClient,
    FleetConfig,
    ServingConfig,
    ServingFleet,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT = os.environ.get(
    "FLEET_BENCH_OUTPUT", os.path.join(REPO_ROOT, "BENCH_fleet.json")
)
SERVING_BASELINE = os.path.join(REPO_ROOT, "BENCH_serving.json")

SMOKE = os.environ.get("FLEET_BENCH_SMOKE") == "1"
ASSERT_BARS = os.environ.get("FLEET_BENCH_NO_ASSERT") != "1"

VARIABLES = 16
WORKERS = 2
CIRCUITS = 6 if SMOKE else 12
CLIENTS = 4 if SMOKE else 8
#: Distinct request specs per circuit; each is replayed ``REPEATS``
#: times, so the steady-state response-cache hit ratio approaches
#: ``REPEATS / (REPEATS + 1)`` regardless of hardware.
UNIQUE_PER_CIRCUIT = 3 if SMOKE else 4
REPEATS = 6 if SMOKE else 20
WHAT_IF_POINTS = 5
SWEEP_SCENARIOS = 6
SEED = 20260808


def build_store(registry, path):
    """Compile the lineage pool and persist it; returns the lineages."""
    rng = random.Random(SEED)
    names = [f"t{i}" for i in range(VARIABLES)]
    engine = ConfidenceEngine(registry)
    cache = CircuitCache()
    lineages = []
    for _ in range(CIRCUITS):
        clauses = []
        for _ in range(rng.randint(3, 6)):
            width = rng.randint(1, 3)
            clauses.append(
                Clause({v: True for v in rng.sample(names, width)})
            )
        lineage = DNF(clauses)
        cache.put(lineage, engine.compile_circuit(lineage))
        lineages.append(lineage)
    cache.save(path)
    return lineages


def build_unique_requests(lineages):
    """The distinct request specs — the cache's working set."""
    rng = random.Random(SEED + 1)
    unique = []
    for index, lineage in enumerate(lineages):
        for slot in range(UNIQUE_PER_CIRCUIT):
            p = round(rng.uniform(0.05, 0.95), 6)
            kind = (index + slot) % 3
            if kind == 0:
                unique.append(("evaluate", lineage, {"t0": p}))
            elif kind == 1:
                grid = [
                    round(p * step / (WHAT_IF_POINTS - 1), 6)
                    for step in range(WHAT_IF_POINTS)
                ]
                unique.append(("what_if", lineage, grid))
            else:
                scenarios = [
                    {"t1": round(rng.uniform(0.0, 1.0), 6)}
                    for _ in range(SWEEP_SCENARIOS)
                ]
                unique.append(("sweep", lineage, scenarios))
    return unique


def build_workload(unique):
    """Every unique spec repeated ``REPEATS`` times, shuffled."""
    rng = random.Random(SEED + 2)
    workload = [spec for spec in unique for _ in range(REPEATS)]
    rng.shuffle(workload)
    return workload


async def one_request(client, spec):
    kind, lineage, payload = spec
    if kind == "evaluate":
        return await client.evaluate(
            lineage, overrides=payload, store="bench"
        )
    if kind == "what_if":
        return await client.what_if(lineage, "t3", payload, store="bench")
    return await client.sweep(lineage, payload, store="bench")


async def drive(addresses, workload):
    """Replay the workload through CLIENTS concurrent fleet clients."""
    clients = [FleetClient(addresses) for _ in range(CLIENTS)]

    async def run_slice(client, index):
        for spec in workload[index::CLIENTS]:
            await one_request(client, spec)

    try:
        await asyncio.gather(
            *[
                run_slice(client, index)
                for index, client in enumerate(clients)
            ]
        )
    finally:
        for client in clients:
            await client.close()


async def check_bit_identical(addresses, unique):
    """A cache hit must replay the miss byte-for-byte (over JSON, that
    means ``==`` on the decoded payloads minus the ``cached`` stamp)."""
    client = FleetClient(addresses)
    try:
        for spec in unique[: min(6, len(unique))]:
            cold = await one_request(client, spec)
            warm = await one_request(client, spec)
            if warm.pop("cached", False) is not True:
                raise AssertionError(
                    f"repeat of {spec[0]} was not served from the "
                    "response cache"
                )
            cold.pop("cached", None)
            if warm != cold:
                raise AssertionError(
                    f"cache hit diverged from its miss for {spec[0]}: "
                    f"{warm!r} != {cold!r}"
                )
    finally:
        await client.close()


async def fleet_totals(addresses):
    client = FleetClient(addresses)
    try:
        return await client.aggregate_stats()
    finally:
        await client.close()


def main() -> int:
    registry = VariableRegistry()
    rng = random.Random(SEED + 3)
    for index in range(VARIABLES):
        registry.add_boolean(f"t{index}", round(rng.uniform(0.05, 0.6), 6))

    with tempfile.TemporaryDirectory() as temp_dir:
        store_path = os.path.join(temp_dir, "store.bin")
        lineages = build_store(registry, store_path)
        unique = build_unique_requests(lineages)
        workload = build_workload(unique)

        fleet = ServingFleet(
            registry,
            {"bench": store_path},
            config=FleetConfig(
                workers=WORKERS,
                serving=ServingConfig(max_inflight=2 * CLIENTS),
            ),
        )
        with fleet:
            addresses = fleet.addresses
            asyncio.run(check_bit_identical(addresses, unique))
            # Warm-up: prime every worker's kernels and response cache
            # with one pass over the working set.
            asyncio.run(drive(addresses, unique))

            started = time.perf_counter()
            asyncio.run(drive(addresses, workload))
            elapsed = time.perf_counter() - started

            totals = asyncio.run(fleet_totals(addresses))
            workers_alive = fleet.alive

    throughput = len(workload) / elapsed
    results = {
        "config": {
            "smoke": SMOKE,
            "workers": WORKERS,
            "clients": CLIENTS,
            "circuits": CIRCUITS,
            "unique_requests": len(unique),
            "repeats": REPEATS,
            "requests": len(workload),
            "http_server": "stdlib",
            "python": sys.version.split()[0],
        },
        "totals": {
            "throughput_rps": throughput,
            "throughput_per_worker": throughput / WORKERS,
            "workers": workers_alive,
            "response_hits": totals["response_hits"],
            "response_misses": totals["response_misses"],
            "response_hit_ratio": totals["response_hit_ratio"],
            "quota_rejections": totals["quota_rejections"],
            "shed": totals["shed"],
            "requests_total": totals["requests_total"],
        },
    }
    with open(OUTPUT, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")

    recorded = results["totals"]
    print(
        f"fleet: {recorded['throughput_rps']:.0f} req/s aggregate over "
        f"{workers_alive} workers "
        f"({recorded['throughput_per_worker']:.0f} req/s/worker, "
        f"hit ratio {recorded['response_hit_ratio']:.3f}, "
        f"{int(recorded['response_hits'])} hits / "
        f"{int(recorded['response_misses'])} misses)"
    )
    print(f"results -> {OUTPUT}")

    if not ASSERT_BARS:
        return 0
    failures = []
    if workers_alive <= 1:
        failures.append(
            f"fleet served with {workers_alive} worker(s); scale-out "
            "needs more than one"
        )
    if recorded["response_hits"] <= recorded["response_misses"]:
        failures.append(
            f"response cache is not carrying the repeated workload: "
            f"{int(recorded['response_hits'])} hits vs "
            f"{int(recorded['response_misses'])} misses"
        )
    if not SMOKE and os.path.exists(SERVING_BASELINE):
        with open(SERVING_BASELINE) as handle:
            baseline_rps = json.load(handle)["totals"]["throughput_rps"]
        if throughput <= baseline_rps:
            failures.append(
                f"fleet aggregate {throughput:.0f} req/s does not beat "
                f"the single-process baseline {baseline_rps:.0f} req/s "
                "(BENCH_serving.json)"
            )
        else:
            print(
                f"scale-out: {throughput:.0f} req/s vs single-process "
                f"{baseline_rps:.0f} req/s "
                f"({throughput / baseline_rps:.2f}x)"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
