"""Parallel scaling: the Fig. 7 hard-query batch vs ``workers``.

The paper's hardest workload — the #P-hard TPC-H queries B2, B9, B20,
B21 — is embarrassingly parallel across answer tuples, and this bench
measures how far the sharded execution layer
(:mod:`repro.engine_parallel`) actually takes it: the same batch, the
same :class:`~repro.engine.EngineConfig` except for ``workers`` ∈
{1, 2, 4, 8}, one series point per setting, plus a ``speedup@w`` row
per pool size (value = serial seconds / parallel seconds).

Batch construction: each hard query contributes its lineage from
``replicas`` independently-seeded TPC-H instances, *namespaced* into
disjoint variable spaces and merged into one registry.  That models a
fleet of independent tenants (no hidden cross-tuple cache sharing that
would favour either path) and gives the pool enough heavy tuples — the
B9 instances dominate — to spread.

The ``workers=1`` row runs the serial engine (sharding disabled), so
every speedup is against the true single-threaded path.  The
``engine_config`` column records the full config per row, ``workers``
and ``executor_kind`` included.

Smoke mode (``PARALLEL_BENCH_SMOKE=1``, used by CI to catch executor
regressions cheaply): one replica, workers {1, 2}, smallest scale.
Results depend on the machine: on a single-core container the process
pool cannot beat serial (expect ~1×, the row records whatever is
measured); the ≥2× target at ``workers=4`` needs ≥4 usable cores.
Set ``PARALLEL_BENCH_ASSERT=1`` to enforce it (CI on multi-core
runners; refused on boxes with fewer than 4 CPUs).  Smoke-sized CI
runners enforce the cheaper bar instead:
``PARALLEL_BENCH_ASSERT_W2=1`` requires >1.3× at ``workers=2``
(refused on boxes with fewer than 2 CPUs).

Set ``PARALLEL_BENCH_OUTPUT=/path/to.json`` to also write a
machine-readable report — per-worker-count seconds and speedups — for
CI artifact upload.
"""

import json
import os
import sys

import pytest

from conftest import pair_status, pair_strategies, tpch_answers
from repro import ConfidenceEngine, EngineConfig
from repro.bench import Harness
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.orders import make_variable_selector
from repro.core.variables import VariableRegistry
from repro.datasets.tpch_queries import HARD_QUERIES

HARNESS = Harness("Parallel scaling hard TPC-H")

SMOKE = os.environ.get("PARALLEL_BENCH_SMOKE") == "1"
ASSERT_SPEEDUP = os.environ.get("PARALLEL_BENCH_ASSERT") == "1"
ASSERT_W2 = os.environ.get("PARALLEL_BENCH_ASSERT_W2") == "1"
OUTPUT = os.environ.get("PARALLEL_BENCH_OUTPUT")
#: The workers=2 bar: two shards must beat serial by a real margin on
#: any runner with two usable cores.
W2_SPEEDUP_TARGET = 1.3
SCALE = 0.05 if SMOKE else 0.1
REPLICAS = 1 if SMOKE else 4
WORKER_COUNTS = (1, 2) if SMOKE else (1, 2, 4, 8)
EPSILON = 0.01
QUERIES = list(HARD_QUERIES)


def build_namespaced_batch():
    """The combined hard-query batch over one merged registry.

    Every replica re-tags its variables with ``(replica, name)`` so the
    copies are probabilistically independent and share no lineage —
    the honest unit of parallel work.
    """
    merged = VariableRegistry()
    origins = {}
    batch = []
    for replica in range(REPLICAS):
        for query_name in QUERIES:
            answers, database, _selector = tpch_answers(
                query_name, SCALE, 0.0, 1.0, replica + 1
            )
            registry = database.registry
            tagged = {}
            for name in registry.variables():
                tag = (replica, name)
                tagged[name] = tag
                if tag not in merged:
                    merged.add_variable(
                        tag, registry.distribution(name)
                    )
            for name, relation in database.variable_origins().items():
                origins[(replica, name)] = relation
            for _values, dnf in answers:
                batch.append(
                    (
                        f"{query_name}/r{replica}",
                        DNF(
                            Clause(
                                {
                                    tagged[var]: value
                                    for var, value in clause.items()
                                }
                            )
                            for clause in dnf.sorted_clauses()
                        ),
                    )
                )
    return merged, make_variable_selector(origins), batch


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    HARNESS.print_series(group_by="method")
    HARNESS.write_csv()
    if OUTPUT:
        write_json_report()


def write_json_report():
    """Machine-readable scaling report for CI artifact upload."""
    rows = []
    for workers in sorted(_POINTS):
        point = _POINTS[workers]
        rows.append(
            {
                "workers": workers,
                "seconds": round(point.seconds, 6),
                "speedup_vs_serial": _SPEEDUPS.get(workers),
            }
        )
    report = {
        "experiment": (
            "Parallel scaling on the Fig. 7 hard batch "
            "(benchmarks/bench_parallel_scaling.py)"
        ),
        "workload": (
            f"hard batch ×{REPLICAS} sf={SCALE} "
            f"({','.join(QUERIES)}), epsilon={EPSILON} relative"
        ),
        "environment": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
            "smoke": SMOKE,
        },
        "points": rows,
        "totals": {
            "speedup_at_2": _SPEEDUPS.get(2),
            "speedup_at_4": _SPEEDUPS.get(4),
        },
    }
    with open(OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"scaling report -> {OUTPUT}")


@pytest.fixture(scope="module")
def workload():
    return build_namespaced_batch()


_POINTS = {}
_SPEEDUPS = {}


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_scaling(benchmark, workload, workers):
    registry, selector, batch = workload
    config = EngineConfig(
        epsilon=EPSILON,
        error_kind="relative",
        choose_variable=selector,
        mc_fallback=False,
        workers=workers,
        executor_kind="process",
    )
    dnfs = [dnf for _label, dnf in batch]

    def run():
        # A fresh engine per run: a warm decomposition cache would make
        # later worker counts unrealistically fast.
        engine = ConfidenceEngine(registry, config)
        results = engine.compute_many(dnfs)
        return list(zip((label for label, _ in batch), results))

    def record():
        return HARNESS.run(
            f"hard batch ×{REPLICAS} sf={SCALE}",
            f"workers={workers}",
            run,
            status_of=pair_status,
            strategy_of=pair_strategies,
            engine_config=config,
        )

    point = benchmark.pedantic(record, rounds=1, iterations=1)
    _POINTS[workers] = point


@pytest.mark.parametrize("workers", [w for w in WORKER_COUNTS if w > 1])
def test_speedup(workload, workers):
    """Record speedup rows; enforce the 2× bar only when asked to."""
    if 1 not in _POINTS or workers not in _POINTS:
        pytest.skip("scaling points did not run")
    serial = _POINTS[1].seconds
    parallel = _POINTS[workers].seconds
    speedup = serial / parallel if parallel > 0 else float("inf")
    _SPEEDUPS[workers] = round(speedup, 3)
    HARNESS.points.append(
        type(_POINTS[1])(
            HARNESS.experiment,
            f"hard batch ×{REPLICAS} sf={SCALE}",
            f"speedup@{workers}",
            parallel,
            speedup,
            "ok",
            f"serial={serial:.3f}s cpus={os.cpu_count()}",
            "",
            _POINTS[workers].engine_config,
        )
    )
    if ASSERT_SPEEDUP and workers == 4:
        if (os.cpu_count() or 1) < 4:
            pytest.skip("fewer than 4 CPUs: 2× at workers=4 unattainable")
        assert speedup >= 2.0, (
            f"workers=4 speedup {speedup:.2f}× below the 2× target "
            f"(serial {serial:.3f}s, parallel {parallel:.3f}s)"
        )
    if ASSERT_W2 and workers == 2:
        if (os.cpu_count() or 1) < 2:
            pytest.skip(
                "fewer than 2 CPUs: sharded speedup at workers=2 "
                "unattainable"
            )
        assert speedup > W2_SPEEDUP_TARGET, (
            f"workers=2 speedup {speedup:.2f}× at or below the "
            f"{W2_SPEEDUP_TARGET}× target (serial {serial:.3f}s, "
            f"parallel {parallel:.3f}s)"
        )
