"""Parallel scaling: the Fig. 7 hard-query batch vs ``workers``.

The paper's hardest workload — the #P-hard TPC-H queries B2, B9, B20,
B21 — is embarrassingly parallel across answer tuples, and this bench
measures how far the sharded execution layer
(:mod:`repro.engine_parallel`) actually takes it: the same batch, the
same :class:`~repro.engine.EngineConfig` except for ``workers`` ∈
{1, 2, 4, 8}, one series point per setting, plus a ``speedup@w`` row
per pool size (value = serial seconds / parallel seconds).

Batch construction: each hard query contributes its lineage from
``replicas`` independently-seeded TPC-H instances, *namespaced* into
disjoint variable spaces and merged into one registry.  That models a
fleet of independent tenants (no hidden cross-tuple cache sharing that
would favour either path) and gives the pool enough heavy tuples — the
B9 instances dominate — to spread.

The ``workers=1`` row runs the serial engine (sharding disabled), so
every speedup is against the true single-threaded path.  The
``engine_config`` column records the full config per row, ``workers``
and ``executor_kind`` included.

Smoke mode (``PARALLEL_BENCH_SMOKE=1``, used by CI to catch executor
regressions cheaply): one replica, workers {1, 2}, smallest scale.
Results depend on the machine: on a single-core container the process
pool cannot beat serial (expect ~1×, the row records whatever is
measured); the ≥2× target at ``workers=4`` needs ≥4 usable cores.
Set ``PARALLEL_BENCH_ASSERT=1`` to enforce it (CI on multi-core
runners; refused on boxes with fewer than 4 CPUs).
"""

import os

import pytest

from conftest import pair_status, pair_strategies, tpch_answers
from repro import ConfidenceEngine, EngineConfig
from repro.bench import Harness
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.orders import make_variable_selector
from repro.core.variables import VariableRegistry
from repro.datasets.tpch_queries import HARD_QUERIES

HARNESS = Harness("Parallel scaling hard TPC-H")

SMOKE = os.environ.get("PARALLEL_BENCH_SMOKE") == "1"
ASSERT_SPEEDUP = os.environ.get("PARALLEL_BENCH_ASSERT") == "1"
SCALE = 0.05 if SMOKE else 0.1
REPLICAS = 1 if SMOKE else 4
WORKER_COUNTS = (1, 2) if SMOKE else (1, 2, 4, 8)
EPSILON = 0.01
QUERIES = list(HARD_QUERIES)


def build_namespaced_batch():
    """The combined hard-query batch over one merged registry.

    Every replica re-tags its variables with ``(replica, name)`` so the
    copies are probabilistically independent and share no lineage —
    the honest unit of parallel work.
    """
    merged = VariableRegistry()
    origins = {}
    batch = []
    for replica in range(REPLICAS):
        for query_name in QUERIES:
            answers, database, _selector = tpch_answers(
                query_name, SCALE, 0.0, 1.0, replica + 1
            )
            registry = database.registry
            tagged = {}
            for name in registry.variables():
                tag = (replica, name)
                tagged[name] = tag
                if tag not in merged:
                    merged.add_variable(
                        tag, registry.distribution(name)
                    )
            for name, relation in database.variable_origins().items():
                origins[(replica, name)] = relation
            for _values, dnf in answers:
                batch.append(
                    (
                        f"{query_name}/r{replica}",
                        DNF(
                            Clause(
                                {
                                    tagged[var]: value
                                    for var, value in clause.items()
                                }
                            )
                            for clause in dnf.sorted_clauses()
                        ),
                    )
                )
    return merged, make_variable_selector(origins), batch


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    HARNESS.print_series(group_by="method")
    HARNESS.write_csv()


@pytest.fixture(scope="module")
def workload():
    return build_namespaced_batch()


_POINTS = {}


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_scaling(benchmark, workload, workers):
    registry, selector, batch = workload
    config = EngineConfig(
        epsilon=EPSILON,
        error_kind="relative",
        choose_variable=selector,
        mc_fallback=False,
        workers=workers,
        executor_kind="process",
    )
    dnfs = [dnf for _label, dnf in batch]

    def run():
        # A fresh engine per run: a warm decomposition cache would make
        # later worker counts unrealistically fast.
        engine = ConfidenceEngine(registry, config)
        results = engine.compute_many(dnfs)
        return list(zip((label for label, _ in batch), results))

    def record():
        return HARNESS.run(
            f"hard batch ×{REPLICAS} sf={SCALE}",
            f"workers={workers}",
            run,
            status_of=pair_status,
            strategy_of=pair_strategies,
            engine_config=config,
        )

    point = benchmark.pedantic(record, rounds=1, iterations=1)
    _POINTS[workers] = point


@pytest.mark.parametrize("workers", [w for w in WORKER_COUNTS if w > 1])
def test_speedup(workload, workers):
    """Record speedup rows; enforce the 2× bar only when asked to."""
    if 1 not in _POINTS or workers not in _POINTS:
        pytest.skip("scaling points did not run")
    serial = _POINTS[1].seconds
    parallel = _POINTS[workers].seconds
    speedup = serial / parallel if parallel > 0 else float("inf")
    HARNESS.points.append(
        type(_POINTS[1])(
            HARNESS.experiment,
            f"hard batch ×{REPLICAS} sf={SCALE}",
            f"speedup@{workers}",
            parallel,
            speedup,
            "ok",
            f"serial={serial:.3f}s cpus={os.cpu_count()}",
            "",
            _POINTS[workers].engine_config,
        )
    )
    if ASSERT_SPEEDUP and workers == 4:
        if (os.cpu_count() or 1) < 4:
            pytest.skip("fewer than 4 CPUs: 2× at workers=4 unattainable")
        assert speedup >= 2.0, (
            f"workers=4 speedup {speedup:.2f}× below the 2× target "
            f"(serial {serial:.3f}s, parallel {parallel:.3f}s)"
        )
