"""Fig. 9: social networks — time vs. relative error.

Paper series: the dolphin and karate networks, queries t (triangle),
s2 (≤ 2 degrees of separation), p2, p3, for relative errors from 0.05
down to 0.0001, d-tree vs. aconf.

Expected shape: on these high-confidence networks the motif probabilities
are close to 1 and the d-tree bounds converge after few (often zero)
decomposition steps even at the smallest errors, while aconf's sample
bound explodes as ε shrinks and hits the work cap (the paper's 300 s
timeout line).
"""

import functools

import pytest

from conftest import aconf_status, dtree_status
from repro import EngineConfig, ProbDB
from repro.bench import Harness
from repro.datasets.graphs import GRAPH_QUERIES
from repro.datasets.social import SOCIAL_NETWORKS
from repro.mc.aconf import aconf

HARNESS = Harness("Fig 9 social networks")
ERRORS = (0.05, 0.01, 0.001, 0.0001)
ACONF_CAP = 5000
DTREE_DEADLINE = 15.0

#: The paper's Fig. 9 runs t, s2, p2 on both networks and p3 where it
#: completes; we mirror that (p3 on the dolphins-like network exceeds the
#: Python budget at the smallest errors).
NETWORK_QUERIES = {
    "karate": ("t", "s2", "p2", "p3"),
    "dolphins": ("t", "s2", "p2"),
}


@functools.lru_cache(maxsize=None)
def _instance(network, query):
    graph = SOCIAL_NETWORKS[network]()
    return GRAPH_QUERIES[query](graph), graph.registry


def _cases():
    for network, queries in NETWORK_QUERIES.items():
        for query in queries:
            yield network, query


@pytest.fixture(scope="module", autouse=True)
def report():
    yield
    HARNESS.print_series()
    HARNESS.write_csv()


@pytest.mark.parametrize("epsilon", ERRORS)
@pytest.mark.parametrize("network,query", list(_cases()))
def test_dtree(benchmark, network, query, epsilon):
    dnf, registry = _instance(network, query)
    config = EngineConfig(
        epsilon=epsilon,
        error_kind="relative",
        deadline_seconds=DTREE_DEADLINE,
        try_read_once=False,
        mc_fallback=False,
    )
    session = ProbDB.from_registry(registry, config)

    def run():
        return HARNESS.run(
            f"{network}-{query} ε={epsilon}",
            "d-tree",
            lambda: [session.confidence(dnf)],
            status_of=dtree_status,
            engine_config=config,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("epsilon", ERRORS)
@pytest.mark.parametrize("network,query", list(_cases()))
def test_aconf(benchmark, network, query, epsilon):
    dnf, registry = _instance(network, query)

    def run():
        return HARNESS.run(
            f"{network}-{query} ε={epsilon}",
            "aconf",
            lambda: [
                aconf(
                    dnf,
                    registry,
                    epsilon=epsilon,
                    seed=0,
                    max_samples=ACONF_CAP,
                )
            ],
            status_of=aconf_status,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
