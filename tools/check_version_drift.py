#!/usr/bin/env python3
"""Version-drift guard: the three version declarations must agree.

Usage::

    PYTHONPATH=src python tools/check_version_drift.py

The release version is declared in three places that are trivially easy
to update out of sync:

* ``pyproject.toml`` — ``[project] version``;
* ``src/repro/__init__.py`` — ``repro.__version__``;
* ``README.md`` — the top (most recent) row of the version table.

CI runs this guard on every push; it exits non-zero with a diff-style
message when any pair disagrees, and also fails when the README table
is missing entirely (deleting the table must not silently disable the
guard).
"""

from __future__ import annotations

import os
import re
import sys
import tomllib

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def pyproject_version() -> str:
    with open(os.path.join(REPO_ROOT, "pyproject.toml"), "rb") as handle:
        return tomllib.load(handle)["project"]["version"]


def package_version() -> str:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    import repro

    return repro.__version__


def readme_version() -> str:
    with open(os.path.join(REPO_ROOT, "README.md")) as handle:
        text = handle.read()
    # The newest release is the first data row of the version table:
    # "| 1.10.0 | ... |".  Header/separator rows never start with a
    # digit, so the first such row is the one to check.
    match = re.search(r"^\|\s*(\d+\.\d+\.\d+)\s*\|", text, re.MULTILINE)
    if match is None:
        raise SystemExit(
            "README.md has no version table — the guard needs a "
            "'| <semver> | ... |' row documenting the current release"
        )
    return match.group(1)


def main() -> int:
    versions = {
        "pyproject.toml": pyproject_version(),
        "repro.__version__": package_version(),
        "README.md version table": readme_version(),
    }
    for source, version in versions.items():
        print(f"{source}: {version}")
    if len(set(versions.values())) != 1:
        print("\nversion drift detected:", file=sys.stderr)
        for source, version in versions.items():
            print(f"  {source} declares {version}", file=sys.stderr)
        return 1
    print("\nall version declarations agree")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
