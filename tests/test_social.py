"""Tests for the social network datasets."""

import networkx as nx
import pytest

from repro.datasets.social import (
    SOCIAL_NETWORKS,
    dolphins_like_network,
    karate_club_network,
)


class TestKarate:
    def test_node_and_edge_counts_match_zachary(self):
        graph = karate_club_network()
        assert len(graph.nodes) == 34
        assert graph.edge_count() == 78

    def test_edges_match_networkx(self):
        graph = karate_club_network()
        reference = {
            (min(u, v), max(u, v))
            for u, v in nx.karate_club_graph().edges()
        }
        assert set(graph.edges) == reference

    def test_probability_range(self):
        graph = karate_club_network(probability_range=(0.4, 0.6), seed=1)
        assert all(0.4 <= p <= 0.6 for p in graph.edges.values())

    def test_deterministic(self):
        a = karate_club_network(seed=9)
        b = karate_club_network(seed=9)
        assert a.edges == b.edges


class TestDolphinsLike:
    def test_shape_matches_lusseau(self):
        graph = dolphins_like_network()
        assert len(graph.nodes) == 62
        assert graph.edge_count() == 159

    def test_two_communities(self):
        graph = dolphins_like_network()
        intra = sum(
            1
            for (u, v) in graph.edges
            if (u < 31) == (v < 31)
        )
        inter = graph.edge_count() - intra
        assert intra > 4 * inter  # clearly community structured

    def test_high_confidence_probabilities(self):
        graph = dolphins_like_network()
        assert all(0.5 <= p <= 0.99 for p in graph.edges.values())

    def test_deterministic(self):
        a = dolphins_like_network(seed=3)
        b = dolphins_like_network(seed=3)
        assert a.edges == b.edges

    def test_no_isolated_nodes(self):
        graph = dolphins_like_network()
        for node in graph.nodes:
            assert graph.neighbours(node), f"node {node} is isolated"


class TestRegistryOfNetworks:
    def test_both_networks_registered(self):
        assert set(SOCIAL_NETWORKS) == {"karate", "dolphins"}

    def test_constructors_produce_probabilistic_graphs(self):
        for name, constructor in SOCIAL_NETWORKS.items():
            graph = constructor()
            assert graph.edge_count() > 0, name
            for edge in graph.edges:
                assert ("E", edge) in graph.registry
