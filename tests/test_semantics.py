"""Tests for the brute-force possible-worlds semantics."""

import pytest

from repro.core.dnf import DNF
from repro.core.formulas import atom, conj, disj
from repro.core.semantics import (
    brute_force_formula_probability,
    brute_force_probability,
    enumerate_worlds,
    equivalent_on_registry,
    satisfying_worlds,
)
from repro.core.variables import VariableRegistry


@pytest.fixture
def registry():
    return VariableRegistry.from_boolean_probabilities(
        {"x": 0.3, "y": 0.2, "z": 0.7}
    )


class TestEnumeration:
    def test_world_count(self, registry):
        worlds = list(enumerate_worlds(registry, ["x", "y"]))
        assert len(worlds) == 4

    def test_probabilities_sum_to_one(self, registry):
        total = sum(
            prob for _w, prob in enumerate_worlds(registry, ["x", "y", "z"])
        )
        assert total == pytest.approx(1.0)

    def test_satisfying_worlds(self, registry):
        dnf = DNF.from_sets([{"x": True, "y": True}])
        worlds = list(satisfying_worlds(dnf, registry))
        assert len(worlds) == 1
        assert worlds[0] == {"x": True, "y": True}


class TestBruteForce:
    def test_known_values(self, registry):
        assert brute_force_probability(
            DNF.from_sets([{"x": True}]), registry
        ) == pytest.approx(0.3)
        assert brute_force_probability(
            DNF.from_sets([{"x": True}, {"y": True}]), registry
        ) == pytest.approx(1 - 0.7 * 0.8)
        assert brute_force_probability(
            DNF.from_sets([{"x": True, "y": True}]), registry
        ) == pytest.approx(0.06)

    def test_constants(self, registry):
        assert brute_force_probability(DNF.false(), registry) == 0.0
        assert brute_force_probability(DNF.true(), registry) == 1.0

    def test_only_formula_variables_enumerated(self):
        # A registry with many variables must not slow down or change the
        # probability of a small formula.
        reg = VariableRegistry.from_boolean_probabilities(
            {f"v{i}": 0.5 for i in range(40)}
        )
        dnf = DNF.from_sets([{"v0": True}])
        assert brute_force_probability(dnf, reg) == pytest.approx(0.5)

    def test_formula_probability(self, registry):
        formula = conj(disj(atom("x"), atom("y")), atom("z"))
        expected = (1 - 0.7 * 0.8) * 0.7
        assert brute_force_formula_probability(
            formula, registry
        ) == pytest.approx(expected)

    def test_formula_without_variables(self, registry):
        from repro.core.formulas import FALSE, TRUE

        assert brute_force_formula_probability(TRUE, registry) == 1.0
        assert brute_force_formula_probability(FALSE, registry) == 0.0


class TestEquivalence:
    def test_equivalent_formulas(self, registry):
        left = DNF.from_sets([{"x": True}, {"x": False, "y": True}])
        right = DNF.from_sets([{"x": True}, {"y": True}])
        assert equivalent_on_registry(left, right, registry)

    def test_inequivalent_formulas(self, registry):
        left = DNF.from_sets([{"x": True}])
        right = DNF.from_sets([{"y": True}])
        assert not equivalent_on_registry(left, right, registry)
