"""Tests for model counting and conditioning (repro.core.counting)."""

import itertools

import pytest

from repro.core.counting import (
    conditional_probability,
    model_count,
    weighted_model_count,
)
from repro.core.dnf import DNF
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry


def brute_count(dnf, variables):
    count = 0
    for combo in itertools.product([True, False], repeat=len(variables)):
        world = dict(zip(variables, combo))
        if dnf.evaluate(world):
            count += 1
    return count


class TestModelCount:
    def test_simple_formulas(self):
        dnf = DNF.from_sets([{"x": True, "y": True}])
        assert model_count(dnf) == pytest.approx(1)
        dnf = DNF.from_sets([{"x": True}, {"y": True}])
        assert model_count(dnf) == pytest.approx(3)

    def test_against_brute_force(self):
        import random

        for trial in range(25):
            rng = random.Random(trial)
            variables = [f"v{i}" for i in range(6)]
            clauses = [
                {
                    f"v{rng.randrange(6)}": rng.random() < 0.5
                    for _ in range(rng.randint(1, 3))
                }
                for _ in range(rng.randint(1, 6))
            ]
            dnf = DNF.from_sets(clauses)
            expected = brute_count(dnf, variables)
            assert model_count(dnf, variables) == pytest.approx(expected)

    def test_universe_extension(self):
        dnf = DNF.from_sets([{"x": True}])
        assert model_count(dnf, ["x", "y", "z"]) == pytest.approx(4)

    def test_universe_must_cover_formula(self):
        dnf = DNF.from_sets([{"x": True}])
        with pytest.raises(ValueError, match="outside the universe"):
            model_count(dnf, ["y"])

    def test_constants(self):
        assert model_count(DNF.false(), ["a", "b"]) == 0.0
        assert model_count(DNF.true(), ["a", "b"]) == 4.0

    def test_approximate_count(self):
        variables = [f"v{i}" for i in range(10)]
        dnf = DNF.from_sets(
            [{f"v{i}": True, f"v{(i + 3) % 10}": True} for i in range(10)]
        )
        exact = brute_count(dnf, variables)
        approx = model_count(dnf, variables, epsilon=0.05)
        assert abs(approx - exact) <= 0.05 * exact * 1.001


class TestWeightedModelCount:
    def test_matches_direct_sum(self):
        weights = {
            ("x", True): 2.0,
            ("x", False): 1.0,
            ("y", True): 3.0,
            ("y", False): 5.0,
        }
        dnf = DNF.from_sets([{"x": True}, {"y": False}])
        # worlds: (T,T): 6, (T,F): 10, (F,F): 5 satisfy; (F,T): 3 doesn't.
        assert weighted_model_count(dnf, weights) == pytest.approx(21.0)

    def test_uniform_weights_reduce_to_counting(self):
        weights = {
            (v, polarity): 1.0
            for v in ("a", "b", "c")
            for polarity in (True, False)
        }
        dnf = DNF.from_sets([{"a": True, "b": True}, {"c": False}])
        assert weighted_model_count(dnf, weights) == pytest.approx(
            brute_count(dnf, ["a", "b", "c"])
        )

    def test_zero_weight_atom_prunes_clause(self):
        weights = {
            ("x", True): 0.0,
            ("x", False): 1.0,
            ("y", True): 1.0,
            ("y", False): 1.0,
        }
        dnf = DNF.from_sets([{"x": True, "y": True}, {"y": False}])
        # Only the y=False clause can hold: worlds (F, F) weight 1.
        assert weighted_model_count(dnf, weights) == pytest.approx(1.0)

    def test_missing_weights_rejected(self):
        dnf = DNF.from_sets([{"x": True}])
        with pytest.raises(ValueError, match="missing weights"):
            weighted_model_count(dnf, {})

    def test_negative_weight_rejected(self):
        dnf = DNF.from_sets([{"x": True}])
        with pytest.raises(ValueError, match="negative"):
            weighted_model_count(
                dnf, {("x", True): -1.0, ("x", False): 1.0}
            )


class TestConditioning:
    @pytest.fixture
    def registry(self):
        return VariableRegistry.from_boolean_probabilities(
            {"x": 0.3, "y": 0.6, "z": 0.5}
        )

    def test_definition(self, registry):
        phi = DNF.from_sets([{"x": True}])
        psi = DNF.from_sets([{"x": True}, {"y": True}])
        joint = brute_force_probability(phi.conjoin(psi), registry)
        condition = brute_force_probability(psi, registry)
        assert conditional_probability(
            phi, psi, registry
        ) == pytest.approx(joint / condition)

    def test_independent_events(self, registry):
        phi = DNF.from_sets([{"x": True}])
        psi = DNF.from_sets([{"y": True}])
        assert conditional_probability(
            phi, psi, registry
        ) == pytest.approx(0.3)

    def test_certain_condition(self, registry):
        phi = DNF.from_sets([{"x": True}])
        assert conditional_probability(
            phi, DNF.true(), registry
        ) == pytest.approx(0.3)

    def test_contradictory_condition(self, registry):
        phi = DNF.from_sets([{"x": True}])
        with pytest.raises(ZeroDivisionError):
            conditional_probability(phi, DNF.false(), registry)

    def test_conditioning_flips_probability(self, registry):
        # P(x | x∧y) = 1.
        phi = DNF.from_sets([{"x": True}])
        psi = DNF.from_sets([{"x": True, "y": True}])
        assert conditional_probability(
            phi, psi, registry
        ) == pytest.approx(1.0)

    def test_approximate_conditioning(self, registry):
        phi = DNF.from_sets([{"x": True}, {"z": True}])
        psi = DNF.from_sets([{"y": True}, {"z": True}])
        exact = conditional_probability(phi, psi, registry)
        approx = conditional_probability(
            phi, psi, registry, epsilon=0.01
        )
        assert approx == pytest.approx(exact, rel=0.05)
