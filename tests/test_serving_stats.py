"""ServingStats: the nearest-rank percentile and the new fleet counters.

The percentile regression (satellite): ``int(round(...))`` uses
banker's rounding, which lands on the wrong sample at exact ``.5``
ranks — p50 of four samples came back as the *third* smallest instead
of the second.  The fix is the standard nearest-rank formula
(``ceil(fraction * n)``); the property test here pins it against an
independent reference over arbitrary float lists.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.stats import ServingStats, percentile

SAMPLES = st.lists(
    st.floats(
        min_value=-1e9,
        max_value=1e9,
        allow_nan=False,
        allow_infinity=False,
    ),
    max_size=200,
)
FRACTIONS = st.floats(min_value=0.0, max_value=1.0)


def reference_nearest_rank(values, fraction):
    """Independent nearest-rank: smallest sample with at least
    ``fraction`` of the data at or below it."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    rank = min(len(ordered), max(1, rank))
    return ordered[rank - 1]


class TestPercentile:
    @settings(max_examples=200)
    @given(SAMPLES, FRACTIONS)
    def test_matches_reference(self, values, fraction):
        assert percentile(values, fraction) == reference_nearest_rank(
            values, fraction
        )

    @settings(max_examples=100)
    @given(
        st.lists(
            st.floats(
                min_value=-1e9,
                max_value=1e9,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=100,
        ),
        FRACTIONS,
    )
    def test_result_is_always_a_sample(self, values, fraction):
        assert percentile(values, fraction) in values

    @settings(max_examples=100)
    @given(SAMPLES, FRACTIONS, FRACTIONS)
    def test_monotone_in_fraction(self, values, f1, f2):
        low, high = min(f1, f2), max(f1, f2)
        assert percentile(values, low) <= percentile(values, high)

    def test_bankers_rounding_regression(self):
        # p50 of 4 samples is the 2nd smallest (rank ceil(0.5*4)=2).
        # int(round(0.5*4)) rounds half-to-even to 2 as an *index*,
        # i.e. the 3rd sample — the old formula's off-by-one.
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
        assert percentile([1.0, 2.0], 0.5) == 1.0
        assert percentile([5.0], 0.75) == 5.0
        assert percentile([], 0.5) == 0.0

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 3.0


class TestFleetCounters:
    def test_response_hit_ratio(self):
        stats = ServingStats()
        assert stats.response_hit_ratio() == 0.0
        stats.response_misses = 3
        stats.response_hits = 1
        assert stats.response_hit_ratio() == 0.25

    def test_summary_reports_fleet_counters(self):
        stats = ServingStats()
        stats.response_hits = 4
        stats.response_misses = 4
        stats.quota_rejections = 2
        summary = stats.summary()
        assert summary["response_hits"] == 4
        assert summary["response_misses"] == 4
        assert summary["response_hit_ratio"] == 0.5
        assert summary["quota_rejections"] == 2
