"""Property-based tests (hypothesis) for core invariants.

Strategy: random Boolean probability spaces and positive/negative DNFs
over them; every algorithmic component must respect its contract against
brute-force possible-worlds semantics.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.approx import RELATIVE, approximate_probability
from repro.core.bounds import independent_bounds
from repro.core.compiler import compile_dnf
from repro.core.decompositions import (
    independent_and_factorization,
    independent_or_partition,
    shannon_expansion,
)
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.exact import exact_probability
from repro.core.readonce import try_read_once
from repro.core.semantics import (
    brute_force_probability,
    equivalent_on_registry,
)
from repro.core.variables import VariableRegistry

VARIABLES = [f"v{i}" for i in range(7)]


@st.composite
def instances(draw, max_clauses=8):
    """A (DNF, registry) pair over up to 7 Boolean variables."""
    probabilities = {
        name: draw(
            st.floats(
                min_value=0.02,
                max_value=0.98,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        for name in VARIABLES
    }
    registry = VariableRegistry.from_boolean_probabilities(probabilities)
    clause_count = draw(st.integers(min_value=1, max_value=max_clauses))
    clauses = []
    for _ in range(clause_count):
        size = draw(st.integers(min_value=1, max_value=4))
        variables = draw(
            st.lists(
                st.sampled_from(VARIABLES),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        polarities = draw(
            st.lists(
                st.booleans(), min_size=len(variables), max_size=len(variables)
            )
        )
        clauses.append(Clause(dict(zip(variables, polarities))))
    return DNF(clauses), registry


COMMON = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSubsumption:
    @given(instances())
    @settings(**COMMON)
    def test_preserves_semantics(self, pair):
        dnf, registry = pair
        reduced = dnf.remove_subsumed()
        assert equivalent_on_registry(dnf, reduced, registry)

    @given(instances())
    @settings(**COMMON)
    def test_result_is_antichain(self, pair):
        dnf, _registry = pair
        reduced = dnf.remove_subsumed()
        clauses = list(reduced.clauses)
        for i, left in enumerate(clauses):
            for j, right in enumerate(clauses):
                if i != j:
                    assert not left.subsumes(right)


class TestDecompositions:
    @given(instances())
    @settings(**COMMON)
    def test_or_partition_is_exact_cover(self, pair):
        dnf, _registry = pair
        parts = independent_or_partition(dnf)
        rebuilt = DNF(c for part in parts for c in part.clauses)
        assert rebuilt == dnf
        seen = set()
        for part in parts:
            assert not (part.variables & seen)
            seen |= part.variables

    @given(instances())
    @settings(**COMMON)
    def test_and_factorization_semantics(self, pair):
        dnf, registry = pair
        factors = independent_and_factorization(dnf.remove_subsumed())
        if factors is None:
            return
        rebuilt = factors[0]
        for factor in factors[1:]:
            rebuilt = rebuilt.conjoin(factor)
        assert equivalent_on_registry(
            dnf.remove_subsumed(), rebuilt, registry
        )

    @given(instances())
    @settings(**COMMON)
    def test_shannon_partitions_probability(self, pair):
        dnf, registry = pair
        if not dnf.variables:
            return
        pivot = dnf.most_frequent_variable()
        total = sum(
            branch.probability
            * brute_force_probability(branch.cofactor, registry)
            for branch in shannon_expansion(dnf, pivot, registry)
        )
        assert math.isclose(
            total, brute_force_probability(dnf, registry), abs_tol=1e-9
        )


class TestBoundsProperty:
    @given(instances())
    @settings(**COMMON)
    def test_prop_5_1(self, pair):
        dnf, registry = pair
        truth = brute_force_probability(dnf, registry)
        for sort in (True, False):
            lower, upper = independent_bounds(
                dnf, registry, sort_by_probability=sort
            )
            assert lower - 1e-9 <= truth <= upper + 1e-9

    @given(instances())
    @settings(**COMMON)
    def test_read_once_extension_never_looser(self, pair):
        dnf, registry = pair
        truth = brute_force_probability(dnf, registry)
        lower, upper = independent_bounds(
            dnf, registry, allow_read_once_buckets=True
        )
        assert lower - 1e-9 <= truth <= upper + 1e-9


class TestExactness:
    @given(instances())
    @settings(**COMMON)
    def test_compiled_tree_probability(self, pair):
        dnf, registry = pair
        tree = compile_dnf(dnf, registry)
        assert tree.is_complete()
        assert math.isclose(
            tree.probability(registry),
            brute_force_probability(dnf, registry),
            abs_tol=1e-9,
        )

    @given(instances())
    @settings(**COMMON)
    def test_incremental_epsilon_zero(self, pair):
        dnf, registry = pair
        assert math.isclose(
            exact_probability(dnf, registry),
            brute_force_probability(dnf, registry),
            abs_tol=1e-9,
        )

    @given(instances())
    @settings(**COMMON)
    def test_read_once_agrees(self, pair):
        dnf, registry = pair
        formula = try_read_once(dnf)
        if formula is None:
            return
        assert math.isclose(
            formula.probability(registry),
            brute_force_probability(dnf, registry),
            abs_tol=1e-9,
        )


class TestApproximationProperty:
    @given(instances(), st.floats(min_value=0.005, max_value=0.3))
    @settings(**COMMON)
    def test_absolute_guarantee(self, pair, epsilon):
        dnf, registry = pair
        truth = brute_force_probability(dnf, registry)
        result = approximate_probability(dnf, registry, epsilon=epsilon)
        assert result.converged
        assert abs(result.estimate - truth) <= epsilon + 1e-9
        assert result.lower - 1e-9 <= truth <= result.upper + 1e-9

    @given(instances(), st.floats(min_value=0.01, max_value=0.4))
    @settings(**COMMON)
    def test_relative_guarantee(self, pair, epsilon):
        dnf, registry = pair
        truth = brute_force_probability(dnf, registry)
        result = approximate_probability(
            dnf, registry, epsilon=epsilon, error_kind=RELATIVE
        )
        assert result.converged
        assert (1 - epsilon) * truth - 1e-9 <= result.estimate
        assert result.estimate <= (1 + epsilon) * truth + 1e-9

    @given(instances(), st.integers(min_value=0, max_value=20))
    @settings(**COMMON)
    def test_anytime_bounds_always_sound(self, pair, budget):
        dnf, registry = pair
        truth = brute_force_probability(dnf, registry)
        result = approximate_probability(
            dnf, registry, epsilon=0.0, max_steps=budget
        )
        assert result.lower - 1e-9 <= truth <= result.upper + 1e-9
