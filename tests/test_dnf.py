"""Unit tests for DNF formulas (repro.core.dnf)."""

import pytest

from repro.core.dnf import DNF
from repro.core.events import Atom, Clause
from repro.core.variables import VariableRegistry


@pytest.fixture
def registry():
    return VariableRegistry.from_boolean_probabilities(
        {"x": 0.3, "y": 0.2, "z": 0.7, "v": 0.8}
    )


class TestConstruction:
    def test_false_and_true(self):
        assert DNF.false().is_false()
        assert DNF.true().is_true()
        assert not DNF.true().is_false()

    def test_from_sets(self):
        dnf = DNF.from_sets([{"x": True}, {"y": False}])
        assert len(dnf) == 2
        assert dnf.variables == frozenset({"x", "y"})

    def test_from_positive_clauses(self):
        dnf = DNF.from_positive_clauses([["x", "y"], ["z"]])
        assert Clause.positive("x", "y") in dnf
        assert Clause.positive("z") in dnf

    def test_of_atoms(self):
        dnf = DNF.of_atoms(Atom("x"), Atom("y", False))
        assert len(dnf) == 2

    def test_duplicate_clauses_collapse(self):
        dnf = DNF([Clause({"x": True}), Clause({"x": True})])
        assert len(dnf) == 1

    def test_size_counts_atoms(self):
        dnf = DNF.from_sets([{"x": True, "y": False}, {"z": True}])
        assert dnf.size() == 3

    def test_immutability(self):
        dnf = DNF.true()
        with pytest.raises(AttributeError):
            dnf._clauses = frozenset()


class TestSubsumption:
    def test_removes_supersets(self):
        dnf = DNF.from_sets(
            [{"x": True}, {"x": True, "y": True}, {"y": False}]
        )
        reduced = dnf.remove_subsumed()
        assert len(reduced) == 2
        assert Clause({"x": True}) in reduced
        assert Clause({"y": False}) in reduced

    def test_empty_clause_wins(self):
        dnf = DNF([Clause(), Clause({"x": True})])
        assert dnf.remove_subsumed() == DNF.true()

    def test_no_change_returns_same_object(self):
        dnf = DNF.from_sets([{"x": True}, {"y": True}])
        assert dnf.remove_subsumed() is dnf

    def test_equal_value_required_for_subsumption(self):
        dnf = DNF.from_sets([{"x": True}, {"x": False, "y": True}])
        assert len(dnf.remove_subsumed()) == 2

    def test_chain_of_subsumptions(self):
        dnf = DNF.from_sets(
            [
                {"x": True},
                {"x": True, "y": True},
                {"x": True, "y": True, "z": True},
            ]
        )
        assert len(dnf.remove_subsumed()) == 1

    def test_semantics_preserved(self, registry):
        from repro.core.semantics import (
            brute_force_probability,
            equivalent_on_registry,
        )

        dnf = DNF.from_sets(
            [
                {"x": True, "y": True},
                {"x": True},
                {"z": True, "v": False},
                {"z": True, "v": False, "x": False},
            ]
        )
        reduced = dnf.remove_subsumed()
        assert equivalent_on_registry(dnf, reduced, registry)
        assert brute_force_probability(
            dnf, registry
        ) == pytest.approx(brute_force_probability(reduced, registry))


class TestRestrict:
    def test_restrict_drops_inconsistent_and_strips(self):
        # Φ = x∧y ∨ ¬x∧z ∨ v
        dnf = DNF.from_sets(
            [{"x": True, "y": True}, {"x": False, "z": True}, {"v": True}]
        )
        positive = dnf.restrict("x", True)
        assert positive == DNF.from_sets([{"y": True}, {"v": True}])
        negative = dnf.restrict("x", False)
        assert negative == DNF.from_sets([{"z": True}, {"v": True}])

    def test_restrict_to_empty(self):
        dnf = DNF.from_sets([{"x": True}])
        assert dnf.restrict("x", False).is_false()

    def test_restrict_can_produce_true(self):
        dnf = DNF.from_sets([{"x": True}])
        assert dnf.restrict("x", True).is_true()


class TestOperations:
    def test_union(self):
        left = DNF.from_sets([{"x": True}])
        right = DNF.from_sets([{"y": True}])
        assert len(left.union(right)) == 2

    def test_conjoin_distributes(self):
        left = DNF.from_sets([{"x": True}, {"y": True}])
        right = DNF.from_sets([{"z": True}])
        result = left.conjoin(right)
        assert result == DNF.from_sets(
            [{"x": True, "z": True}, {"y": True, "z": True}]
        )

    def test_conjoin_drops_inconsistent_products(self):
        left = DNF.from_sets([{"x": True}])
        right = DNF.from_sets([{"x": False}])
        assert left.conjoin(right).is_false()

    def test_conjoin_with_true_identity(self):
        dnf = DNF.from_sets([{"x": True}])
        assert dnf.conjoin(DNF.true()) == dnf

    def test_evaluate(self):
        dnf = DNF.from_sets([{"x": True, "y": True}, {"z": True}])
        assert dnf.evaluate({"x": True, "y": True, "z": False})
        assert dnf.evaluate({"x": False, "y": False, "z": True})
        assert not dnf.evaluate({"x": True, "y": False, "z": False})


class TestIntrospection:
    def test_sole_clause(self):
        dnf = DNF.from_sets([{"x": True}])
        assert dnf.sole_clause() == Clause({"x": True})
        with pytest.raises(ValueError):
            DNF.from_sets([{"x": True}, {"y": True}]).sole_clause()

    def test_variable_frequencies(self):
        dnf = DNF.from_sets(
            [{"x": True, "y": True}, {"x": True, "z": True}, {"z": False}]
        )
        freqs = dnf.variable_frequencies()
        assert freqs == {"x": 2, "y": 1, "z": 2}

    def test_most_frequent_variable(self):
        dnf = DNF.from_sets(
            [{"x": True, "y": True}, {"x": True, "z": True}]
        )
        assert dnf.most_frequent_variable() == "x"

    def test_most_frequent_on_empty_raises(self):
        with pytest.raises(ValueError):
            DNF.true().most_frequent_variable()

    def test_sorted_clauses_deterministic(self):
        dnf = DNF.from_sets([{"b": True}, {"a": True}])
        # Interned representation: the deterministic order is by atom-id
        # tuple, independent of clause insertion order.
        other = DNF.from_sets([{"a": True}, {"b": True}])
        assert dnf.sorted_clauses() == other.sorted_clauses()
        assert set(dnf.sorted_clauses()) == set(dnf.clauses)
        assert dnf.sorted_clauses() == sorted(
            dnf.clauses, key=lambda clause: clause.atom_ids
        )

    def test_marginal_probabilities(self, registry):
        dnf = DNF.from_sets([{"x": True}, {"v": True}])
        marginals = dict(dnf.marginal_probabilities(registry))
        assert marginals[Clause({"x": True})] == pytest.approx(0.3)
        assert marginals[Clause({"v": True})] == pytest.approx(0.8)

    def test_equality_and_hash(self):
        left = DNF.from_sets([{"x": True}, {"y": True}])
        right = DNF.from_sets([{"y": True}, {"x": True}])
        assert left == right
        assert hash(left) == hash(right)
