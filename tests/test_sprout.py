"""Tests for the SPROUT-style exact operator (hierarchical queries)."""

import random

import pytest

from repro.core.semantics import brute_force_formula_probability
from repro.core.variables import VariableRegistry
from repro.db.cq import ConjunctiveQuery, Const, Inequality, SubGoal, Var
from repro.db.database import Database
from repro.db.engine import evaluate
from repro.db.relation import Relation
from repro.db.sprout import UnsafeQueryError, sprout_confidence


def random_hierarchical_instance(seed):
    """q(A?) :- R(A,B), S(A,C) on random small tuple-independent data."""
    rng = random.Random(seed)
    reg = VariableRegistry()
    db = Database(reg)
    r_rows = [
        ((rng.randint(1, 3), rng.randint(1, 3)), rng.uniform(0.2, 0.9))
        for _ in range(rng.randint(1, 5))
    ]
    s_rows = [
        ((rng.randint(1, 3), rng.randint(1, 3)), rng.uniform(0.2, 0.9))
        for _ in range(rng.randint(1, 5))
    ]
    # Deduplicate tuples to keep the instance set-valued.
    r_rows = list({values: p for values, p in r_rows}.items())
    s_rows = list({values: p for values, p in s_rows}.items())
    db.add(Relation.tuple_independent("R", ["a", "b"], r_rows, reg))
    db.add(Relation.tuple_independent("S", ["a", "c"], s_rows, reg))
    return db


class TestAgainstBruteForce:
    def test_boolean_query(self):
        for seed in range(20):
            db = random_hierarchical_instance(seed)
            a, b, c = Var("A"), Var("B"), Var("C")
            query = ConjunctiveQuery(
                [], [SubGoal("R", [a, b]), SubGoal("S", [a, c])]
            )
            expected = {
                ans.values: brute_force_formula_probability(
                    ans.lineage, db.registry
                )
                for ans in evaluate(query, db)
            }
            actual = dict(sprout_confidence(query, db))
            assert set(actual) == set(expected)
            for values, probability in actual.items():
                assert probability == pytest.approx(expected[values])

    def test_non_boolean_query(self):
        for seed in range(20):
            db = random_hierarchical_instance(seed + 100)
            a, b, c = Var("A"), Var("B"), Var("C")
            query = ConjunctiveQuery(
                [a], [SubGoal("R", [a, b]), SubGoal("S", [a, c])]
            )
            expected = {
                ans.values: brute_force_formula_probability(
                    ans.lineage, db.registry
                )
                for ans in evaluate(query, db)
            }
            actual = dict(sprout_confidence(query, db))
            assert set(actual) == set(expected)
            for values, probability in actual.items():
                assert probability == pytest.approx(expected[values])

    def test_three_level_hierarchy(self):
        reg = VariableRegistry()
        db = Database(reg)
        db.add(
            Relation.tuple_independent(
                "R1",
                ["a", "b", "c"],
                [((1, 1, 1), 0.5), ((1, 2, 1), 0.4), ((2, 1, 2), 0.6)],
                reg,
            )
        )
        db.add(
            Relation.tuple_independent(
                "R2", ["a", "b"], [((1, 1), 0.7), ((1, 2), 0.2)], reg
            )
        )
        db.add(
            Relation.tuple_independent(
                "R3", ["a", "d"], [((1, 9), 0.3), ((2, 9), 0.8)], reg
            )
        )
        a, b, c, d = Var("A"), Var("B"), Var("C"), Var("D")
        query = ConjunctiveQuery(
            [d],
            [
                SubGoal("R1", [a, b, c]),
                SubGoal("R2", [a, b]),
                SubGoal("R3", [a, d]),
            ],
        )
        assert query.is_hierarchical()
        expected = {
            ans.values: brute_force_formula_probability(
                ans.lineage, db.registry
            )
            for ans in evaluate(query, db)
        }
        actual = dict(sprout_confidence(query, db))
        for values, probability in actual.items():
            assert probability == pytest.approx(expected[values])

    def test_certain_relation_in_join(self):
        reg = VariableRegistry()
        db = Database(reg)
        db.add(
            Relation.tuple_independent(
                "R", ["a", "b"], [((1, 1), 0.5), ((2, 1), 0.6)], reg
            )
        )
        db.add(Relation.certain("D", ["a"], [(1,)]))
        a, b = Var("A"), Var("B")
        query = ConjunctiveQuery(
            [], [SubGoal("R", [a, b]), SubGoal("D", [a])]
        )
        result = dict(sprout_confidence(query, db))
        assert result[()] == pytest.approx(0.5)

    def test_local_selection_inequality(self):
        reg = VariableRegistry()
        db = Database(reg)
        db.add(
            Relation.tuple_independent(
                "R", ["a", "b"], [((1, 5), 0.5), ((2, 50), 0.6)], reg
            )
        )
        a, b = Var("A"), Var("B")
        query = ConjunctiveQuery(
            [],
            [SubGoal("R", [a, b])],
            [Inequality(b, "<", Const(10))],
        )
        result = dict(sprout_confidence(query, db))
        assert result[()] == pytest.approx(0.5)


class TestRejections:
    def test_self_join_rejected(self):
        db = random_hierarchical_instance(0)
        a, b, c = Var("A"), Var("B"), Var("C")
        query = ConjunctiveQuery(
            [], [SubGoal("R", [a, b]), SubGoal("R", [a, c])]
        )
        with pytest.raises(UnsafeQueryError, match="self-join"):
            sprout_confidence(query, db)

    def test_non_hierarchical_rejected(self):
        reg = VariableRegistry()
        db = Database(reg)
        db.add(Relation.tuple_independent("R", ["x"], [((1,), 0.5)], reg))
        db.add(
            Relation.tuple_independent(
                "S", ["x", "y"], [((1, 2), 0.5)], reg
            )
        )
        db.add(Relation.tuple_independent("T", ["y"], [((2,), 0.5)], reg))
        x, y = Var("X"), Var("Y")
        query = ConjunctiveQuery(
            [],
            [
                SubGoal("R", [x]),
                SubGoal("S", [x, y]),
                SubGoal("T", [y]),
            ],
        )
        with pytest.raises(UnsafeQueryError, match="hierarchical"):
            sprout_confidence(query, db)

    def test_cross_subgoal_inequality_rejected(self):
        reg = VariableRegistry()
        db = Database(reg)
        db.add(Relation.tuple_independent("R", ["x"], [((1,), 0.5)], reg))
        db.add(Relation.tuple_independent("S", ["y"], [((2,), 0.5)], reg))
        x, y = Var("X"), Var("Y")
        query = ConjunctiveQuery(
            [],
            [SubGoal("R", [x]), SubGoal("S", [y])],
            [Inequality(x, "<", y)],
        )
        with pytest.raises(UnsafeQueryError, match="joins subgoals"):
            sprout_confidence(query, db)

    def test_composite_lineage_rejected(self):
        from repro.core.formulas import atom, disj

        reg = VariableRegistry()
        reg.add_boolean("v1", 0.5)
        reg.add_boolean("v2", 0.5)
        db = Database(reg)
        relation = Relation(
            "C", ["x"], [((1,), disj(atom("v1"), atom("v2")))]
        )
        db.add(relation)
        x = Var("X")
        query = ConjunctiveQuery([], [SubGoal("C", [x])])
        with pytest.raises(UnsafeQueryError, match="tuple-independent"):
            sprout_confidence(query, db)
