"""Unit tests for the d-tree data structure and bound propagation."""

import pytest

from repro.core.dnf import DNF
from repro.core.dtree import (
    ExclusiveOrNode,
    IndependentAndNode,
    IndependentOrNode,
    LeafNode,
    combine_and_bounds,
    combine_or_bounds,
    combine_xor_bounds,
)
from repro.core.variables import VariableRegistry


@pytest.fixture
def registry():
    return VariableRegistry.from_boolean_probabilities(
        {"x": 0.3, "y": 0.2, "z": 0.7, "u": 0.5, "v": 0.8}
    )


def leaf(spec, bounds=None):
    return LeafNode(DNF.from_sets([spec]), leaf_bounds=bounds)


class TestLeaf:
    def test_single_clause_probability(self, registry):
        node = leaf({"x": True, "y": True})
        assert node.probability(registry) == pytest.approx(0.06)
        assert node.bounds(registry) == (
            pytest.approx(0.06),
            pytest.approx(0.06),
        )

    def test_multi_clause_without_bounds_defaults_to_unit_interval(
        self, registry
    ):
        node = LeafNode(DNF.from_sets([{"x": True}, {"x": False, "y": True}]))
        assert node.bounds(registry) == (0.0, 1.0)
        with pytest.raises(ValueError, match="compile further"):
            node.probability(registry)

    def test_point_bounds_allow_probability(self, registry):
        node = LeafNode(
            DNF.from_sets([{"x": True}, {"y": True}]),
            leaf_bounds=(0.44, 0.44),
        )
        assert node.probability(registry) == pytest.approx(0.44)

    def test_empty_dnf_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            LeafNode(DNF.false())


class TestNodeFormulas:
    def test_independent_or_probability(self, registry):
        node = IndependentOrNode([leaf({"x": True}), leaf({"y": True})])
        assert node.probability(registry) == pytest.approx(
            1 - 0.7 * 0.8
        )

    def test_independent_and_probability(self, registry):
        node = IndependentAndNode([leaf({"x": True}), leaf({"y": True})])
        assert node.probability(registry) == pytest.approx(0.06)

    def test_exclusive_or_probability(self, registry):
        node = ExclusiveOrNode(
            [leaf({"z": True, "u": True}), leaf({"z": False, "v": True})]
        )
        assert node.probability(registry) == pytest.approx(
            0.7 * 0.5 + 0.3 * 0.8
        )

    def test_example_4_1_tree(self, registry):
        # (x ⊗ y) ⊙ ((z ⊙ u) ⊕ (¬z ⊙ v)) — Example 4.1 of the paper.
        tree = IndependentAndNode(
            [
                IndependentOrNode([leaf({"x": True}), leaf({"y": True})]),
                ExclusiveOrNode(
                    [
                        IndependentAndNode(
                            [leaf({"z": True}), leaf({"u": True})]
                        ),
                        IndependentAndNode(
                            [leaf({"z": False}), leaf({"v": True})]
                        ),
                    ]
                ),
            ]
        )
        expected = (1 - (1 - 0.3) * (1 - 0.2)) * (0.7 * 0.5 + 0.3 * 0.8)
        assert tree.probability(registry) == pytest.approx(expected)

    def test_inner_node_requires_children(self):
        with pytest.raises(ValueError):
            IndependentOrNode([])


class TestBoundPropagation:
    def test_example_5_5(self, registry):
        """The worked bound propagation of Example 5.5 / Fig. 4."""
        phi1 = LeafNode(
            DNF.from_sets([{"x": True}]), leaf_bounds=(0.1, 0.11)
        )
        clause_leaf = LeafNode(
            DNF.from_sets([{"u": True}]), leaf_bounds=(0.5, 0.5)
        )
        phi2 = LeafNode(
            DNF.from_sets([{"y": True}]), leaf_bounds=(0.4, 0.44)
        )
        phi3 = LeafNode(
            DNF.from_sets([{"z": True}]), leaf_bounds=(0.35, 0.38)
        )
        tree = IndependentOrNode(
            [
                phi1,
                ExclusiveOrNode(
                    [IndependentAndNode([clause_leaf, phi2]), phi3]
                ),
            ]
        )
        lower, upper = tree.bounds(registry)
        assert lower == pytest.approx(
            1 - (1 - 0.1) * (1 - (0.5 * 0.4 + 0.35))
        )  # 0.595
        assert upper == pytest.approx(
            1 - (1 - 0.11) * (1 - (0.5 * 0.44 + 0.38))
        )
        assert lower == pytest.approx(0.595)
        assert upper == pytest.approx(0.644)

    def test_xor_upper_clamped(self, registry):
        node = ExclusiveOrNode(
            [
                LeafNode(DNF.from_sets([{"x": True}]), leaf_bounds=(0.6, 0.9)),
                LeafNode(DNF.from_sets([{"y": True}]), leaf_bounds=(0.5, 0.8)),
            ]
        )
        lower, upper = node.bounds(registry)
        assert upper == 1.0
        assert lower == 1.0  # lower sum 1.1 also clamps

    def test_combination_helpers(self):
        assert combine_or_bounds([(0.1, 0.2), (0.3, 0.4)]) == (
            pytest.approx(1 - 0.9 * 0.7),
            pytest.approx(1 - 0.8 * 0.6),
        )
        assert combine_and_bounds([(0.5, 0.6), (0.5, 0.5)]) == (
            pytest.approx(0.25),
            pytest.approx(0.3),
        )
        assert combine_xor_bounds([(0.1, 0.2), (0.3, 0.4)]) == (
            pytest.approx(0.4),
            pytest.approx(0.6),
        )

    def test_bounds_contain_probability(self, registry):
        tree = IndependentOrNode(
            [
                leaf({"x": True}),
                IndependentAndNode([leaf({"y": True}), leaf({"z": True})]),
            ]
        )
        probability = tree.probability(registry)
        lower, upper = tree.bounds(registry)
        assert lower == pytest.approx(probability)
        assert upper == pytest.approx(probability)


class TestTreeIntrospection:
    def _tree(self):
        return IndependentOrNode(
            [
                leaf({"x": True}),
                IndependentAndNode([leaf({"y": True}), leaf({"z": True})]),
            ]
        )

    def test_leaves(self):
        assert len(list(self._tree().leaves())) == 3

    def test_node_count_and_depth(self):
        tree = self._tree()
        assert tree.node_count() == 5
        assert tree.depth() == 3

    def test_is_complete(self, registry):
        assert self._tree().is_complete()
        partial = IndependentOrNode(
            [LeafNode(DNF.from_sets([{"x": True}, {"x": False, "y": True}]))]
        )
        assert not partial.is_complete()

    def test_histogram(self):
        histogram = self._tree().inner_node_histogram()
        assert histogram["independent-or"] == 1
        assert histogram["independent-and"] == 1
        assert histogram["leaf"] == 3

    def test_pretty_render(self):
        text = self._tree().pretty()
        assert "⊗" in text and "⊙" in text and "leaf" in text
