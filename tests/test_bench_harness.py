"""Tests for the benchmark harness utilities."""

import csv
import importlib.util
import json
import os

import pytest

from repro.bench.harness import Harness, SeriesPoint, format_table


class TestSeriesPoint:
    def test_row_rendering(self):
        point = SeriesPoint("exp", "w1", "m1", 0.125, 0.5, "ok", "d")
        assert point.row() == [
            "exp", "w1", "m1", "0.125000", "0.5", "ok", "d", "", ""
        ]

    def test_row_without_value(self):
        point = SeriesPoint("exp", "w1", "m1", 0.125, None)
        assert point.row()[4] == ""


class TestHarness:
    def test_run_records_timing_and_value(self, tmp_path):
        harness = Harness("unit", results_dir=str(tmp_path))
        point = harness.run(
            "w", "m", lambda: 41 + 1, value_of=lambda v: float(v)
        )
        assert point.value == 42.0
        assert point.seconds >= 0.0
        assert harness.points == [point]

    def test_status_and_detail_callbacks(self, tmp_path):
        harness = Harness("unit2", results_dir=str(tmp_path))
        point = harness.run(
            "w",
            "m",
            lambda: {"capped": True},
            status_of=lambda r: "capped" if r["capped"] else "ok",
            detail_of=lambda r: "note",
        )
        assert point.status == "capped"
        assert point.detail == "note"

    def test_series_table_layout(self, tmp_path):
        harness = Harness("unit3", results_dir=str(tmp_path))
        harness.run("q1", "fast", lambda: None)
        harness.run("q1", "slow", lambda: None)
        harness.run("q2", "fast", lambda: None)
        table = harness.series_table()
        assert "unit3" in table
        assert "fast [s]" in table and "slow [s]" in table
        assert "q1" in table and "q2" in table
        # q2 has no 'slow' measurement: rendered as '-'.
        q2_line = next(
            line for line in table.splitlines() if line.startswith("q2")
        )
        assert "-" in q2_line

    def test_csv_written(self, tmp_path):
        harness = Harness("unit four", results_dir=str(tmp_path))
        harness.run("w", "m", lambda: None)
        path = harness.write_csv()
        assert os.path.exists(path)
        assert os.path.basename(path) == "unit_four.csv"
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "experiment"
        assert rows[1][1] == "w"

    def test_engine_config_recorded(self, tmp_path):
        from repro.bench.harness import render_engine_config
        from repro.engine import EngineConfig

        harness = Harness("unit cfg", results_dir=str(tmp_path))
        config = EngineConfig(epsilon=0.25)
        point = harness.run("w", "m", lambda: None, engine_config=config)
        assert '"epsilon":0.25' in point.engine_config
        assert point.row()[-1] == point.engine_config
        assert render_engine_config(None) == ""
        assert render_engine_config("preformatted") == "preformatted"

    def test_registered_globally(self, tmp_path):
        from repro.bench.harness import ALL_HARNESSES

        harness = Harness("registered", results_dir=str(tmp_path))
        assert harness in ALL_HARNESSES


def _load_gate_module():
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "benchmarks",
        "check_bench_regression.py",
    )
    spec = importlib.util.spec_from_file_location(
        "check_bench_regression", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRegressionGateBaselines:
    """The gate must fail loudly on broken committed baselines."""

    @pytest.fixture()
    def gate(self, tmp_path, monkeypatch):
        module = _load_gate_module()
        monkeypatch.setattr(module, "REPO_ROOT", str(tmp_path))
        return module

    def test_missing_baseline_fails_loudly(self, gate):
        with pytest.raises(gate.RegressionError, match="missing"):
            gate.load_baseline("BENCH_absent.json")

    def test_unparseable_baseline_fails_loudly(self, gate, tmp_path):
        (tmp_path / "BENCH_corrupt.json").write_text(
            '{"totals": {"speedup":'
        )
        with pytest.raises(gate.RegressionError, match="unreadable"):
            gate.load_baseline("BENCH_corrupt.json")

    def test_non_object_baseline_fails_loudly(self, gate, tmp_path):
        (tmp_path / "BENCH_list.json").write_text("[1, 2, 3]\n")
        with pytest.raises(
            gate.RegressionError, match="not a JSON object"
        ):
            gate.load_baseline("BENCH_list.json")

    def test_valid_baseline_loads(self, gate, tmp_path):
        payload = {"totals": {"speedup_warm_vs_cold": 12.5}}
        (tmp_path / "BENCH_ok.json").write_text(json.dumps(payload))
        assert gate.load_baseline("BENCH_ok.json") == payload

    def test_refine_gate_rejects_diverged_baseline(self, gate, tmp_path):
        # A baseline recorded with diverging orderings is itself a bug;
        # check_refine refuses it before spending a smoke run.
        (tmp_path / "BENCH_refine.json").write_text(
            json.dumps(
                {
                    "totals": {
                        "steps_ratio_guided_vs_widest": 0.9,
                        "orderings_identical": False,
                    }
                }
            )
        )
        with pytest.raises(gate.RegressionError, match="orderings"):
            gate.check_refine([])

    def test_committed_baselines_parse(self, gate, monkeypatch):
        # The real repo-root baselines must always satisfy the loader.
        repo_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        monkeypatch.setattr(gate, "REPO_ROOT", repo_root)
        for name in sorted(os.listdir(repo_root)):
            if name.startswith("BENCH_") and name.endswith(".json"):
                baseline = gate.load_baseline(name)
                assert isinstance(baseline, dict)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["col", "x"], [["a", "1"], ["longer", "2"]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")
        # All rows padded to the same width.
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2
