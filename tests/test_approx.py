"""Tests for the incremental ε-approximation algorithm (Section V)."""

import random

import pytest

from repro.core.approx import ABSOLUTE, RELATIVE, approximate_probability
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry


def random_instance(seed, variables=8, max_clauses=10):
    rng = random.Random(seed)
    reg = VariableRegistry.from_boolean_probabilities(
        {f"v{i}": rng.uniform(0.05, 0.95) for i in range(variables)}
    )
    clauses = [
        Clause(
            {
                f"v{rng.randrange(variables)}": rng.random() < 0.7
                for _ in range(rng.randint(1, 4))
            }
        )
        for _ in range(rng.randint(1, max_clauses))
    ]
    return DNF(clauses), reg


class TestGuarantees:
    @pytest.mark.parametrize("epsilon", [0.2, 0.05, 0.01])
    def test_absolute_error_bound(self, epsilon):
        for seed in range(25):
            dnf, reg = random_instance(seed)
            truth = brute_force_probability(dnf, reg)
            result = approximate_probability(dnf, reg, epsilon=epsilon)
            assert result.converged
            assert abs(result.estimate - truth) <= epsilon + 1e-9
            assert result.lower - 1e-9 <= truth <= result.upper + 1e-9

    @pytest.mark.parametrize("epsilon", [0.3, 0.1, 0.02])
    def test_relative_error_bound(self, epsilon):
        for seed in range(25):
            dnf, reg = random_instance(seed)
            truth = brute_force_probability(dnf, reg)
            result = approximate_probability(
                dnf, reg, epsilon=epsilon, error_kind=RELATIVE
            )
            assert result.converged
            assert (1 - epsilon) * truth - 1e-9 <= result.estimate
            assert result.estimate <= (1 + epsilon) * truth + 1e-9

    def test_epsilon_zero_is_exact(self):
        for seed in range(25):
            dnf, reg = random_instance(seed)
            truth = brute_force_probability(dnf, reg)
            result = approximate_probability(dnf, reg, epsilon=0.0)
            assert result.converged
            assert result.estimate == pytest.approx(truth, abs=1e-9)
            assert result.lower == pytest.approx(result.upper, abs=1e-12)

    def test_closing_disabled_still_correct(self):
        for seed in range(15):
            dnf, reg = random_instance(seed)
            truth = brute_force_probability(dnf, reg)
            result = approximate_probability(
                dnf, reg, epsilon=0.02, allow_closing=False
            )
            assert result.converged
            assert abs(result.estimate - truth) <= 0.02 + 1e-9

    def test_unsorted_buckets_still_correct(self):
        for seed in range(15):
            dnf, reg = random_instance(seed)
            truth = brute_force_probability(dnf, reg)
            result = approximate_probability(
                dnf, reg, epsilon=0.02, sort_buckets=False
            )
            assert result.converged
            assert abs(result.estimate - truth) <= 0.02 + 1e-9

    def test_read_once_buckets_still_correct(self):
        for seed in range(15):
            dnf, reg = random_instance(seed)
            truth = brute_force_probability(dnf, reg)
            result = approximate_probability(
                dnf, reg, epsilon=0.02, read_once_buckets=True
            )
            assert result.converged
            assert abs(result.estimate - truth) <= 0.02 + 1e-9

    def test_multivalued_variables(self):
        reg = VariableRegistry()
        reg.add_variable("u", {1: 0.5, 2: 0.3, 3: 0.2})
        reg.add_variable("w", {"a": 0.6, "b": 0.4})
        reg.add_boolean("x", 0.25)
        dnf = DNF.from_sets(
            [{"u": 1, "x": True}, {"u": 2, "w": "a"}, {"w": "b"}]
        )
        truth = brute_force_probability(dnf, reg)
        result = approximate_probability(dnf, reg, epsilon=0.0)
        assert result.estimate == pytest.approx(truth)


class TestDegenerateInputs:
    def test_false(self):
        reg = VariableRegistry()
        result = approximate_probability(DNF.false(), reg, epsilon=0.1)
        assert result.converged and result.estimate == 0.0

    def test_true(self):
        reg = VariableRegistry()
        result = approximate_probability(DNF.true(), reg, epsilon=0.1)
        assert result.converged and result.estimate == 1.0

    def test_subsumption_to_true(self):
        reg = VariableRegistry.from_boolean_probabilities({"x": 0.5})
        dnf = DNF([Clause(), Clause({"x": True})])
        result = approximate_probability(dnf, reg, epsilon=0.1)
        assert result.estimate == 1.0

    def test_single_clause_immediate(self):
        reg = VariableRegistry.from_boolean_probabilities({"x": 0.3})
        dnf = DNF.from_sets([{"x": True}])
        result = approximate_probability(dnf, reg, epsilon=0.0)
        assert result.estimate == pytest.approx(0.3)
        assert result.steps == 0

    def test_invalid_epsilon(self):
        reg = VariableRegistry()
        with pytest.raises(ValueError, match="epsilon"):
            approximate_probability(DNF.true(), reg, epsilon=1.0)
        with pytest.raises(ValueError, match="epsilon"):
            approximate_probability(DNF.true(), reg, epsilon=-0.1)

    def test_invalid_error_kind(self):
        reg = VariableRegistry()
        with pytest.raises(ValueError, match="error kind"):
            approximate_probability(
                DNF.true(), reg, epsilon=0.1, error_kind="sideways"
            )


class TestAnytimeBehaviour:
    def test_budget_exhaustion_reports_sound_bounds(self):
        dnf, reg = random_instance(3, variables=10, max_clauses=12)
        truth = brute_force_probability(dnf, reg)
        result = approximate_probability(
            dnf, reg, epsilon=0.0, max_steps=1
        )
        # With one step the bounds cannot be tight, but must stay sound.
        assert result.lower - 1e-9 <= truth <= result.upper + 1e-9
        if not result.converged:
            assert result.steps <= 1

    def test_more_budget_never_worse(self):
        dnf, reg = random_instance(7, variables=10, max_clauses=12)
        widths = []
        for budget in (0, 2, 8, 32, 128):
            result = approximate_probability(
                dnf, reg, epsilon=0.0, max_steps=budget
            )
            widths.append(result.width())
        # Width after the largest budget is no larger than after the
        # smallest (intermediate steps may fluctuate per Remark 5.6).
        assert widths[-1] <= widths[0] + 1e-12

    def test_deadline_zero_still_sound(self):
        dnf, reg = random_instance(11, variables=10, max_clauses=12)
        truth = brute_force_probability(dnf, reg)
        result = approximate_probability(
            dnf, reg, epsilon=0.001, deadline_seconds=0.0
        )
        assert result.lower - 1e-9 <= truth <= result.upper + 1e-9

    def test_deadline_expiry_mid_run_is_deterministic(self, fake_clock):
        # The deadline is checked against the fake clock, which advances
        # one second per read: a 5-second deadline expires after a fixed
        # number of checks on any machine, under any CI load.
        fake_clock.auto_advance = 1.0
        # Seed 9 needs ~20 exact steps: plenty of run left to cut short.
        dnf, reg = random_instance(9, variables=12, max_clauses=16)
        truth = brute_force_probability(dnf, reg)
        result = approximate_probability(
            dnf, reg, epsilon=0.0, deadline_seconds=5.0
        )
        assert not result.converged
        # Each loop iteration reads the clock at most twice (budget check
        # + elapsed bookkeeping), so a 5s budget at 1s/read caps the
        # decomposition strictly below any full run.
        assert result.steps <= 5
        assert result.lower - 1e-9 <= truth <= result.upper + 1e-9

    def test_deadline_not_reached_converges(self, fake_clock):
        # Same instance, same fake clock, roomy deadline: the run must
        # ignore the deadline entirely and certify the request.
        fake_clock.auto_advance = 0.001
        dnf, reg = random_instance(9, variables=12, max_clauses=16)
        truth = brute_force_probability(dnf, reg)
        result = approximate_probability(
            dnf, reg, epsilon=0.0, deadline_seconds=10_000.0
        )
        assert result.converged
        assert abs(result.estimate - truth) <= 1e-9


class TestInstrumentation:
    def test_histogram_counts_decompositions(self):
        dnf, reg = random_instance(5, variables=9, max_clauses=10)
        result = approximate_probability(dnf, reg, epsilon=0.0)
        histogram = result.node_histogram
        assert set(histogram) == {
            "independent-or",
            "independent-and",
            "exclusive-or",
        }
        assert sum(histogram.values()) <= result.steps

    def test_closing_counter(self):
        # A large disjunction of independent clauses with a loose epsilon
        # should converge immediately (single bucket, exact bounds).
        reg = VariableRegistry.from_boolean_probabilities(
            {f"v{i}": 0.3 for i in range(30)}
        )
        dnf = DNF.from_sets([{f"v{i}": True} for i in range(30)])
        result = approximate_probability(dnf, reg, epsilon=0.05)
        assert result.converged
        assert result.steps == 0  # bounds were exact before any step

    def test_repr(self):
        reg = VariableRegistry.from_boolean_probabilities({"x": 0.5})
        result = approximate_probability(
            DNF.from_sets([{"x": True}]), reg, epsilon=0.1
        )
        assert "ApproximationResult" in repr(result)

    def test_elapsed_seconds_nonnegative(self):
        dnf, reg = random_instance(2)
        result = approximate_probability(dnf, reg, epsilon=0.1)
        assert result.elapsed_seconds >= 0.0


class TestEasyHardEasy:
    """The Section VII easy-hard-easy observation, in miniature: very low
    and very high clause/variable ratios converge with little work."""

    def test_high_probability_converges_fast(self):
        reg = VariableRegistry.from_boolean_probabilities(
            {f"v{i}": 0.9 for i in range(20)}
        )
        dnf = DNF.from_sets([{f"v{i}": True} for i in range(20)])
        result = approximate_probability(
            dnf, reg, epsilon=0.01, error_kind=RELATIVE
        )
        assert result.converged
        assert result.steps <= 2

    def test_low_probability_relative_needs_work_but_converges(self):
        rng = random.Random(42)
        reg = VariableRegistry.from_boolean_probabilities(
            {f"v{i}": rng.uniform(0.005, 0.02) for i in range(12)}
        )
        clauses = [
            {f"v{i}": True, f"v{(i + 1) % 12}": True} for i in range(12)
        ]
        dnf = DNF.from_sets(clauses)
        truth = brute_force_probability(dnf, reg)
        result = approximate_probability(
            dnf, reg, epsilon=0.01, error_kind=RELATIVE
        )
        assert result.converged
        assert (1 - 0.01) * truth <= result.estimate <= (1 + 0.01) * truth
