"""Tests for conjunctive-query evaluation with lineage."""

import pytest

from repro.core.semantics import brute_force_formula_probability
from repro.core.variables import VariableRegistry
from repro.db.cq import ConjunctiveQuery, Const, Inequality, SubGoal, Var
from repro.db.database import Database
from repro.db.engine import answer_selector, evaluate, evaluate_to_dnf
from repro.db.relation import Relation


@pytest.fixture
def database():
    reg = VariableRegistry()
    db = Database(reg)
    db.add(
        Relation.tuple_independent(
            "R",
            ["a", "b"],
            [((1, 10), 0.5), ((1, 20), 0.6), ((2, 10), 0.7)],
            reg,
        )
    )
    db.add(
        Relation.tuple_independent(
            "S", ["b", "c"], [((10, 5), 0.4), ((20, 6), 0.9)], reg
        )
    )
    db.add(Relation.certain("T", ["c"], [(5,), (6,), (7,)]))
    return db


class TestBasicEvaluation:
    def test_single_subgoal_all_rows(self, database):
        a, b = Var("A"), Var("B")
        query = ConjunctiveQuery([a, b], [SubGoal("R", [a, b])])
        answers = evaluate(query, database)
        assert {ans.values for ans in answers} == {(1, 10), (1, 20), (2, 10)}

    def test_join_produces_conjoined_lineage(self, database):
        a, b, c = Var("A"), Var("B"), Var("C")
        query = ConjunctiveQuery(
            [a, c], [SubGoal("R", [a, b]), SubGoal("S", [b, c])]
        )
        answers = {ans.values: ans for ans in evaluate(query, database)}
        assert set(answers) == {(1, 5), (1, 6), (2, 5)}
        # (1,5) comes from r(1,10) ∧ s(10,5): probability 0.5 * 0.4.
        reg = database.registry
        assert brute_force_formula_probability(
            answers[(1, 5)].lineage, reg
        ) == pytest.approx(0.5 * 0.4)

    def test_projection_merges_derivations(self, database):
        a, b, c = Var("A"), Var("B"), Var("C")
        query = ConjunctiveQuery(
            [a], [SubGoal("R", [a, b]), SubGoal("S", [b, c])]
        )
        answers = {ans.values: ans for ans in evaluate(query, database)}
        reg = database.registry
        # a=1 via (r(1,10)∧s(10,5)) ∨ (r(1,20)∧s(20,6))
        expected = 1 - (1 - 0.5 * 0.4) * (1 - 0.6 * 0.9)
        assert brute_force_formula_probability(
            answers[(1,)].lineage, reg
        ) == pytest.approx(expected)

    def test_boolean_query_single_answer(self, database):
        a, b = Var("A"), Var("B")
        query = ConjunctiveQuery([], [SubGoal("R", [a, b])])
        answers = evaluate(query, database)
        assert len(answers) == 1
        assert answers[0].values == ()

    def test_no_match_returns_empty(self, database):
        a = Var("A")
        query = ConjunctiveQuery(
            [a], [SubGoal("R", [a, Const(999)])]
        )
        assert evaluate(query, database) == []


class TestConstantsAndRepeats:
    def test_constant_in_subgoal(self, database):
        b = Var("B")
        query = ConjunctiveQuery([b], [SubGoal("R", [Const(1), b])])
        answers = {ans.values for ans in evaluate(query, database)}
        assert answers == {(10,), (20,)}

    def test_repeated_variable_within_subgoal(self):
        reg = VariableRegistry()
        db = Database(reg)
        db.add(
            Relation.tuple_independent(
                "P",
                ["x", "y"],
                [((1, 1), 0.5), ((1, 2), 0.6), ((3, 3), 0.7)],
                reg,
            )
        )
        a = Var("A")
        query = ConjunctiveQuery([a], [SubGoal("P", [a, a])])
        answers = {ans.values for ans in evaluate(query, db)}
        assert answers == {(1,), (3,)}

    def test_certain_rows_contribute_true_lineage(self, database):
        c = Var("C")
        query = ConjunctiveQuery([c], [SubGoal("T", [c])])
        answers = evaluate(query, database)
        reg = database.registry
        for ans in answers:
            assert brute_force_formula_probability(
                ans.lineage, reg
            ) == pytest.approx(1.0)


class TestInequalities:
    def test_cross_subgoal_inequality(self, database):
        a, b, c = Var("A"), Var("B"), Var("C")
        query = ConjunctiveQuery(
            [a, c],
            [SubGoal("R", [a, b]), SubGoal("S", [b, c])],
            [Inequality(a, "<", c)],
        )
        answers = {ans.values for ans in evaluate(query, database)}
        assert answers == {(1, 5), (1, 6), (2, 5)}

    def test_constant_inequality(self, database):
        a, b = Var("A"), Var("B")
        query = ConjunctiveQuery(
            [a, b],
            [SubGoal("R", [a, b])],
            [Inequality(b, ">=", Const(20))],
        )
        answers = {ans.values for ans in evaluate(query, database)}
        assert answers == {(1, 20)}

    def test_unbindable_inequality_rejected(self, database):
        a, b = Var("A"), Var("B")
        with pytest.raises(ValueError, match="not in query body"):
            ConjunctiveQuery(
                [a],
                [SubGoal("R", [a, b])],
                [Inequality(Var("GHOST"), "<", Const(1))],
            )

    def test_self_join_inequality(self):
        """Inequality self-join (the IQ pattern R(X), R2(Y), X < Y)."""
        reg = VariableRegistry()
        db = Database(reg)
        db.add(
            Relation.tuple_independent(
                "R", ["x"], [((1,), 0.5), ((2,), 0.6)], reg
            )
        )
        db.add(
            Relation.tuple_independent(
                "S", ["y"], [((1,), 0.7), ((3,), 0.8)], reg
            )
        )
        x, y = Var("X"), Var("Y")
        query = ConjunctiveQuery(
            [],
            [SubGoal("R", [x]), SubGoal("S", [y])],
            [Inequality(x, "<", y)],
        )
        answers = evaluate(query, db)
        assert len(answers) == 1
        reg = db.registry
        # Qualifying pairs: (x=1, y=3) and (x=2, y=3); the lineage is
        # (r1 ∧ s3) ∨ (r2 ∧ s3) = s3 ∧ (r1 ∨ r2).
        actual = brute_force_formula_probability(answers[0].lineage, reg)
        assert actual == pytest.approx(0.8 * (1 - 0.5 * 0.4))


class TestErrors:
    def test_arity_mismatch(self, database):
        a = Var("A")
        query = ConjunctiveQuery([a], [SubGoal("R", [a])])
        with pytest.raises(ValueError, match="terms"):
            evaluate(query, database)

    def test_unknown_relation(self, database):
        a = Var("A")
        query = ConjunctiveQuery([a], [SubGoal("GHOST", [a])])
        with pytest.raises(KeyError):
            evaluate(query, database)


class TestToDnf:
    def test_evaluate_to_dnf_matches_lineage(self, database):
        a, b, c = Var("A"), Var("B"), Var("C")
        query = ConjunctiveQuery(
            [a], [SubGoal("R", [a, b]), SubGoal("S", [b, c])]
        )
        reg = database.registry
        for values, dnf in evaluate_to_dnf(query, database):
            lineage = {
                ans.values: ans.lineage for ans in evaluate(query, database)
            }[values]
            assert brute_force_formula_probability(
                lineage, reg
            ) == pytest.approx(
                __import__(
                    "repro.core.semantics", fromlist=["x"]
                ).brute_force_probability(dnf, reg)
            )

    def test_answer_selector_usable(self, database):
        selector = answer_selector(database)
        from repro.core.dnf import DNF

        dnf = DNF.from_sets([{("R", 0): True}, {("R", 1): True}])
        assert selector(dnf) in {("R", 0), ("R", 1)}
