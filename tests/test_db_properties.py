"""Property-based tests for the database layer.

Random small tuple-independent databases and conjunctive queries; the
engine's lineage must agree with direct possible-worlds evaluation, and
SPROUT must agree with the d-tree algorithms whenever it accepts the
query.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_probability
from repro.core.semantics import brute_force_formula_probability
from repro.core.variables import VariableRegistry
from repro.db.cq import ConjunctiveQuery, SubGoal, Var
from repro.db.database import Database
from repro.db.engine import evaluate
from repro.db.relation import Relation
from repro.db.sprout import UnsafeQueryError, sprout_confidence

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_value = st.integers(min_value=1, max_value=3)
_prob = st.floats(min_value=0.1, max_value=0.9, allow_nan=False)


@st.composite
def databases(draw):
    """Two binary relations R(a,b), S(a,c) over a tiny value domain."""
    registry = VariableRegistry()
    database = Database(registry)
    for name, attrs in (("R", ["a", "b"]), ("S", ["a", "c"])):
        row_count = draw(st.integers(min_value=0, max_value=4))
        rows = {}
        for _ in range(row_count):
            key = (draw(_value), draw(_value))
            rows.setdefault(key, draw(_prob))
        database.add(
            Relation.tuple_independent(
                name, attrs, list(rows.items()), registry
            )
        )
    return database


def world_rows(relation, world):
    return [
        values
        for values, lineage in relation.rows
        if lineage.evaluate(world)
    ]


def all_worlds(registry):
    import itertools

    variables = sorted(registry.variables(), key=repr)
    for combo in itertools.product([True, False], repeat=len(variables)):
        world = dict(zip(variables, combo))
        yield world, registry.world_probability(world)


class TestEngineSemantics:
    @given(databases())
    @settings(**COMMON)
    def test_join_lineage_matches_worlds(self, database):
        a, b, c = Var("A"), Var("B"), Var("C")
        query = ConjunctiveQuery(
            [a], [SubGoal("R", [a, b]), SubGoal("S", [a, c])]
        )
        answers = {ans.values: ans.lineage for ans in evaluate(query, database)}
        registry = database.registry
        # Per world: the answer set of the deterministic instance must
        # equal the set of answers whose lineage holds.
        for world, _probability in all_worlds(registry):
            r_rows = world_rows(database["R"], world)
            s_rows = world_rows(database["S"], world)
            expected = {
                (ra,)
                for (ra, _rb) in r_rows
                for (sa, _sc) in s_rows
                if ra == sa
            }
            actual = {
                values
                for values, lineage in answers.items()
                if lineage.evaluate(world)
            }
            assert actual == expected

    @given(databases())
    @settings(**COMMON)
    def test_sprout_equals_dtree_and_brute_force(self, database):
        a, b, c = Var("A"), Var("B"), Var("C")
        query = ConjunctiveQuery(
            [], [SubGoal("R", [a, b]), SubGoal("S", [a, c])]
        )
        registry = database.registry
        answers = evaluate(query, database)
        try:
            sprout = dict(sprout_confidence(query, database))
        except UnsafeQueryError:  # pragma: no cover - query is safe
            raise AssertionError("hierarchical query rejected")
        if not answers:
            assert sprout == {}
            return
        lineage = answers[0].lineage
        truth = brute_force_formula_probability(lineage, registry)
        assert math.isclose(sprout[()], truth, abs_tol=1e-9)
        assert math.isclose(
            exact_probability(lineage.to_dnf(), registry),
            truth,
            abs_tol=1e-9,
        )

    @given(databases())
    @settings(**COMMON)
    def test_projection_probability_monotone(self, database):
        """P(boolean query) ≥ P(any single answer of the non-boolean
        version): projection only merges evidence."""
        a, b, c = Var("A"), Var("B"), Var("C")
        boolean = ConjunctiveQuery(
            [], [SubGoal("R", [a, b]), SubGoal("S", [a, c])]
        )
        grouped = ConjunctiveQuery(
            [a], [SubGoal("R", [a, b]), SubGoal("S", [a, c])]
        )
        registry = database.registry
        boolean_answers = evaluate(boolean, database)
        if not boolean_answers:
            return
        total = brute_force_formula_probability(
            boolean_answers[0].lineage, registry
        )
        for answer in evaluate(grouped, database):
            partial = brute_force_formula_probability(
                answer.lineage, registry
            )
            assert partial <= total + 1e-9
