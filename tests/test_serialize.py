"""Property tests for versioned circuit serialization.

The contracts, over the seeded generator shared with
``tests/test_parallel_differential.py``:

* **Round trip** — ``decode(encode(circuit))`` evaluates bit-identically
  (values, bounds, gradients) for exact, partial, and conditioned
  circuits, and the lineage key survives.
* **Store integrity** — a store rejects bad magic, unsupported format
  versions, and corrupted payloads with clear
  :class:`~repro.circuits.CircuitStoreError` messages; ``strict=False``
  skips entries the registry no longer covers instead of failing.
* **Cross-process identity** — a cache saved here and reloaded in a
  fresh ``python -c`` process (fresh intern tables, different dense
  ids) answers the same queries with strategy ``"circuit"`` and
  bit-identical confidences.
* **Coordinator no-recompile** — under ``workers=2`` +
  ``compile_circuits=True`` the final answers carry circuits that were
  compiled on the workers and shipped back: the coordinator's
  decomposition cache records **zero** cold steps during the batch, and
  a subsequent coordinator compile of the same lineage is a pure replay
  of the merged worker cache slices (``cold_steps == 0``).
"""

import json
import os
import struct
import subprocess
import sys

import pytest

from repro import (
    CircuitCache,
    CircuitStoreError,
    ConfidenceEngine,
    EngineConfig,
    ProbDB,
    compile_circuit,
)
from repro.circuits import circuit_store_info, save_circuit_store
from repro.circuits.compiler import CircuitCompilationStats
from repro.circuits.serialize import (
    FORMAT_VERSION,
    decode_circuit,
    encode_cache_slice,
    encode_circuit,
    merge_cache_slice,
)
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.memo import DecompositionCache
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry

from test_parallel_differential import make_group

#: (groups, cases per group) — the generated round-trip corpus.
SERIALIZE_GROUPS = (5, 20)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(SERIALIZE_GROUPS[0]))
    def test_exact_circuits_round_trip_bit_identically(self, seed):
        registry, dnfs = make_group("szr", seed, SERIALIZE_GROUPS[1])
        for index, dnf in enumerate(dnfs):
            circuit = compile_circuit(dnf, registry)
            restored, key = decode_circuit(
                encode_circuit(circuit, key=dnf), registry
            )
            assert key == dnf, (seed, index)
            assert restored.evaluate() == circuit.evaluate(), (seed, index)
            assert restored.evaluate_bounds() == circuit.evaluate_bounds()
            assert restored.gradients() == circuit.gradients(), (
                seed, index,
            )
            assert restored.node_histogram() == circuit.node_histogram()

    @pytest.mark.parametrize("budget", [1, 4, 12])
    def test_partial_circuits_round_trip(self, budget):
        registry, dnfs = make_group("szp", 17, 15)
        for index, dnf in enumerate(dnfs):
            circuit = compile_circuit(dnf, registry, max_nodes=budget)
            restored, _key = decode_circuit(
                encode_circuit(circuit), registry
            )
            assert restored.is_exact == circuit.is_exact
            assert restored.evaluate_bounds() == circuit.evaluate_bounds()
            assert len(restored.residuals) == len(circuit.residuals)
            # Residual variable *sets* survive by name: overriding a
            # residual variable widens both circuits identically.
            if not circuit.is_exact and dnf.variables:
                name = sorted(dnf.variables, key=repr)[0]
                assert restored.evaluate_bounds(
                    {name: 0.5}
                ) == circuit.evaluate_bounds({name: 0.5}), (budget, index)

    def test_conditioned_circuits_round_trip(self):
        registry, dnfs = make_group("szc", 23, 10)
        for dnf in dnfs:
            names = sorted(dnf.variables, key=repr)
            if len(names) < 2:
                continue
            circuit = compile_circuit(dnf, registry).condition(
                names[0], True
            ).condition(names[1], False)
            restored, _key = decode_circuit(
                encode_circuit(circuit), registry
            )
            assert restored.conditioned == circuit.conditioned
            assert restored.evaluate() == circuit.evaluate()

    def test_non_boolean_domains_round_trip(self):
        registry = VariableRegistry()
        registry.add_variable("szn_u", {"a": 0.5, "b": 0.2, "c": 0.3})
        registry.add_boolean("szn_x", 0.4)
        dnf = DNF(
            (
                Clause({"szn_u": "a", "szn_x": True}),
                Clause({"szn_u": "b"}),
            )
        )
        circuit = compile_circuit(dnf, registry)
        restored, key = decode_circuit(
            encode_circuit(circuit, key=dnf), registry
        )
        assert key == dnf
        assert restored.evaluate() == circuit.evaluate()
        overrides = {"szn_u": {"a": 0.1, "b": 0.8, "c": 0.1}}
        assert restored.evaluate(overrides) == circuit.evaluate(overrides)


class TestStoreIntegrity:
    def _store(self, tmp_path, seed=31, cases=6):
        registry, dnfs = make_group("szs", seed, cases)
        cache = CircuitCache()
        for dnf in dnfs:
            cache.put(dnf, compile_circuit(dnf, registry))
        path = tmp_path / "circuits.rcir"
        cache.save(path)
        return registry, dnfs, cache, path

    def test_cache_save_load_round_trip(self, tmp_path):
        registry, dnfs, cache, path = self._store(tmp_path)
        loaded = CircuitCache.load(path, registry)
        assert len(loaded) == len(cache)
        for dnf in dnfs:
            original = cache.entries[dnf]
            restored = loaded.get(dnf)
            assert restored is not None
            assert restored.evaluate() == original.evaluate()

    def test_store_info_reports_header(self, tmp_path):
        _registry, _dnfs, cache, path = self._store(tmp_path, seed=32)
        info = circuit_store_info(path)
        assert info["format_version"] == FORMAT_VERSION
        assert info["entries"] == len(cache)
        # Saved by this very process, so the provenance digest matches.
        assert info["intern_digest_matches"] is True

    def test_bad_magic_is_rejected(self, tmp_path):
        path = tmp_path / "not-a-store.rcir"
        path.write_bytes(b"GIF89a" + b"\x00" * 64)
        with pytest.raises(CircuitStoreError, match="bad magic"):
            CircuitCache.load(path, VariableRegistry())

    def test_wrong_version_is_rejected(self, tmp_path):
        registry, _dnfs, _cache, path = self._store(tmp_path, seed=33)
        raw = bytearray(path.read_bytes())
        # The version is the u16 right after the 4-byte magic.
        struct.pack_into("<H", raw, 4, FORMAT_VERSION + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(
            CircuitStoreError, match="unsupported circuit-store format"
        ):
            CircuitCache.load(path, registry)

    def test_corrupted_payload_is_rejected(self, tmp_path):
        registry, _dnfs, _cache, path = self._store(tmp_path, seed=34)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a payload bit; the header stays intact
        path.write_bytes(bytes(raw))
        with pytest.raises(CircuitStoreError, match="corrupted"):
            CircuitCache.load(path, registry)

    def test_inconsistent_node_structure_is_rejected(self):
        # A digest-valid record whose product node claims children the
        # record never wrote: slicing would silently truncate, so the
        # decoder must refuse instead of evaluating wrong.
        from repro.circuits.serialize import _NameTable, _Writer

        table = _NameTable()
        body = _Writer()
        body.u64(1)  # one node...
        body.buffer.write(bytes([2]))  # ...KIND_PROD
        body.i64_seq([0])  # arg0
        body.i64_seq([5])  # arg1: span [0, 5) over an empty
        body.i64_seq([])  # children array
        body.f64_seq([])  # consts
        body.u32(0)  # residuals
        body.u8(0)  # no key
        writer = _Writer()
        table.dump(writer, extra=())
        writer.buffer.write(body.getvalue())
        with pytest.raises(CircuitStoreError, match="child span"):
            decode_circuit(writer.getvalue(), VariableRegistry())

    def test_truncated_store_is_rejected(self, tmp_path):
        path = tmp_path / "tiny.rcir"
        path.write_bytes(b"RCIR")
        with pytest.raises(CircuitStoreError, match="too short"):
            circuit_store_info(path)

    def test_unknown_variables_fail_strict_and_skip_lenient(
        self, tmp_path
    ):
        registry, dnfs, cache, path = self._store(tmp_path, seed=35)
        # A registry missing every variable of the stored circuits:
        # strict load refuses, lenient load skips all of them.
        other = VariableRegistry.from_boolean_probabilities(
            {"szs_unrelated": 0.5}
        )
        with pytest.raises(CircuitStoreError, match="does not define"):
            CircuitCache.load(path, other)
        lenient = CircuitCache.load(path, other, strict=False)
        assert len(lenient) == 0

    def test_full_size_store_survives_the_next_put(self, tmp_path):
        # A store that fills the cache to its entry cap must not be
        # wholesale-evicted by the first post-load put().
        registry, dnfs = make_group("szv", 37, 4)
        donor = CircuitCache()
        for dnf in dnfs:
            donor.put(dnf, compile_circuit(dnf, registry))
        path = tmp_path / "full.rcir"
        donor.save(path)
        loaded = CircuitCache.load(
            path, registry, max_entries=len(donor)
        )
        extra_registry, extra = make_group("szv_extra", 38, 3)
        for extra_dnf in extra:
            loaded.put(
                extra_dnf, compile_circuit(extra_dnf, extra_registry)
            )
        for dnf in dnfs:
            assert dnf in loaded, "warm entry evicted by post-load put()"

    def test_near_full_store_keeps_headroom_too(self, tmp_path):
        # Loading max_entries - 1 entries must also grow the cap:
        # without headroom the second put() would wipe the warm set.
        registry, dnfs = make_group("szh", 39, 3)
        donor = CircuitCache()
        for dnf in dnfs:
            donor.put(dnf, compile_circuit(dnf, registry))
        path = tmp_path / "nearfull.rcir"
        donor.save(path)
        loaded = CircuitCache.load(
            path, registry, max_entries=len(donor) + 1
        )
        # The guarantee is headroom of at least the loaded set's own
        # size: len(donor) new compiles before eviction can trigger.
        extra_registry, extra = make_group("szh_extra", 40, 3)
        for extra_dnf in extra:
            loaded.put(
                extra_dnf, compile_circuit(extra_dnf, extra_registry)
            )
        for dnf in dnfs:
            assert dnf in loaded, "warm entry evicted by post-load put()"

    def test_keyless_records_load_but_skip_the_cache(self, tmp_path):
        registry, dnfs = make_group("szk", 36, 2)
        circuit = compile_circuit(dnfs[0], registry)
        path = tmp_path / "keyless.rcir"
        save_circuit_store(path, [(None, circuit)])
        cache = CircuitCache.load(path, registry)
        assert len(cache) == 0  # nothing addressable by lineage


class TestSessionPersistence:
    def _pairs(self, seed=41, cases=10):
        registry, dnfs = make_group("szd", seed, cases)
        return registry, [
            ((index,), dnf) for index, dnf in enumerate(dnfs)
        ]

    def test_probdb_persists_on_close_and_warm_starts(self, tmp_path):
        registry, pairs = self._pairs()
        store = tmp_path / "session.rcir"
        with ProbDB.from_registry(
            registry,
            EngineConfig(compile_circuits=True),
            persist_circuits=store,
        ) as session:
            cold = session.lineage(pairs).confidences()
        assert store.exists()
        assert all(r.strategy != "circuit" for _v, r in cold)

        with ProbDB.from_registry(
            registry, persist_circuits=store
        ) as warm_session:
            # No compile_circuits in the config: the warm path must come
            # purely from the loaded store.
            engine_misses = warm_session.engine.cache.stats()["misses"]
            warm = warm_session.lineage(pairs).confidences()
            assert warm_session.engine.cache.stats()["misses"] == (
                engine_misses
            ), "warm session touched the engine"
        assert all(r.strategy == "circuit" for _v, r in warm)
        for (_v1, a), (_v2, b) in zip(cold, warm):
            assert a.probability == b.probability

    def test_probdb_open_is_persist_sugar(self, tmp_path):
        from repro.db.database import Database

        registry, pairs = self._pairs(seed=42, cases=4)
        store = tmp_path / "open.rcir"
        with ProbDB.open(
            Database(registry),
            EngineConfig(compile_circuits=True),
            circuit_store=store,
        ) as session:
            session.lineage(pairs).confidences()
        with ProbDB.open(Database(registry), circuit_store=store) as again:
            warm = again.lineage(pairs).confidences()
        assert all(r.strategy == "circuit" for _v, r in warm)

    def test_stale_store_fails_loud_or_skips_by_choice(self, tmp_path):
        registry, pairs = self._pairs(seed=44, cases=3)
        store = tmp_path / "stale.rcir"
        with ProbDB.from_registry(
            registry,
            EngineConfig(compile_circuits=True),
            persist_circuits=store,
        ) as session:
            session.lineage(pairs).confidences()
        # The "database" drops every variable: default construction
        # fails loudly, strict_store=False starts cold instead.
        smaller = VariableRegistry.from_boolean_probabilities(
            {"szd_survivor": 0.5}
        )
        with pytest.raises(CircuitStoreError):
            ProbDB.from_registry(smaller, persist_circuits=store)
        with ProbDB.from_registry(
            smaller, persist_circuits=store, strict_store=False
        ) as lenient:
            assert len(lenient.circuits) == 0  # stale entries skipped

    def test_save_circuits_requires_a_path(self):
        registry, _pairs = self._pairs(seed=43, cases=1)
        session = ProbDB.from_registry(registry)
        with pytest.raises(ValueError, match="no store path"):
            session.save_circuits()


#: Session B, byte-for-byte: runs in a fresh interpreter whose intern
#: tables have seen nothing but this workload, so every dense id
#: differs from the parent process's — the store must not care.
_CHILD_SCRIPT = r"""
import json, sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {tests!r})
from test_serialize import child_session
print(json.dumps(child_session({store!r})))
"""


def child_session(store_path):
    """The workload both processes run (imported by the child too)."""
    registry, dnfs = make_group("szx", 77, 12)
    pairs = [((index,), dnf) for index, dnf in enumerate(dnfs)]
    with ProbDB.from_registry(
        registry,
        EngineConfig(compile_circuits=True),
        persist_circuits=store_path,
    ) as session:
        results = session.lineage(pairs).confidences()
        return {
            "strategies": [r.strategy for _v, r in results],
            "probabilities": [r.probability for _v, r in results],
        }


class TestCrossProcess:
    def test_fresh_process_answers_bit_identically_from_store(
        self, tmp_path
    ):
        store = str(tmp_path / "xproc.rcir")
        parent = child_session(store)  # cold: compiles + saves
        assert all(s != "circuit" for s in parent["strategies"])

        here = os.path.dirname(os.path.abspath(__file__))
        src = os.path.join(os.path.dirname(here), "src")
        script = _CHILD_SCRIPT.format(src=src, tests=here, store=store)
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        child = json.loads(completed.stdout.strip().splitlines()[-1])
        assert all(s == "circuit" for s in child["strategies"]), (
            child["strategies"]
        )
        assert child["probabilities"] == parent["probabilities"], (
            "cross-process confidences are not bit-identical"
        )


class TestCacheSliceShipping:
    def test_slice_merge_makes_a_cold_cache_replay(self):
        registry, dnfs = make_group("szm", 51, 8)
        donor = ConfidenceEngine(
            registry, EngineConfig(try_read_once=False)
        )
        for dnf in dnfs:
            donor.compute(dnf)
            donor.compile_circuit(dnf)
        receiver = ConfidenceEngine(
            registry, EngineConfig(try_read_once=False)
        )
        cache = receiver.bind_cache()
        for dnf in dnfs:
            merge_cache_slice(
                encode_cache_slice(donor.cache, dnf), cache
            )
        for dnf in dnfs:
            stats = CircuitCompilationStats()
            circuit = receiver.compile_circuit(dnf, stats=stats)
            assert stats.cold_steps == 0, dnf
            assert circuit.evaluate() == donor.compile_circuit(
                dnf
            ).evaluate()

    def test_coordinator_performs_zero_cold_steps_under_workers(self):
        registry, dnfs = make_group("szw", 52, 8)
        engine = ConfidenceEngine(
            registry,
            EngineConfig(
                compile_circuits=True,
                workers=2,
                executor_kind="thread",
                try_read_once=False,
            ),
        )
        with engine:
            before = engine.cache.stats()
            results = engine.compute_many(dnfs)
            after = engine.cache.stats()
        assert all(r.circuit is not None for r in results)
        for dnf, result in zip(dnfs, results):
            truth = brute_force_probability(dnf, registry)
            assert abs(result.circuit.evaluate() - truth) <= 1e-9
        # The acceptance bar: the workers compiled and shipped the
        # final circuits, so the coordinator's own decomposition cache
        # saw zero cold steps for the whole batch...
        assert after["misses"] == before["misses"], (
            "coordinator re-decomposed despite worker shipping"
        )
        # ...and the shipped cache slices make a subsequent coordinator
        # compile a pure replay.
        stats = CircuitCompilationStats()
        engine.compile_circuit(dnfs[0], stats=stats)
        assert stats.cold_steps == 0

    def test_process_pool_ships_circuits_too(self):
        registry, dnfs = make_group("szq", 53, 6)
        engine = ConfidenceEngine(
            registry,
            EngineConfig(
                compile_circuits=True,
                workers=2,
                executor_kind="process",
                try_read_once=False,
            ),
        )
        with engine:
            before = engine.cache.stats()["misses"]
            results = engine.compute_many(dnfs)
            after = engine.cache.stats()["misses"]
        assert after == before
        for dnf, result in zip(dnfs, results):
            assert result.circuit is not None
            truth = brute_force_probability(dnf, registry)
            assert abs(result.circuit.evaluate() - truth) <= 1e-9

    def test_budgeted_sharded_batch_ships_partial_circuits(self):
        registry, dnfs = make_group("szb", 54, 6)
        engine = ConfidenceEngine(
            registry,
            EngineConfig(
                compile_circuits=True,
                workers=2,
                executor_kind="thread",
                try_read_once=False,
                max_total_steps=12,
                initial_steps=1,
                mc_fallback=False,
                epsilon=0.05,
                error_kind="relative",
            ),
        )
        with engine:
            results = engine.compute_many(dnfs)
        for dnf, result in zip(dnfs, results):
            assert result.circuit is not None
            lower, upper = result.circuit.evaluate_bounds()
            truth = brute_force_probability(dnf, registry)
            assert lower - 1e-9 <= truth <= upper + 1e-9
