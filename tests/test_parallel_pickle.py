"""Picklability and intern-snapshot properties of the core types.

The parallel execution layer ships lineage to worker processes as bare
interned-id tuples, valid only because the pool initializer replays the
coordinator's intern-table snapshot first.  These tests pin down the
contract:

* every core type — :class:`Atom`, :class:`Clause`, :class:`DNF`,
  :class:`VariableRegistry` — survives a pickle round-trip with
  identical semantics and (in-process) identical interned ids;
* :func:`intern_snapshot` / :func:`install_intern_snapshot` are
  idempotent and reject divergence;
* a **spawn**-started worker (fresh interpreter, empty intern tables)
  that installs the snapshot decodes id-encoded DNFs back to the exact
  variables and values the parent encoded — the strongest "ids are
  stable across worker boundaries" statement available.
"""

import multiprocessing
import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dnf import DNF
from repro.core.events import Atom, Clause
from repro.core.semantics import brute_force_probability
from repro.core.variables import (
    VariableRegistry,
    install_intern_snapshot,
    intern_snapshot,
)

VARIABLES = [f"pk{i}" for i in range(6)]

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def clause_specs(draw):
    size = draw(st.integers(min_value=0, max_value=4))
    variables = draw(
        st.lists(
            st.sampled_from(VARIABLES),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    polarities = draw(
        st.lists(
            st.booleans(), min_size=len(variables),
            max_size=len(variables),
        )
    )
    return dict(zip(variables, polarities))


class TestPickleRoundTrips:
    @given(
        st.sampled_from(VARIABLES),
        st.one_of(st.booleans(), st.integers(), st.text(max_size=5)),
    )
    @settings(**COMMON)
    def test_atom_round_trip(self, variable, value):
        atom = Atom(variable, value)
        loaded = pickle.loads(pickle.dumps(atom))
        assert loaded == atom
        assert loaded.atom_id == atom.atom_id
        assert loaded.var_id == atom.var_id
        assert loaded.variable == atom.variable
        assert loaded.value == atom.value

    @given(clause_specs())
    @settings(**COMMON)
    def test_clause_round_trip(self, spec):
        clause = Clause(spec)
        loaded = pickle.loads(pickle.dumps(clause))
        assert loaded == clause
        assert loaded.atom_ids == clause.atom_ids
        assert dict(loaded.items()) == dict(clause.items())
        assert hash(loaded) == hash(clause)

    @given(st.lists(clause_specs(), min_size=0, max_size=6))
    @settings(**COMMON)
    def test_dnf_round_trip(self, specs):
        dnf = DNF(Clause(spec) for spec in specs)
        loaded = pickle.loads(pickle.dumps(dnf))
        assert loaded == dnf
        assert hash(loaded) == hash(dnf)
        assert loaded.variable_ids == dnf.variable_ids
        assert [c.atom_ids for c in loaded.sorted_clauses()] == [
            c.atom_ids for c in dnf.sorted_clauses()
        ]

    def test_registry_round_trip_preserves_semantics(self):
        rng = random.Random(5)
        registry = VariableRegistry.from_boolean_probabilities(
            {name: rng.uniform(0.1, 0.9) for name in VARIABLES}
        )
        registry.add_variable(
            "pk_multi", {1: 0.25, 2: 0.25, 3: 0.5}
        )
        loaded = pickle.loads(pickle.dumps(registry))
        assert set(loaded.variables()) == set(registry.variables())
        for name in registry.variables():
            assert loaded.distribution(name) == registry.distribution(
                name
            )
        dnf = DNF.from_positive_clauses(
            [VARIABLES[:2], VARIABLES[2:4]]
        )
        assert brute_force_probability(
            dnf, loaded
        ) == brute_force_probability(dnf, registry)

    def test_engine_result_round_trip(self):
        # Worker → coordinator traffic: results must survive pickling.
        from repro.engine import ConfidenceEngine

        rng = random.Random(6)
        registry = VariableRegistry.from_boolean_probabilities(
            {name: rng.uniform(0.1, 0.9) for name in VARIABLES}
        )
        dnf = DNF(
            [
                Clause({VARIABLES[0]: True, VARIABLES[1]: False}),
                Clause({VARIABLES[2]: True}),
            ]
        )
        result = ConfidenceEngine(registry).compute(dnf)
        loaded = pickle.loads(pickle.dumps(result))
        assert loaded.probability == result.probability
        assert (loaded.lower, loaded.upper) == (
            result.lower, result.upper,
        )
        assert loaded.strategy == result.strategy
        assert loaded.converged == result.converged


class TestInternSnapshot:
    def test_snapshot_is_picklable_and_replayable(self):
        Atom("pk_snap_a", True)  # ensure at least one fresh entry
        snapshot = intern_snapshot()
        loaded = pickle.loads(pickle.dumps(snapshot))
        assert loaded == snapshot
        # Replaying into the same process verifies every id (idempotent).
        install_intern_snapshot(loaded)

    def test_install_is_idempotent(self):
        snapshot = intern_snapshot()
        install_intern_snapshot(snapshot)
        install_intern_snapshot(snapshot)
        assert intern_snapshot()[0][: len(snapshot[0])] == snapshot[0]

    def test_install_rejects_divergence(self):
        names, entries = intern_snapshot()
        # A snapshot claiming a different id-0 variable can never be
        # reconciled with this process's append-only tables.
        bogus = (("pk_wrong_name_for_id0",) + names[1:], entries)
        with pytest.raises(RuntimeError, match="diverged"):
            install_intern_snapshot(bogus)


class TestAcrossWorkerBoundary:
    """Real process boundary: ids must decode to the same atoms."""

    @pytest.fixture(scope="class")
    def spawn_pool(self):
        # spawn, not fork: the child starts with EMPTY intern tables, so
        # the snapshot replay is load-bearing, not a verification no-op.
        from concurrent.futures import ProcessPoolExecutor

        from repro.engine import ConfidenceEngine, EngineConfig
        from repro.engine_parallel import _process_worker_init

        rng = random.Random(7)
        registry = VariableRegistry.from_boolean_probabilities(
            {name: rng.uniform(0.1, 0.9) for name in VARIABLES}
        )
        pool = ProcessPoolExecutor(
            max_workers=1,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_process_worker_init,
            initargs=(intern_snapshot(), registry, EngineConfig()),
        )
        try:
            yield registry, pool
        finally:
            pool.shutdown()

    def test_ids_decode_identically_in_spawned_worker(self, spawn_pool):
        # Ship bare interned ids (the pool codec, not public pickle):
        # the spawned worker must decode them to the very same variables
        # and values, proving the snapshot made its id space identical.
        from repro.engine_parallel import _encode_dnf, _worker_probe

        _registry, pool = spawn_pool
        rng = random.Random(8)
        for _ in range(10):
            dnf = DNF(
                Clause(
                    {
                        rng.choice(VARIABLES): rng.random() < 0.5
                        for _ in range(rng.randint(1, 3))
                    }
                )
                for _ in range(rng.randint(1, 5))
            )
            expected = [
                (
                    clause.atom_ids,
                    sorted(clause.items(), key=lambda item: repr(item)),
                )
                for clause in dnf.sorted_clauses()
            ]
            probe = pool.submit(_worker_probe, _encode_dnf(dnf)).result()
            assert probe == expected

    def test_spawned_worker_computes_identical_probability(
        self, spawn_pool
    ):
        from repro.engine_parallel import _encode_dnf, _process_run_items

        registry, pool = spawn_pool
        from repro.engine import ConfidenceEngine

        rng = random.Random(9)
        dnfs = [
            DNF(
                Clause(
                    {
                        rng.choice(VARIABLES): rng.random() < 0.5
                        for _ in range(rng.randint(1, 3))
                    }
                )
                for _ in range(rng.randint(1, 6))
            )
            for _ in range(8)
        ]
        serial = ConfidenceEngine(registry).compute_many(dnfs)
        items = [(i, _encode_dnf(dnf), None) for i, dnf in enumerate(dnfs)]
        remote, _stats, _key = pool.submit(
            _process_run_items, items, 0.0, "absolute", None
        ).result()
        for (index, result), expected in zip(remote, serial):
            assert result.probability == expected.probability
            assert (result.lower, result.upper) == (
                expected.lower, expected.upper,
            )
