"""MC fallback reproducibility under ``EngineConfig.rng_seed``.

The ``aconf`` rung used to draw from an unseeded :class:`random.Random`,
so any budget-exhausted relative-error run gave different estimates on
every invocation — untestable serially and hopeless differentially.
``rng_seed`` makes every MC estimate a pure function of
``(rng_seed, lineage)``: stable across runs, across tuple orderings, and
across shard assignments (the derivation hashes the interned lineage,
not its position in the batch).
"""

import random

from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry
from repro.engine import ConfidenceEngine, EngineConfig

#: Forces the d-tree rung to give up instantly so every case reaches MC.
MC_CONFIG = EngineConfig(
    epsilon=0.2,
    error_kind="relative",
    try_read_once=False,
    max_steps=0,
    mc_max_samples=400,
    rng_seed=99,
)


def _cases(seed, count=6, variables=8):
    rng = random.Random(seed)
    names = [f"mcs{seed}v{i}" for i in range(variables)]
    registry = VariableRegistry.from_boolean_probabilities(
        {name: rng.uniform(0.1, 0.9) for name in names}
    )
    dnfs = [
        DNF(
            Clause(
                {
                    rng.choice(names): rng.random() < 0.5
                    for _ in range(rng.randint(1, 3))
                }
            )
            for _ in range(rng.randint(2, 7))
        )
        for _ in range(count)
    ]
    return registry, dnfs


class TestSeededMC:
    def test_two_runs_with_same_seed_agree(self):
        registry, dnfs = _cases(1)
        first = ConfidenceEngine(registry, MC_CONFIG).compute_many(dnfs)
        second = ConfidenceEngine(registry, MC_CONFIG).compute_many(dnfs)
        assert [r.probability for r in first] == [
            r.probability for r in second
        ]
        assert {r.strategy for r in first} >= {"mc"}

    def test_estimate_is_order_independent(self):
        # Per-lineage seed derivation: reversing the batch must not
        # change any tuple's estimate.
        registry, dnfs = _cases(2)
        forward = ConfidenceEngine(registry, MC_CONFIG).compute_many(
            dnfs
        )
        backward = ConfidenceEngine(registry, MC_CONFIG).compute_many(
            list(reversed(dnfs))
        )
        assert [r.probability for r in forward] == [
            r.probability for r in reversed(backward)
        ]

    def test_serial_and_sharded_mc_agree(self):
        # MC always finalizes on the coordinator, so a sharded batch
        # with the same seed must reproduce the serial estimates
        # whenever the d-tree bounds agree — and with max_steps=0 both
        # paths report the same trivial bounds, so they must.
        registry, dnfs = _cases(3)
        serial = ConfidenceEngine(registry, MC_CONFIG).compute_many(dnfs)
        parallel = ConfidenceEngine(
            registry,
            MC_CONFIG.replace(workers=3, executor_kind="thread"),
        ).compute_many(dnfs)
        assert [r.probability for r in serial] == [
            r.probability for r in parallel
        ]

    def test_different_seeds_vary(self):
        registry, dnfs = _cases(4)
        first = ConfidenceEngine(registry, MC_CONFIG).compute_many(dnfs)
        other = ConfidenceEngine(
            registry, MC_CONFIG.replace(rng_seed=100)
        ).compute_many(dnfs)
        # Not bitwise-guaranteed to differ case by case, but across six
        # estimates an identical vector would mean the seed is ignored.
        assert [r.probability for r in first] != [
            r.probability for r in other
        ]

    def test_lineage_seed_is_hashseed_independent(self):
        # The per-lineage seed must be a pure function of the lineage
        # *structure* — equal under different PYTHONHASHSEED values,
        # which str hash() is not.
        import os
        import subprocess
        import sys

        program = (
            "from repro.core.dnf import DNF\n"
            "from repro.core.events import Clause\n"
            "from repro.engine import _lineage_seed\n"
            "dnf = DNF([Clause({'mcx': True, 'mcy': False}),"
            " Clause({'mcz': True})])\n"
            "print(_lineage_seed(99, dnf))\n"
        )
        outputs = set()
        for hashseed in ("123", "321"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = "src" + os.pathsep + env.get(
                "PYTHONPATH", ""
            )
            outputs.add(
                subprocess.run(
                    [sys.executable, "-c", program],
                    capture_output=True,
                    text=True,
                    check=True,
                    env=env,
                    cwd=os.path.dirname(
                        os.path.dirname(os.path.abspath(__file__))
                    ),
                ).stdout.strip()
            )
        assert len(outputs) == 1

    def test_unseeded_runs_remain_sound(self):
        registry, dnfs = _cases(5)
        config = MC_CONFIG.replace(rng_seed=None)
        results = ConfidenceEngine(registry, config).compute_many(dnfs)
        for dnf, result in zip(dnfs, results):
            truth = brute_force_probability(dnf, registry)
            assert result.lower - 1e-9 <= truth <= result.upper + 1e-9
