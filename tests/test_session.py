"""Tests for the ProbDB session façade and batched anytime computation.

Covers the PR-2 redesign:

* ``EngineConfig`` — validation, immutability, ``replace``/``describe``;
* ``ProbDB``/``QueryResult`` — laziness, memoisation, sql/query/lineage
  entry points, explain;
* ``ConfidenceEngine.compute_many`` — property-tested against N
  independent ``compute`` calls, budget exhaustion soundness, and
  decomposition-cache sharing across tuples (hit counter);
* ``QueryResult.bounds`` — sound, narrowing anytime snapshots;
* ``QueryResult.top_k`` — equals the historical ``top_k_answers``
  ranking on the Fig. 9 social-network motifs.
"""

import json
import random

import pytest

from repro import (
    ConfidenceEngine,
    DNF,
    EngineConfig,
    EngineResult,
    ProbDB,
    QueryResult,
)
from repro.core.events import Clause
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry
from repro.datasets.graphs import (
    path2_dnf,
    separation2_dnf,
    triangle_dnf,
)
from repro.datasets.social import karate_club_network
from repro.db.cq import ConjunctiveQuery, SubGoal, Var
from repro.db.database import Database
from repro.db.relation import Relation


def random_instance(seed, variables=8, max_clauses=10):
    rng = random.Random(seed)
    reg = VariableRegistry.from_boolean_probabilities(
        {f"s{seed}_{i}": rng.uniform(0.05, 0.95)
         for i in range(variables)}
    )
    names = list(reg.variables())
    clauses = [
        Clause(
            {
                rng.choice(names): rng.random() < 0.7
                for _ in range(rng.randint(1, 4))
            }
        )
        for _ in range(rng.randint(1, max_clauses))
    ]
    return DNF(clauses), reg


def small_database():
    reg = VariableRegistry()
    db = Database(reg)
    db.add(
        Relation.tuple_independent(
            "PR", ["x"],
            [((x,), 0.3 + 0.1 * i) for i, x in enumerate("abc")], reg
        )
    )
    db.add(
        Relation.tuple_independent(
            "PS", ["x", "y"],
            [((x, y), 0.4) for x in "abc" for y in "de"], reg
        )
    )
    return db


def pr_ps_query():
    x, y = Var("X"), Var("Y")
    return ConjunctiveQuery(
        [x],
        [SubGoal("PR", [x]), SubGoal("PS", [x, y])],
        [],
        name="pr-ps",
    )


class TestEngineConfig:
    def test_defaults_are_valid_and_frozen(self):
        config = EngineConfig()
        assert config.epsilon == 0.0
        with pytest.raises(AttributeError):
            config.epsilon = 0.5

    @pytest.mark.parametrize(
        "bad",
        [
            {"epsilon": -0.1},
            {"epsilon": 1.0},
            {"error_kind": "both"},
            {"initial_steps": 0},
            {"step_growth": 1},
            {"mc_max_samples": 0},
            {"max_total_steps": -1},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            EngineConfig(**bad)

    def test_replace_revalidates(self):
        config = EngineConfig(epsilon=0.01)
        assert config.replace(epsilon=0.05).epsilon == 0.05
        assert config.epsilon == 0.01  # original untouched
        with pytest.raises(ValueError):
            config.replace(epsilon=2.0)
        with pytest.raises(TypeError):
            config.replace(no_such_knob=1)

    def test_describe_is_json_serialisable(self):
        config = EngineConfig(
            epsilon=0.01,
            error_kind="relative",
            choose_variable=lambda dnf: next(iter(dnf.variables)),
        )
        description = json.loads(json.dumps(config.describe()))
        assert description["epsilon"] == 0.01
        assert description["choose_variable"] != "auto"
        assert EngineConfig().describe()["choose_variable"] == "auto"

    def test_engine_kwargs_are_config_shorthand(self):
        reg = VariableRegistry()
        engine = ConfidenceEngine(reg, epsilon=0.05, mc_fallback=False)
        assert engine.config == EngineConfig(
            epsilon=0.05, mc_fallback=False
        )
        assert engine.epsilon == 0.05  # compat property mirrors config
        base = EngineConfig(error_kind="relative")
        engine = ConfidenceEngine(reg, base, epsilon=0.1)
        assert engine.config.error_kind == "relative"
        assert engine.config.epsilon == 0.1


class TestProbDBSession:
    def test_config_and_engine_are_mutually_exclusive(self):
        db = small_database()
        engine = ConfidenceEngine.for_database(db)
        with pytest.raises(TypeError):
            ProbDB(db, EngineConfig(), engine=engine)
        session = ProbDB(db, engine=engine)
        assert session.config is engine.config

    def test_query_result_is_lazy(self, monkeypatch):
        db = small_database()
        session = ProbDB(db)
        calls = []
        import repro.db.session as session_module

        original = session_module.evaluate

        def spy(query, database):
            calls.append(query.name)
            return original(query, database)

        monkeypatch.setattr(session_module, "evaluate", spy)
        result = session.sql(
            "select PR.x, conf() from PR, PS where PR.x = PS.x"
        )
        assert calls == []  # parsing only; no evaluation yet
        assert len(result.answers()) == 3
        assert calls == ["sql"]
        result.answers()
        assert calls == ["sql"]  # lineage is cached

    def test_confidences_are_memoised(self):
        session = ProbDB(small_database())
        result = session.query(pr_ps_query())
        first = result.confidences(0.0)
        assert result.confidences(0.0) is first
        assert result.confidences(0.05) is not first

    def test_confidences_match_brute_force(self):
        db = small_database()
        session = ProbDB(db)
        result = session.query(pr_ps_query())
        lineage = dict(result.lineage())
        for values, outcome in result.confidences():
            truth = brute_force_probability(lineage[values], db.registry)
            assert outcome.probability == pytest.approx(truth, abs=1e-9)
            assert isinstance(outcome, EngineResult)

    def test_sql_and_cq_paths_agree(self):
        db = small_database()
        session = ProbDB(db)
        via_sql = session.sql(
            "select PR.x, conf() from PR, PS where PR.x = PS.x"
        ).confidences()
        via_cq = session.query(pr_ps_query()).confidences()
        assert [(v, round(r.probability, 12)) for v, r in via_sql] == [
            (v, round(r.probability, 12)) for v, r in via_cq
        ]

    def test_lineage_result_and_from_registry(self):
        dnf, reg = random_instance(3)
        session = ProbDB.from_registry(reg, EngineConfig(epsilon=0.0))
        result = session.lineage([(("phi",), dnf)])
        ((values, outcome),) = result.confidences()
        assert values == ("phi",)
        assert outcome.probability == pytest.approx(
            brute_force_probability(dnf, reg), abs=1e-9
        )
        assert session.confidence(dnf).probability == pytest.approx(
            outcome.probability, abs=1e-9
        )

    def test_lineage_result_refuses_explain(self):
        dnf, reg = random_instance(4)
        result = ProbDB.from_registry(reg).lineage([((), dnf)])
        with pytest.raises(ValueError):
            result.explain()

    def test_explain_via_session(self):
        db = small_database()
        session = ProbDB(db)
        report = session.explain(pr_ps_query())
        assert report.engine_strategy == "sprout"
        sql_report = session.explain(
            "select conf() from PR, PS where PR.x = PS.x"
        )
        assert sql_report.engine_strategy == report.engine_strategy
        assert session.query(pr_ps_query()).explain().engine_strategy == (
            report.engine_strategy
        )

    def test_cache_stats_exposed(self):
        session = ProbDB(small_database())
        stats = session.cache_stats()
        assert set(stats) == {"hits", "misses", "entries"}


class TestComputeMany:
    """The batched engine entry point against per-tuple computes."""

    @pytest.mark.parametrize("seed", range(25))
    def test_exact_batch_matches_independent_computes(self, seed):
        rng = random.Random(1000 + seed)
        # One registry, several DNFs over it.
        reg = VariableRegistry.from_boolean_probabilities(
            {f"c{seed}_{i}": rng.uniform(0.05, 0.95) for i in range(9)}
        )
        names = list(reg.variables())
        dnfs = [
            DNF(
                [
                    Clause(
                        {
                            rng.choice(names): rng.random() < 0.7
                            for _ in range(rng.randint(1, 3))
                        }
                    )
                    for _ in range(rng.randint(1, 8))
                ]
            )
            for _ in range(5)
        ]
        batched = ConfidenceEngine(reg).compute_many(dnfs)
        solo_engine = ConfidenceEngine(reg)
        for dnf, outcome in zip(dnfs, batched):
            solo = solo_engine.compute(dnf)
            assert outcome.converged
            assert outcome.probability == pytest.approx(
                solo.probability, abs=1e-9
            )
            truth = brute_force_probability(dnf, reg)
            assert outcome.lower - 1e-9 <= truth <= outcome.upper + 1e-9

    @pytest.mark.parametrize("seed", range(15))
    def test_epsilon_batch_within_guarantee(self, seed):
        epsilon = 0.05
        dnf_a, reg = random_instance(seed, variables=10, max_clauses=12)
        rng = random.Random(seed)
        names = list(reg.variables())
        dnf_b = DNF(
            [
                Clause(
                    {
                        rng.choice(names): rng.random() < 0.5
                        for _ in range(rng.randint(1, 3))
                    }
                )
                for _ in range(rng.randint(1, 10))
            ]
        )
        results = ConfidenceEngine(reg, epsilon=epsilon).compute_many(
            [dnf_a, dnf_b]
        )
        for dnf, outcome in zip((dnf_a, dnf_b), results):
            truth = brute_force_probability(dnf, reg)
            assert outcome.converged
            assert outcome.lower - 1e-9 <= truth <= outcome.upper + 1e-9
            assert abs(outcome.probability - truth) <= epsilon + 1e-9

    def test_shared_budget_round_robins_by_width(self):
        # Under a tight shared budget every tuple still carries sound
        # bounds — the anytime contract of the prioritized batch.
        rng = random.Random(50)
        reg = VariableRegistry.from_boolean_probabilities(
            {f"rr{i}": rng.uniform(0.1, 0.9) for i in range(12)}
        )
        names = list(reg.variables())
        dnfs = [
            DNF(
                [
                    Clause(
                        {
                            rng.choice(names): rng.random() < 0.6
                            for _ in range(rng.randint(1, 3))
                        }
                    )
                    for _ in range(rng.randint(4, 14))
                ]
            )
            for _ in range(4)
        ]
        engine = ConfidenceEngine(reg, try_read_once=False)
        results = engine.compute_many(
            dnfs, max_total_steps=8, initial_steps=1
        )
        assert len(results) == len(dnfs)
        for dnf, outcome in zip(dnfs, results):
            truth = brute_force_probability(dnf, reg)
            assert outcome.lower - 1e-9 <= truth <= outcome.upper + 1e-9

    def test_empty_batch(self):
        reg = VariableRegistry()
        assert ConfidenceEngine(reg).compute_many([]) == []

    def test_cache_is_shared_across_tuples(self):
        """The acceptance check: one batch over overlapping lineage hits
        the shared decomposition cache; the second tuple resolves almost
        for free compared to a cold engine."""
        rng = random.Random(7)
        reg = VariableRegistry.from_boolean_probabilities(
            {f"shared{i}": rng.uniform(0.2, 0.8) for i in range(12)}
        )
        names = list(reg.variables())
        base_clauses = [
            Clause(
                {
                    rng.choice(names): rng.random() < 0.5
                    for _ in range(2)
                }
            )
            for _ in range(14)
        ]
        reg.add_variable("extra", {True: 0.3, False: 0.7})
        phi1 = DNF(base_clauses)
        phi2 = DNF(base_clauses + [Clause({"extra": True})])

        shared_engine = ConfidenceEngine(reg, try_read_once=False)
        shared = shared_engine.compute_many([phi1, phi2])
        assert shared_engine.cache.stats()["hits"] > 0

        cold_engine = ConfidenceEngine(reg, try_read_once=False)
        (cold_phi2,) = cold_engine.compute_many([phi2])
        # phi2 rode on phi1's cache entries: far fewer fresh steps.
        assert shared[1].steps < cold_phi2.steps
        assert shared[1].probability == pytest.approx(
            cold_phi2.probability, abs=1e-9
        )


class TestBounds:
    def test_snapshots_are_sound_and_narrow(self):
        db = small_database()
        config = EngineConfig(initial_steps=1)
        session = ProbDB(db, config)
        result = session.query(pr_ps_query())
        truth = {
            values: brute_force_probability(dnf, db.registry)
            for values, dnf in result.lineage()
        }
        snapshots = list(result.bounds())
        assert snapshots, "at least the initial snapshot must be yielded"
        for snapshot in snapshots:
            for values, lower, upper in snapshot.intervals:
                assert lower - 1e-9 <= truth[values] <= upper + 1e-9
        assert snapshots[-1].converged
        assert snapshots[-1].max_width() <= snapshots[0].max_width() + 1e-12
        for values, lower, upper in snapshots[-1].intervals:
            assert upper - lower == pytest.approx(0.0, abs=1e-9)

    def test_budget_capped_iteration_terminates(self):
        dnf, reg = random_instance(21, variables=12, max_clauses=16)
        session = ProbDB.from_registry(
            reg, EngineConfig(try_read_once=False, initial_steps=1)
        )
        result = session.lineage([((), dnf)])
        snapshots = list(result.bounds(max_total_steps=16))
        assert snapshots
        truth = brute_force_probability(dnf, reg)
        for snapshot in snapshots:
            ((_values, lower, upper),) = snapshot.intervals
            assert lower - 1e-9 <= truth <= upper + 1e-9


class TestTopKViaSession:
    def test_matches_legacy_ranking_on_fig9_motifs(self):
        """Satellite check: QueryResult.top_k == old top_k_answers on the
        Fig. 9 social-network motif lineages."""
        network = karate_club_network()
        answers = [
            (("triangle",), triangle_dnf(network)),
            (("path2",), path2_dnf(network)),
            (("separation2",), separation2_dnf(network, 0, 33)),
        ]
        session = ProbDB.from_registry(network.registry)
        new = session.lineage(answers).top_k(2)

        from repro.db.topk import top_k_answers

        with pytest.warns(DeprecationWarning):
            old = top_k_answers(answers, network.registry, 2)
        assert [(r.values, r.lower, r.upper) for r in new] == [
            (r.values, r.lower, r.upper) for r in old
        ]

    def test_top_k_terminates_when_deadline_expired(self, fake_clock):
        # Regression: with the whole-batch deadline spent, every refine
        # returns immediately with 0 steps, so the ranking loop used to
        # spin forever (total_steps never reached the cap).  The fake
        # clock expires a *positive* deadline at a machine-independent
        # point mid-ranking: one second passes per clock read, so the
        # 3-second budget is gone after three checks no matter how
        # loaded CI is.
        fake_clock.auto_advance = 1.0
        rng = random.Random(9)
        reg = VariableRegistry.from_boolean_probabilities(
            {f"dl{i}": rng.uniform(0.2, 0.8) for i in range(12)}
        )
        names = list(reg.variables())
        answers = [
            (
                (index,),
                DNF(
                    [
                        Clause(
                            {
                                rng.choice(names): rng.random() < 0.5
                                for _ in range(2)
                            }
                        )
                        for _ in range(14)
                    ]
                ),
            )
            for index in range(2)
        ]
        session = ProbDB.from_registry(
            reg,
            EngineConfig(
                deadline_seconds=3.0,
                try_read_once=False,
                initial_steps=1,
            ),
        )
        ranked = session.lineage(answers).top_k(1)
        assert len(ranked) == 1
        assert 0.0 <= ranked[0].lower <= ranked[0].upper <= 1.0

    def test_ranking_matches_exact_order(self):
        rng = random.Random(5)
        reg = VariableRegistry.from_boolean_probabilities(
            {f"t{i}": rng.uniform(0.1, 0.9) for i in range(10)}
        )
        names = list(reg.variables())
        answers = []
        for index in range(6):
            clauses = [
                Clause(
                    {
                        rng.choice(names): rng.random() < 0.7
                        for _ in range(rng.randint(1, 3))
                    }
                )
                for _ in range(rng.randint(1, 5))
            ]
            answers.append(((index,), DNF(clauses)))
        truth = {
            values: brute_force_probability(dnf, reg)
            for values, dnf in answers
        }
        session = ProbDB.from_registry(reg)
        ranked = session.lineage(answers).top_k(3)
        expected = sorted(truth.values(), reverse=True)[:3]
        assert sorted(
            (round(truth[r.values], 12) for r in ranked), reverse=True
        ) == [round(p, 12) for p in expected]
