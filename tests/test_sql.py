"""Tests for the SQL conf() front-end.

Exercises the deprecated ``run_conf_query`` free-function shim on
purpose (the session path is covered by ``tests/test_session.py``), so
DeprecationWarnings are expected here even under ``-W error``.
"""

import pytest

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

from repro.core.semantics import brute_force_formula_probability
from repro.core.variables import VariableRegistry
from repro.db.database import Database
from repro.db.engine import evaluate
from repro.db.relation import Relation
from repro.db.sql import (
    SqlSyntaxError,
    parse_conf_query,
    run_conf_query,
)


@pytest.fixture
def social_db():
    """The Fig. 5(a) tuple-independent edge table."""
    reg = VariableRegistry()
    edges = [
        ((5, 7), 0.9),
        ((5, 11), 0.8),
        ((6, 7), 0.1),
        ((6, 11), 0.9),
        ((6, 17), 0.5),
        ((7, 17), 0.2),
    ]
    relation = Relation.tuple_independent("E", ["u", "v"], edges, reg)
    return Database(reg, [relation])


@pytest.fixture
def rs_db():
    reg = VariableRegistry()
    db = Database(reg)
    db.add(
        Relation.tuple_independent(
            "R",
            ["a", "b"],
            [((1, 10), 0.5), ((1, 20), 0.6), ((2, 10), 0.7)],
            reg,
        )
    )
    db.add(
        Relation.tuple_independent(
            "S", ["b", "c"], [((10, 5), 0.4), ((20, 6), 0.9)], reg
        )
    )
    return db


class TestPaperTriangleQuery:
    def test_verbatim_triangle_sql(self, social_db):
        """The exact SQL of Section VI.A computes P(triangle) = 0.01."""
        sql = """
            select conf() as triangle_prob
            from E n1, E n2, E n3
            where n1.v = n2.u and n2.v = n3.v and
                  n1.u = n3.u and n1.u < n2.u and n2.u < n3.v;
        """
        results = run_conf_query(sql, social_db)
        assert len(results) == 1
        (answer, confidence), = results
        assert answer == ()
        assert confidence == pytest.approx(0.1 * 0.5 * 0.2)

    def test_parsed_query_is_self_join(self, social_db):
        sql = """select conf() from E n1, E n2
                 where n1.v = n2.u"""
        parsed = parse_conf_query(sql, social_db)
        assert parsed.wants_conf
        assert parsed.query.has_self_join()
        assert len(parsed.query.subgoals) == 2


class TestSelectAndJoin:
    def test_equi_join_and_projection(self, rs_db):
        results = run_conf_query(
            "select R.a, conf() from R, S where R.b = S.b", rs_db
        )
        by_answer = dict(results)
        assert set(by_answer) == {(1,), (2,)}
        # a = 1: (r(1,10)∧s(10,5)) ∨ (r(1,20)∧s(20,6))
        assert by_answer[(1,)] == pytest.approx(
            1 - (1 - 0.5 * 0.4) * (1 - 0.6 * 0.9)
        )

    def test_unqualified_unambiguous_column(self, rs_db):
        results = run_conf_query(
            "select a, conf() from R, S where R.b = S.b and c = 5", rs_db
        )
        assert dict(results)[(1,)] == pytest.approx(0.5 * 0.4)

    def test_ambiguous_column_rejected(self, rs_db):
        with pytest.raises(SqlSyntaxError, match="ambiguous"):
            run_conf_query("select b from R, S", rs_db)

    def test_constant_selection(self, rs_db):
        results = run_conf_query(
            "select conf() from R where a = 2", rs_db
        )
        (_answer, confidence), = results
        assert confidence == pytest.approx(0.7)

    def test_inequality_with_literal(self, rs_db):
        results = run_conf_query(
            "select conf() from R where b >= 20", rs_db
        )
        (_answer, confidence), = results
        assert confidence == pytest.approx(0.6)

    def test_without_conf_returns_tuples(self, rs_db):
        results = run_conf_query("select R.a from R", rs_db)
        assert {answer for answer, conf in results} == {(1,), (2,)}
        assert all(conf is None for _a, conf in results)

    def test_string_literal(self, social_db):
        reg = social_db.registry
        social_db.add(
            Relation.tuple_independent(
                "N", ["node", "label"],
                [((5, "alice"), 0.5), ((6, "bob"), 0.5)], reg,
            )
        )
        results = run_conf_query(
            "select conf() from N where label = 'alice'", social_db
        )
        (_answer, confidence), = results
        assert confidence == pytest.approx(0.5)

    def test_confidence_matches_lineage(self, rs_db):
        parsed = parse_conf_query(
            "select R.a, conf() from R, S where R.b = S.b", rs_db
        )
        answers = {a.values: a for a in evaluate(parsed.query, rs_db)}
        for values, confidence in run_conf_query(
            "select R.a, conf() from R, S where R.b = S.b", rs_db
        ):
            expected = brute_force_formula_probability(
                answers[values].lineage, rs_db.registry
            )
            assert confidence == pytest.approx(expected)


class TestSyntaxErrors:
    def test_unknown_table(self, rs_db):
        with pytest.raises(SqlSyntaxError, match="unknown table"):
            parse_conf_query("select conf() from GHOST", rs_db)

    def test_unknown_column(self, rs_db):
        with pytest.raises(SqlSyntaxError, match="no column"):
            parse_conf_query("select R.zzz from R", rs_db)

    def test_duplicate_alias(self, rs_db):
        with pytest.raises(SqlSyntaxError, match="duplicate alias"):
            parse_conf_query("select conf() from R x, S x", rs_db)

    def test_garbage_rejected(self, rs_db):
        with pytest.raises(SqlSyntaxError):
            parse_conf_query("selec conf() from R", rs_db)

    def test_trailing_tokens_rejected(self, rs_db):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse_conf_query("select conf() from R ; extra", rs_db)

    def test_literal_only_comparison_rejected(self, rs_db):
        with pytest.raises(SqlSyntaxError, match="literal"):
            parse_conf_query("select conf() from R where 1 < 2", rs_db)

    def test_selected_constant_column_rejected(self, rs_db):
        with pytest.raises(SqlSyntaxError, match="pinned"):
            parse_conf_query("select a, conf() from R where a = 1", rs_db)


class TestEpsilonForwarding:
    def test_approximate_confidence(self, rs_db):
        exact = dict(
            run_conf_query(
                "select R.a, conf() from R, S where R.b = S.b", rs_db
            )
        )
        approx = dict(
            run_conf_query(
                "select R.a, conf() from R, S where R.b = S.b",
                rs_db,
                epsilon=0.05,
            )
        )
        for key, value in approx.items():
            assert abs(value - exact[key]) <= 0.05 + 1e-9
