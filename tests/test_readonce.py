"""Unit tests for read-once (1OF) factorization."""

import pytest

from repro.core.dnf import DNF
from repro.core.readonce import (
    ReadOnceAnd,
    ReadOnceOr,
    read_once_probability,
    try_read_once,
)
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry


@pytest.fixture
def registry():
    return VariableRegistry.from_boolean_probabilities(
        {name: 0.3 + 0.05 * i for i, name in enumerate("abcdxyzuvw")}
    )


class TestFactorable:
    def test_single_clause(self, registry):
        dnf = DNF.from_sets([{"x": True, "y": True}])
        formula = try_read_once(dnf)
        assert formula is not None
        assert formula.probability(registry) == pytest.approx(
            brute_force_probability(dnf, registry)
        )

    def test_disjunction_of_singletons(self, registry):
        dnf = DNF.from_sets([{"x": True}, {"y": True}, {"z": True}])
        formula = try_read_once(dnf)
        assert isinstance(formula, ReadOnceOr)
        assert formula.probability(registry) == pytest.approx(
            brute_force_probability(dnf, registry)
        )

    def test_remark_5_3_example(self, registry):
        # x∧(y∨z) ∨ v — the paper's Remark 5.3 factorization example.
        dnf = DNF.from_sets(
            [{"x": True, "y": True}, {"x": True, "z": True}, {"v": True}]
        )
        formula = try_read_once(dnf)
        assert formula is not None
        assert formula.variable_count() == 4  # each variable once
        assert formula.probability(registry) == pytest.approx(
            brute_force_probability(dnf, registry)
        )

    def test_product_of_disjunctions(self, registry):
        # (a∨b) ∧ (x∨y)
        dnf = DNF.from_sets(
            [
                {"a": True, "x": True},
                {"a": True, "y": True},
                {"b": True, "x": True},
                {"b": True, "y": True},
            ]
        )
        formula = try_read_once(dnf)
        assert isinstance(formula, ReadOnceAnd)
        assert formula.probability(registry) == pytest.approx(
            brute_force_probability(dnf, registry)
        )

    def test_hierarchical_lineage_is_read_once(self, registry):
        # Lineage of q():-R(A,B),S(A,C) on a toy instance:
        # ∨_a (∨_b r_ab) ∧ (∨_c s_ac) — expanded per a.
        reg = VariableRegistry.from_boolean_probabilities(
            {f"r{a}{b}": 0.4 for a in "12" for b in "12"}
            | {f"s{a}{c}": 0.6 for a in "12" for c in "12"}
        )
        clauses = []
        for a in "12":
            for b in "12":
                for c in "12":
                    clauses.append({f"r{a}{b}": True, f"s{a}{c}": True})
        dnf = DNF.from_sets(clauses)
        formula = try_read_once(dnf)
        assert formula is not None
        assert formula.probability(reg) == pytest.approx(
            brute_force_probability(dnf, reg)
        )

    def test_subsumed_clauses_do_not_block(self, registry):
        dnf = DNF.from_sets(
            [{"x": True}, {"x": True, "y": True}, {"z": True}]
        )
        assert try_read_once(dnf) is not None


class TestNotFactorable:
    def test_triangle_pattern(self):
        # xy ∨ yz ∨ xz: the classic non-read-once positive DNF.
        dnf = DNF.from_sets(
            [
                {"x": True, "y": True},
                {"y": True, "z": True},
                {"x": True, "z": True},
            ]
        )
        assert try_read_once(dnf) is None

    def test_hard_pattern_lineage(self):
        # R(X),S(X,Y),T(Y) with S = {(1,1),(1,2),(2,2)}:
        # r1 s11 t1 ∨ r1 s12 t2 ∨ r2 s22 t2 — non-hierarchical, not 1OF.
        dnf = DNF.from_sets(
            [
                {"r1": True, "s11": True, "t1": True},
                {"r1": True, "s12": True, "t2": True},
                {"r2": True, "s22": True, "t2": True},
            ]
        )
        assert try_read_once(dnf) is None

    def test_constants_are_not_1of(self):
        assert try_read_once(DNF.true()) is None
        assert try_read_once(DNF.false()) is None


class TestReadOnceProbability:
    def test_constants(self, registry):
        assert read_once_probability(DNF.false(), registry) == 0.0
        assert read_once_probability(DNF.true(), registry) == 1.0

    def test_none_for_non_factorable(self, registry):
        dnf = DNF.from_sets(
            [
                {"x": True, "y": True},
                {"y": True, "z": True},
                {"x": True, "z": True},
            ]
        )
        assert read_once_probability(dnf, registry) is None

    def test_matches_brute_force_when_factorable(self, registry):
        dnf = DNF.from_sets(
            [
                {"a": True, "x": True},
                {"a": True, "y": True},
                {"b": True, "x": True},
                {"b": True, "y": True},
                {"w": True},
            ]
        )
        value = read_once_probability(dnf, registry)
        assert value == pytest.approx(
            brute_force_probability(dnf, registry)
        )
