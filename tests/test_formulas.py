"""Unit tests for the lineage formula AST (repro.core.formulas)."""

import pytest

from repro.core.dnf import DNF
from repro.core.formulas import (
    FALSE,
    TRUE,
    AndNode,
    AtomNode,
    OrNode,
    atom,
    conj,
    disj,
)
from repro.core.semantics import brute_force_formula_probability
from repro.core.variables import VariableRegistry


@pytest.fixture
def registry():
    return VariableRegistry.from_boolean_probabilities(
        {"x": 0.3, "y": 0.2, "z": 0.7, "u": 0.5, "v": 0.8}
    )


class TestConstants:
    def test_true_dnf(self):
        assert TRUE.to_dnf().is_true()
        assert TRUE.evaluate({})

    def test_false_dnf(self):
        assert FALSE.to_dnf().is_false()
        assert not FALSE.evaluate({})

    def test_constant_folding(self):
        assert conj(atom("x"), FALSE) is FALSE
        assert disj(atom("x"), TRUE) is TRUE
        assert conj(TRUE, TRUE) is TRUE
        assert disj(FALSE, FALSE) is FALSE

    def test_true_dropped_in_conj(self):
        result = conj(TRUE, atom("x"))
        assert result == atom("x")

    def test_false_dropped_in_disj(self):
        result = disj(FALSE, atom("x"))
        assert result == atom("x")


class TestSmartConstructors:
    def test_flattening_conj(self):
        nested = conj(conj(atom("x"), atom("y")), atom("z"))
        assert isinstance(nested, AndNode)
        assert len(nested.children) == 3

    def test_flattening_disj(self):
        nested = disj(disj(atom("x"), atom("y")), atom("z"))
        assert isinstance(nested, OrNode)
        assert len(nested.children) == 3

    def test_single_child_unwrapped(self):
        assert conj(atom("x")) == atom("x")
        assert disj(atom("x")) == atom("x")

    def test_operator_overloads(self):
        combined = atom("x") & atom("y") | atom("z")
        assert isinstance(combined, OrNode)

    def test_atom_shorthand(self):
        node = atom("u", 3)
        assert node.atom.variable == "u"
        assert node.atom.value == 3


class TestToDNF:
    def test_atom(self):
        assert atom("x").to_dnf() == DNF.from_sets([{"x": True}])

    def test_and_distributes_over_or(self):
        # (x ∨ y) ∧ z  →  xz ∨ yz
        formula = conj(disj(atom("x"), atom("y")), atom("z"))
        assert formula.to_dnf() == DNF.from_sets(
            [{"x": True, "z": True}, {"y": True, "z": True}]
        )

    def test_inconsistent_branches_dropped(self):
        formula = conj(atom("x", True), atom("x", False))
        assert formula.to_dnf().is_false()

    def test_example_4_1_structure(self, registry):
        # (x ∨ y) ∧ ((z ∧ u) ∨ (¬z ∧ v)) from Example 4.1
        formula = conj(
            disj(atom("x"), atom("y")),
            disj(
                conj(atom("z", True), atom("u")),
                conj(atom("z", False), atom("v")),
            ),
        )
        dnf = formula.to_dnf()
        assert len(dnf) == 4
        p = brute_force_formula_probability(formula, registry)
        # P = (1-(1-P(x))(1-P(y))) * (P(z)P(u) + P(¬z)P(v))
        expected = (1 - 0.7 * 0.8) * (0.7 * 0.5 + 0.3 * 0.8)
        assert p == pytest.approx(expected)


class TestEvaluation:
    def test_evaluate_matches_dnf(self, registry):
        formula = disj(
            conj(atom("x"), atom("y")),
            conj(atom("z", False), atom("v")),
        )
        dnf = formula.to_dnf()
        for world, _prob in __import__(
            "repro.core.semantics", fromlist=["enumerate_worlds"]
        ).enumerate_worlds(registry, sorted(formula.variables(), key=repr)):
            assert formula.evaluate(world) == dnf.evaluate(world)

    def test_variables_collects_all(self):
        formula = conj(atom("x"), disj(atom("y"), atom("z")))
        assert formula.variables() == frozenset({"x", "y", "z"})

    def test_probability_exact_convenience(self, registry):
        formula = disj(atom("x"), atom("y"))
        expected = 1 - 0.7 * 0.8
        assert formula.probability_exact(registry) == pytest.approx(expected)


class TestEqualityHash:
    def test_atom_nodes(self):
        assert atom("x") == atom("x")
        assert hash(atom("x")) == hash(atom("x"))
        assert atom("x") != atom("y")

    def test_nary_nodes(self):
        assert conj(atom("x"), atom("y")) == conj(atom("x"), atom("y"))
        assert conj(atom("x"), atom("y")) != disj(atom("x"), atom("y"))

    def test_immutability(self):
        node = atom("x")
        with pytest.raises(AttributeError):
            node.atom = None
