"""Public-API surface tests.

Pins three properties of the package boundary:

* ``repro.__all__`` is complete and accurate — every public (non-module)
  symbol importable from ``repro`` appears in it and vice versa;
* the package ships a PEP 561 ``py.typed`` marker;
* the deprecated free functions (``evaluate_with_confidence``,
  ``run_conf_query``, ``top_k_answers``) emit ``DeprecationWarning`` and
  return results identical to the :class:`repro.ProbDB` session path.
"""

import inspect
import pathlib
import warnings

import pytest

import repro
from repro import EngineConfig, ProbDB
from repro.core.variables import VariableRegistry
from repro.db.cq import ConjunctiveQuery, SubGoal, Var
from repro.db.database import Database
from repro.db.engine import evaluate_to_dnf, evaluate_with_confidence
from repro.db.relation import Relation
from repro.db.sql import run_conf_query
from repro.db.topk import top_k_answers


class TestAllCompleteness:
    def test_every_public_symbol_is_in_all(self):
        public = {
            name
            for name in dir(repro)
            if not name.startswith("_")
            and not inspect.ismodule(getattr(repro, name))
        }
        missing = public - set(repro.__all__)
        assert not missing, f"public symbols missing from __all__: {missing}"

    def test_every_all_entry_exists(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ names missing {name!r}"

    def test_facade_symbols_exported(self):
        for name in ("ProbDB", "QueryResult", "BoundsSnapshot",
                     "EngineConfig", "BatchComputation", "RankedAnswer"):
            assert name in repro.__all__

    def test_db_package_exports_facade(self):
        import repro.db as db

        for name in ("ProbDB", "QueryResult", "BoundsSnapshot",
                     "rank_answers"):
            assert name in db.__all__
            assert hasattr(db, name)

    def test_py_typed_marker_ships_with_package(self):
        package_dir = pathlib.Path(repro.__file__).parent
        assert (package_dir / "py.typed").exists()


@pytest.fixture
def small_db():
    reg = VariableRegistry()
    db = Database(reg)
    db.add(
        Relation.tuple_independent(
            "PR", ["x"],
            [((x,), 0.3 + 0.1 * i) for i, x in enumerate("abc")], reg
        )
    )
    db.add(
        Relation.tuple_independent(
            "PS", ["x", "y"],
            [((x, y), 0.4) for x in "abc" for y in "de"], reg
        )
    )
    return db


def _query():
    x, y = Var("X"), Var("Y")
    return ConjunctiveQuery(
        [x],
        [SubGoal("PR", [x]), SubGoal("PS", [x, y])],
        [],
        name="shim-identity",
    )


class TestDeprecationShims:
    """Shims warn, and agree with the session path exactly."""

    def test_evaluate_with_confidence_warns_and_matches(self, small_db):
        with pytest.warns(DeprecationWarning, match="ProbDB"):
            old = evaluate_with_confidence(_query(), small_db)
        new = ProbDB(small_db).query(_query()).confidences()
        assert [(v, r.probability, r.strategy) for v, r in old] == [
            (v, r.probability, r.strategy) for v, r in new
        ]

    def test_run_conf_query_warns_and_matches(self, small_db):
        sql = "select PR.x, conf() from PR, PS where PR.x = PS.x"
        with pytest.warns(DeprecationWarning, match="ProbDB"):
            old = run_conf_query(sql, small_db)
        new = [
            (values, result.probability)
            for values, result in ProbDB(small_db).sql(sql).confidences()
        ]
        assert old == new

    def test_run_conf_query_without_conf_matches_answers(self, small_db):
        sql = "select PR.x from PR, PS where PR.x = PS.x"
        with pytest.warns(DeprecationWarning):
            old = run_conf_query(sql, small_db)
        assert old == [
            (values, None)
            for values in ProbDB(small_db).sql(sql).answers()
        ]

    def test_top_k_answers_warns_and_matches(self, small_db):
        answers = evaluate_to_dnf(_query(), small_db)
        with pytest.warns(DeprecationWarning, match="top_k"):
            old = top_k_answers(answers, small_db.registry, 2)
        new = ProbDB(small_db).lineage(answers).top_k(2)
        assert [(r.values, r.lower, r.upper) for r in old] == [
            (r.values, r.lower, r.upper) for r in new
        ]

    def test_session_path_is_warning_free(self, small_db):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = ProbDB(small_db, EngineConfig(epsilon=0.0))
            result = session.query(_query())
            result.answers()
            result.confidences()
            result.top_k(1)
            session.explain(_query())
