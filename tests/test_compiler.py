"""Unit tests for the exhaustive Fig. 1 compiler."""

import random

import pytest

from repro.core.compiler import (
    CompilationBudgetExceeded,
    CompilationStats,
    compile_dnf,
)
from repro.core.dnf import DNF
from repro.core.dtree import (
    ExclusiveOrNode,
    IndependentAndNode,
    IndependentOrNode,
    LeafNode,
)
from repro.core.events import Clause
from repro.core.semantics import brute_force_probability, enumerate_worlds
from repro.core.variables import VariableRegistry


@pytest.fixture
def registry():
    reg = VariableRegistry.from_boolean_probabilities(
        {"y": 0.4, "z": 0.6, "w": 0.25}
    )
    reg.add_variable("x", {1: 0.2, 2: 0.8})
    reg.add_variable("u", {1: 0.5, 2: 0.3, 3: 0.2})
    reg.add_boolean("v", 0.35)
    return reg


class TestFigure2Example:
    """Fig. 2: Φ = {{x=1}, {x=2,y}, {x=2,z}, {u=1,v}, {u=2}}."""

    def _dnf(self):
        return DNF.from_sets(
            [
                {"x": 1},
                {"x": 2, "y": True},
                {"x": 2, "z": True},
                {"u": 1, "v": True},
                {"u": 2},
            ]
        )

    def test_root_is_independent_or(self, registry):
        tree = compile_dnf(self._dnf(), registry)
        assert isinstance(tree, IndependentOrNode)
        assert len(tree.children) == 2  # {x,y,z} component and {u,v}

    def test_complete(self, registry):
        assert compile_dnf(self._dnf(), registry).is_complete()

    def test_probability_matches_brute_force(self, registry):
        dnf = self._dnf()
        tree = compile_dnf(dnf, registry)
        assert tree.probability(registry) == pytest.approx(
            brute_force_probability(dnf, registry)
        )

    def test_contains_exclusive_or_nodes(self, registry):
        histogram = compile_dnf(
            self._dnf(), registry
        ).inner_node_histogram()
        assert histogram.get("exclusive-or", 0) >= 1


class TestCorrectness:
    def test_true_dnf(self, registry):
        tree = compile_dnf(DNF.true(), registry)
        assert isinstance(tree, LeafNode)
        assert tree.probability(registry) == 1.0

    def test_false_dnf_rejected(self, registry):
        with pytest.raises(ValueError, match="unsatisfiable"):
            compile_dnf(DNF.false(), registry)

    def test_single_clause(self, registry):
        dnf = DNF.from_sets([{"y": True, "z": False}])
        tree = compile_dnf(dnf, registry)
        assert isinstance(tree, LeafNode)
        assert tree.probability(registry) == pytest.approx(0.4 * 0.4)

    def test_equivalence_on_all_worlds(self, registry):
        """Prop. 4.5: Compile(Φ) ≡ Φ — checked by evaluating the original
        DNF on every valuation and comparing with the tree probability
        restricted to that world's indicator (via probability equality on
        random sub-registries)."""
        dnf = DNF.from_sets(
            [
                {"y": True, "z": True},
                {"y": False, "w": True},
                {"v": True, "w": True},
            ]
        )
        tree = compile_dnf(dnf, registry)
        assert tree.probability(registry) == pytest.approx(
            brute_force_probability(dnf, registry)
        )

    def test_random_dnfs(self):
        for trial in range(60):
            rng = random.Random(trial)
            reg = VariableRegistry.from_boolean_probabilities(
                {f"v{i}": rng.uniform(0.1, 0.9) for i in range(6)}
            )
            clauses = [
                Clause(
                    {
                        f"v{rng.randrange(6)}": rng.random() < 0.7
                        for _ in range(rng.randint(1, 3))
                    }
                )
                for _ in range(rng.randint(1, 6))
            ]
            dnf = DNF(clauses)
            tree = compile_dnf(dnf, reg)
            assert tree.is_complete()
            assert tree.probability(reg) == pytest.approx(
                brute_force_probability(dnf, reg)
            )

    def test_custom_variable_selector(self, registry):
        dnf = DNF.from_sets(
            [
                {"y": True, "z": True},
                {"y": False, "w": True},
                {"z": True, "w": True},
            ]
        )
        order = []

        def selector(sub):
            choice = sub.most_frequent_variable()
            order.append(choice)
            return choice

        tree = compile_dnf(dnf, registry, choose_variable=selector)
        assert order  # Shannon expansion actually consulted the selector
        assert tree.probability(registry) == pytest.approx(
            brute_force_probability(dnf, registry)
        )


class TestStatsAndBudget:
    def test_stats_populated(self, registry):
        dnf = DNF.from_sets(
            [
                {"y": True, "z": True},
                {"y": False, "w": True},
                {"z": True, "w": True},
                {"y": True, "z": True, "w": True},  # subsumed
            ]
        )
        stats = CompilationStats()
        compile_dnf(dnf, registry, stats=stats)
        assert stats.nodes > 0
        assert stats.subsumed_clauses >= 1
        assert stats.shannon_expansions >= 1

    def test_budget_exceeded(self, registry):
        dnf = DNF.from_sets(
            [
                {"y": True, "z": True},
                {"y": False, "w": True},
                {"z": True, "w": True},
            ]
        )
        with pytest.raises(CompilationBudgetExceeded):
            compile_dnf(dnf, registry, max_nodes=1)

    def test_read_once_lineage_uses_no_shannon(self):
        """Prop. 6.3: 1OF-factorizable DNFs compile with ⊗/⊙ only."""
        reg = VariableRegistry.from_boolean_probabilities(
            {f"r{a}{b}": 0.4 for a in "12" for b in "12"}
            | {f"s{a}{c}": 0.6 for a in "12" for c in "12"}
        )
        clauses = []
        for a in "12":
            for b in "12":
                for c in "12":
                    clauses.append({f"r{a}{b}": True, f"s{a}{c}": True})
        dnf = DNF.from_sets(clauses)
        stats = CompilationStats()
        tree = compile_dnf(dnf, reg, stats=stats)
        assert stats.shannon_expansions == 0
        histogram = tree.inner_node_histogram()
        assert histogram.get("exclusive-or", 0) == 0
        assert tree.probability(reg) == pytest.approx(
            brute_force_probability(dnf, reg)
        )
