"""Property tests for the interned core and the ConfidenceEngine planner.

Two guarantees of the interned-representation refactor are pinned here:

* every interned ``DNF``/``Clause`` operation and every
  :class:`~repro.engine.ConfidenceEngine` strategy produces probabilities
  that agree with brute-force world enumeration, on hundreds of random
  DNFs (Boolean and multi-valued);
* each db path — ``evaluate_with_confidence``, ``top_k_answers``,
  ``run_conf_query`` — routes its confidence computation through the
  engine.
"""

import random

import pytest

# The db-path routing tests exercise the deprecated free-function shims
# on purpose; the session façade equivalents live in test_session.py.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

from repro.core.dnf import DNF
from repro.core.events import Atom, Clause
from repro.core.memo import DecompositionCache
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry
from repro.db.cq import ConjunctiveQuery, SubGoal, Var
from repro.db.database import Database
from repro.db.engine import evaluate_to_dnf, evaluate_with_confidence
from repro.db.relation import Relation
from repro.db.sql import run_conf_query
from repro.db.topk import top_k_answers
from repro.engine import STRATEGY_LADDER, ConfidenceEngine, EngineResult


def random_boolean_instance(seed, variables=8, max_clauses=10):
    rng = random.Random(seed)
    reg = VariableRegistry.from_boolean_probabilities(
        {f"b{seed}_{i}": rng.uniform(0.05, 0.95) for i in range(variables)}
    )
    names = list(reg.variables())
    clauses = [
        Clause(
            {
                rng.choice(names): rng.random() < 0.7
                for _ in range(rng.randint(1, 4))
            }
        )
        for _ in range(rng.randint(1, max_clauses))
    ]
    return DNF(clauses), reg


def random_multivalued_instance(seed, variables=5, max_clauses=8):
    rng = random.Random(10_000 + seed)
    reg = VariableRegistry()
    names = []
    for i in range(variables):
        name = f"m{seed}_{i}"
        domain_size = rng.randint(2, 4)
        weights = [rng.uniform(0.1, 1.0) for _ in range(domain_size)]
        total = sum(weights)
        reg.add_variable(
            name,
            {value: weight / total
             for value, weight in enumerate(weights)},
        )
        names.append(name)
    clauses = []
    for _ in range(rng.randint(1, max_clauses)):
        bound = rng.sample(names, rng.randint(1, min(3, variables)))
        clauses.append(
            Clause(
                {name: rng.choice(reg.domain(name)) for name in bound}
            )
        )
    return DNF(clauses), reg


class TestInternedCoreAgainstEnumeration:
    """Interned representation == exact enumeration, 200+ random DNFs."""

    @pytest.mark.parametrize("seed", range(120))
    def test_boolean_engine_matches_brute_force(self, seed):
        dnf, reg = random_boolean_instance(seed)
        truth = brute_force_probability(dnf, reg)
        engine = ConfidenceEngine(reg, epsilon=0.0)
        result = engine.compute(dnf)
        assert result.converged
        assert result.strategy in STRATEGY_LADDER
        assert result.probability == pytest.approx(truth, abs=1e-9)
        assert result.lower - 1e-9 <= truth <= result.upper + 1e-9

    @pytest.mark.parametrize("seed", range(80))
    def test_multivalued_engine_matches_brute_force(self, seed):
        dnf, reg = random_multivalued_instance(seed)
        truth = brute_force_probability(dnf, reg)
        result = ConfidenceEngine(reg, epsilon=0.0).compute(dnf)
        assert result.converged
        assert result.probability == pytest.approx(truth, abs=1e-9)

    @pytest.mark.parametrize("seed", range(40))
    def test_interned_operations_preserve_semantics(self, seed):
        """Subsumption removal, restriction and conjunction — all running
        on interned atom ids — preserve brute-force probability."""
        dnf, reg = random_boolean_instance(seed, variables=6, max_clauses=8)
        truth = brute_force_probability(dnf, reg)

        reduced = dnf.remove_subsumed()
        assert brute_force_probability(reduced, reg) == pytest.approx(
            truth, abs=1e-12
        )

        name = next(iter(dnf.variables))
        p_true = reg.probability(name, True)
        shannon = (
            p_true * brute_force_probability(dnf.restrict(name, True), reg)
            + (1.0 - p_true)
            * brute_force_probability(dnf.restrict(name, False), reg)
        )
        assert shannon == pytest.approx(truth, abs=1e-9)

    def test_epsilon_bounds_contain_truth(self):
        for seed in range(30):
            dnf, reg = random_boolean_instance(seed, variables=10,
                                               max_clauses=14)
            truth = brute_force_probability(dnf, reg)
            result = ConfidenceEngine(reg, epsilon=0.05).compute(dnf)
            assert result.lower - 1e-9 <= truth <= result.upper + 1e-9
            if result.converged and result.strategy == "dtree":
                assert abs(result.probability - truth) <= 0.05 + 1e-9


class TestInternedRepresentation:
    def test_atom_ids_identify_atoms(self):
        assert Atom("iv_x", True) == Atom("iv_x", True)
        assert Atom("iv_x", True).atom_id == Atom("iv_x", True).atom_id
        assert Atom("iv_x", True).atom_id != Atom("iv_x", False).atom_id
        assert Atom("iv_x", True).var_id == Atom("iv_x", False).var_id

    def test_clause_equality_is_construction_order_independent(self):
        left = Clause({"iv_a": True, "iv_b": False})
        right = Clause({"iv_b": False, "iv_a": True})
        assert left == right
        assert hash(left) == hash(right)
        assert left.atom_ids == right.atom_ids

    def test_dnf_variable_names_round_trip(self):
        dnf = DNF.from_sets([{"iv_p": True, ("iv", 7): 3}])
        assert dnf.variables == {"iv_p", ("iv", 7)}
        clause = dnf.sole_clause()
        assert clause.value_of(("iv", 7)) == 3
        assert clause.binds("iv_p") and not clause.binds("iv_q")


class TestStrategySelection:
    def test_trivial_strategies(self):
        reg = VariableRegistry()
        engine = ConfidenceEngine(reg)
        assert engine.compute(DNF.false()).strategy == "trivial"
        assert engine.compute(DNF.false()).probability == 0.0
        assert engine.compute(DNF.true()).strategy == "trivial"
        assert engine.compute(DNF.true()).probability == 1.0

    def test_read_once_selected_for_hierarchical_lineage(self):
        reg = VariableRegistry.from_boolean_probabilities(
            {f"ro{i}": 0.4 for i in range(6)}
        )
        dnf = DNF.from_positive_clauses(
            [["ro0", "ro2"], ["ro0", "ro3"], ["ro1", "ro4"], ["ro1", "ro5"]]
        )
        result = ConfidenceEngine(reg).compute(dnf)
        assert result.strategy == "read-once"
        assert result.probability == pytest.approx(
            brute_force_probability(dnf, reg), abs=1e-12
        )

    def test_dtree_selected_when_read_once_fails(self):
        # The hard pattern R(X), S(X, Y), T(Y): x0 y0, x0 y1, x1 y1 is
        # not read-once factorizable.
        reg = VariableRegistry.from_boolean_probabilities(
            {name: 0.5 for name in
             ["hx0", "hx1", "hy0", "hy1", "hs00", "hs01", "hs11"]}
        )
        dnf = DNF.from_positive_clauses(
            [["hx0", "hs00", "hy0"], ["hx0", "hs01", "hy1"],
             ["hx1", "hs11", "hy1"]]
        )
        result = ConfidenceEngine(reg).compute(dnf)
        assert result.strategy == "dtree"
        assert result.converged

    def test_mc_fallback_on_budget_exhaustion(self):
        # Seed 4 does not converge at zero steps (interval width ≈ 0.35).
        dnf, reg = random_boolean_instance(4, variables=10, max_clauses=14)
        engine = ConfidenceEngine(
            reg,
            epsilon=0.05,
            error_kind="relative",
            max_steps=0,
            try_read_once=False,
            mc_max_samples=500,
        )
        result = engine.compute(dnf)
        assert result.strategy == "mc"
        truth = brute_force_probability(dnf, reg)
        assert result.lower - 1e-9 <= truth <= result.upper + 1e-9

    def test_no_mc_fallback_for_exact_requests(self):
        dnf, reg = random_boolean_instance(4, variables=10, max_clauses=14)
        engine = ConfidenceEngine(
            reg, epsilon=0.0, max_steps=0, try_read_once=False
        )
        result = engine.compute(dnf)
        assert result.strategy == "dtree"
        assert not result.converged

    def test_shared_cache_reused_across_calls(self):
        dnf, reg = random_boolean_instance(5, variables=9, max_clauses=12)
        cache = DecompositionCache()
        engine = ConfidenceEngine(reg, cache=cache, try_read_once=False)
        first = engine.compute(dnf)
        warm = engine.compute(dnf)
        assert warm.probability == pytest.approx(first.probability,
                                                 abs=1e-12)
        # The whole root DNF is memoised after the first run.
        assert warm.steps <= first.steps


def _small_database():
    reg = VariableRegistry()
    db = Database(reg)
    db.add(
        Relation.tuple_independent(
            "PR", ["x"], [((x,), 0.3 + 0.1 * i) for i, x in
                          enumerate("abc")], reg
        )
    )
    db.add(
        Relation.tuple_independent(
            "PS", ["x", "y"],
            [((x, y), 0.4) for x in "abc" for y in "de"], reg
        )
    )
    return db


def _query():
    x, y = Var("X"), Var("Y")
    return ConjunctiveQuery(
        [x],
        [SubGoal("PR", [x]), SubGoal("PS", [x, y])],
        [],
        name="routing",
    )


class TestDbPathsRouteThroughEngine:
    """evaluate / topk / sql all funnel into ConfidenceEngine."""

    def test_evaluate_with_confidence_routes_through_engine(
        self, monkeypatch
    ):
        calls = []
        original = ConfidenceEngine.compute_query

        def spy(self, query, database, **kwargs):
            calls.append(query.name)
            return original(self, query, database, **kwargs)

        monkeypatch.setattr(ConfidenceEngine, "compute_query", spy)
        db = _small_database()
        results = evaluate_with_confidence(_query(), db)
        assert calls == ["routing"]
        assert results
        for _values, result in results:
            assert isinstance(result, EngineResult)
            assert result.strategy in STRATEGY_LADDER

    def test_topk_routes_through_engine(self, monkeypatch):
        calls = []
        original = ConfidenceEngine.compute

        def spy(self, lineage, **kwargs):
            calls.append(kwargs.get("max_steps"))
            return original(self, lineage, **kwargs)

        monkeypatch.setattr(ConfidenceEngine, "compute", spy)
        db = _small_database()
        answers = evaluate_to_dnf(_query(), db)
        ranked = top_k_answers(answers, db.registry, 2)
        assert len(calls) >= len(answers)
        assert len(ranked) == 2
        assert ranked[0].lower >= ranked[1].lower - 1e-12

    def test_sql_routes_through_engine(self, monkeypatch):
        calls = []
        original = ConfidenceEngine.compute_query

        def spy(self, query, database, **kwargs):
            calls.append(query.name)
            return original(self, query, database, **kwargs)

        monkeypatch.setattr(ConfidenceEngine, "compute_query", spy)
        db = _small_database()
        rows = run_conf_query(
            "select conf() from PR, PS where PR.x = PS.x", db
        )
        assert calls  # routed through the engine
        assert len(rows) == 1
        answers = evaluate_to_dnf(
            ConjunctiveQuery(
                [],
                [SubGoal("PR", [Var("X")]), SubGoal("PS", [Var("X"),
                                                           Var("Y")])],
                [],
            ),
            db,
        )
        truth = brute_force_probability(answers[0][1], db.registry)
        assert rows[0][1] == pytest.approx(truth, abs=1e-9)

    def test_explain_reports_engine_strategy(self):
        from repro.db.explain import explain

        db = _small_database()
        report = explain(_query(), db)
        assert report.engine_strategy == "sprout"
        assert "hierarchical" in report.engine_reason
        assert any("engine routes" in note for note in report.notes)

        self_join = ConjunctiveQuery(
            [],
            [SubGoal("PS", [Var("X"), Var("Y")]),
             SubGoal("PS", [Var("Y"), Var("Z")])],
            [],
        )
        report = explain(self_join, db)
        assert report.engine_strategy == "dtree"
