"""Tests for the mutation subsystem: probabilistic DML, transactions,
the SQL dialect, and cone-level incremental recompilation.

The core contracts under test:

* **DML semantics** — insert / update / delete per-row-shape rules from
  :mod:`repro.db.mutations` (minting, promotion, re-registration, the
  refusals for BID and c-table rows, zero-mass errors).
* **Transactions** — mutations apply immediately, a clean exit commits
  (one circuit-cache version bump), an exception or ``rollback()``
  restores relation contents, minted variables, and replaced
  distributions exactly.
* **Update-differential** — after a random mutation workload, every
  query confidence is *bit-identical* to a from-scratch session rebuilt
  over the mutated state with cold caches.
* **Warm cones** — mutating one relation leaves queries over a disjoint
  relation answering with strategy ``"circuit"`` and zero cold
  decomposition misses; the mutated relation's own circuits are gone.
"""

import random

import pytest

from repro.core.formulas import TRUE, AtomNode, TrueNode
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry
from repro.db import (
    Database,
    MutationError,
    ProbDB,
    Relation,
    SqlSyntaxError,
    Transaction,
    parse_statement,
)
from repro.db.cq import ConjunctiveQuery, SubGoal, Var
from repro.db.session import QueryResult
from repro.engine import EngineConfig


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
def make_db(config=None, *, seed=7, rows=6):
    """A two-relation tuple-independent database over small domains."""
    rng = random.Random(seed)
    registry = VariableRegistry()
    database = Database(registry)
    database.add(
        Relation.tuple_independent(
            "R", ["a", "b"],
            [((rng.randrange(3), rng.randrange(3)),
              rng.uniform(0.1, 0.9)) for _ in range(rows)],
            registry,
        )
    )
    database.add(
        Relation.tuple_independent(
            "S", ["b", "c"],
            [((rng.randrange(3), rng.randrange(3)),
              rng.uniform(0.1, 0.9)) for _ in range(rows)],
            registry,
        )
    )
    return ProbDB(database, config)


def join_query():
    """Q(a) :- R(a, b), S(b, c) — a two-relation join."""
    a, b, c = Var("A"), Var("B"), Var("C")
    return ConjunctiveQuery(
        [a], [SubGoal("R", [a, b]), SubGoal("S", [b, c])], [], name="join"
    )


def self_join_query(table="R"):
    """Q(a) :- T(a, b), T(b, c) — a self-join (never SPROUT-safe)."""
    a, b, c = Var("A"), Var("B"), Var("C")
    return ConjunctiveQuery(
        [a],
        [SubGoal(table, [a, b]), SubGoal(table, [b, c])],
        [],
        name=f"self-join-{table}",
    )


def rebuild_from_scratch(db, config=None):
    """A cold session over a copy of ``db``'s *current* mutated state.

    Fresh registry, fresh engine, fresh caches; lineage formulas are
    shared (they are immutable), variables re-registered at their
    current probabilities.  This is the differential oracle: whatever
    the incremental path answers must match this bit-for-bit.
    """
    registry = VariableRegistry()
    database = Database(registry)
    for name in db.database.relation_names():
        relation = db.database[name]
        for _values, lineage in relation.rows:
            for variable in lineage.variables():
                if variable not in registry:
                    registry.add_boolean(
                        variable, db.registry.probability(variable, True)
                    )
        database.add(
            Relation(
                relation.name,
                relation.attributes,
                [tuple(row) for row in relation.rows],
                relation.variable_origin,
            )
        )
    return ProbDB(database, config)


def confidences_of(db, query):
    """Fresh ``(values, probability)`` pairs, sorted for comparison."""
    result = db.query(query)
    return sorted(
        (values, engine_result.probability)
        for values, engine_result in result.confidences()
    )


def rows_of(db, table):
    return [values for values, _lineage in db.database[table].rows]


# ----------------------------------------------------------------------
# DML semantics
# ----------------------------------------------------------------------
class TestInsert:
    def test_certain_insert(self):
        db = make_db()
        before = len(db.database["R"].rows)
        result = db.insert("R", (9, 9))
        assert result.op == "insert"
        assert result.rows_affected == 1
        assert result.touched_variables == frozenset()
        values, lineage = db.database["R"].rows[-1]
        assert values == (9, 9)
        assert isinstance(lineage, TrueNode)
        assert len(db.database["R"].rows) == before + 1

    def test_probabilistic_insert_mints_variable(self):
        db = make_db()
        result = db.insert("R", (9, 9), probability=0.25)
        (variable,) = result.touched_variables
        assert db.registry.probability(variable, True) == pytest.approx(0.25)
        _values, lineage = db.database["R"].rows[-1]
        assert isinstance(lineage, AtomNode)
        assert lineage.atom.variable == variable
        assert db.database["R"].variable_origin[variable] == "R"

    def test_minted_names_probe_past_collisions(self):
        db = make_db(rows=3)
        first = db.insert("R", (7, 7), probability=0.5)
        db.delete("R", lambda row: row["a"] == 7)
        second = db.insert("R", (8, 8), probability=0.5)
        # The deleted row's variable stays registered, so the second
        # insert probes past it instead of re-minting the same name.
        assert first.touched_variables != second.touched_variables

    def test_insert_autocommit_bumps_cache_version(self):
        db = make_db()
        before = db.circuits.version
        db.insert("R", (1, 1))
        assert db.circuits.version == before + 1

    def test_insert_errors(self):
        db = make_db()
        with pytest.raises(MutationError):
            db.insert("nope", (1, 2))
        with pytest.raises(MutationError):
            db.insert("R", (1, 2, 3))  # arity
        with pytest.raises(MutationError):
            db.insert("R", (1, 2), probability=0.0)  # no mass
        with pytest.raises(MutationError):
            db.insert("R", (1, 2), probability=-0.5)


class TestDelete:
    def test_delete_all_where_forms(self):
        for where, expect in [
            ({"a": 0}, lambda v: v[0] == 0),
            (lambda row: row["a"] == 0, lambda v: v[0] == 0),
            ([("a", "=", 0)], lambda v: v[0] == 0),
            ([("a", ">", 0), ("b", "<=", 1)],
             lambda v: v[0] > 0 and v[1] <= 1),
        ]:
            db = make_db()
            survivors = [v for v in rows_of(db, "R") if not expect(v)]
            doomed = len(rows_of(db, "R")) - len(survivors)
            result = db.delete("R", where)
            assert result.rows_affected == doomed
            assert rows_of(db, "R") == survivors

    def test_delete_touches_lineage_variables(self):
        db = make_db()
        (values, lineage) = db.database["R"].rows[0]
        result = db.delete("R", lambda row: True)
        assert lineage.variables() <= set(result.touched_variables)
        assert rows_of(db, "R") == []
        # Variables stay registered (renamed relations may share rows).
        for variable in result.touched_variables:
            assert variable in db.registry

    def test_delete_nothing_is_clean(self):
        db = make_db()
        result = db.delete("R", {"a": 99})
        assert result.rows_affected == 0
        assert result.touched_variables == frozenset()

    def test_unsupported_operator(self):
        db = make_db()
        with pytest.raises(MutationError):
            db.delete("R", [("a", "~=", 1)])


class TestUpdate:
    def test_value_update_keeps_lineage(self):
        db = make_db()
        _old_values, old_lineage = db.database["R"].rows[0]
        target = rows_of(db, "R")[0]
        db.update("R", values={"a": 42},
                  where=lambda row: (row["a"], row["b"]) == target)
        new_values, new_lineage = db.database["R"].rows[0]
        assert new_values == (42, target[1])
        assert new_lineage is old_lineage

    def test_probability_update_reregisters(self):
        db = make_db()
        _values, lineage = db.database["R"].rows[0]
        variable = lineage.atom.variable
        result = db.update(
            "R", probability=0.77,
            where=lambda row: True,
        )
        assert variable in result.touched_variables
        assert db.registry.probability(variable, True) == pytest.approx(0.77)

    def test_promote_to_certain_keeps_variable_registered(self):
        db = make_db()
        _values, lineage = db.database["R"].rows[0]
        variable = lineage.atom.variable
        db.update("R", probability=1.0)
        assert all(
            isinstance(line, TrueNode)
            for _v, line in db.database["R"].rows
        )
        assert variable in db.registry  # shared row lists stay valid

    def test_certain_row_demoted_mints_fresh_variable(self):
        db = make_db()
        db.insert("R", (5, 5))  # certain
        result = db.update(
            "R", probability=0.5, where={"a": 5}
        )
        (minted,) = result.touched_variables
        assert db.registry.probability(minted, True) == pytest.approx(0.5)
        _values, lineage = db.database["R"].rows[-1]
        assert lineage.atom.variable == minted

    def test_bid_rows_refuse_probability_updates(self):
        registry = VariableRegistry()
        database = Database(registry)
        database.add(
            Relation.block_independent_disjoint(
                "B", ["k", "v"],
                {"x": [(("x", 1), 0.4), (("x", 2), 0.5)]},
                registry,
            )
        )
        db = ProbDB(database)
        with pytest.raises(MutationError):
            db.update("B", probability=0.9)

    def test_complex_lineage_refuses_probability_updates(self):
        registry = VariableRegistry()
        registry.add_boolean("u", 0.5)
        registry.add_boolean("w", 0.5)
        from repro.core.events import Atom
        from repro.core.formulas import AndNode

        lineage = AndNode(
            (AtomNode(Atom("u", True)), AtomNode(Atom("w", True)))
        )
        database = Database(registry)
        database.add(Relation("C", ["x"], [((1,), lineage)]))
        db = ProbDB(database)
        with pytest.raises(MutationError):
            db.update("C", probability=0.9)

    def test_update_argument_errors(self):
        db = make_db()
        with pytest.raises(MutationError):
            db.update("R")  # neither values nor probability
        with pytest.raises(MutationError):
            db.update("R", probability=0.0)  # zero mass


# ----------------------------------------------------------------------
# Confidence correctness through mutations (brute-force oracle)
# ----------------------------------------------------------------------
class TestMutatedConfidences:
    def test_confidence_tracks_mutations_exactly(self):
        db = make_db(EngineConfig(compile_circuits=True), rows=4)
        query = join_query()
        confidences_of(db, query)  # warm the caches pre-mutation

        db.update("S", probability=0.6)
        db.insert("R", (0, 0), probability=0.35)
        db.delete("R", [("a", "=", 2)])

        for values, dnf in db.query(query).lineage():
            expected = brute_force_probability(dnf, db.registry)
            got = db.confidence(dnf)
            assert got.probability == pytest.approx(expected, abs=1e-12), values


# ----------------------------------------------------------------------
# Transactions
# ----------------------------------------------------------------------
class TestTransactions:
    def test_clean_exit_commits_once(self):
        db = make_db()
        version_before = db.circuits.version
        with db.transaction():
            db.insert("R", (6, 6), probability=0.5)
            db.insert("S", (6, 6))
            # Mid-transaction: no version bump yet (deferred to commit).
            assert db.circuits.version == version_before
        assert db.circuits.version == version_before + 1
        assert (6, 6) in rows_of(db, "R")
        assert (6, 6) in rows_of(db, "S")

    def test_exception_rolls_back_everything(self):
        db = make_db()
        rows_before = {t: rows_of(db, t) for t in ("R", "S")}
        _values, lineage = db.database["R"].rows[0]
        variable = lineage.atom.variable
        prob_before = db.registry.probability(variable, True)

        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("R", (6, 6), probability=0.5)
                db.update("R", probability=0.9)
                db.delete("S", lambda row: True)
                raise RuntimeError("boom")

        assert {t: rows_of(db, t) for t in ("R", "S")} == rows_before
        assert db.registry.probability(variable, True) == prob_before
        assert db._txn is None

    def test_rollback_restores_exact_confidences(self):
        db = make_db(EngineConfig(compile_circuits=True))
        query = join_query()
        before = confidences_of(db, query)
        with db.transaction() as txn:
            db.update("R", probability=0.42)
            db.insert("S", (1, 1), probability=0.3)
            txn.rollback()
        assert confidences_of(db, query) == before  # bit-identical

    def test_minted_variables_are_unregistered_on_rollback(self):
        db = make_db()
        try:
            with db.transaction():
                result = db.insert("R", (6, 6), probability=0.5)
                (minted,) = result.touched_variables
                assert minted in db.registry
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert minted not in db.registry
        assert minted not in db.database["R"].variable_origin

    def test_queries_mid_transaction_see_mutations(self):
        db = make_db()
        with db.transaction() as txn:
            db.insert("R", (8, 8))
            assert (8, 8) in rows_of(db, "R")
            txn.rollback()
        assert (8, 8) not in rows_of(db, "R")

    def test_nesting_and_reuse_are_rejected(self):
        db = make_db()
        with db.transaction() as txn:
            with pytest.raises(MutationError):
                db.transaction()
        with pytest.raises(MutationError):
            txn.commit()  # already committed by the context exit
        with pytest.raises(MutationError):
            txn.rollback()

    def test_explicit_commit_inside_block(self):
        db = make_db()
        with db.transaction() as txn:
            db.insert("R", (3, 9))
            txn.commit()
        assert (3, 9) in rows_of(db, "R")
        assert isinstance(txn, Transaction)
        assert not txn.active


# ----------------------------------------------------------------------
# SQL dialect
# ----------------------------------------------------------------------
class TestSqlDml:
    def test_insert_statement(self):
        db = make_db()
        result = db.execute(
            "insert into R values (4, 4) with probability 0.5"
        )
        assert result.op == "insert"
        assert (4, 4) in rows_of(db, "R")
        _values, lineage = db.database["R"].rows[-1]
        assert isinstance(lineage, AtomNode)

    def test_certain_insert_statement(self):
        db = make_db()
        db.execute("INSERT INTO R VALUES (5, 5);")
        _values, lineage = db.database["R"].rows[-1]
        assert isinstance(lineage, TrueNode)

    def test_update_statements(self):
        db = make_db()
        db.execute("update R set a = 7 where b >= 0")
        assert all(v[0] == 7 for v in rows_of(db, "R"))
        result = db.execute("update R set probability = 0.9 where a = 7")
        assert result.rows_affected == len(rows_of(db, "R"))
        db.execute("update R set a = 1, probability 0.5")
        assert all(v[0] == 1 for v in rows_of(db, "R"))

    def test_delete_statement(self):
        db = make_db()
        count = len(rows_of(db, "R"))
        result = db.execute("delete from R where a = 0 and b = 0")
        assert result.op == "delete"
        assert len(rows_of(db, "R")) == count - result.rows_affected

    def test_transaction_statements(self):
        db = make_db()
        txn = db.execute("begin transaction")
        assert isinstance(txn, Transaction)
        db.execute("insert into S values (9, 9)")
        db.execute("rollback")
        assert (9, 9) not in rows_of(db, "S")

        db.execute("BEGIN")
        db.execute("insert into S values (9, 9)")
        db.execute("commit")
        assert (9, 9) in rows_of(db, "S")
        with pytest.raises(MutationError):
            db.execute("commit")  # no active transaction

    def test_select_still_routes_to_queries(self):
        db = make_db()
        result = db.execute("select conf() from R r where r.a = 0")
        assert isinstance(result, QueryResult)

    def test_statement_syntax_errors(self):
        db = make_db()
        for text in [
            "insert into nowhere values (1)",
            "insert into R values (1, 2) with probability",
            "insert R values (1, 2)",
            "update R set",
            "update R set probability = 0.5, probability = 0.6",
            "update R set a = 1, a = 2",
            "delete R",
            "begin transaction extra",
            "",
        ]:
            with pytest.raises(SqlSyntaxError):
                parse_statement(text, db.database)

    def test_string_literals_round_trip(self):
        registry = VariableRegistry()
        database = Database(registry)
        database.add(
            Relation.tuple_independent(
                "T", ["name"], [(("old",), 0.5)], registry
            )
        )
        db = ProbDB(database)
        db.execute("insert into T values ('alice') with probability 0.5")
        assert ("alice",) in rows_of(db, "T")
        db.execute("update T set name = 'bob' where name = 'alice'")
        assert ("bob",) in rows_of(db, "T")


# ----------------------------------------------------------------------
# Update-differential: incremental == from-scratch, bit for bit
# ----------------------------------------------------------------------
def random_mutation(db, rng):
    """Apply one random mutation; returns a description for debugging."""
    table = rng.choice(["R", "S"])
    op = rng.choice(["insert", "delete", "update-prob", "update-values"])
    if op == "insert":
        row = (rng.randrange(3), rng.randrange(3))
        p = rng.choice([None, rng.uniform(0.1, 0.9)])
        db.insert(table, row, probability=p)
        return f"insert {table} {row} p={p}"
    column = db.database[table].attributes[0]
    literal = rng.randrange(3)
    if op == "delete":
        db.delete(table, [(column, "=", literal)])
        return f"delete {table} {column}={literal}"
    if op == "update-prob":
        p = rng.uniform(0.1, 0.9)
        try:
            db.update(table, probability=p, where=[(column, "=", literal)])
        except MutationError:
            # A certain row's variable may have been promoted away —
            # only tuple-independent/certain rows accept prob updates.
            pass
        return f"update {table} p={p} where {column}={literal}"
    db.update(
        table,
        values={column: rng.randrange(3)},
        where=[(column, "=", literal)],
    )
    return f"update {table} values where {column}={literal}"


class TestUpdateDifferential:
    """After N random mutations, the warm session answers bit-identically
    to a cold from-scratch rebuild of the mutated state."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_workload_matches_scratch_rebuild(self, seed):
        config = EngineConfig(compile_circuits=True)
        db = make_db(config, seed=seed)
        queries = [join_query(), self_join_query("R")]
        for query in queries:
            confidences_of(db, query)  # warm everything pre-workload

        rng = random.Random(100 + seed)
        trace = []
        for step in range(12):
            trace.append(random_mutation(db, rng))
            if step % 4 != 3:
                continue
            scratch = rebuild_from_scratch(db, config)
            for query in queries:
                warm = confidences_of(db, query)
                cold = confidences_of(scratch, query)
                assert warm == cold, "\n".join(trace)
            scratch.close()
        db.close()

    def test_transactional_workload_matches(self):
        config = EngineConfig(compile_circuits=True)
        db = make_db(config, seed=42)
        query = join_query()
        confidences_of(db, query)
        rng = random.Random(5)
        with db.transaction():
            for _ in range(6):
                random_mutation(db, rng)
        scratch = rebuild_from_scratch(db, config)
        assert confidences_of(db, query) == confidences_of(scratch, query)
        scratch.close()
        db.close()


# ----------------------------------------------------------------------
# Warm cones: the surgical-eviction contract
# ----------------------------------------------------------------------
class TestWarmCones:
    def test_disjoint_queries_stay_warm_after_mutation(self):
        """Mutating S evicts nothing of R's cones: the R self-join
        re-answers with strategy "circuit" and zero cold decomposition
        misses.  The S self-join's circuits are gone and recompile."""
        config = EngineConfig(compile_circuits=True)
        db = make_db(config, seed=3)
        r_query = self_join_query("R")
        s_query = self_join_query("S")
        for query in (r_query, s_query):
            pairs = db.query(query).confidences()
            assert pairs  # both queries have answers to make this bite

        result = db.update("S", probability=0.66)
        assert result.invalidation.circuits_evicted > 0

        # R: every answer warm — pure circuit hits, no decomposition.
        misses_before = db.cache_stats()["misses"]
        for _values, engine_result in db.query(r_query).confidences():
            assert engine_result.strategy == "circuit"
        assert db.cache_stats()["misses"] == misses_before

        # S: circuits were surgically evicted; answers recompute and
        # match brute force at the new probabilities.
        for _values, dnf in db.query(s_query).lineage():
            expected = brute_force_probability(dnf, db.registry)
            assert db.confidence(dnf).probability == pytest.approx(
                expected, abs=1e-12
            )
        db.close()

    def test_insert_evicts_nothing(self):
        """A fresh variable cannot occur in any cached cone."""
        config = EngineConfig(compile_circuits=True)
        db = make_db(config, seed=3)
        db.query(self_join_query("R")).confidences()
        entries_before = db.circuit_cache_stats()["entries"]
        result = db.insert("R", (0, 1), probability=0.5)
        assert result.invalidation.circuits_evicted == 0
        assert result.invalidation.memo_evicted == 0
        assert db.circuit_cache_stats()["entries"] == entries_before
        db.close()
