"""Tests for the Dagum–Karp–Luby–Ross stopping-rule algorithms."""

import random

import pytest

from repro.mc.dklr import (
    LAMBDA,
    approximation_algorithm_estimate,
    stopping_rule_estimate,
)


def bernoulli_stream(p, seed):
    rng = random.Random(seed)

    def sample():
        return 1.0 if rng.random() < p else 0.0

    return sample


def scaled_uniform_stream(mean, seed):
    rng = random.Random(seed)

    def sample():
        return rng.uniform(0.0, 2.0 * mean)

    return sample


class TestStoppingRule:
    @pytest.mark.parametrize("mean", [0.7, 0.3, 0.05])
    def test_relative_accuracy(self, mean):
        result = stopping_rule_estimate(
            bernoulli_stream(mean, 1), epsilon=0.1, delta=0.05
        )
        assert not result.capped
        assert abs(result.estimate - mean) <= 0.1 * mean * 1.5  # slack

    def test_smaller_mean_needs_more_samples(self):
        big = stopping_rule_estimate(
            bernoulli_stream(0.5, 2), epsilon=0.1, delta=0.05
        )
        small = stopping_rule_estimate(
            bernoulli_stream(0.05, 2), epsilon=0.1, delta=0.05
        )
        assert small.samples > big.samples

    def test_cap_reported(self):
        result = stopping_rule_estimate(
            bernoulli_stream(0.01, 3), epsilon=0.01, delta=0.01,
            max_samples=100,
        )
        assert result.capped
        assert result.samples == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            stopping_rule_estimate(lambda: 1.0, epsilon=0.0, delta=0.5)
        with pytest.raises(ValueError):
            stopping_rule_estimate(lambda: 1.0, epsilon=0.5, delta=0.0)
        with pytest.raises(ValueError):
            stopping_rule_estimate(lambda: 1.0, epsilon=1.5, delta=0.5)

    def test_lambda_constant(self):
        import math

        assert LAMBDA == pytest.approx(math.e - 2.0)


class TestApproximationAlgorithm:
    @pytest.mark.parametrize("mean", [0.6, 0.2])
    def test_bernoulli_accuracy(self, mean):
        result = approximation_algorithm_estimate(
            bernoulli_stream(mean, 11), epsilon=0.05, delta=0.05
        )
        assert not result.capped
        assert abs(result.estimate - mean) <= 0.05 * mean * 1.5

    def test_low_variance_stream_uses_fewer_samples(self):
        # A near-constant stream has tiny variance: AA should beat the
        # zero-one stream sample count at equal mean.
        def constant_stream():
            return 0.5

        noisy = approximation_algorithm_estimate(
            bernoulli_stream(0.5, 7), epsilon=0.02, delta=0.05
        )
        quiet = approximation_algorithm_estimate(
            constant_stream, epsilon=0.02, delta=0.05
        )
        assert quiet.samples < noisy.samples
        assert quiet.estimate == pytest.approx(0.5)

    def test_uniform_stream(self):
        result = approximation_algorithm_estimate(
            scaled_uniform_stream(0.25, 13), epsilon=0.05, delta=0.05
        )
        assert abs(result.estimate - 0.25) <= 0.05 * 0.25 * 1.5

    def test_cap_propagates(self):
        result = approximation_algorithm_estimate(
            bernoulli_stream(0.001, 5), epsilon=0.01, delta=0.001,
            max_samples=500,
        )
        assert result.capped
        assert result.samples <= 500

    def test_validation(self):
        with pytest.raises(ValueError):
            approximation_algorithm_estimate(
                lambda: 1.0, epsilon=0.5, delta=1.0
            )

    def test_repr(self):
        result = stopping_rule_estimate(
            bernoulli_stream(0.5, 1), epsilon=0.3, delta=0.3
        )
        assert "MonteCarloResult" in repr(result)
