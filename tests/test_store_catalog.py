"""Store-catalog lazy-loading edge cases.

The runtime catalog (PR 8) registers stores lazily — ``add_store(
lazy=True)`` and ``serve_directory`` defer loading to the first
request — and drops them at runtime.  These tests pin down the edges
where lazy registration meets a changing filesystem or a concurrent
``drop_store``: a file deleted before its first touch must 404 (not
crash the engine), a dropped directory store must come back on
rescan-on-miss exactly while its file exists, and the rescan/drop race
must never surface anything but a structured :class:`ServingError`.
"""

import asyncio
import os
import threading

import pytest

from repro.circuits import CircuitCache
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.variables import VariableRegistry
from repro.engine import ConfidenceEngine
from repro.serving import (
    CircuitStoreService,
    ServingClient,
    ServingEngine,
    ServingError,
)


def make_registry():
    registry = VariableRegistry()
    for index in range(6):
        registry.add_boolean(f"s{index}", 0.1 + 0.1 * index)
    return registry


def dnf(*clauses):
    return DNF([Clause({v: True for v in clause}) for clause in clauses])


LINEAGE = (("s0", "s1"), ("s2",))


def build_store(registry, path):
    engine = ConfidenceEngine(registry)
    cache = CircuitCache()
    lineage = dnf(*LINEAGE)
    circuit = engine.compile_circuit(lineage)
    cache.put(lineage, circuit)
    cache.save(path)
    return lineage, circuit


def run(coroutine):
    return asyncio.run(coroutine)


class TestLazyFileDeleted:
    def test_snapshot_404s_not_crashes(self, tmp_path):
        registry = make_registry()
        build_store(registry, tmp_path / "gone.bin")
        build_store(registry, tmp_path / "kept.bin")
        service = CircuitStoreService(registry)
        service.add_store("gone", tmp_path / "gone.bin", lazy=True)
        service.add_store("kept", tmp_path / "kept.bin", lazy=True)
        os.unlink(tmp_path / "gone.bin")

        for _ in range(3):  # repeatable, not a one-shot crash
            with pytest.raises(ServingError) as info:
                service.snapshot("gone")
            assert info.value.code == "unknown-store"
            assert info.value.status == 404
        # The sibling store is untouched by the failure.
        assert len(service.snapshot("kept")) == 1

    def test_engine_survives_and_keeps_serving(self, tmp_path):
        registry = make_registry()
        lineage, circuit = build_store(registry, tmp_path / "kept.bin")
        build_store(registry, tmp_path / "gone.bin")
        service = CircuitStoreService(registry)
        service.add_store("kept", tmp_path / "kept.bin")
        service.add_store("gone", tmp_path / "gone.bin", lazy=True)
        os.unlink(tmp_path / "gone.bin")
        engine = ServingEngine(service, None)
        client = ServingClient(engine)

        async def scenario():
            with pytest.raises(ServingError) as info:
                await client.evaluate(lineage, store="gone")
            assert info.value.status == 404
            # Same engine, next request: alive and correct.
            response = await client.evaluate(lineage, store="kept")
            assert response["value"] == circuit.evaluate(None)
            await engine.close()

        run(scenario())


class TestDirectoryRescanVsDrop:
    def test_dropped_store_reappears_while_file_exists(self, tmp_path):
        """rescan-on-miss wins the race when the file is still on disk.

        ``drop_store`` forgets the *name*; a served directory re-lists
        its files on the next miss, so the name re-registers.  That is
        the documented contract: to retire a directory store for good,
        remove the file (or the directory registration), not just the
        name.
        """
        registry = make_registry()
        build_store(registry, tmp_path / "alpha.rcir")
        service = CircuitStoreService(registry)
        assert service.serve_directory(tmp_path) == ("alpha",)
        assert len(service.snapshot("alpha")) == 1

        service.drop_store("alpha")
        # The very next lookup rescans and lazily re-registers it.
        assert len(service.snapshot("alpha")) == 1

    def test_dropped_store_stays_gone_once_file_removed(self, tmp_path):
        registry = make_registry()
        build_store(registry, tmp_path / "beta.rcir")
        service = CircuitStoreService(registry)
        service.serve_directory(tmp_path)
        assert len(service.snapshot("beta")) == 1

        os.unlink(tmp_path / "beta.rcir")
        service.drop_store("beta")
        with pytest.raises(ServingError) as info:
            service.snapshot("beta")
        assert info.value.code == "unknown-store"

    def test_concurrent_rescan_and_drop_never_tears(self, tmp_path):
        """Hammer snapshot() against drop_store() from threads.

        Outcomes per call must be exactly: a valid snapshot, or a
        structured unknown-store error (drop won the race).  Any other
        exception — KeyError from a torn dict, AttributeError from a
        half-installed snapshot — fails the test.
        """
        registry = make_registry()
        build_store(registry, tmp_path / "gamma.rcir")
        service = CircuitStoreService(registry)
        service.serve_directory(tmp_path)
        failures = []
        served = [0]
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    snapshot = service.snapshot("gamma")
                    assert len(snapshot) == 1
                    served[0] += 1
                except ServingError as exc:
                    if exc.code != "unknown-store":
                        failures.append(exc)
                except Exception as exc:  # noqa: BLE001 - the assertion
                    failures.append(exc)

        def dropper():
            while not stop.is_set():
                try:
                    service.drop_store("gamma")
                except ServingError:
                    pass  # already dropped; rescan will bring it back

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=dropper))
        for thread in threads:
            thread.start()
        threads[0].join(0.5)  # let the race run for a bounded window
        stop.set()
        for thread in threads:
            thread.join(5.0)
        assert not failures
        assert served[0] > 0  # the reader actually got snapshots
