"""Unit tests for the three d-tree decompositions."""

import pytest

from repro.core.decompositions import (
    independent_and_factorization,
    independent_or_partition,
    shannon_expansion,
)
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.semantics import equivalent_on_registry
from repro.core.variables import VariableRegistry


@pytest.fixture
def registry():
    return VariableRegistry.from_boolean_probabilities(
        {name: 0.5 for name in "abcdexyzuvw"}
    )


class TestIndependentOr:
    def test_splits_disconnected_components(self):
        dnf = DNF.from_sets(
            [{"a": True, "b": True}, {"x": True}, {"b": False}]
        )
        parts = independent_or_partition(dnf)
        assert len(parts) == 2
        variable_sets = sorted(
            sorted(part.variables) for part in parts
        )
        assert variable_sets == [["a", "b"], ["x"]]

    def test_connected_stays_single(self):
        dnf = DNF.from_sets(
            [{"a": True, "b": True}, {"b": True, "c": True}]
        )
        assert len(independent_or_partition(dnf)) == 1

    def test_union_of_parts_is_input(self):
        dnf = DNF.from_sets(
            [{"a": True}, {"b": True}, {"c": True, "d": True}]
        )
        parts = independent_or_partition(dnf)
        rebuilt = DNF(
            clause for part in parts for clause in part.clauses
        )
        assert rebuilt == dnf

    def test_parts_are_variable_disjoint(self):
        dnf = DNF.from_sets(
            [{"a": True}, {"b": True, "c": True}, {"x": True, "y": True}]
        )
        parts = independent_or_partition(dnf)
        seen = set()
        for part in parts:
            assert not (part.variables & seen)
            seen |= part.variables

    def test_transitive_connection(self):
        # a-b, b-c, c-d chains one component.
        dnf = DNF.from_sets(
            [
                {"a": True, "b": True},
                {"b": True, "c": True},
                {"c": True, "d": True},
            ]
        )
        assert len(independent_or_partition(dnf)) == 1

    def test_semantic_equivalence(self, registry):
        dnf = DNF.from_sets(
            [{"a": True, "b": True}, {"x": True}, {"y": False, "z": True}]
        )
        parts = independent_or_partition(dnf)
        rebuilt = DNF(
            clause for part in parts for clause in part.clauses
        )
        assert equivalent_on_registry(dnf, rebuilt, registry)


class TestIndependentAnd:
    def test_simple_product(self):
        # (a ∨ b) ∧ (x ∨ y) expanded: ax, ay, bx, by
        dnf = DNF.from_sets(
            [
                {"a": True, "x": True},
                {"a": True, "y": True},
                {"b": True, "x": True},
                {"b": True, "y": True},
            ]
        )
        factors = independent_and_factorization(dnf)
        assert factors is not None
        assert len(factors) == 2
        variable_sets = sorted(sorted(f.variables) for f in factors)
        assert variable_sets == [["a", "b"], ["x", "y"]]

    def test_factor_of_clause_and_disjunction(self):
        # x ∧ (y ∨ z) expanded: xy, xz
        dnf = DNF.from_sets(
            [{"x": True, "y": True}, {"x": True, "z": True}]
        )
        factors = independent_and_factorization(dnf)
        assert factors is not None
        variable_sets = sorted(sorted(f.variables) for f in factors)
        assert variable_sets == [["x"], ["y", "z"]]

    def test_non_product_returns_none(self):
        # xy ∨ yz ∨ xz is connected but not a product.
        dnf = DNF.from_sets(
            [
                {"x": True, "y": True},
                {"y": True, "z": True},
                {"x": True, "z": True},
            ]
        )
        assert independent_and_factorization(dnf) is None

    def test_single_clause_returns_none(self):
        dnf = DNF.from_sets([{"x": True, "y": True}])
        assert independent_and_factorization(dnf) is None

    def test_three_way_product(self):
        import itertools

        # (a∨b) ∧ (x∨y) ∧ (u∨v): 8 clauses
        dnf = DNF.from_sets(
            [
                {p: True, q: True, r: True}
                for p, q, r in itertools.product("ab", "xy", "uv")
            ]
        )
        factors = independent_and_factorization(dnf)
        assert factors is not None
        assert len(factors) == 3

    def test_factor_semantics(self, registry):
        dnf = DNF.from_sets(
            [
                {"a": True, "x": True},
                {"a": True, "y": True},
                {"b": True, "x": True},
                {"b": True, "y": True},
            ]
        )
        factors = independent_and_factorization(dnf)
        rebuilt = factors[0]
        for factor in factors[1:]:
            rebuilt = rebuilt.conjoin(factor)
        assert equivalent_on_registry(dnf, rebuilt, registry)

    def test_partial_product_rejected(self):
        # Product of (a∨b)×(x∨y) minus one clause: not a product.
        dnf = DNF.from_sets(
            [
                {"a": True, "x": True},
                {"a": True, "y": True},
                {"b": True, "x": True},
            ]
        )
        assert independent_and_factorization(dnf) is None


class TestShannon:
    def test_boolean_expansion(self, registry):
        dnf = DNF.from_sets(
            [{"x": True, "y": True}, {"x": False, "z": True}, {"w": True}]
        )
        branches = shannon_expansion(dnf, "x", registry)
        assert len(branches) == 2
        by_value = {branch.value: branch for branch in branches}
        assert by_value[True].cofactor == DNF.from_sets(
            [{"y": True}, {"w": True}]
        )
        assert by_value[False].cofactor == DNF.from_sets(
            [{"z": True}, {"w": True}]
        )
        assert by_value[True].probability == pytest.approx(0.5)

    def test_empty_cofactors_skipped(self, registry):
        dnf = DNF.from_sets([{"x": True, "y": True}])
        branches = shannon_expansion(dnf, "x", registry)
        assert len(branches) == 1
        assert branches[0].value is True

    def test_multivalued_expansion(self):
        reg = VariableRegistry()
        reg.add_variable("u", {1: 0.5, 2: 0.2, 3: 0.3})
        reg.add_boolean("y", 0.5)
        dnf = DNF.from_sets([{"u": 1, "y": True}, {"u": 2}])
        branches = shannon_expansion(dnf, "u", reg)
        values = {branch.value for branch in branches}
        assert values == {1, 2}  # u=3 branch is empty and skipped

    def test_unknown_variable_raises(self, registry):
        dnf = DNF.from_sets([{"x": True}])
        with pytest.raises(ValueError, match="does not occur"):
            shannon_expansion(dnf, "nope", registry)

    def test_expansion_preserves_probability(self, registry):
        from repro.core.semantics import brute_force_probability

        dnf = DNF.from_sets(
            [{"x": True, "y": True}, {"x": False, "z": True}, {"y": False}]
        )
        branches = shannon_expansion(dnf, "x", registry)
        total = sum(
            branch.probability
            * brute_force_probability(branch.cofactor, registry)
            for branch in branches
        )
        assert total == pytest.approx(
            brute_force_probability(dnf, registry)
        )
