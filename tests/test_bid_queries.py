"""Block-independent-disjoint tables and the Fig. 5(d) query.

The paper's second running example (Section VI.A) switches to the BID
representation ``E'`` of the social network, where each edge block has two
alternatives — present (``∈ = 1``) and absent (``∈ = 0``) — so queries can
mention the *absence* of an edge.  The query asks for the nodes within
two, but not one, degrees of separation from node 7; the expected result
(Fig. 5d) is:

    R(6)  = e5 ∧ e6 ∧ ¬e3
    R(11) = (e1 ∧ e2) ∨ (e3 ∧ e4)
    R(17) = e3 ∧ e5 ∧ ¬e6

This module builds ``E'`` with :meth:`Relation.block_independent_disjoint`
and verifies both the lineage and its probability under every confidence
algorithm in the library.
"""

import pytest

from repro.core.approx import approximate_probability
from repro.core.dnf import DNF
from repro.core.exact import exact_probability, exact_probability_compiled
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry
from repro.db.cq import ConjunctiveQuery, Const, Inequality, SubGoal, Var
from repro.db.database import Database
from repro.db.engine import evaluate
from repro.db.relation import Relation
from repro.mc.aconf import aconf

#: The Fig. 5(a) network: edges e1..e6 with their probabilities.
EDGES = [
    ((5, 7), 0.9),
    ((5, 11), 0.8),
    ((6, 7), 0.1),
    ((6, 11), 0.9),
    ((6, 17), 0.5),
    ((7, 17), 0.2),
]

#: Alternative index conventions within a block: 0 = present, 1 = absent.
PRESENT, ABSENT = 0, 1


@pytest.fixture
def bid_network():
    registry = VariableRegistry()
    blocks = {}
    for index, ((u, v), probability) in enumerate(EDGES):
        blocks[(u, v)] = [
            ((u, v, 1), probability),        # ∈ = 1: edge present
            ((u, v, 0), 1.0 - probability),  # ∈ = 0: edge absent
        ]
    relation = Relation.block_independent_disjoint(
        "Eprime", ["u", "v", "present"], blocks, registry
    )
    database = Database(registry, [relation])
    return database, registry


def _undirected_pairs():
    """(X, W) pairs adjacent in the certain graph, both directions."""
    pairs = []
    for (u, v), _p in EDGES:
        pairs.append((u, v))
        pairs.append((v, u))
    return pairs


def _symmetric_edge_rows(database):
    """The E' rows as a symmetric-closure certain lookup helper."""
    return {
        ((u, v), present)
        for (u, v, present), _lineage in database["Eprime"].rows
    }


class TestBlocks:
    def test_blocks_are_probability_one(self, bid_network):
        database, registry = bid_network
        # Each block's two alternatives partition the block event space.
        for (u, v), _p in EDGES:
            variable = ("Eprime", (u, v))
            dist = registry.distribution(variable)
            assert sum(dist.values()) == pytest.approx(1.0)
            assert set(dist) == {PRESENT, ABSENT}

    def test_row_count(self, bid_network):
        database, _registry = bid_network
        assert len(database["Eprime"]) == 12  # two alternatives per edge


class TestFigure5d:
    """Reproduce the result table of Fig. 5(d) lineage-for-lineage."""

    def _expected(self, registry):
        """The Fig. 5(d) formulas as DNFs over the block variables.

        ``eK`` means block variable K at alternative PRESENT; ``¬eK`` the
        ABSENT alternative.  Block variables are ("Eprime", (u, v)).
        """
        e = {
            index + 1: ("Eprime", edge)
            for index, (edge, _p) in enumerate(EDGES)
        }
        return {
            6: DNF.from_sets(
                [{e[5]: PRESENT, e[6]: PRESENT, e[3]: ABSENT}]
            ),
            11: DNF.from_sets(
                [
                    {e[1]: PRESENT, e[2]: PRESENT},
                    {e[3]: PRESENT, e[4]: PRESENT},
                ]
            ),
            17: DNF.from_sets(
                [{e[3]: PRESENT, e[5]: PRESENT, e[6]: ABSENT}]
            ),
        }

    def _query_lineage(self, database):
        """Nodes X ≠ 7 with a length-2 path to 7 and no direct edge.

        Built from the BID relation: for each candidate X, OR over middle
        nodes W of (X–W present ∧ W–7 present), AND (X–7 absent when the
        pair is a block; vacuously true when no such block exists).
        """
        from repro.core.formulas import FALSE, TRUE, conj, disj
        from repro.core.formulas import AtomNode
        from repro.core.events import Atom

        nodes = sorted({n for (u, v), _p in EDGES for n in (u, v)})
        blocks = {edge for edge, _p in EDGES}

        def present(x, w):
            edge = (x, w) if (x, w) in blocks else (w, x)
            if edge not in blocks:
                return None
            return AtomNode(Atom(("Eprime", edge), PRESENT))

        def absent(x, w):
            edge = (x, w) if (x, w) in blocks else (w, x)
            if edge not in blocks:
                return TRUE  # no edge in any world
            return AtomNode(Atom(("Eprime", edge), ABSENT))

        lineage = {}
        for x in nodes:
            if x == 7:
                continue
            paths = []
            for w in nodes:
                if w in (x, 7):
                    continue
                first = present(x, w)
                second = present(w, 7)
                if first is None or second is None:
                    continue
                paths.append(conj(first, second))
            if not paths:
                continue
            formula = conj(disj(*paths), absent(x, 7))
            dnf = formula.to_dnf()
            if not dnf.is_false():
                lineage[x] = dnf
        return lineage

    def test_lineage_matches_paper(self, bid_network):
        database, registry = bid_network
        actual = self._query_lineage(database)
        expected = self._expected(registry)
        assert set(actual) == {6, 11, 17}
        for node, dnf in expected.items():
            assert actual[node] == dnf, f"node {node}"

    def test_probabilities_under_all_methods(self, bid_network):
        database, registry = bid_network
        for node, dnf in self._query_lineage(database).items():
            truth = brute_force_probability(dnf, registry)
            assert exact_probability(dnf, registry) == pytest.approx(truth)
            assert exact_probability_compiled(
                dnf, registry
            ) == pytest.approx(truth)
            result = approximate_probability(dnf, registry, epsilon=0.01)
            assert abs(result.estimate - truth) <= 0.01 + 1e-9
            mc = aconf(dnf, registry, epsilon=0.05, delta=0.05, seed=node)
            assert mc.estimate == pytest.approx(truth, rel=0.2)

    def test_expected_probability_values(self, bid_network):
        """Spot-check the arithmetic: R(17) = e3 ∧ e5 ∧ ¬e6."""
        _database, registry = bid_network
        dnf = DNF.from_sets(
            [
                {
                    ("Eprime", (6, 7)): PRESENT,
                    ("Eprime", (6, 17)): PRESENT,
                    ("Eprime", (7, 17)): ABSENT,
                }
            ]
        )
        assert exact_probability(dnf, registry) == pytest.approx(
            0.1 * 0.5 * 0.8
        )


class TestEngineOverBid:
    def test_path2_query_through_engine(self, bid_network):
        """The positive part (within two degrees via a middle node) also
        runs through the conjunctive-query engine on the BID table with a
        symmetrised edge view."""
        database, registry = bid_network
        # Symmetric closure as a derived relation (same lineage rows).
        rows = []
        for (u, v, present), lineage in database["Eprime"].rows:
            rows.append(((u, v, present), lineage))
            rows.append(((v, u, present), lineage))
        sym = Relation(
            "Esym",
            ["u", "v", "present"],
            rows,
            database["Eprime"].variable_origin,
        )
        database.add(sym)

        x, w = Var("X"), Var("W")
        query = ConjunctiveQuery(
            [x],
            [
                SubGoal("Esym", [x, w, Const(1)]),
                SubGoal("Esym", [w, Const(7), Const(1)]),
            ],
            [Inequality(x, "!=", Const(7))],
        )
        answers = {ans.values[0]: ans for ans in evaluate(query, database)}
        # Two-hop X-W-7: via W=5 only X=11; via W=6, X ∈ {11, 17}; via
        # W=17, X=6 — matching the node set of Fig. 5(d).
        assert set(answers) == {6, 11, 17}
        # Node 11's two-hop lineage: (e1∧e2 via 5) ∨ (e3∧e4 via 6).
        dnf = answers[11].lineage.to_dnf()
        e = {
            index + 1: ("Eprime", edge)
            for index, (edge, _p) in enumerate(EDGES)
        }
        assert dnf == DNF.from_sets(
            [
                {e[1]: PRESENT, e[2]: PRESENT},
                {e[3]: PRESENT, e[4]: PRESENT},
            ]
        )
