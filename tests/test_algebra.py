"""Tests for positive relational algebra with lineage.

Every operator is checked against possible-worlds semantics: the lineage of
an output tuple must be true exactly in the worlds where the tuple would be
produced by evaluating the operator on the world's deterministic instance.
"""

import pytest

from repro.core.semantics import brute_force_formula_probability
from repro.core.variables import VariableRegistry
from repro.db.algebra import (
    conf,
    natural_join,
    product,
    project,
    rename_attributes,
    select,
    theta_join,
    union,
)
from repro.db.relation import Relation


@pytest.fixture
def setup():
    reg = VariableRegistry()
    r = Relation.tuple_independent(
        "R",
        ["a", "b"],
        [((1, 10), 0.5), ((1, 20), 0.6), ((2, 10), 0.7)],
        reg,
    )
    s = Relation.tuple_independent(
        "S", ["b", "c"], [((10, "x"), 0.4), ((20, "y"), 0.9)], reg
    )
    return reg, r, s


def worlds_of(reg, variables):
    import itertools

    variables = sorted(variables, key=repr)
    for combo in itertools.product([True, False], repeat=len(variables)):
        yield dict(zip(variables, combo))


def materialise(relation, world):
    """Rows of `relation` present in `world` (deterministic instance)."""
    return [
        values
        for values, lineage in relation.rows
        if lineage.evaluate(world)
    ]


class TestSelect:
    def test_predicate_filtering(self, setup):
        _reg, r, _s = setup
        result = select(r, lambda row: row["a"] == 1)
        assert [v for v, _l in result.rows] == [(1, 10), (1, 20)]

    def test_lineage_untouched(self, setup):
        _reg, r, _s = setup
        result = select(r, lambda row: True)
        assert [l for _v, l in result.rows] == [l for _v, l in r.rows]


class TestProject:
    def test_deduplication_merges_lineage(self, setup):
        reg, r, _s = setup
        result = project(r, ["a"])
        assert len(result.rows) == 2  # a=1 (two derivations), a=2
        by_key = {values: lineage for values, lineage in result.rows}
        # P(a=1 present) = 1 - (1-0.5)(1-0.6)
        assert brute_force_formula_probability(
            by_key[(1,)], reg
        ) == pytest.approx(1 - 0.5 * 0.4)

    def test_without_deduplication(self, setup):
        _reg, r, _s = setup
        result = project(r, ["a"], deduplicate=False)
        assert len(result.rows) == 3

    def test_world_semantics(self, setup):
        reg, r, _s = setup
        result = project(r, ["a"])
        for world in worlds_of(reg, reg.variables()):
            expected = {values[:1] for values in materialise(r, world)}
            actual = {
                values
                for values, lineage in result.rows
                if lineage.evaluate(world)
            }
            assert actual == expected


class TestJoins:
    def test_natural_join_combines_lineage(self, setup):
        reg, r, s = setup
        result = natural_join(r, s)
        assert result.attributes == ("a", "b", "c")
        for world in worlds_of(reg, reg.variables()):
            r_rows = materialise(r, world)
            s_rows = materialise(s, world)
            expected = {
                (ra, rb, sc)
                for (ra, rb) in r_rows
                for (sb, sc) in s_rows
                if rb == sb
            }
            actual = {
                values
                for values, lineage in result.rows
                if lineage.evaluate(world)
            }
            assert actual == expected

    def test_theta_join_inequality(self, setup):
        reg, r, _s = setup
        t = Relation.tuple_independent(
            "T", ["d"], [((15,), 0.5), ((5,), 0.3)], reg
        )
        result = theta_join(r, t, lambda l, rr: l["b"] < rr["d"])
        pairs = {values for values, _l in result.rows}
        assert pairs == {(1, 10, 15), (2, 10, 15)}

    def test_theta_join_requires_disjoint_attributes(self, setup):
        _reg, r, s = setup
        with pytest.raises(ValueError, match="disjoint"):
            theta_join(r, r, lambda a, b: True)

    def test_product(self, setup):
        reg, _r, s = setup
        t = Relation.certain("T", ["d"], [(1,), (2,)])
        result = product(s, t)
        assert len(result.rows) == 4


class TestUnionRename:
    def test_union_merges_identical_tuples(self, setup):
        reg, _r, _s = setup
        u1 = Relation.tuple_independent("U1", ["x"], [((7,), 0.5)], reg)
        u2 = Relation.tuple_independent("U2", ["x"], [((7,), 0.4)], reg)
        result = union(u1, u2)
        assert len(result.rows) == 1
        assert brute_force_formula_probability(
            result.rows[0][1], reg
        ) == pytest.approx(1 - 0.5 * 0.6)

    def test_union_schema_mismatch(self, setup):
        _reg, r, s = setup
        with pytest.raises(ValueError, match="identical attribute"):
            union(r, s)

    def test_rename(self, setup):
        _reg, r, _s = setup
        renamed = rename_attributes(r, {"a": "a2"})
        assert renamed.attributes == ("a2", "b")

    def test_rename_collision_rejected(self, setup):
        _reg, r, _s = setup
        with pytest.raises(ValueError, match="duplicate"):
            rename_attributes(r, {"a": "b"})


class TestConf:
    def test_conf_matches_brute_force(self, setup):
        reg, r, s = setup
        joined = natural_join(r, s)
        projected = project(joined, ["a"])
        results = dict(conf(projected, reg))
        for values, lineage in projected.rows:
            expected = brute_force_formula_probability(lineage, reg)
            assert results[values] == pytest.approx(expected)

    def test_conf_with_custom_method(self, setup):
        reg, r, _s = setup
        calls = []

        def method(dnf, registry):
            calls.append(dnf)
            return 0.42

        results = conf(project(r, ["a"]), reg, method=method)
        assert all(p == 0.42 for _v, p in results)
        assert len(calls) == 2

    def test_conf_with_epsilon(self, setup):
        reg, r, _s = setup
        results = dict(conf(project(r, ["a"]), reg, epsilon=0.01))
        expected = 1 - 0.5 * 0.4
        assert results[(1,)] == pytest.approx(expected, abs=0.011)
