"""Tests for the query explanation / algorithm advisor."""

import pytest

from repro.core.variables import VariableRegistry
from repro.db.cq import ConjunctiveQuery, Const, Inequality, SubGoal, Var
from repro.db.database import Database
from repro.db.explain import explain
from repro.db.relation import Relation
from repro.datasets.tpch_queries import (
    HARD_QUERIES,
    HIERARCHICAL_QUERIES,
    IQ_QUERIES,
    make_query,
)


def hard_pattern_db(s_pairs, probabilistic=True):
    reg = VariableRegistry()
    db = Database(reg)
    xs = sorted({x for x, _y in s_pairs})
    ys = sorted({y for _x, y in s_pairs})
    db.add(Relation.tuple_independent("R", ["x"], [((x,), 0.3) for x in xs],
                                      reg))
    if probabilistic:
        db.add(
            Relation.tuple_independent(
                "S", ["x", "y"], [((x, y), 0.4) for x, y in s_pairs], reg
            )
        )
    else:
        db.add(Relation.certain("S", ["x", "y"], s_pairs))
    db.add(Relation.tuple_independent("T", ["y"], [((y,), 0.6) for y in ys],
                                      reg))
    return db


def hard_pattern_query():
    x, y = Var("X"), Var("Y")
    return ConjunctiveQuery(
        [],
        [SubGoal("R", [x]), SubGoal("S", [x, y]), SubGoal("T", [y])],
    )


class TestClassification:
    def test_hierarchical_queries(self):
        for name in HIERARCHICAL_QUERIES:
            report = explain(make_query(name))
            assert report.tractable, name
            assert report.hierarchical, name
            assert "SPROUT" in report.recommendation, name

    def test_iq_queries(self):
        for name in IQ_QUERIES:
            query = make_query(name)
            if not query.inequalities:
                continue
            report = explain(query)
            assert report.tractable, name

    def test_hard_queries(self):
        for name in HARD_QUERIES:
            report = explain(make_query(name))
            assert not report.tractable, name
            assert "approximation" in report.recommendation, name

    def test_self_join_reported(self):
        x, y = Var("X"), Var("Y")
        query = ConjunctiveQuery(
            [], [SubGoal("E", [x, y]), SubGoal("E", [y, x])]
        )
        report = explain(query)
        assert report.self_join
        assert not report.tractable


class TestTheorem64Integration:
    def test_functional_instance_tractable(self):
        db = hard_pattern_db([(1, 10), (2, 10), (3, 20)])
        report = explain(hard_pattern_query(), db)
        assert report.hard_pattern
        assert report.theorem_6_4 is True
        assert report.tractable

    def test_path_instance_hard(self):
        db = hard_pattern_db([(1, 10), (1, 20), (2, 20)])
        report = explain(hard_pattern_query(), db)
        assert report.hard_pattern
        assert report.theorem_6_4 is False
        assert not report.tractable

    def test_complete_deterministic_tractable(self):
        db = hard_pattern_db(
            [(1, 10), (1, 20), (2, 10), (2, 20)], probabilistic=False
        )
        report = explain(hard_pattern_query(), db)
        assert report.theorem_6_4 is True
        assert report.tractable

    def test_without_database_undecided(self):
        report = explain(hard_pattern_query())
        assert report.hard_pattern
        assert report.theorem_6_4 is None
        assert not report.tractable

    def test_notes_populated(self):
        db = hard_pattern_db([(1, 10)])
        report = explain(hard_pattern_query(), db)
        assert report.notes
        assert "QueryExplanation" in repr(report)


class TestIQEdgeCases:
    def test_iq_without_inequalities_is_hierarchical_case(self):
        # q3 of Example 6.7: R(A), T(D) — IQ by definition, but without
        # inequalities the hierarchical recommendation wins.
        a, d = Var("A"), Var("D")
        query = ConjunctiveQuery(
            [], [SubGoal("R", [a]), SubGoal("T", [d])]
        )
        report = explain(query)
        assert report.tractable
        assert "SPROUT" in report.recommendation

    def test_cross_inequality_on_non_iq_shape(self):
        # Equality join + cross inequality: not IQ, not plain hierarchical.
        a, b, c, d = Var("A"), Var("B"), Var("C"), Var("D")
        query = ConjunctiveQuery(
            [],
            [SubGoal("R", [a, b]), SubGoal("S", [a, c]),
             SubGoal("T", [d])],
            [Inequality(b, "<", d), Inequality(c, "<", d)],
        )
        report = explain(query)
        assert not report.tractable
