"""Engine-lifetime worker pools: amortization and snapshot invalidation.

The contract of :class:`repro.engine_parallel.WorkerPool` (ROADMAP
open item "amortize process pools across batches"):

* consecutive sharded batches on one engine reuse one pool — pool
  start-up is paid once, worker caches stay warm;
* a process pool is invalidated (snapshot re-shipped via a rebuild)
  exactly when new atoms were interned after pool start — never on a
  quiet intern table;
* batch ``close()`` only drops the batch's reference; the pool dies
  with ``engine.close()`` (or the GC finalizer);
* results through a reused pool stay bit-identical to the serial path.
"""

import pytest

from repro.core.events import Atom
from repro.core.variables import intern_version
from repro.engine import ConfidenceEngine, EngineConfig

from test_parallel_differential import exact_mismatch, make_group


def thread_engine(registry, **overrides):
    return ConfidenceEngine(
        registry,
        EngineConfig(workers=3, executor_kind="thread", **overrides),
    )


class TestPoolReuse:
    def test_thread_pool_survives_across_batches(self):
        registry, dnfs = make_group("plr", 1, 12)
        engine = thread_engine(registry)
        with engine:
            engine.compute_many(dnfs[:6])
            pool = engine._worker_pools["thread"]
            assert pool is not None
            assert engine._pool_starts == 1
            engine.compute_many(dnfs[6:])
            assert engine._worker_pools["thread"] is pool
            assert engine._pool_starts == 1

    def test_thread_worker_caches_stay_warm(self):
        registry, dnfs = make_group("plw", 2, 6)
        engine = thread_engine(registry, try_read_once=False)
        with engine:
            engine.compute_many(dnfs)
            pool = engine._worker_pools["thread"]
            warm = sum(
                len(worker.cache) for worker in pool.thread_engines
            )
            assert warm > 0
            # The same batch again: the same worker engines (and their
            # populated caches) serve it.
            engine.compute_many(dnfs)
            assert engine._worker_pools["thread"] is pool
            assert pool.thread_engines is not None

    def test_pool_grows_when_more_workers_requested(self):
        registry, dnfs = make_group("plg", 3, 8)
        engine = thread_engine(registry)
        with engine:
            engine.compute_many(dnfs, workers=2)
            assert engine._pool_starts == 1
            first = engine._worker_pools["thread"]
            assert first.size == 2
            engine.compute_many(dnfs, workers=4)
            assert engine._pool_starts == 2
            assert engine._worker_pools["thread"] is not first
            assert engine._worker_pools["thread"].size >= 4
            # Smaller requests reuse the bigger pool.
            engine.compute_many(dnfs, workers=2)
            assert engine._pool_starts == 2

    def test_executor_kind_switch_rebuilds(self):
        registry, dnfs = make_group("plk", 4, 6)
        engine = thread_engine(registry)
        with engine:
            engine.compute_many(dnfs)
            thread_pool = engine._worker_pools["thread"]
            engine.compute_many(dnfs, executor_kind="process")
            assert engine._worker_pools["process"].kind == "process"
            assert engine._pool_starts == 2
            # One slot per kind: the thread pool was NOT evicted, so
            # interleaved kinds don't thrash each other.
            assert engine._worker_pools["thread"] is thread_pool
            engine.compute_many(dnfs)
            assert engine._pool_starts == 2

    def test_close_is_idempotent_and_rebuild_works_after(self):
        registry, dnfs = make_group("plc", 5, 6)
        engine = thread_engine(registry)
        engine.compute_many(dnfs)
        engine.close()
        assert not engine._worker_pools
        engine.close()  # idempotent
        engine.compute_many(dnfs)
        assert engine._pool_starts == 2
        engine.close()

    def test_batch_close_leaves_engine_pool_alive(self):
        registry, dnfs = make_group("plb", 6, 8)
        engine = thread_engine(registry)
        with engine:
            batch = engine.refine_many(dnfs)
            batch.close()
            assert engine._worker_pools["thread"] is not None
            # A later batch reuses the surviving pool.
            engine.compute_many(dnfs)
            assert engine._pool_starts == 1


class TestConcurrentBatches:
    def test_two_threads_sharing_one_engine_get_correct_results(self):
        # Two request threads driving one session engine concurrently:
        # rounds serialize on the shared pool's round_lock, so the
        # single-threaded per-shard worker engines are never raced and
        # results stay bit-identical to the serial path.
        import threading as _threading

        registry, dnfs = make_group("pcc", 10, 16)
        serial = ConfidenceEngine(registry).compute_many(dnfs)
        engine = thread_engine(registry, initial_steps=1)
        outcomes = {}

        def run(tag, batch):
            try:
                outcomes[tag] = engine.compute_many(batch)
            except Exception as exc:  # pragma: no cover - failure path
                outcomes[tag] = exc

        with engine:
            for _round in range(3):
                first = _threading.Thread(
                    target=run, args=("a", dnfs[:8])
                )
                second = _threading.Thread(
                    target=run, args=("b", dnfs[8:])
                )
                first.start(); second.start()
                first.join(); second.join()
                assert not isinstance(outcomes["a"], Exception), (
                    outcomes["a"]
                )
                assert not isinstance(outcomes["b"], Exception), (
                    outcomes["b"]
                )
                for left, right in zip(
                    serial, outcomes["a"] + outcomes["b"]
                ):
                    assert exact_mismatch(left, right) is None


class TestBrokenPoolRecovery:
    def test_dead_executor_is_evicted_and_next_batch_heals(self):
        registry, dnfs = make_group("pbr", 9, 6)
        engine = thread_engine(registry)
        with engine:
            engine.compute_many(dnfs)
            assert engine._pool_starts == 1
            # Kill the executor out from under the pool (stand-in for a
            # worker crash): the next batch must fail loudly, evict the
            # corpse, and the one after must rebuild and succeed.
            engine._worker_pools["thread"].executor.shutdown()
            with pytest.raises(RuntimeError):
                engine.compute_many(dnfs)
            assert "thread" not in engine._worker_pools
            serial = ConfidenceEngine(registry).compute_many(dnfs)
            healed = engine.compute_many(dnfs)
            assert engine._pool_starts == 2
            for left, right in zip(serial, healed):
                assert exact_mismatch(left, right) is None


class TestProcessSnapshotInvalidation:
    def test_process_pool_reused_when_interning_is_quiet(self):
        registry, dnfs = make_group("psq", 7, 6)
        engine = ConfidenceEngine(
            registry, EngineConfig(workers=2, executor_kind="process")
        )
        with engine:
            serial = ConfidenceEngine(registry).compute_many(dnfs)
            first = engine.compute_many(dnfs[:3])
            pool = engine._worker_pools["process"]
            version = intern_version()
            second = engine.compute_many(dnfs[3:])
            assert intern_version() == version
            assert engine._worker_pools["process"] is pool
            assert engine._pool_starts == 1
            for left, right in zip(serial, first + second):
                assert exact_mismatch(left, right) is None

    def test_process_pool_rebuilt_after_new_atoms_interned(self):
        registry, dnfs = make_group("psr", 8, 6)
        engine = ConfidenceEngine(
            registry, EngineConfig(workers=2, executor_kind="process")
        )
        with engine:
            engine.compute_many(dnfs[:3])
            assert engine._pool_starts == 1
            stale_version = engine._worker_pools["process"].snapshot_version
            # Intern a brand-new atom: the pool's shipped snapshot no
            # longer covers the table, so the next round must rebuild
            # (re-shipping a fresh snapshot) before id-encoding tasks.
            registry.add_boolean("psr_new_atom", 0.5)
            Atom("psr_new_atom", True)
            assert intern_version() != stale_version
            serial = ConfidenceEngine(registry).compute_many(dnfs[3:])
            results = engine.compute_many(dnfs[3:])
            assert engine._pool_starts == 2
            assert (
                engine._worker_pools["process"].snapshot_version
                == intern_version()
            )
            for left, right in zip(serial, results):
                assert exact_mismatch(left, right) is None
