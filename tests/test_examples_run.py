"""Smoke tests: the example scripts must run end to end.

``tpch_confidence.py`` is compile-checked only — it deliberately runs a
multi-second benchmark sweep that belongs in ``benchmarks/``, not in the
test suite.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "anytime_bounds.py",
    "circuit_what_if.py",
    "persist_circuits.py",
    "sql_and_topk.py",
    "social_network_motifs.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_compile():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 5
    for script in scripts:
        py_compile.compile(str(script), doraise=True)


def test_quickstart_reproduces_example_5_2():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "0.845600" in result.stdout  # the exact probability
    assert "complete d-tree" in result.stdout
