"""Serving fleet: real sockets, real processes, bit-identical answers.

End-to-end acceptance for the scale-out tier: a
:class:`~repro.serving.ServingFleet` of worker processes over one
persisted store file must answer exactly (``==``) like the in-process
circuit path, route repeated point queries onto a warm response cache,
replicate catalog changes, shed an over-quota tenant with 429 +
retry-after while its neighbours are unaffected, and shut down
cleanly.  Everything here runs over the stdlib HTTP/1.1 bridge (the
container has no uvicorn), which is exactly the configuration CI
benchmarks.
"""

import asyncio
import os
import signal
import time

import pytest

from repro.circuits import CircuitCache
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.variables import VariableRegistry
from repro.engine import ConfidenceEngine
from repro.serving import (
    FleetClient,
    FleetConfig,
    ServingConfig,
    ServingError,
    ServingFleet,
)
from repro.serving.codec import dnf_to_json


def make_registry():
    registry = VariableRegistry()
    for index in range(10):
        registry.add_boolean(f"x{index}", 0.08 + 0.07 * index)
    return registry


def dnf(*clauses):
    return DNF([Clause({v: True for v in clause}) for clause in clauses])


L1 = (("x0", "x1"), ("x2",), ("x3", "x4"))
L2 = (("x1", "x5"), ("x6", "x7"))
L3 = (("x0", "x8"), ("x2", "x9"), ("x5",))
COLD = (("x3", "x9"), ("x4", "x6"))


def build_store(registry, path, specs):
    engine = ConfidenceEngine(registry)
    cache = CircuitCache()
    circuits = {}
    for spec in specs:
        lineage = dnf(*spec)
        circuit = engine.compile_circuit(lineage)
        cache.put(lineage, circuit)
        circuits[spec] = circuit
    cache.save(path)
    return circuits


@pytest.fixture(scope="module")
def fleet_stack(tmp_path_factory):
    """One 2-worker fleet shared by the module (start-up is the cost)."""
    tmp_path = tmp_path_factory.mktemp("fleet")
    registry = make_registry()
    circuits = build_store(
        registry, tmp_path / "store.bin", [L1, L2, L3]
    )
    fleet = ServingFleet(
        registry,
        {"main": tmp_path / "store.bin"},
        config=FleetConfig(
            workers=2,
            serving=ServingConfig(
                tenant_quota_rps={"metered": 2.0},
                quota_burst=None,
            ),
        ),
    )
    addresses = fleet.start()
    yield {
        "registry": registry,
        "circuits": circuits,
        "fleet": fleet,
        "addresses": addresses,
        "tmp_path": tmp_path,
    }
    fleet.close()


def run(coroutine):
    return asyncio.run(coroutine)


class TestFleetServing:
    def test_two_workers_bit_identical(self, fleet_stack):
        assert len(fleet_stack["addresses"]) == 2
        assert fleet_stack["fleet"].alive == 2
        circuits = fleet_stack["circuits"]

        async def scenario():
            client = FleetClient(fleet_stack["addresses"])
            try:
                for spec in (L1, L2, L3):
                    for overrides in (None, {"x0": 0.9}, {"x5": 0.25}):
                        response = await client.evaluate(
                            dnf(*spec), overrides=overrides, store="main"
                        )
                        assert response["strategy"] == "store"
                        assert response["value"] == circuits[
                            spec
                        ].evaluate(overrides)
                bounds = await client.bounds(dnf(*L2), store="main")
                assert tuple(bounds["bounds"]) == circuits[
                    L2
                ].evaluate_bounds()
            finally:
                await client.close()

        run(scenario())

    def test_affinity_routes_repeats_onto_warm_cache(self, fleet_stack):
        circuits = fleet_stack["circuits"]

        async def scenario():
            client = FleetClient(fleet_stack["addresses"])
            try:
                payload = {"lineage": "probe"}
                assert client.worker_for(payload) == client.worker_for(
                    payload
                )
                first = await client.evaluate(
                    dnf(*L1), overrides={"x2": 0.5}, store="main"
                )
                second = await client.evaluate(
                    dnf(*L1), overrides={"x2": 0.5}, store="main"
                )
                assert second["cached"] is True
                expected = circuits[L1].evaluate({"x2": 0.5})
                assert first["value"] == second["value"] == expected
                totals = await client.aggregate_stats()
                assert totals["response_hits"] >= 1
            finally:
                await client.close()

        run(scenario())

    def test_quota_sheds_metered_tenant_only(self, fleet_stack):
        async def scenario():
            client = FleetClient(fleet_stack["addresses"])
            try:
                rejections = 0
                retry_after = None
                # Burst defaults to 2x the 2 rps rate => 4 tokens; the
                # 12-request hammer must overflow the bucket.
                for _ in range(12):
                    try:
                        await client.evaluate(
                            dnf(*L3), store="main", tenant="metered"
                        )
                    except ServingError as exc:
                        assert exc.code == "quota-exceeded"
                        assert exc.status == 429
                        rejections += 1
                        retry_after = exc.retry_after_seconds
                assert rejections > 0
                assert retry_after is not None and retry_after > 0.0
                # Unmetered tenants on the same worker sail through.
                for _ in range(12):
                    response = await client.evaluate(
                        dnf(*L3), store="main", tenant="free"
                    )
                    assert "value" in response
                totals = await client.aggregate_stats()
                assert totals["quota_rejections"] >= rejections
            finally:
                await client.close()

        run(scenario())

    def test_catalog_replicates_across_workers(self, fleet_stack):
        tmp_path = fleet_stack["tmp_path"]
        extra_circuits = build_store(
            fleet_stack["registry"], tmp_path / "extra.bin", [COLD]
        )

        async def scenario():
            client = FleetClient(fleet_stack["addresses"])
            try:
                results = await client.add_store(
                    "extra", str(tmp_path / "extra.bin")
                )
                assert len(results) == 2
                assert all(
                    "extra" in result["stores"] for result in results
                )
                # Every worker can serve it (bypass affinity on purpose).
                for index in range(2):
                    response = await client.http(
                        "POST",
                        "/v1/evaluate",
                        {
                            "lineage": dnf_to_json(dnf(*COLD)),
                            "store": "extra",
                        },
                        worker=index,
                    )
                    assert response["value"] == extra_circuits[
                        COLD
                    ].evaluate(None)
                dropped = await client.drop_store("extra")
                assert all(
                    "extra" not in result["stores"] for result in dropped
                )
                with pytest.raises(ServingError) as info:
                    await client.evaluate(dnf(*COLD), store="extra")
                assert info.value.code == "unknown-store"
            finally:
                await client.close()

        run(scenario())

    def test_healthz_and_stats_per_worker(self, fleet_stack):
        async def scenario():
            client = FleetClient(fleet_stack["addresses"])
            try:
                health = await client.healthz()
                assert [entry["status"] for entry in health] == [
                    "ok",
                    "ok",
                ]
                summaries = await client.stats()
                assert len(summaries) == 2
                for summary in summaries:
                    assert "requests_total" in summary
                    assert "response_hit_ratio" in summary
            finally:
                await client.close()

        run(scenario())


class TestFleetLifecycle:
    def test_close_is_clean_and_idempotent(self, tmp_path):
        registry = make_registry()
        build_store(registry, tmp_path / "store.bin", [L1])
        fleet = ServingFleet(
            registry,
            {"main": tmp_path / "store.bin"},
            config=FleetConfig(workers=1),
        )
        with fleet:
            assert fleet.alive == 1

            async def scenario():
                client = FleetClient(fleet.addresses)
                try:
                    response = await client.evaluate(
                        dnf(*L1), store="main"
                    )
                    assert response["strategy"] == "store"
                finally:
                    await client.close()

            run(scenario())
        assert fleet.alive == 0
        fleet.close()  # idempotent

    def test_zero_workers_rejected(self, tmp_path):
        registry = make_registry()
        build_store(registry, tmp_path / "store.bin", [L1])
        with pytest.raises(ValueError):
            ServingFleet(
                registry,
                {"main": tmp_path / "store.bin"},
                config=FleetConfig(workers=0),
            )

    def test_crashed_worker_is_respawned(self, tmp_path):
        """Kill a worker mid-run; the supervisor must restore the fleet."""
        registry = make_registry()
        circuits = build_store(registry, tmp_path / "store.bin", [L1, L2])
        fleet = ServingFleet(
            registry,
            {"main": tmp_path / "store.bin"},
            config=FleetConfig(
                workers=2,
                restart_budget=2,
                restart_check_seconds=0.05,
            ),
        )
        with fleet:
            victim_index = 1
            victim_address = fleet.addresses[victim_index]
            os.kill(fleet.pids[victim_index], signal.SIGKILL)
            # Real wall clock: process death and respawn are OS work.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if fleet.restarts >= 1 and fleet.alive == 2:
                    break
                time.sleep(0.05)
            assert fleet.restarts == 1
            assert fleet.alive == 2
            # The replacement got a fresh port at the same slot.
            replacement = fleet.addresses[victim_index]
            assert replacement != victim_address

            async def scenario():
                client = FleetClient(fleet.addresses)
                try:
                    response = await client.http(
                        "POST",
                        "/v1/evaluate",
                        {
                            "lineage": dnf_to_json(dnf(*L2)),
                            "store": "main",
                        },
                        worker=victim_index,
                    )
                    assert response["value"] == circuits[L2].evaluate(None)
                finally:
                    await client.close()

            run(scenario())
        assert fleet.alive == 0

    def test_restart_budget_zero_only_reaps(self, tmp_path):
        registry = make_registry()
        build_store(registry, tmp_path / "store.bin", [L1])
        fleet = ServingFleet(
            registry,
            {"main": tmp_path / "store.bin"},
            config=FleetConfig(
                workers=1, restart_budget=0, restart_check_seconds=0.05
            ),
        )
        with fleet:
            assert fleet._supervisor is None
            os.kill(fleet.pids[0], signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while fleet.alive and time.monotonic() < deadline:
                time.sleep(0.05)
            time.sleep(0.2)  # a respawn would need a poll cycle
            assert fleet.alive == 0
            assert fleet.restarts == 0

    def test_store_only_fleet_has_no_cold_path(self, tmp_path):
        registry = make_registry()
        build_store(registry, tmp_path / "store.bin", [L1])
        fleet = ServingFleet(
            registry,
            {"main": tmp_path / "store.bin"},
            config=FleetConfig(workers=1, engine=None),
        )
        with fleet:

            async def scenario():
                client = FleetClient(fleet.addresses)
                try:
                    with pytest.raises(ServingError) as info:
                        await client.evaluate(dnf(*COLD), store="main")
                    assert info.value.code == "unknown-circuit"
                finally:
                    await client.close()

            run(scenario())


class TestQuotaRetry:
    """FleetClient.retry_quota: one Retry-After-guided retry on 429."""

    @staticmethod
    def make_client(responses, slept, retry_quota=True):
        client = FleetClient(
            [("127.0.0.1", 1)],
            retry_quota=retry_quota,
            sleep=lambda delay: slept.append(delay) or asyncio.sleep(0),
        )

        async def fake_http(method, path, body=None, *, worker=0):
            outcome = responses.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        client.http = fake_http
        return client

    @staticmethod
    def quota_error(retry_after=0.37):
        return ServingError(
            "quota-exceeded",
            "tenant over quota",
            status=429,
            details={"retry_after_seconds": retry_after},
        )

    def test_single_retry_after_429(self):
        slept = []
        client = self.make_client(
            [self.quota_error(0.37), {"value": 1.0}], slept
        )

        async def scenario():
            return await client.request({"op": "evaluate", "tenant": "m"})

        assert run(scenario()) == {"value": 1.0}
        assert slept == [0.37]

    def test_second_429_surfaces(self):
        slept = []
        client = self.make_client(
            [self.quota_error(0.1), self.quota_error(0.2)], slept
        )

        async def scenario():
            with pytest.raises(ServingError) as info:
                await client.request({"op": "evaluate"})
            assert info.value.status == 429

        run(scenario())
        assert slept == [0.1]  # exactly one retry, no loop

    def test_opt_out_surfaces_immediately(self):
        slept = []
        client = self.make_client(
            [self.quota_error()], slept, retry_quota=False
        )

        async def scenario():
            with pytest.raises(ServingError):
                await client.request({"op": "evaluate"})

        run(scenario())
        assert slept == []

    def test_429_without_retry_after_surfaces(self):
        slept = []
        client = self.make_client(
            [ServingError("overloaded", "shed", status=429)], slept
        )

        async def scenario():
            with pytest.raises(ServingError):
                await client.request({"op": "evaluate"})

        run(scenario())
        assert slept == []

    def test_non_quota_errors_never_retry(self):
        slept = []
        client = self.make_client(
            [ServingError("unknown-store", "nope", status=404)], slept
        )

        async def scenario():
            with pytest.raises(ServingError) as info:
                await client.request({"op": "evaluate"})
            assert info.value.status == 404

        run(scenario())
        assert slept == []
