"""Serving tier: stores, operations, degradation, wire protocol.

The acceptance bar is bit-identity: a circuit compiled in one process
and served from a store in another must answer ``evaluate`` /
``bounds`` / ``gradients`` exactly (``==``) like the in-process
:class:`CompiledResult` path — serving is a deployment decision, never
a semantics one.  Degradation paths (cold lineage, stale version,
overload, deadline) must fail *structurally*, with stable error codes.
"""

import asyncio
import json
import os
import subprocess
import sys

import pytest

import repro
from repro.circuits import (
    CircuitCache,
    circuit_kernel,
    compile_circuit,
    expand_residuals,
    refine_sweep_bounds,
    sweep_bounds,
    sweep_values,
)
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.variables import VariableRegistry
from repro.db.session import ProbDB
from repro.engine import ConfidenceEngine
from repro.serving import (
    ASGIClient,
    CircuitStoreService,
    ServingApp,
    ServingClient,
    ServingConfig,
    ServingEngine,
    ServingError,
)


def run(coroutine):
    return asyncio.run(coroutine)


def make_registry():
    registry = VariableRegistry()
    for index in range(10):
        registry.add_boolean(f"x{index}", 0.08 + 0.07 * index)
    return registry


def dnf(*clauses):
    return DNF([Clause({v: True for v in clause}) for clause in clauses])


L1 = (("x0", "x1"), ("x2",), ("x3", "x4"))
L2 = (("x1", "x5"), ("x6", "x7"))
L3 = (("x0", "x8"), ("x2", "x9"), ("x5",))
COLD = (("x3", "x9"), ("x4", "x6"))


@pytest.fixture
def served(tmp_path):
    """A store file with three circuits + a serving stack over it."""
    registry = make_registry()
    engine = ConfidenceEngine(registry)
    cache = CircuitCache()
    lineages = [dnf(*L1), dnf(*L2), dnf(*L3)]
    for lineage in lineages:
        cache.put(lineage, engine.compile_circuit(lineage))
    path = tmp_path / "store.bin"
    cache.save(path)
    stores = CircuitStoreService(
        registry, {"main": path}, reload_check_seconds=0.0
    )
    serving = ServingEngine(stores, ConfidenceEngine(registry))
    return {
        "registry": registry,
        "cache": cache,
        "lineages": lineages,
        "path": path,
        "stores": stores,
        "serving": serving,
        "client": ServingClient(serving),
        "wire": ASGIClient(ServingApp(serving)),
    }


# ----------------------------------------------------------------------
# Store service
# ----------------------------------------------------------------------
class TestStoreService:
    def test_snapshot_contents_and_versioning(self, served):
        snapshot = served["stores"].snapshot("main")
        assert len(snapshot) == 3
        assert snapshot.name == "main"
        stat = os.stat(served["path"])
        assert snapshot.version == (
            f"{stat.st_mtime_ns}:{stat.st_size}:{stat.st_dev}:{stat.st_ino}"
        )
        for lineage in served["lineages"]:
            assert lineage in snapshot
            assert snapshot.get(lineage) is not None
        assert snapshot.intern is not None

    def test_unknown_store_is_structured(self, served):
        with pytest.raises(ServingError) as info:
            served["stores"].snapshot("nope")
        assert info.value.code == "unknown-store"
        assert info.value.status == 404

    def test_hot_reload_on_version_change(self, served, tmp_path):
        stores = served["stores"]
        before = stores.snapshot("main").version
        # Grow the store file: a fourth circuit changes size => version.
        registry = served["registry"]
        engine = ConfidenceEngine(registry)
        extra = dnf(*COLD)
        served["cache"].put(extra, engine.compile_circuit(extra))
        served["cache"].save(served["path"])
        snapshot = stores.snapshot("main")
        assert snapshot.version != before
        assert len(snapshot) == 4
        assert snapshot.get(extra) is not None
        assert stores.reloads == 1

    def test_vanished_file_keeps_last_good_snapshot(self, served):
        stores = served["stores"]
        before = stores.snapshot("main")
        os.unlink(served["path"])
        after = stores.snapshot("main")
        assert after is before  # degraded, not dead

    def test_live_cache_store_recuts_on_mutation(self):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        cache = CircuitCache()
        stores = CircuitStoreService(registry)
        stores.add_cache("live", cache)
        assert len(stores.snapshot("live")) == 0
        lineage = dnf(*L1)
        cache.put(lineage, engine.compile_circuit(lineage))
        snapshot = stores.snapshot("live")
        assert len(snapshot) == 1
        assert snapshot.version.startswith("cache:")

    def test_snapshot_survives_cache_clear(self):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        cache = CircuitCache()
        lineage = dnf(*L2)
        cache.put(lineage, engine.compile_circuit(lineage))
        snapshot = cache.snapshot()
        cache.clear()
        assert snapshot.get(lineage) is not None
        assert cache.get(lineage) is None


# ----------------------------------------------------------------------
# Operations: bit-identity against the direct circuit path
# ----------------------------------------------------------------------
class TestOperations:
    def test_evaluate_bit_identical(self, served):
        circuit = served["cache"].get(dnf(*L1))
        for overrides in (None, {"x0": 0.9}, {"x2": 0.0, "x4": 1.0}):
            response = run(
                served["client"].evaluate(dnf(*L1), overrides=overrides)
            )
            assert response["value"] == circuit.evaluate(overrides)
            assert response["strategy"] == "store"
            assert response["store"] == "main"

    def test_bounds_bit_identical(self, served):
        circuit = served["cache"].get(dnf(*L2))
        response = run(served["client"].bounds(dnf(*L2)))
        assert tuple(response["bounds"]) == circuit.evaluate_bounds()
        assert response["width"] == 0.0  # exact circuit

    def test_gradients_bit_identical(self, served):
        circuit = served["cache"].get(dnf(*L3))
        expected = circuit.gradients({"x5": 0.4})
        response = run(
            served["client"].gradients(dnf(*L3), overrides={"x5": 0.4})
        )
        decoded = {
            variable: gradient
            for variable, gradient in response["gradients"]
        }
        assert decoded == expected

    def test_what_if_matches_scalar_grid(self, served):
        circuit = served["cache"].get(dnf(*L1))
        probabilities = [0.0, 0.25, 0.5, 0.75, 1.0]
        response = run(
            served["client"].what_if(dnf(*L1), "x2", probabilities)
        )
        assert response["values"] == [
            circuit.evaluate({"x2": p}) for p in probabilities
        ]

    def test_sweep_values_and_bounds(self, served):
        circuit = served["cache"].get(dnf(*L3))
        scenarios = [None, {"x0": 0.3}, {"x9": 0.9, "x5": 0.1}]
        values = run(served["client"].sweep(dnf(*L3), scenarios))
        assert values["results"] == [
            circuit.evaluate(s) for s in scenarios
        ]
        bounds = run(
            served["client"].sweep(dnf(*L3), scenarios, kind="bounds")
        )
        assert [tuple(pair) for pair in bounds["results"]] == [
            circuit.evaluate_bounds(s) for s in scenarios
        ]

    def test_top_k_ranks_by_confidence(self, served):
        values = {
            label: served["cache"].get(lineage).evaluate()
            for label, lineage in zip(
                "abc", served["lineages"]
            )
        }
        response = run(
            served["client"].top_k(
                served["lineages"], 2, answers=["a", "b", "c"]
            )
        )
        expected = sorted(
            values.items(), key=lambda item: (-item[1], item[0])
        )[:2]
        assert [tuple(pair) for pair in response["answers"]] == expected

    def test_default_store_when_single(self, served):
        response = run(served["client"].evaluate(dnf(*L1)))
        assert response["store"] == "main"


# ----------------------------------------------------------------------
# Degradation: cold circuits, staleness, overload, deadlines
# ----------------------------------------------------------------------
class TestDegradation:
    def test_cold_lineage_engine_compute(self, served):
        reference = ConfidenceEngine(served["registry"]).compute(
            dnf(*COLD)
        )
        response = run(served["client"].evaluate(dnf(*COLD)))
        assert response["strategy"] == "engine"
        assert response["value"] == reference.probability
        assert served["serving"].stats.engine_fallbacks == 1
        # Repeat answers are stable; if the engine attached a circuit
        # it landed in the overlay and the repeat is served warm.
        again = run(served["client"].evaluate(dnf(*COLD)))
        assert again["strategy"] in ("engine", "overlay")
        assert again["value"] == response["value"]

    def test_cold_lineage_with_overrides_compiles(self, served):
        response = run(
            served["client"].evaluate(dnf(*COLD), overrides={"x3": 0.5})
        )
        assert response["strategy"] == "engine-compile"
        direct = ConfidenceEngine(served["registry"]).compile_circuit(
            dnf(*COLD)
        )
        assert response["value"] == direct.evaluate({"x3": 0.5})

    def test_cold_without_engine_is_unknown_circuit(self, served):
        serving = ServingEngine(served["stores"], engine=None)
        with pytest.raises(ServingError) as info:
            run(ServingClient(serving).evaluate(dnf(*COLD)))
        assert info.value.code == "unknown-circuit"

    def test_stale_version_rejected_with_current(self, served):
        with pytest.raises(ServingError) as info:
            run(
                served["client"].evaluate(
                    dnf(*L1), expect_version="stale"
                )
            )
        assert info.value.code == "stale-version"
        assert info.value.status == 409
        current = served["stores"].snapshot("main").version
        assert info.value.details["current"] == current

    def test_overload_sheds_structurally(self, served):
        serving = served["serving"]
        limit = (
            serving.config.max_inflight + serving.config.queue_limit
        )
        serving._pending = limit  # saturate admission
        try:
            with pytest.raises(ServingError) as info:
                run(served["client"].evaluate(dnf(*L1)))
        finally:
            serving._pending = 0
        assert info.value.code == "overloaded"
        assert info.value.status == 429
        assert serving.stats.shed == 1

    def test_deadline_exceeded_via_fake_clock(self, served, fake_clock):
        fake_clock.auto_advance = 3.0  # every clock read costs 3s
        with pytest.raises(ServingError) as info:
            run(
                served["client"].evaluate(
                    dnf(*L1), deadline_seconds=2.0
                )
            )
        assert info.value.code == "deadline-exceeded"
        assert info.value.status == 504

    def test_bad_requests(self, served):
        with pytest.raises(ServingError) as info:
            run(served["serving"].handle({"op": "frobnicate"}))
        assert info.value.code == "bad-request"
        with pytest.raises(ServingError) as info:
            run(
                served["client"].evaluate(
                    dnf(*L1), overrides={"unknown_var": 0.5}
                )
            )
        assert info.value.code == "bad-request"
        with pytest.raises(ServingError) as info:
            run(served["client"].evaluate(dnf(*L1), store="missing"))
        assert info.value.code == "unknown-store"


# ----------------------------------------------------------------------
# Micro-batching
# ----------------------------------------------------------------------
class TestBatching:
    def test_occupancy_exceeds_one(self, served):
        async def burst():
            client = served["client"]
            await asyncio.gather(
                *[
                    client.evaluate(dnf(*L1), overrides={"x0": p})
                    for p in (0.1, 0.2, 0.3, 0.4, 0.5)
                ]
            )

        run(burst())
        stats = served["serving"].stats
        assert stats.batches >= 1
        assert stats.occupancy() > 1.0

    def test_batched_rows_match_serial(self, served):
        circuit = served["cache"].get(dnf(*L2))
        overrides_list = [{"x1": p / 10.0} for p in range(10)]

        async def burst():
            return await asyncio.gather(
                *[
                    served["client"].evaluate(dnf(*L2), overrides=o)
                    for o in overrides_list
                ]
            )

        responses = run(burst())
        for response, overrides in zip(responses, overrides_list):
            assert response["value"] == circuit.evaluate(overrides)

    def test_bad_row_does_not_poison_batch(self, served):
        async def burst():
            good = asyncio.create_task(
                served["client"].evaluate(
                    dnf(*L1), overrides={"x0": 0.7}
                )
            )
            with pytest.raises(ServingError):
                await served["client"].evaluate(
                    dnf(*L1), overrides={"bogus": 0.5}
                )
            return await good

        response = run(burst())
        circuit = served["cache"].get(dnf(*L1))
        assert response["value"] == circuit.evaluate({"x0": 0.7})


# ----------------------------------------------------------------------
# ASGI wire path
# ----------------------------------------------------------------------
class TestASGI:
    def test_wire_matches_direct(self, served):
        direct = run(
            served["client"].evaluate(dnf(*L1), overrides={"x4": 0.6})
        )
        wired = run(
            served["wire"].evaluate(dnf(*L1), overrides={"x4": 0.6})
        )
        assert wired["value"] == direct["value"]
        assert wired["strategy"] == direct["strategy"]

    def test_health_stores_stats_routes(self, served):
        health = run(served["wire"].healthz())
        assert health == {"status": "ok", "stores": ["main"]}
        stores = run(served["wire"].stores())
        assert stores["stores"]["main"]["entries"] == 3
        run(served["wire"].evaluate(dnf(*L2)))
        stats = run(served["wire"].stats())
        assert stats["requests_total"] >= 1
        assert "latency" in stats and "p99_ms" in stats["latency"]

    def test_wire_errors_are_structured(self, served):
        with pytest.raises(ServingError) as info:
            run(served["wire"].http("POST", "/v1/nope", {}))
        assert info.value.status == 404
        with pytest.raises(ServingError) as info:
            run(served["wire"].http("GET", "/v1/unknown"))
        assert info.value.status == 404
        with pytest.raises(ServingError) as info:
            run(served["wire"].evaluate(dnf(*L1), store="ghost"))
        assert info.value.code == "unknown-store"

    def test_lifespan_protocol(self, served):
        app = ServingApp(served["serving"])

        async def cycle():
            events = [
                {"type": "lifespan.startup"},
                {"type": "lifespan.shutdown"},
            ]
            sent = []

            async def receive():
                return events.pop(0)

            async def send(message):
                sent.append(message["type"])

            await app({"type": "lifespan"}, receive, send)
            return sent

        assert run(cycle()) == [
            "lifespan.startup.complete",
            "lifespan.shutdown.complete",
        ]


# ----------------------------------------------------------------------
# Session integration
# ----------------------------------------------------------------------
class TestSessionServing:
    def test_probdb_serving_sees_later_compiles(self):
        registry = make_registry()
        db = ProbDB.from_registry(registry)
        first = dnf(*L1)
        circuit = db.circuit(first)
        client = ServingClient(db.serving(store_name="live"))
        response = run(client.evaluate(first))
        assert response["strategy"] == "store"
        assert response["value"] == circuit.evaluate()
        later = dnf(*L2)
        later_circuit = db.circuit(later)
        response = run(client.evaluate(later))
        assert response["strategy"] == "store"
        assert response["value"] == later_circuit.evaluate()


# ----------------------------------------------------------------------
# Satellite: per-circuit kernel caching
# ----------------------------------------------------------------------
class TestKernelCache:
    def test_kernel_cached_by_identity(self):
        from repro.circuits.kernels import BACKEND_NUMPY, kernel_backend

        if kernel_backend(None) != BACKEND_NUMPY:
            pytest.skip("numpy backend disabled")
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        circuit = engine.compile_circuit(dnf(*L1))
        kernel = circuit_kernel(circuit)
        assert circuit_kernel(circuit) is kernel
        # Sweeps share the instance kernel instead of re-lowering.
        sweep_values(circuit, [None, {"x0": 0.5}])
        assert circuit._kernel is kernel
        # condition() returns a NEW circuit: no stale kernel leaks.
        conditioned = circuit.condition("x0", True)
        assert conditioned is not circuit
        assert conditioned._kernel is None
        assert circuit_kernel(conditioned) is not kernel


# ----------------------------------------------------------------------
# Satellite: batched bounds refinement
# ----------------------------------------------------------------------
class TestRefineSweepBounds:
    def big_lineage(self):
        clauses = [
            ("x0", "x1"), ("x1", "x2"), ("x2", "x3"), ("x3", "x4"),
            ("x4", "x5"), ("x5", "x6"), ("x6", "x7"), ("x7", "x8"),
            ("x8", "x9"), ("x9", "x0"), ("x0", "x5"), ("x2", "x7"),
        ]
        return dnf(*clauses)

    def test_refines_to_exact_bounds(self):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        lineage = self.big_lineage()
        partial = engine.compile_circuit(lineage, max_nodes=8)
        assert partial.residuals, "need a truncated circuit"
        exact = engine.compile_circuit(lineage)
        scenarios = [None, {"x0": 0.9}, {"x3": 0.1, "x7": 0.8}]
        refined, bounds = refine_sweep_bounds(
            partial,
            scenarios,
            compile_subcircuit=engine.compile_circuit,
            target_width=0.0,
            max_rounds=64,
        )
        assert bounds == sweep_bounds(exact, scenarios)
        for low, high in bounds:
            assert low == high
        # Input circuit is never mutated.
        assert partial.residuals

    def test_single_expansion_nests_bounds(self):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        lineage = self.big_lineage()
        partial = engine.compile_circuit(lineage, max_nodes=8)
        scenarios = [None, {"x4": 0.2}]
        before = sweep_bounds(partial, scenarios)
        refined, after = refine_sweep_bounds(
            partial,
            scenarios,
            compile_subcircuit=engine.compile_circuit,
            max_rounds=1,
        )
        for (low0, high0), (low1, high1) in zip(before, after):
            assert low1 >= low0 - 1e-12
            assert high1 <= high0 + 1e-12

    def test_serving_refine_via_overlay(self, tmp_path):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        lineage = self.big_lineage()
        partial = engine.compile_circuit(lineage, max_nodes=8)
        exact = engine.compile_circuit(lineage)
        cache = CircuitCache()
        path = tmp_path / "empty.bin"
        cache.save(path)
        stores = CircuitStoreService(registry, {"main": path})
        serving = ServingEngine(stores, engine)
        serving.overlay.put(lineage, partial, exact_only=False)
        response = run(
            ServingClient(serving).bounds(lineage, refine=True)
        )
        assert response["strategy"] == "overlay+refined"
        low, high = exact.evaluate_bounds()
        assert response["bounds"] == [low, high]
        assert serving.stats.refinements == 1

    def test_deserialized_leaves_stay_refinable(self, tmp_path):
        # Format v2 persists each residual leaf's sub-DNF, so a
        # reloaded partial circuit refines exactly like the original.
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        lineage = self.big_lineage()
        partial = engine.compile_circuit(lineage, max_nodes=8)
        cache = CircuitCache()
        cache.put(lineage, partial, exact_only=False)
        path = tmp_path / "partial.bin"
        cache.save(path)
        other = CircuitCache()
        other.load_into(path, registry)
        loaded = other.get(lineage)
        assert loaded is not None and loaded.residuals
        assert loaded.refinable
        refined, bounds = refine_sweep_bounds(
            loaded,
            [None],
            compile_subcircuit=engine.compile_circuit,
            max_rounds=8,
        )
        assert refined is not loaded
        exact = engine.compile_circuit(lineage)
        assert bounds == sweep_bounds(exact, [None])


# ----------------------------------------------------------------------
# Cross-process acceptance: compile there, serve here, bit-identical
# ----------------------------------------------------------------------
_COMPILER_SCRIPT = """
import json, sys
from repro.circuits import CircuitCache
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.variables import VariableRegistry
from repro.engine import ConfidenceEngine

registry = VariableRegistry()
for index in range(10):
    registry.add_boolean(f"x{index}", 0.08 + 0.07 * index)
lineages = [
    DNF([Clause({v: True for v in clause}) for clause in spec])
    for spec in json.loads(sys.argv[2])
]
engine = ConfidenceEngine(registry)
cache = CircuitCache()
expected = []
for lineage in lineages:
    circuit = engine.compile_circuit(lineage)
    cache.put(lineage, circuit)
    expected.append(
        {
            "value": circuit.evaluate(),
            "shifted": circuit.evaluate({"x2": 0.5}),
            "bounds": list(circuit.evaluate_bounds()),
            "gradients": sorted(circuit.gradients().items()),
        }
    )
cache.save(sys.argv[1])
print(json.dumps(expected))
"""


class TestCrossProcess:
    def test_compile_elsewhere_serve_here(self, served, tmp_path):
        path = tmp_path / "shipped.bin"
        specs = [list(map(list, L1)), list(map(list, L2))]
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        output = subprocess.run(
            [
                sys.executable,
                "-c",
                _COMPILER_SCRIPT,
                str(path),
                json.dumps(specs),
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        expected = json.loads(output.stdout)

        stores = CircuitStoreService(
            served["registry"], {"shipped": path}
        )
        client = ServingClient(ServingEngine(stores))
        for spec, want in zip((L1, L2), expected):
            lineage = dnf(*spec)
            response = run(client.evaluate(lineage, store="shipped"))
            assert response["strategy"] == "store"
            assert response["value"] == want["value"]
            shifted = run(
                client.evaluate(
                    lineage, store="shipped", overrides={"x2": 0.5}
                )
            )
            assert shifted["value"] == want["shifted"]
            bounds = run(client.bounds(lineage, store="shipped"))
            assert bounds["bounds"] == want["bounds"]
            gradients = run(client.gradients(lineage, store="shipped"))
            assert [
                [variable, gradient]
                for variable, gradient in gradients["gradients"]
            ] == want["gradients"]


# ----------------------------------------------------------------------
# Response cache: repeated point queries, bit-identity, invalidation
# ----------------------------------------------------------------------
class TestResponseCache:
    def test_repeat_point_query_hits_bit_identical(self, served):
        client = served["client"]
        circuit = served["cache"].get(dnf(*L1))
        first = run(client.evaluate(dnf(*L1), overrides={"x0": 0.9}))
        second = run(client.evaluate(dnf(*L1), overrides={"x0": 0.9}))
        assert "cached" not in first
        assert second["cached"] is True
        expected = circuit.evaluate({"x0": 0.9})
        assert first["value"] == second["value"] == expected
        stats = served["serving"].stats
        assert stats.response_hits == 1
        assert stats.response_misses == 1
        assert stats.response_hit_ratio() == 0.5

    def test_override_insertion_order_is_canonical(self, served):
        client = served["client"]
        first = run(
            client.evaluate(
                dnf(*L1), overrides={"x0": 0.9, "x2": 0.1}
            )
        )
        second = run(
            client.evaluate(
                dnf(*L1), overrides={"x2": 0.1, "x0": 0.9}
            )
        )
        assert second["cached"] is True
        assert second["value"] == first["value"]

    def test_every_deterministic_op_caches(self, served):
        client = served["client"]

        def calls():
            return [
                client.bounds(dnf(*L2), overrides={"x1": 0.3}),
                client.gradients(dnf(*L3), overrides={"x5": 0.4}),
                client.what_if(dnf(*L1), "x2", [0.0, 0.5, 1.0]),
                client.sweep(
                    dnf(*L2), [None, {"x1": 0.2}], kind="values"
                ),
                client.top_k(
                    [dnf(*L1), dnf(*L2), dnf(*L3)],
                    2,
                    overrides={"x0": 0.3},
                ),
            ]

        async def both():
            first = await asyncio.gather(*calls())
            second = await asyncio.gather(*calls())
            return first, second

        first, second = run(both())
        for cold, warm in zip(first, second):
            assert "cached" not in cold
            assert warm.pop("cached") is True
            assert warm == cold

    def test_version_bump_invalidates(self, served):
        client = served["client"]
        warmed = run(client.evaluate(dnf(*L1)))
        hit = run(client.evaluate(dnf(*L1)))
        assert hit["cached"] is True
        # Grow the store: new version, cached responses must not serve.
        engine = ConfidenceEngine(served["registry"])
        extra = dnf(*COLD)
        served["cache"].put(extra, engine.compile_circuit(extra))
        served["cache"].save(served["path"])
        fresh = run(client.evaluate(dnf(*L1)))
        assert "cached" not in fresh
        assert fresh["store_version"] != warmed["store_version"]
        assert fresh["value"] == warmed["value"]  # same circuit bytes

    def test_engine_strategy_is_never_cached(self, served):
        client = served["client"]
        before = len(served["serving"].responses)
        response = run(client.evaluate(dnf(*COLD)))
        assert response["strategy"] == "engine"
        assert len(served["serving"].responses) == before

    def test_refining_bounds_bypass_cache(self, served):
        client = served["client"]
        misses_before = served["serving"].stats.response_misses
        run(client.bounds(dnf(*L2), refine=True))
        assert served["serving"].stats.response_misses == misses_before

    def test_disabled_cache_never_hits(self, served):
        serving = ServingEngine(
            served["stores"],
            None,
            ServingConfig(response_cache_entries=0),
        )
        client = ServingClient(serving)
        run(client.evaluate(dnf(*L1)))
        repeat = run(client.evaluate(dnf(*L1)))
        assert "cached" not in repeat
        assert serving.stats.response_hits == 0
        assert len(serving.responses) == 0


# ----------------------------------------------------------------------
# Per-tenant token-bucket quotas
# ----------------------------------------------------------------------
class TestQuotas:
    def make(self, served, **kwargs):
        serving = ServingEngine(
            served["stores"], None, ServingConfig(**kwargs)
        )
        return serving, ServingClient(serving)

    def test_over_rate_tenant_sheds_with_429(self, served, fake_clock):
        serving, client = self.make(
            served, quota_rps=1.0, quota_burst=2.0
        )
        circuit = served["cache"].get(dnf(*L1))

        async def scenario():
            await client.evaluate(dnf(*L1), tenant="hammer")
            await client.evaluate(dnf(*L1), tenant="hammer")
            with pytest.raises(ServingError) as info:
                await client.evaluate(dnf(*L1), tenant="hammer")
            assert info.value.code == "quota-exceeded"
            assert info.value.status == 429
            retry = info.value.retry_after_seconds
            assert retry is not None and retry > 0.0
            # An unrelated tenant is completely unaffected.
            polite = await client.evaluate(dnf(*L1), tenant="polite")
            assert polite["value"] == circuit.evaluate(None)
            # Tokens accrue with (fake) time; the hammer recovers.
            fake_clock.advance(1.0)
            again = await client.evaluate(dnf(*L1), tenant="hammer")
            assert again["value"] == circuit.evaluate(None)

        run(scenario())
        assert serving.stats.quota_rejections == 1
        assert serving.stats.errors["quota-exceeded"] == 1
        # The rejected request never counted as admitted traffic.
        assert serving.stats.tenants["hammer"] == 3

    def test_per_tenant_rate_overrides(self, served, fake_clock):
        serving, client = self.make(
            served,
            quota_rps=1.0,
            quota_burst=1.0,
            tenant_quota_rps={"vip": None, "slow": 0.5},
        )

        async def scenario():
            # vip is exempt from metering entirely.
            for _ in range(5):
                await client.evaluate(dnf(*L1), tenant="vip")
            # slow gets its own (smaller) bucket.
            await client.evaluate(dnf(*L1), tenant="slow")
            with pytest.raises(ServingError) as info:
                await client.evaluate(dnf(*L1), tenant="slow")
            assert info.value.retry_after_seconds == pytest.approx(2.0)

        run(scenario())
        assert serving.stats.quota_rejections == 1

    def test_wire_carries_retry_after_header(self, served, fake_clock):
        serving = ServingEngine(
            served["stores"],
            None,
            ServingConfig(quota_rps=0.5, quota_burst=1.0),
        )
        app = ServingApp(serving)

        async def post(body):
            scope = {
                "type": "http",
                "asgi": {"version": "3.0"},
                "http_version": "1.1",
                "method": "POST",
                "scheme": "http",
                "path": "/v1/evaluate",
                "raw_path": b"/v1/evaluate",
                "query_string": b"",
                "headers": [(b"content-type", b"application/json")],
            }
            raw = json.dumps(body).encode()
            sent = []

            async def receive():
                return {
                    "type": "http.request",
                    "body": raw,
                    "more_body": False,
                }

            async def send(message):
                sent.append(message)

            await app(scope, receive, send)
            start = next(
                m for m in sent if m["type"] == "http.response.start"
            )
            return start["status"], dict(start["headers"])

        from repro.serving.codec import dnf_to_json

        body = {"lineage": dnf_to_json(dnf(*L1)), "store": "main"}

        async def scenario():
            status, headers = await post(body)
            assert status == 200
            assert b"retry-after" not in headers
            status, headers = await post(body)
            assert status == 429
            assert int(headers[b"retry-after"]) >= 1

        run(scenario())


# ----------------------------------------------------------------------
# Runtime store catalog (add / drop / reload / serve_directory)
# ----------------------------------------------------------------------
def build_store(registry, path, specs):
    engine = ConfidenceEngine(registry)
    cache = CircuitCache()
    for spec in specs:
        lineage = dnf(*spec)
        cache.put(lineage, engine.compile_circuit(lineage))
    cache.save(path)
    return path


class TestCatalog:
    def test_add_evaluate_drop_over_the_wire(self, served, tmp_path):
        wire = served["wire"]
        extra = build_store(
            served["registry"], tmp_path / "extra.bin", [COLD]
        )
        added = run(wire.add_store("extra", str(extra)))
        assert added["loaded"] is True
        assert sorted(added["stores"]) == ["extra", "main"]
        response = run(wire.evaluate(dnf(*COLD), store="extra"))
        assert response["strategy"] == "store"
        dropped = run(wire.drop_store("extra"))
        assert dropped["stores"] == ["main"]
        with pytest.raises(ServingError) as info:
            run(wire.evaluate(dnf(*COLD), store="extra"))
        assert info.value.code == "unknown-store"

    def test_lazy_add_loads_on_first_request(self, served, tmp_path):
        wire = served["wire"]
        extra = build_store(
            served["registry"], tmp_path / "lazy.bin", [COLD]
        )
        added = run(wire.add_store("lazy", str(extra), lazy=True))
        assert added["loaded"] is False
        assert "lazy" in added["stores"]
        response = run(wire.evaluate(dnf(*COLD), store="lazy"))
        assert response["strategy"] == "store"

    def test_reload_route_forces_fresh_snapshot(self, served):
        wire = served["wire"]
        before = served["stores"].reloads
        described = run(wire.reload_store("main"))
        assert described["name"] == "main"
        assert described["entries"] == 3
        assert served["stores"].reloads == before + 1

    def test_serve_directory_lazy_and_rescan(self, served, tmp_path):
        wire = served["wire"]
        directory = tmp_path / "shard"
        directory.mkdir()
        build_store(served["registry"], directory / "alpha.rcir", [L1])
        build_store(served["registry"], directory / "beta.rcir", [L2])
        result = run(wire.serve_directory(str(directory)))
        assert sorted(result["added"]) == ["alpha", "beta"]
        response = run(wire.evaluate(dnf(*L1), store="alpha"))
        assert response["strategy"] == "store"
        # A file dropped in *after* registration is found on miss.
        build_store(served["registry"], directory / "gamma.rcir", [L3])
        late = run(wire.evaluate(dnf(*L3), store="gamma"))
        assert late["strategy"] == "store"

    def test_catalog_requests_are_validated(self, served):
        wire = served["wire"]
        with pytest.raises(ServingError) as info:
            run(wire.http("POST", "/v1/stores/add", {"name": "x"}))
        assert info.value.code == "bad-request"
        with pytest.raises(ServingError) as info:
            run(wire.http("POST", "/v1/stores/frobnicate", {}))
        assert info.value.status == 404

    def test_same_size_atomic_replace_still_reloads(
        self, served, tmp_path
    ):
        """The inode component catches an atomic same-size replace.

        ``os.replace`` of an equal-length store within one mtime tick
        leaves ``mtime_ns:size`` unchanged — the old two-part version
        key would serve the stale snapshot forever.
        """
        stores = served["stores"]
        before = stores.snapshot("main")
        path = served["path"]
        stat = os.stat(path)
        clone = tmp_path / "clone.bin"
        clone.write_bytes(path.read_bytes())
        os.utime(clone, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        os.replace(clone, path)
        after_stat = os.stat(path)
        # The replace is invisible to the old key...
        assert (after_stat.st_mtime_ns, after_stat.st_size) == (
            stat.st_mtime_ns,
            stat.st_size,
        )
        # ...but not to the inode-qualified one.
        reload_count = stores.reloads
        after = stores.snapshot("main")
        assert after.version != before.version
        assert stores.reloads == reload_count + 1
        assert len(after) == len(before)


# ----------------------------------------------------------------------
# Deadline vs. micro-batch interaction
# ----------------------------------------------------------------------
class TestDeadlineMicrobatch:
    def test_expired_row_fails_alone_batch_survives(
        self, served, fake_clock
    ):
        """A row whose deadline expires while queued in the batcher
        must 504 by itself — its batch-mates still get exact values."""
        serving = ServingEngine(
            served["stores"],
            None,
            # Window far beyond the test's lifetime: only the
            # max_batch=2 fill can flush, so the doomed row provably
            # sits queued while the clock jumps past its deadline.
            ServingConfig(batch_window_seconds=60.0, max_batch=2),
        )
        client = ServingClient(serving)
        circuit = served["cache"].get(dnf(*L1))

        async def scenario():
            doomed = asyncio.ensure_future(
                client.evaluate(
                    dnf(*L1),
                    overrides={"x0": 0.3},
                    deadline_seconds=0.05,
                )
            )
            # Let the doomed request run until its row is enqueued.
            while (
                serving._batcher is None
                or not serving._batcher.buckets
            ):
                await asyncio.sleep(0)
            assert not doomed.done()
            fake_clock.advance(1.0)  # deadline long gone, row queued
            healthy = await client.evaluate(
                dnf(*L1), overrides={"x0": 0.7}
            )
            with pytest.raises(ServingError) as info:
                await doomed
            assert info.value.code == "deadline-exceeded"
            return healthy

        healthy = run(scenario())
        # The shared flush computed both rows; the survivor's value is
        # bit-identical to the scalar reference.
        assert healthy["value"] == circuit.evaluate({"x0": 0.7})
        assert serving.stats.batches == 1
        assert serving.stats.batched_rows == 2
        assert serving.stats.errors["deadline-exceeded"] == 1
