"""Shared test fixtures.

``fake_clock`` removes wall-clock dependence from deadline/budget tests:
every deadline check in the library reads time through
:mod:`repro.core.clock`, and the fixture swaps that source for a
manually-advanced counter.  Tests can then assert "the deadline expired
mid-run after exactly N checks" deterministically — no sleeps, no
flaking when CI machines are loaded.
"""

import pytest

from repro.core import clock


class FakeClock:
    """A monotonic clock advanced by the test, not the wall.

    ``auto_advance`` seconds are added on *every read*, which is how a
    test simulates work taking time: a deadline of ``d`` seconds expires
    after about ``d / auto_advance`` clock checks, regardless of how
    fast the machine actually is.
    """

    def __init__(self, start: float = 0.0, auto_advance: float = 0.0):
        self.now = start
        self.auto_advance = auto_advance

    def __call__(self) -> float:
        current = self.now
        self.now += self.auto_advance
        return current

    def advance(self, seconds: float) -> None:
        """Jump the clock forward explicitly."""
        self.now += seconds


@pytest.fixture
def fake_clock():
    """Install a :class:`FakeClock` as the library's time source.

    The real ``time.monotonic`` is restored afterwards no matter what.
    """
    fake = FakeClock()
    clock.set_source(fake)
    try:
        yield fake
    finally:
        clock.reset_source()
