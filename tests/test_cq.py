"""Tests for query classification (hierarchical / IQ / Theorem 6.4)."""

import pytest

from repro.core.variables import VariableRegistry
from repro.db.cq import (
    ConjunctiveQuery,
    Const,
    Inequality,
    SubGoal,
    Var,
    hard_pattern_tractable,
)
from repro.db.relation import Relation


class TestTerms:
    def test_var_equality(self):
        assert Var("X") == Var("X")
        assert Var("X") != Var("Y")
        assert Var("X") != Const("X")

    def test_const_equality(self):
        assert Const(1) == Const(1)
        assert Const(1) != Const(2)

    def test_subgoal_variables_deduplicated(self):
        a = Var("A")
        sg = SubGoal("R", [a, a, Const(3)])
        assert sg.variables() == [a]

    def test_inequality_validation(self):
        with pytest.raises(ValueError, match="operator"):
            Inequality(Var("X"), "~", Var("Y"))

    def test_inequality_holds(self):
        x, y = Var("X"), Var("Y")
        assert Inequality(x, "<", y).holds({x: 1, y: 2})
        assert not Inequality(x, ">=", y).holds({x: 1, y: 2})
        assert Inequality(x, "!=", Const(5)).holds({x: 4})


class TestQueryStructure:
    def test_head_variable_must_occur_in_body(self):
        with pytest.raises(ValueError, match="head variable"):
            ConjunctiveQuery([Var("Z")], [SubGoal("R", [Var("A")])])

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError, match="at least one subgoal"):
            ConjunctiveQuery([], [])

    def test_subgoal_set(self):
        a, b = Var("A"), Var("B")
        q = ConjunctiveQuery(
            [], [SubGoal("R", [a, b]), SubGoal("S", [a])]
        )
        assert q.subgoal_set(a) == frozenset({0, 1})
        assert q.subgoal_set(b) == frozenset({0})

    def test_self_join_detection(self):
        a = Var("A")
        q = ConjunctiveQuery(
            [], [SubGoal("R", [a]), SubGoal("R", [a])]
        )
        assert q.has_self_join()

    def test_boolean_flag(self):
        a = Var("A")
        assert ConjunctiveQuery([], [SubGoal("R", [a])]).is_boolean()
        assert not ConjunctiveQuery([a], [SubGoal("R", [a])]).is_boolean()

    def test_repr_is_datalog_like(self):
        a, b = Var("A"), Var("B")
        q = ConjunctiveQuery(
            [a],
            [SubGoal("R", [a, b])],
            [Inequality(b, "<", Const(5))],
            name="test",
        )
        assert "test(A) :- R(A, B)" in repr(q)


class TestHierarchy:
    def test_head_variables_exempt(self):
        # X and Y overlap only through the head variable—still counted
        # per Definition 6.1 on *non-head* variables only.
        x, y, z = Var("X"), Var("Y"), Var("Z")
        q = ConjunctiveQuery(
            [x],
            [SubGoal("R", [x, y]), SubGoal("S", [x, z])],
        )
        assert q.is_hierarchical()

    def test_hard_pattern_not_hierarchical(self):
        x, y = Var("X"), Var("Y")
        q = ConjunctiveQuery(
            [],
            [SubGoal("R", [x]), SubGoal("S", [x, y]), SubGoal("T", [y])],
        )
        assert not q.is_hierarchical()

    def test_contained_subgoal_sets(self):
        a, b = Var("A"), Var("B")
        q = ConjunctiveQuery(
            [],
            [SubGoal("R", [a, b]), SubGoal("S", [a])],
        )
        # sg(B) = {0} ⊆ sg(A) = {0, 1}
        assert q.is_hierarchical()


class TestTheorem64:
    """Tractable instances of R(X), S(X,Y), T(Y) by the structure of S."""

    def _relation(self, rows, probabilistic=True):
        reg = VariableRegistry()
        if probabilistic:
            return Relation.tuple_independent(
                "S", ["x", "y"], [(row, 0.5) for row in rows], reg
            )
        return Relation.certain("S", ["x", "y"], rows)

    def test_functional_x_to_y(self):
        # Every X connects to one Y: functional.
        s = self._relation([(1, 10), (2, 10), (3, 20)])
        assert hard_pattern_tractable(s, "x", "y")

    def test_functional_y_to_x(self):
        s = self._relation([(1, 10), (1, 20), (2, 30)])
        assert hard_pattern_tractable(s, "x", "y")

    def test_mixed_functional_components(self):
        # Component {1,2}→{10} functional; component {3}→{20,30} functional.
        s = self._relation([(1, 10), (2, 10), (3, 20), (3, 30)])
        assert hard_pattern_tractable(s, "x", "y")

    def test_complete_deterministic_component(self):
        # 2×2 complete bipartite block, deterministic S: tractable.
        s = self._relation(
            [(1, 10), (1, 20), (2, 10), (2, 20)], probabilistic=False
        )
        assert hard_pattern_tractable(s, "x", "y")

    def test_complete_probabilistic_component_not_tractable(self):
        s = self._relation([(1, 10), (1, 20), (2, 10), (2, 20)])
        assert not hard_pattern_tractable(s, "x", "y")

    def test_incomplete_nonfunctional_component_not_tractable(self):
        # Path 1-10, 1-20, 2-20: neither functional nor complete.
        s = self._relation([(1, 10), (1, 20), (2, 20)])
        assert not hard_pattern_tractable(s, "x", "y")

    def test_generalises_early_fd_result(self):
        """The early tractability result (FD on all of S) is the special
        case where every component is functional."""
        s = self._relation([(x, x * 10) for x in range(1, 6)])
        assert hard_pattern_tractable(s, "x", "y")
