"""Tests for the Karp–Luby estimator."""

import random

import pytest

from repro.core.dnf import DNF
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry
from repro.mc.karp_luby import FRACTIONAL, ZERO_ONE, KarpLubyEstimator


@pytest.fixture
def instance():
    reg = VariableRegistry.from_boolean_probabilities(
        {"a": 0.3, "b": 0.6, "c": 0.2, "d": 0.8}
    )
    dnf = DNF.from_sets(
        [{"a": True, "b": True}, {"b": True, "c": True}, {"d": True}]
    )
    return dnf, reg


class TestSetup:
    def test_total_weight_is_clause_probability_sum(self, instance):
        dnf, reg = instance
        estimator = KarpLubyEstimator(dnf, reg, rng=random.Random(0))
        expected = 0.3 * 0.6 + 0.6 * 0.2 + 0.8
        assert estimator.total_weight == pytest.approx(expected)

    def test_clause_count(self, instance):
        dnf, reg = instance
        estimator = KarpLubyEstimator(dnf, reg, rng=random.Random(0))
        assert estimator.clause_count == 3

    def test_empty_dnf_rejected(self):
        reg = VariableRegistry()
        with pytest.raises(ValueError, match="non-empty"):
            KarpLubyEstimator(DNF.false(), reg)

    def test_unknown_variant_rejected(self, instance):
        dnf, reg = instance
        with pytest.raises(ValueError, match="variant"):
            KarpLubyEstimator(dnf, reg, variant="mystery")


class TestUnbiasedness:
    @pytest.mark.parametrize("variant", [FRACTIONAL, ZERO_ONE])
    def test_mean_converges_to_probability(self, instance, variant):
        dnf, reg = instance
        truth = brute_force_probability(dnf, reg)
        estimator = KarpLubyEstimator(
            dnf, reg, variant=variant, rng=random.Random(123)
        )
        estimate = estimator.estimate(40000)
        assert estimate == pytest.approx(truth, abs=0.01)

    def test_fractional_has_smaller_variance(self, instance):
        dnf, reg = instance
        frac = KarpLubyEstimator(
            dnf, reg, variant=FRACTIONAL, rng=random.Random(5)
        )
        zero_one = KarpLubyEstimator(
            dnf, reg, variant=ZERO_ONE, rng=random.Random(5)
        )

        def variance(estimator, n=20000):
            values = [estimator.sample() for _ in range(n)]
            mean = sum(values) / n
            return sum((v - mean) ** 2 for v in values) / n

        assert variance(frac) < variance(zero_one)

    def test_samples_bounded_by_total_weight(self, instance):
        dnf, reg = instance
        estimator = KarpLubyEstimator(dnf, reg, rng=random.Random(9))
        for _ in range(200):
            value = estimator.sample()
            assert 0.0 < value <= estimator.total_weight + 1e-12

    def test_unit_samples_in_unit_interval(self, instance):
        dnf, reg = instance
        estimator = KarpLubyEstimator(dnf, reg, rng=random.Random(9))
        for _ in range(200):
            assert 0.0 < estimator.sample_unit() <= 1.0

    def test_zero_one_unit_samples_binary(self, instance):
        dnf, reg = instance
        estimator = KarpLubyEstimator(
            dnf, reg, variant=ZERO_ONE, rng=random.Random(9)
        )
        values = {estimator.sample_unit() for _ in range(200)}
        assert values <= {0.0, 1.0}


class TestMultiValued:
    def test_works_with_discrete_domains(self):
        reg = VariableRegistry()
        reg.add_variable("u", {1: 0.5, 2: 0.3, 3: 0.2})
        reg.add_boolean("x", 0.4)
        dnf = DNF.from_sets([{"u": 1, "x": True}, {"u": 2}])
        truth = brute_force_probability(dnf, reg)
        estimator = KarpLubyEstimator(dnf, reg, rng=random.Random(3))
        assert estimator.estimate(40000) == pytest.approx(truth, abs=0.01)


class TestBounds:
    def test_klm_sample_bound_formula(self, instance):
        import math

        dnf, reg = instance
        estimator = KarpLubyEstimator(dnf, reg, rng=random.Random(0))
        bound = estimator.klm_sample_bound(0.1, 0.05)
        assert bound == math.ceil(3 * 3 * math.log(2 / 0.05) / 0.01)

    def test_klm_bound_validates_inputs(self, instance):
        dnf, reg = instance
        estimator = KarpLubyEstimator(dnf, reg, rng=random.Random(0))
        with pytest.raises(ValueError):
            estimator.klm_sample_bound(0.0, 0.5)
        with pytest.raises(ValueError):
            estimator.klm_sample_bound(0.5, 1.5)

    def test_estimate_needs_positive_samples(self, instance):
        dnf, reg = instance
        estimator = KarpLubyEstimator(dnf, reg, rng=random.Random(0))
        with pytest.raises(ValueError):
            estimator.estimate(0)

    def test_determinism_with_seeded_rng(self, instance):
        dnf, reg = instance
        a = KarpLubyEstimator(dnf, reg, rng=random.Random(77)).estimate(500)
        b = KarpLubyEstimator(dnf, reg, rng=random.Random(77)).estimate(500)
        assert a == b
