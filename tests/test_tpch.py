"""Tests for the probabilistic TPC-H generator and query suite."""

import pytest

from repro.core.formulas import AtomNode, TrueNode
from repro.datasets.tpch import BASE_CARDINALITIES, TPCHConfig, generate_tpch
from repro.datasets.tpch_queries import (
    ALL_QUERIES,
    HARD_QUERIES,
    HIERARCHICAL_QUERIES,
    IQ_QUERIES,
    make_query,
)
from repro.db.engine import evaluate


class TestGenerator:
    def test_deterministic(self):
        a = generate_tpch(TPCHConfig(scale_factor=0.05, seed=7))
        b = generate_tpch(TPCHConfig(scale_factor=0.05, seed=7))
        for name in a.relation_names():
            assert [v for v, _l in a[name].rows] == [
                v for v, _l in b[name].rows
            ]

    def test_seed_changes_data(self):
        a = generate_tpch(TPCHConfig(scale_factor=0.05, seed=1))
        b = generate_tpch(TPCHConfig(scale_factor=0.05, seed=2))
        assert [v for v, _l in a["supplier"].rows] != [
            v for v, _l in b["supplier"].rows
        ]

    def test_cardinalities_scale(self):
        db = generate_tpch(TPCHConfig(scale_factor=0.1, seed=0))
        assert len(db["lineitem"]) == round(
            BASE_CARDINALITIES["lineitem"] * 0.1
        )
        assert len(db["supplier"]) == round(
            BASE_CARDINALITIES["supplier"] * 0.1
        )
        # Dimension tables do not scale.
        assert len(db["region"]) == 5
        assert len(db["nation"]) == 25

    def test_foreign_keys_resolve(self):
        db = generate_tpch(TPCHConfig(scale_factor=0.05, seed=3))
        nation_keys = set(db["nation"].column("n_nationkey"))
        for key in db["supplier"].column("s_nationkey"):
            assert key in nation_keys
        order_keys = set(db["orders"].column("o_orderkey"))
        for key in db["lineitem"].column("l_orderkey"):
            assert key in order_keys
        part_keys = set(db["part"].column("p_partkey"))
        for key in db["partsupp"].column("ps_partkey"):
            assert key in part_keys

    def test_probability_range_respected(self):
        db = generate_tpch(
            TPCHConfig(
                scale_factor=0.05,
                seed=4,
                probability_range=(0.0, 0.01),
            )
        )
        reg = db.registry
        for variable in reg.variables():
            assert reg.probability(variable, True) <= 0.01

    def test_certain_small_tables_option(self):
        db = generate_tpch(
            TPCHConfig(scale_factor=0.05, seed=5, certain_small_tables=True)
        )
        for _values, lineage in db["nation"].rows:
            assert isinstance(lineage, TrueNode)
        for _values, lineage in db["supplier"].rows:
            assert isinstance(lineage, AtomNode)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TPCHConfig(scale_factor=0)
        with pytest.raises(ValueError):
            TPCHConfig(probability_range=(0.5, 0.2))


class TestQuerySuite:
    def test_thirteen_queries(self):
        assert len(ALL_QUERIES) == 13
        assert len(HIERARCHICAL_QUERIES) == 6
        assert len(IQ_QUERIES) == 3
        assert len(HARD_QUERIES) == 4

    def test_hierarchical_queries_are_hierarchical(self):
        for name in HIERARCHICAL_QUERIES:
            assert make_query(name).is_hierarchical(), name

    def test_iq_queries_are_iq(self):
        for name in IQ_QUERIES:
            query = make_query(name)
            assert query.is_iq(), name
            assert query.has_max_one_property(), name

    def test_hard_queries_are_hard(self):
        for name in HARD_QUERIES:
            query = make_query(name)
            assert not query.is_hierarchical(), name

    def test_no_self_joins_anywhere(self):
        for name in ALL_QUERIES:
            assert not make_query(name).has_self_join(), name

    def test_unknown_query_name(self):
        with pytest.raises(KeyError, match="unknown query"):
            make_query("B99")

    def test_boolean_naming_convention(self):
        for name in ALL_QUERIES:
            query = make_query(name)
            if name.startswith("B") or name.startswith("IQ"):
                assert query.is_boolean(), name

    def test_all_queries_return_answers_at_small_scale(self):
        db = generate_tpch(TPCHConfig(scale_factor=0.1, seed=1))
        for name in ALL_QUERIES:
            answers = evaluate(make_query(name), db)
            assert answers, f"query {name} returned no answers"
