"""Theorem 6.4 end to end: tractable hard patterns compile without ⊕.

The hard pattern ``q() :- R(X), S(X,Y), T(Y)`` is #P-hard in general, but
Theorem 6.4 identifies database restrictions under which the lineage
factorizes into one-occurrence form: every connected component of S's
bipartite graph is functional, or complete with deterministic S.  By
Prop. 6.3 such lineage compiles into a complete d-tree with only ⊗/⊙
nodes — no Shannon expansion.

These tests build both tractable and intractable instances, check the
classifier, and verify the compiler's node histogram matches the theory.
"""

import pytest

from repro.core.compiler import CompilationStats, compile_dnf
from repro.core.readonce import try_read_once
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry
from repro.db.cq import ConjunctiveQuery, SubGoal, Var, hard_pattern_tractable
from repro.db.database import Database
from repro.db.engine import evaluate_to_dnf
from repro.db.relation import Relation


def build_instance(s_pairs, *, s_probabilistic=True, seed_probability=0.4):
    """An R(X), S(X,Y), T(Y) database over the given S pairs."""
    registry = VariableRegistry()
    database = Database(registry)
    xs = sorted({x for x, _y in s_pairs})
    ys = sorted({y for _x, y in s_pairs})
    database.add(
        Relation.tuple_independent(
            "R", ["x"], [((x,), 0.3) for x in xs], registry
        )
    )
    if s_probabilistic:
        database.add(
            Relation.tuple_independent(
                "S",
                ["x", "y"],
                [((x, y), seed_probability) for x, y in s_pairs],
                registry,
            )
        )
    else:
        database.add(Relation.certain("S", ["x", "y"], s_pairs))
    database.add(
        Relation.tuple_independent(
            "T", ["y"], [((y,), 0.6) for y in ys], registry
        )
    )
    return database


def hard_query():
    x, y = Var("X"), Var("Y")
    return ConjunctiveQuery(
        [],
        [SubGoal("R", [x]), SubGoal("S", [x, y]), SubGoal("T", [y])],
    )


def lineage_of(database):
    answers = evaluate_to_dnf(hard_query(), database)
    assert len(answers) == 1
    return answers[0][1]


class TestFunctionalComponents:
    S_FUNCTIONAL = [(1, 10), (2, 10), (3, 20), (4, 20)]

    def test_classified_tractable(self):
        database = build_instance(self.S_FUNCTIONAL)
        assert hard_pattern_tractable(database["S"], "x", "y")

    def test_lineage_is_read_once(self):
        database = build_instance(self.S_FUNCTIONAL)
        assert try_read_once(lineage_of(database)) is not None

    def test_compiles_without_shannon(self):
        database = build_instance(self.S_FUNCTIONAL)
        dnf = lineage_of(database)
        stats = CompilationStats()
        tree = compile_dnf(dnf, database.registry, stats=stats)
        assert stats.shannon_expansions == 0
        histogram = tree.inner_node_histogram()
        assert histogram.get("exclusive-or", 0) == 0
        assert tree.probability(database.registry) == pytest.approx(
            brute_force_probability(dnf, database.registry)
        )

    def test_functional_other_direction(self):
        # One X with many Ys per component: still functional.
        database = build_instance([(1, 10), (1, 20), (2, 30), (2, 40)])
        assert hard_pattern_tractable(database["S"], "x", "y")
        dnf = lineage_of(database)
        stats = CompilationStats()
        compile_dnf(dnf, database.registry, stats=stats)
        assert stats.shannon_expansions == 0


class TestCompleteComponents:
    S_COMPLETE = [(1, 10), (1, 20), (2, 10), (2, 20)]

    def test_deterministic_s_is_tractable(self):
        database = build_instance(self.S_COMPLETE, s_probabilistic=False)
        assert hard_pattern_tractable(database["S"], "x", "y")

    def test_deterministic_s_lineage_read_once(self):
        database = build_instance(self.S_COMPLETE, s_probabilistic=False)
        dnf = lineage_of(database)
        # (r1 ∨ r2) ∧ (t10 ∨ t20) — a product.
        formula = try_read_once(dnf)
        assert formula is not None
        stats = CompilationStats()
        compile_dnf(dnf, database.registry, stats=stats)
        assert stats.shannon_expansions == 0

    def test_probabilistic_s_is_not_tractable(self):
        database = build_instance(self.S_COMPLETE, s_probabilistic=True)
        assert not hard_pattern_tractable(database["S"], "x", "y")


class TestIntractableInstance:
    S_PATH = [(1, 10), (1, 20), (2, 20)]  # neither functional nor complete

    def test_classified_intractable(self):
        database = build_instance(self.S_PATH)
        assert not hard_pattern_tractable(database["S"], "x", "y")

    def test_lineage_not_read_once(self):
        database = build_instance(self.S_PATH)
        assert try_read_once(lineage_of(database)) is None

    def test_needs_shannon_but_stays_correct(self):
        database = build_instance(self.S_PATH)
        dnf = lineage_of(database)
        stats = CompilationStats()
        tree = compile_dnf(dnf, database.registry, stats=stats)
        assert stats.shannon_expansions >= 1
        assert tree.probability(database.registry) == pytest.approx(
            brute_force_probability(dnf, database.registry)
        )
