"""Unit tests for the probability space (repro.core.variables)."""

import math

import pytest

from repro.core.variables import BOOLEAN_DOMAIN, VariableRegistry


class TestRegistration:
    def test_add_boolean_registers_two_outcomes(self):
        reg = VariableRegistry()
        reg.add_boolean("x", 0.3)
        assert reg.probability("x", True) == pytest.approx(0.3)
        assert reg.probability("x", False) == pytest.approx(0.7)

    def test_add_variable_returns_name(self):
        reg = VariableRegistry()
        assert reg.add_variable("u", {1: 0.5, 2: 0.5}) == "u"

    def test_multivalued_domain(self):
        reg = VariableRegistry()
        reg.add_variable("u", {1: 0.5, 2: 0.2, 3: 0.3})
        assert reg.domain("u") == (1, 2, 3)
        assert reg.probability("u", 2) == pytest.approx(0.2)

    def test_empty_domain_rejected(self):
        reg = VariableRegistry()
        with pytest.raises(ValueError, match="non-empty domain"):
            reg.add_variable("u", {})

    def test_zero_probability_rejected(self):
        reg = VariableRegistry()
        with pytest.raises(ValueError, match="outside"):
            reg.add_variable("u", {1: 0.0, 2: 1.0})

    def test_negative_probability_rejected(self):
        reg = VariableRegistry()
        with pytest.raises(ValueError):
            reg.add_variable("u", {1: -0.2, 2: 1.2})

    def test_sum_far_from_one_rejected(self):
        reg = VariableRegistry()
        with pytest.raises(ValueError, match="sums to"):
            reg.add_variable("u", {1: 0.5, 2: 0.4})

    def test_near_one_sum_is_renormalised(self):
        reg = VariableRegistry()
        reg.add_variable("u", {1: 0.5 + 1e-12, 2: 0.5})
        assert math.isclose(
            sum(reg.distribution("u").values()), 1.0, abs_tol=1e-15
        )

    def test_duplicate_registration_with_same_distribution_is_noop(self):
        reg = VariableRegistry()
        reg.add_variable("u", {1: 0.5, 2: 0.5})
        reg.add_variable("u", {1: 0.5, 2: 0.5})
        assert len(reg) == 1

    def test_duplicate_registration_with_other_distribution_rejected(self):
        reg = VariableRegistry()
        reg.add_variable("u", {1: 0.5, 2: 0.5})
        with pytest.raises(ValueError, match="already registered"):
            reg.add_variable("u", {1: 0.4, 2: 0.6})

    def test_boolean_extremes_rejected(self):
        reg = VariableRegistry()
        with pytest.raises(ValueError):
            reg.add_boolean("x", 0.0)
        with pytest.raises(ValueError):
            reg.add_boolean("x", 1.0)

    def test_add_booleans_bulk(self):
        reg = VariableRegistry()
        reg.add_booleans([("a", 0.1), ("b", 0.9)])
        assert "a" in reg and "b" in reg


class TestLookup:
    def test_unknown_variable_raises_keyerror(self):
        reg = VariableRegistry()
        with pytest.raises(KeyError, match="unknown random variable"):
            reg.probability("ghost", True)

    def test_unknown_value_raises_keyerror(self):
        reg = VariableRegistry()
        reg.add_boolean("x", 0.5)
        with pytest.raises(KeyError, match="not in domain"):
            reg.probability("x", 42)

    def test_is_boolean(self):
        reg = VariableRegistry()
        reg.add_boolean("x", 0.5)
        reg.add_variable("u", {1: 0.5, 2: 0.5})
        assert reg.is_boolean("x")
        assert not reg.is_boolean("u")

    def test_iteration_and_len(self):
        reg = VariableRegistry.from_boolean_probabilities(
            {"a": 0.1, "b": 0.2, "c": 0.3}
        )
        assert len(reg) == 3
        assert set(reg) == {"a", "b", "c"}

    def test_boolean_domain_constant(self):
        assert BOOLEAN_DOMAIN == (True, False)


class TestWorlds:
    def test_world_count(self):
        reg = VariableRegistry()
        reg.add_boolean("x", 0.5)
        reg.add_variable("u", {1: 0.5, 2: 0.3, 3: 0.2})
        assert reg.world_count() == 6
        assert reg.world_count(["u"]) == 3

    def test_worlds_enumerate_all_valuations(self):
        reg = VariableRegistry.from_boolean_probabilities({"a": 0.5, "b": 0.5})
        worlds = list(reg.worlds())
        assert len(worlds) == 4
        assert {frozenset(w.items()) for w in worlds} == {
            frozenset({("a", True), ("b", True)}),
            frozenset({("a", True), ("b", False)}),
            frozenset({("a", False), ("b", True)}),
            frozenset({("a", False), ("b", False)}),
        }

    def test_world_probabilities_sum_to_one(self):
        reg = VariableRegistry()
        reg.add_boolean("x", 0.3)
        reg.add_variable("u", {1: 0.5, 2: 0.2, 3: 0.3})
        total = sum(reg.world_probability(w) for w in reg.worlds())
        assert total == pytest.approx(1.0)

    def test_world_probability_is_product(self):
        reg = VariableRegistry.from_boolean_probabilities({"a": 0.3, "b": 0.2})
        assert reg.world_probability({"a": True, "b": False}) == pytest.approx(
            0.3 * 0.8
        )
