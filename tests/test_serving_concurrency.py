"""Concurrency stress for the serving tier (satellite acceptance).

Mixed ``evaluate`` / ``what_if`` / ``top_k`` / ``bounds`` traffic from
several tenants, all in flight at once, must produce **bit-identical**
answers to a serial reference pass — micro-batching, semaphores, and
tenant interleaving are latency mechanisms, never semantics.  The
acceptance bar from the issue: at least 8 requests concurrently in
flight (asserted via the stats high-water mark) and no cross-tenant
leakage (each tenant's distinctly-parameterised requests come back
with that tenant's numbers).

A second pass drives separate engines from OS threads over the same
shared :class:`CircuitStoreService`, exercising the thread-safe
``CircuitCache`` read path.
"""

import asyncio
import threading

import pytest

from repro.circuits import CircuitCache
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.variables import VariableRegistry
from repro.engine import ConfidenceEngine
from repro.serving import (
    CircuitStoreService,
    ServingClient,
    ServingConfig,
    ServingEngine,
)

TENANTS = ("alpha", "beta", "gamma", "delta")


def make_registry():
    registry = VariableRegistry()
    for index in range(12):
        registry.add_boolean(f"v{index}", 0.06 + 0.07 * index)
    return registry


def dnf(*clauses):
    return DNF([Clause({v: True for v in clause}) for clause in clauses])


LINEAGES = [
    dnf(("v0", "v1"), ("v2",)),
    dnf(("v3", "v4"), ("v5", "v6")),
    dnf(("v1", "v7"), ("v8",), ("v9", "v10")),
    dnf(("v2", "v11"), ("v4", "v9")),
]


@pytest.fixture
def stack(tmp_path):
    registry = make_registry()
    engine = ConfidenceEngine(registry)
    cache = CircuitCache()
    circuits = {}
    for lineage in LINEAGES:
        circuit = engine.compile_circuit(lineage)
        cache.put(lineage, circuit)
        circuits[lineage] = circuit
    path = tmp_path / "store.bin"
    cache.save(path)
    stores = CircuitStoreService(registry, {"main": path})
    return registry, stores, circuits


def build_workload(circuits):
    """(tenant, coroutine-factory, expected) triples, tenant-distinct.

    Every request is parameterised by its tenant and sequence number,
    so any cross-tenant mixup in the batching layer would surface as a
    wrong number, not just a wrong label.
    """
    workload = []
    for t_index, tenant in enumerate(TENANTS):
        for step in range(10):
            lineage = LINEAGES[(t_index + step) % len(LINEAGES)]
            circuit = circuits[lineage]
            p = round(0.05 + 0.02 * t_index + 0.017 * step, 6)
            kind = step % 4
            if kind == 0:
                expected = circuit.evaluate({"v1": p})

                def call(client, lineage=lineage, p=p, tenant=tenant):
                    return client.evaluate(
                        lineage, overrides={"v1": p}, tenant=tenant
                    )

                check = (
                    lambda response, expected=expected: response["value"]
                    == expected
                )
            elif kind == 1:
                grid = [p, p + 0.3, p + 0.6]
                expected = [circuit.evaluate({"v2": g}) for g in grid]

                def call(
                    client, lineage=lineage, grid=grid, tenant=tenant
                ):
                    return client.what_if(
                        lineage, "v2", grid, tenant=tenant
                    )

                check = (
                    lambda response, expected=expected: response["values"]
                    == expected
                )
            elif kind == 2:
                expected = circuit.evaluate_bounds({"v4": p})

                def call(client, lineage=lineage, p=p, tenant=tenant):
                    return client.bounds(
                        lineage, overrides={"v4": p}, tenant=tenant
                    )

                check = (
                    lambda response, expected=expected: tuple(
                        response["bounds"]
                    )
                    == expected
                )
            else:
                values = [
                    circuits[entry].evaluate({"v0": p})
                    for entry in LINEAGES
                ]
                order = sorted(
                    range(len(values)), key=lambda i: (-values[i], i)
                )[:2]
                expected = [[i, values[i]] for i in order]

                def call(client, p=p, tenant=tenant):
                    return client.top_k(
                        LINEAGES,
                        2,
                        overrides={"v0": p},
                        tenant=tenant,
                    )

                check = (
                    lambda response, expected=expected: [
                        list(pair) for pair in response["answers"]
                    ]
                    == expected
                )
            workload.append((tenant, call, check))
    return workload


def test_mixed_tenants_bit_identical_and_concurrent(stack):
    registry, stores, circuits = stack
    serving = ServingEngine(
        stores,
        ConfidenceEngine(registry),
        ServingConfig(
            max_inflight=32,
            per_tenant_inflight=16,
            batch_window_seconds=0.005,
        ),
    )
    client = ServingClient(serving)
    workload = build_workload(circuits)

    async def storm():
        return await asyncio.gather(
            *[call(client) for _tenant, call, _check in workload]
        )

    responses = asyncio.run(storm())
    failures = [
        index
        for index, ((_t, _call, check), response) in enumerate(
            zip(workload, responses)
        )
        if not check(response)
    ]
    assert failures == [], f"non-identical responses at {failures}"
    stats = serving.stats
    assert stats.max_inflight >= 8, stats.max_inflight
    assert set(stats.tenants) == set(TENANTS)
    assert all(count == 10 for count in stats.tenants.values())
    # Same-circuit rows from different tenants coalesced into shared
    # kernel flushes; results above prove tenant isolation held anyway.
    assert stats.occupancy() > 1.0


def test_repeat_storms_are_deterministic(stack):
    registry, stores, circuits = stack
    workload = build_workload(circuits)

    def one_storm():
        serving = ServingEngine(stores, ConfidenceEngine(registry))
        client = ServingClient(serving)

        async def storm():
            return await asyncio.gather(
                *[call(client) for _t, call, _check in workload]
            )

        return asyncio.run(storm())

    first = one_storm()
    second = one_storm()
    for a, b in zip(first, second):
        a.pop("store_version", None)
        b.pop("store_version", None)
        assert a == b


def test_threaded_engines_share_store_snapshots(stack):
    registry, stores, circuits = stack
    workload = build_workload(circuits)
    errors = []

    def worker():
        try:
            serving = ServingEngine(stores, ConfidenceEngine(registry))
            client = ServingClient(serving)

            async def storm():
                return await asyncio.gather(
                    *[call(client) for _t, call, _check in workload]
                )

            responses = asyncio.run(storm())
            for (_t, _call, check), response in zip(
                workload, responses
            ):
                if not check(response):
                    errors.append(response)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
