"""Differential tests: sharded parallel execution vs the serial engine.

The contract of :mod:`repro.engine_parallel` is that parallelism is an
*execution* detail, never a semantics one:

* exact strategies (trivial / read-once / converged ``ε = 0`` d-tree)
  return **bit-identical** probabilities, bounds, strategies, and
  convergence flags on the sharded path;
* anytime / MC paths return certified bounds that are **sound** (the
  brute-force probability lies inside them) and consistent with the
  serial bounds (two sound intervals must overlap).

The generator is a plain seeded :class:`random.Random` — re-running any
failure is a matter of the seed embedded in the assertion message — and
failures are *shrunk*: clauses, then atoms, are greedily removed while
the disagreement persists, so the report carries a minimal
counterexample rather than a 10-clause haystack.

Volume: ``total_generated_cases()`` counts ≥ 300 generated lineages
across the thread- and process-pool groups (enforced by
``test_case_volume``).
"""

import random
from typing import List, Optional, Tuple

import pytest

from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry
from repro.engine import ConfidenceEngine, EngineConfig
from repro.engine_parallel import ShardedBatchComputation

# ----------------------------------------------------------------------
# Case generation (seeded, shrinkable)
# ----------------------------------------------------------------------
#: (group count, cases per group) per suite; the totals are what
#: ``test_case_volume`` audits.
EXACT_THREAD_GROUPS = (12, 25)     # 300 exact-path cases
ANYTIME_THREAD_GROUPS = (4, 25)    # 100 anytime/MC-path cases
EXACT_PROCESS_GROUPS = (1, 30)     # 30 exact cases through a real pool


def total_generated_cases() -> int:
    return (
        EXACT_THREAD_GROUPS[0] * EXACT_THREAD_GROUPS[1]
        + ANYTIME_THREAD_GROUPS[0] * ANYTIME_THREAD_GROUPS[1]
        + EXACT_PROCESS_GROUPS[0] * EXACT_PROCESS_GROUPS[1]
    )


def make_group(
    tag: str, seed: int, cases: int, variables: int = 8
) -> Tuple[VariableRegistry, List[DNF]]:
    """One registry plus ``cases`` random DNFs over it.

    Variable names carry the group tag so every group is a fresh slice
    of the process-wide intern table (no cross-group aliasing).
    """
    rng = random.Random(seed)
    names = [f"{tag}s{seed}v{i}" for i in range(variables)]
    registry = VariableRegistry.from_boolean_probabilities(
        {name: rng.uniform(0.05, 0.95) for name in names}
    )
    dnfs = []
    for _ in range(cases):
        clause_count = rng.randint(1, 8)
        dnfs.append(
            DNF(
                Clause(
                    {
                        rng.choice(names): rng.random() < 0.6
                        for _ in range(rng.randint(1, 4))
                    }
                )
                for _ in range(clause_count)
            )
        )
    return registry, dnfs


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def shrink_failure(dnf, registry, config, disagrees) -> DNF:
    """Greedily minimise a failing DNF while ``disagrees`` still holds.

    Tries dropping whole clauses, then single atoms from a clause,
    first-improvement style, until a fixpoint (or a safety cap) is
    reached.  ``disagrees(candidate)`` re-runs the serial-vs-parallel
    comparison on the candidate alone.
    """
    current = dnf
    for _ in range(200):  # safety cap; shrinking is best-effort
        clauses = current.sorted_clauses()
        smaller: Optional[DNF] = None
        if len(clauses) > 1:
            for drop in range(len(clauses)):
                candidate = DNF(
                    clause
                    for index, clause in enumerate(clauses)
                    if index != drop
                )
                if disagrees(candidate):
                    smaller = candidate
                    break
        if smaller is None:
            for clause_index, clause in enumerate(clauses):
                if len(clause) <= 1:
                    continue
                atoms = list(clause.items())
                for drop in range(len(atoms)):
                    reduced = Clause(
                        dict(
                            atom
                            for index, atom in enumerate(atoms)
                            if index != drop
                        )
                    )
                    candidate = DNF(
                        reduced if index == clause_index else other
                        for index, other in enumerate(clauses)
                    )
                    if disagrees(candidate):
                        smaller = candidate
                        break
                if smaller is not None:
                    break
        if smaller is None:
            return current
        current = smaller
    return current


# ----------------------------------------------------------------------
# Comparison helpers
# ----------------------------------------------------------------------
def run_serial(registry, dnfs, config):
    return ConfidenceEngine(registry, config).compute_many(dnfs)


def run_parallel(registry, dnfs, config, workers, executor_kind):
    engine = ConfidenceEngine(
        registry,
        config.replace(workers=workers, executor_kind=executor_kind),
    )
    return engine.compute_many(dnfs)


def exact_mismatch(serial, parallel) -> Optional[str]:
    """A description of any exact-path disagreement, else ``None``."""
    if serial.probability != parallel.probability:
        return (
            f"probability {serial.probability!r} != "
            f"{parallel.probability!r}"
        )
    if (serial.lower, serial.upper) != (parallel.lower, parallel.upper):
        return (
            f"bounds [{serial.lower!r}, {serial.upper!r}] != "
            f"[{parallel.lower!r}, {parallel.upper!r}]"
        )
    if serial.strategy != parallel.strategy:
        return f"strategy {serial.strategy} != {parallel.strategy}"
    if serial.converged != parallel.converged:
        return (
            f"converged {serial.converged} != {parallel.converged}"
        )
    return None


def assert_exact_group(tag, seed, cases, workers, executor_kind):
    registry, dnfs = make_group(tag, seed, cases)
    config = EngineConfig()  # ε = 0: every converged answer is exact
    serial = run_serial(registry, dnfs, config)
    parallel = run_parallel(
        registry, dnfs, config, workers, executor_kind
    )
    for index, (dnf, s, p) in enumerate(zip(dnfs, serial, parallel)):
        truth = brute_force_probability(dnf, registry)
        assert s.lower - 1e-9 <= truth <= s.upper + 1e-9
        assert p.lower - 1e-9 <= truth <= p.upper + 1e-9
        why = exact_mismatch(s, p)
        if why is None:
            continue

        def disagrees(candidate: DNF) -> bool:
            one_serial = run_serial(registry, [candidate], config)[0]
            one_parallel = run_parallel(
                registry,
                [candidate, candidate],
                config,
                2,
                executor_kind,
            )[0]
            return exact_mismatch(one_serial, one_parallel) is not None

        minimal = shrink_failure(dnf, registry, config, disagrees)
        raise AssertionError(
            f"parallel/serial exact mismatch ({why}) for group "
            f"{tag!r} seed={seed} case={index}; shrunk "
            f"counterexample: {minimal!r}"
        )


# ----------------------------------------------------------------------
# The differential suites
# ----------------------------------------------------------------------
class TestExactDifferentialThread:
    @pytest.mark.parametrize("seed", range(EXACT_THREAD_GROUPS[0]))
    def test_bit_identical_to_serial(self, seed):
        assert_exact_group(
            "pdx", seed, EXACT_THREAD_GROUPS[1], workers=4,
            executor_kind="thread",
        )


class TestExactDifferentialProcess:
    @pytest.mark.parametrize("seed", range(EXACT_PROCESS_GROUPS[0]))
    def test_bit_identical_through_process_pool(self, seed):
        assert_exact_group(
            "pdp", seed, EXACT_PROCESS_GROUPS[1], workers=2,
            executor_kind="process",
        )


class TestAnytimeDifferential:
    """Budget-capped runs: bounds must be sound, never bit-compared."""

    CONFIG = EngineConfig(
        epsilon=0.05,
        error_kind="relative",
        try_read_once=False,   # force the d-tree/MC rungs
        max_total_steps=60,    # tight shared budget: most tuples capped
        initial_steps=1,
        rng_seed=1234,         # deterministic MC fallback
    )

    @pytest.mark.parametrize("seed", range(ANYTIME_THREAD_GROUPS[0]))
    def test_bounds_sound_and_consistent(self, seed):
        registry, dnfs = make_group(
            "pda", seed, ANYTIME_THREAD_GROUPS[1]
        )
        serial = run_serial(registry, dnfs, self.CONFIG)
        parallel = run_parallel(
            registry, dnfs, self.CONFIG, 3, "thread"
        )
        for index, (dnf, s, p) in enumerate(
            zip(dnfs, serial, parallel)
        ):
            truth = brute_force_probability(dnf, registry)
            for label, result in (("serial", s), ("parallel", p)):
                assert 0.0 <= result.lower <= result.upper <= 1.0, (
                    f"{label} bounds malformed at case {index} "
                    f"(seed {seed}): {result!r}"
                )
                assert (
                    result.lower - 1e-9
                    <= truth
                    <= result.upper + 1e-9
                ), (
                    f"{label} bounds unsound at case {index} "
                    f"(seed {seed}): truth={truth!r}, {result!r}"
                )
                assert (
                    result.lower - 1e-9
                    <= result.probability
                    <= result.upper + 1e-9
                )
            # Two sound intervals for one probability must intersect.
            assert (
                max(s.lower, p.lower) <= min(s.upper, p.upper) + 1e-9
            ), f"disjoint intervals at case {index} (seed {seed})"

    @pytest.mark.parametrize("seed", range(2))
    def test_seeded_parallel_runs_are_reproducible(self, seed):
        registry, dnfs = make_group("pdr", seed, 10)
        first = run_parallel(registry, dnfs, self.CONFIG, 3, "thread")
        second = run_parallel(registry, dnfs, self.CONFIG, 3, "thread")
        assert [r.probability for r in first] == [
            r.probability for r in second
        ]
        assert [(r.lower, r.upper) for r in first] == [
            (r.lower, r.upper) for r in second
        ]


class TestCaseVolume:
    def test_case_volume(self):
        # The ISSUE's floor for the generated differential corpus.
        assert total_generated_cases() >= 300


# ----------------------------------------------------------------------
# Sharded-batch unit behaviour
# ----------------------------------------------------------------------
class TestShardedBatchMechanics:
    def _batch(self, workers=3, cases=9, **config_fields):
        registry, dnfs = make_group("pdm", 77, cases)
        engine = ConfidenceEngine(
            registry, EngineConfig(**config_fields)
        )
        batch = ShardedBatchComputation(
            engine,
            dnfs,
            workers=workers,
            executor_kind="thread",
            initial_steps=1,
        )
        return registry, dnfs, batch

    def test_trivial_lineages_pass_through(self):
        registry, dnfs, _ = self._batch(cases=2)
        engine = ConfidenceEngine(registry)
        mixed = [DNF.false(), dnfs[0], DNF.true(), dnfs[1]]
        results = engine.compute_many(
            mixed, workers=2, executor_kind="thread"
        )
        assert results[0].probability == 0.0
        assert results[0].strategy == "trivial"
        assert results[2].probability == 1.0
        assert results[2].strategy == "trivial"

    def test_step_refines_at_most_one_tuple_per_shard(self):
        _registry, _dnfs, batch = self._batch(
            workers=3, try_read_once=False
        )
        with batch:
            before = list(batch.budgets)
            if batch.step() is None:
                return  # everything converged on the initial pass
            grown = sum(
                1
                for old, new in zip(before, batch.budgets)
                if new != old
            )
            assert 1 <= grown <= batch.shards

    def test_interval_refinement_is_monotone(self):
        _registry, _dnfs, batch = self._batch(
            workers=2, try_read_once=False
        )
        with batch:
            for _ in range(6):
                widths = [result.width() for result in batch.results]
                if batch.step() is None:
                    break
                for old, result in zip(widths, batch.results):
                    assert result.width() <= old + 1e-12

    def test_cache_stats_aggregate_per_worker(self):
        _registry, _dnfs, batch = self._batch(workers=3)
        with batch:
            stats = batch.cache_stats()
            assert stats["caches"] == len(batch.worker_stats) >= 1
            assert stats["misses"] >= 0

    def test_rejects_unknown_executor_kind(self):
        registry, dnfs = make_group("pdm", 78, 3)
        engine = ConfidenceEngine(registry)
        with pytest.raises(ValueError, match="executor_kind"):
            ShardedBatchComputation(
                engine, dnfs, workers=2, executor_kind="fiber"
            )

    def test_process_pool_rejects_unpicklable_selector(self):
        registry, dnfs = make_group("pdm", 79, 4)
        engine = ConfidenceEngine(
            registry,
            EngineConfig(
                choose_variable=lambda dnf: dnf.most_frequent_variable()
            ),
        )
        # Construction runs the initial pass, which needs the executor —
        # so the picklability error surfaces directly from __init__.
        with pytest.raises(ValueError, match="picklable"):
            ShardedBatchComputation(
                engine, dnfs, workers=2, executor_kind="process"
            )

    def test_config_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            EngineConfig(workers=0)
        with pytest.raises(ValueError, match="executor_kind"):
            EngineConfig(executor_kind="gpu")

    def test_describe_reports_parallel_knobs(self):
        config = EngineConfig(workers=4, executor_kind="thread")
        description = config.describe()
        assert description["workers"] == 4
        assert description["executor_kind"] == "thread"
