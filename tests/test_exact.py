"""Tests for the exact computation paths (repro.core.exact)."""

import pytest

from repro.core.compiler import CompilationBudgetExceeded, CompilationStats
from repro.core.dnf import DNF
from repro.core.exact import exact_probability, exact_probability_compiled
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry


@pytest.fixture
def registry():
    return VariableRegistry.from_boolean_probabilities(
        {name: 0.2 + 0.1 * i for i, name in enumerate("abcdef")}
    )


class TestExactProbability:
    def test_matches_brute_force(self, registry):
        dnf = DNF.from_sets(
            [
                {"a": True, "b": True},
                {"b": True, "c": True},
                {"a": True, "c": True},
                {"d": True},
            ]
        )
        assert exact_probability(dnf, registry) == pytest.approx(
            brute_force_probability(dnf, registry)
        )

    def test_budget_exhaustion_raises(self, registry):
        dnf = DNF.from_sets(
            [
                {"a": True, "b": True},
                {"b": True, "c": True},
                {"a": True, "c": True},
            ]
        )
        with pytest.raises(RuntimeError, match="step budget"):
            exact_probability(dnf, registry, max_steps=1)

    def test_false_dnf(self, registry):
        assert exact_probability(DNF.false(), registry) == 0.0

    def test_true_dnf(self, registry):
        assert exact_probability(DNF.true(), registry) == 1.0


class TestExactCompiled:
    def test_matches_incremental(self, registry):
        dnf = DNF.from_sets(
            [
                {"a": True, "b": False},
                {"b": True, "c": True},
                {"c": False, "d": True},
                {"e": True},
            ]
        )
        assert exact_probability_compiled(dnf, registry) == pytest.approx(
            exact_probability(dnf, registry)
        )

    def test_false_dnf(self, registry):
        assert exact_probability_compiled(DNF.false(), registry) == 0.0

    def test_stats_forwarded(self, registry):
        dnf = DNF.from_sets([{"a": True}, {"b": True}])
        stats = CompilationStats()
        exact_probability_compiled(dnf, registry, stats=stats)
        assert stats.nodes > 0

    def test_node_budget_forwarded(self, registry):
        dnf = DNF.from_sets(
            [
                {"a": True, "b": True},
                {"b": True, "c": True},
                {"a": True, "c": True},
            ]
        )
        with pytest.raises(CompilationBudgetExceeded):
            exact_probability_compiled(dnf, registry, max_nodes=1)

    def test_deep_shannon_chain(self):
        """An inequality-style chain forces a long ⊕ spine; the compiled
        path must handle the recursion depth."""
        count = 60
        reg = VariableRegistry.from_boolean_probabilities(
            {f"x{i}": 0.3 for i in range(count)}
            | {f"y{i}": 0.4 for i in range(count)}
        )
        clauses = [
            {f"x{i}": True, f"y{j}": True}
            for i in range(count)
            for j in range(i, count)
        ]
        dnf = DNF.from_sets(clauses)
        compiled = exact_probability_compiled(dnf, reg)
        incremental = exact_probability(dnf, reg)
        assert compiled == pytest.approx(incremental)
