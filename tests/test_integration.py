"""End-to-end integration tests: all confidence methods must agree.

These tests run the full pipeline — data generation, query evaluation,
lineage DNF extraction — and cross-check every probability computation
method the library offers: brute force, the d-tree exact and approximate
algorithms, the compiled d-tree, SPROUT, and aconf.
"""

import pytest

from repro.core.approx import RELATIVE, approximate_probability
from repro.core.exact import exact_probability, exact_probability_compiled
from repro.core.semantics import (
    brute_force_formula_probability,
    brute_force_probability,
)
from repro.datasets.graphs import GRAPH_QUERIES, random_graph
from repro.datasets.social import karate_club_network
from repro.datasets.tpch import TPCHConfig, generate_tpch
from repro.datasets.tpch_queries import (
    HARD_QUERIES,
    HIERARCHICAL_QUERIES,
    IQ_QUERIES,
    make_query,
)
from repro.db.algebra import conf, natural_join, project
from repro.db.engine import answer_selector, evaluate, evaluate_to_dnf
from repro.db.sprout import sprout_confidence
from repro.mc.aconf import aconf


@pytest.fixture(scope="module")
def tiny_tpch():
    """Small enough that lineage stays brute-forceable per answer."""
    return generate_tpch(TPCHConfig(scale_factor=0.02, seed=11))


@pytest.fixture(scope="module")
def small_tpch():
    return generate_tpch(TPCHConfig(scale_factor=0.1, seed=1))


class TestHierarchicalQueries:
    def test_dtree_matches_sprout(self, small_tpch):
        selector = answer_selector(small_tpch)
        for name in HIERARCHICAL_QUERIES:
            query = make_query(name)
            sprout = dict(sprout_confidence(query, small_tpch))
            for values, dnf in evaluate_to_dnf(query, small_tpch):
                dtree = exact_probability(
                    dnf, small_tpch.registry, choose_variable=selector
                )
                assert dtree == pytest.approx(sprout[values]), (
                    name,
                    values,
                )

    def test_dtree_matches_brute_force_small(self, tiny_tpch):
        for name in HIERARCHICAL_QUERIES:
            query = make_query(name)
            for values, dnf in evaluate_to_dnf(query, tiny_tpch):
                if len(dnf.variables) > 16:
                    continue
                truth = brute_force_probability(dnf, tiny_tpch.registry)
                assert exact_probability(
                    dnf, tiny_tpch.registry
                ) == pytest.approx(truth), (name, values)


class TestIQQueries:
    def test_iq_order_exact_matches_default_order(self, tiny_tpch):
        selector = answer_selector(tiny_tpch)
        for name in IQ_QUERIES:
            query = make_query(name)
            for _values, dnf in evaluate_to_dnf(query, tiny_tpch):
                with_order = exact_probability(
                    dnf, tiny_tpch.registry, choose_variable=selector
                )
                without_order = exact_probability(dnf, tiny_tpch.registry)
                assert with_order == pytest.approx(without_order), name

    def test_relative_approximation_brackets_exact(self, small_tpch):
        selector = answer_selector(small_tpch)
        for name in IQ_QUERIES:
            query = make_query(name)
            for _values, dnf in evaluate_to_dnf(query, small_tpch):
                exact = exact_probability(
                    dnf, small_tpch.registry, choose_variable=selector
                )
                result = approximate_probability(
                    dnf,
                    small_tpch.registry,
                    epsilon=0.01,
                    error_kind=RELATIVE,
                    choose_variable=selector,
                )
                assert result.converged
                assert (1 - 0.01) * exact - 1e-9 <= result.estimate
                assert result.estimate <= (1 + 0.01) * exact + 1e-9


class TestHardQueries:
    def test_approximation_within_bounds(self, small_tpch):
        for name in HARD_QUERIES:
            query = make_query(name)
            for _values, dnf in evaluate_to_dnf(query, small_tpch):
                if name == "B9":
                    continue  # exercised separately; slow at this scale
                result = approximate_probability(
                    dnf,
                    small_tpch.registry,
                    epsilon=0.05,
                    error_kind=RELATIVE,
                )
                assert result.converged
                assert result.lower <= result.estimate <= result.upper

    def test_aconf_agrees_with_dtree(self, small_tpch):
        query = make_query("B21")
        (_values, dnf), = evaluate_to_dnf(query, small_tpch)
        exact = exact_probability(dnf, small_tpch.registry)
        mc = aconf(dnf, small_tpch.registry, epsilon=0.05, delta=0.05,
                   seed=5)
        assert mc.estimate == pytest.approx(exact, rel=0.15)


class TestGraphWorkloads:
    def test_all_motifs_all_methods(self):
        graph = random_graph(5, 0.3)
        for name, generator in GRAPH_QUERIES.items():
            dnf = generator(graph)
            truth = brute_force_probability(dnf, graph.registry)
            assert exact_probability(dnf, graph.registry) == pytest.approx(
                truth
            ), name
            assert exact_probability_compiled(
                dnf, graph.registry
            ) == pytest.approx(truth), name
            approx = approximate_probability(
                dnf, graph.registry, epsilon=0.01
            )
            assert abs(approx.estimate - truth) <= 0.011, name

    def test_karate_triangle_converges(self):
        graph = karate_club_network()
        from repro.datasets.graphs import triangle_dnf

        dnf = triangle_dnf(graph)
        result = approximate_probability(
            dnf, graph.registry, epsilon=0.01, error_kind=RELATIVE
        )
        assert result.converged
        # Dense friendship graph: a triangle is almost certain.
        assert result.estimate > 0.9

    def test_aconf_on_random_graph(self):
        graph = random_graph(6, 0.5)
        from repro.datasets.graphs import triangle_dnf

        dnf = triangle_dnf(graph)
        truth = brute_force_probability(dnf, graph.registry)
        mc = aconf(dnf, graph.registry, epsilon=0.05, delta=0.05, seed=1)
        assert mc.estimate == pytest.approx(truth, rel=0.15)


class TestAlgebraPipeline:
    def test_conf_operator_end_to_end(self, tiny_tpch):
        joined = natural_join(
            tiny_tpch["supplier"].renamed("supplier"),
            # lineitem shares no attribute names with supplier except via
            # explicit renaming of the join column.
            _lineitem_for_join(tiny_tpch),
        )
        projected = project(joined, ["s_suppkey"])
        results = conf(projected, tiny_tpch.registry, epsilon=0.0)
        assert results
        lineage_of = {v: l for v, l in projected.rows}
        checked_against_brute_force = 0
        for values, probability in results:
            lineage = lineage_of[values]
            # Brute force is exponential in the variable count: use it as
            # the oracle only on small lineage, and the (independently
            # fuzz-tested) d-tree exact value otherwise.
            if len(lineage.variables()) <= 14:
                expected = brute_force_formula_probability(
                    lineage, tiny_tpch.registry
                )
                checked_against_brute_force += 1
            else:
                expected = exact_probability(
                    lineage.to_dnf(), tiny_tpch.registry
                )
            assert probability == pytest.approx(expected)
        assert checked_against_brute_force >= 0


def _lineitem_for_join(db):
    from repro.db.algebra import project as pj
    from repro.db.algebra import rename_attributes

    lineitem = pj(
        db["lineitem"], ["l_suppkey", "l_orderkey"], deduplicate=False
    )
    return rename_attributes(lineitem, {"l_suppkey": "s_suppkey"})
