"""Tests for Shannon variable-order heuristics (incl. Lemma 6.8)."""

import pytest

from repro.core.dnf import DNF
from repro.core.orders import (
    iq_variable_choice,
    make_variable_selector,
    max_frequency_choice,
)


def iq_lineage(x_count, y_count):
    """Lineage of q() :- R(X), S(Y), X < Y on sorted unit-spaced data:
    clause x_i ∧ y_j whenever i < j (x and y values interleaved so that
    x_i pairs with y_j for j ≥ i)."""
    clauses = []
    for i in range(x_count):
        for j in range(y_count):
            if i <= j:
                clauses.append({f"x{i}": True, f"y{j}": True})
    relation_of = {f"x{i}": "R" for i in range(x_count)}
    relation_of.update({f"y{j}": "S" for j in range(y_count)})
    return DNF.from_sets(clauses), relation_of


class TestMaxFrequency:
    def test_picks_most_frequent(self):
        dnf = DNF.from_sets(
            [{"a": True, "b": True}, {"a": True, "c": True}, {"c": False}]
        )
        assert max_frequency_choice(dnf) in {"a", "c"}

    def test_deterministic_tie_break(self):
        dnf = DNF.from_sets([{"a": True}, {"b": True}])
        assert max_frequency_choice(dnf) == max_frequency_choice(dnf)


class TestIQChoice:
    def test_finds_lemma_6_8_pivot(self):
        dnf, relation_of = iq_lineage(3, 3)
        choice = iq_variable_choice(dnf, relation_of)
        # x0 pairs with every y in the DNF: it satisfies the lemma.
        assert choice == "x0"

    def test_cofactor_subsumption_collapses(self):
        """After Shannon on the Lemma 6.8 pivot, the positive cofactor
        reduces to the co-factor (a disjunction of singletons)."""
        dnf, relation_of = iq_lineage(3, 3)
        pivot = iq_variable_choice(dnf, relation_of)
        cofactor = dnf.restrict(pivot, True).remove_subsumed()
        assert all(len(clause) == 1 for clause in cofactor)

    def test_missing_provenance_returns_none(self):
        dnf, relation_of = iq_lineage(2, 2)
        del relation_of["x0"]
        assert iq_variable_choice(dnf, relation_of) is None

    def test_single_relation_returns_none(self):
        dnf = DNF.from_sets([{"x0": True, "x1": True}])
        assert iq_variable_choice(dnf, {"x0": "R", "x1": "R"}) is None

    def test_non_iq_shape_returns_none(self):
        # Hard-pattern lineage: no variable co-occurs with all others.
        dnf = DNF.from_sets(
            [
                {"r1": True, "s11": True, "t1": True},
                {"r2": True, "s22": True, "t2": True},
            ]
        )
        relation_of = {
            "r1": "R", "r2": "R",
            "s11": "S", "s22": "S",
            "t1": "T", "t2": "T",
        }
        assert iq_variable_choice(dnf, relation_of) is None

    def test_candidate_cap_respected(self):
        dnf, relation_of = iq_lineage(4, 4)
        # With zero candidates allowed, nothing can be found.
        assert (
            iq_variable_choice(dnf, relation_of, max_candidates=0) is None
        )


class TestCompositeSelector:
    def test_without_provenance_uses_max_frequency(self):
        selector = make_variable_selector(None)
        dnf = DNF.from_sets(
            [{"a": True, "b": True}, {"a": True, "c": True}]
        )
        assert selector(dnf) == "a"

    def test_with_provenance_prefers_iq(self):
        dnf, relation_of = iq_lineage(3, 3)
        selector = make_variable_selector(relation_of)
        assert selector(dnf) == "x0"

    def test_fallback_when_iq_inapplicable(self):
        relation_of = {"a": "R", "b": "S", "c": "S"}
        selector = make_variable_selector(relation_of)
        dnf = DNF.from_sets(
            [
                {"a": True, "b": True},
                {"a": True, "c": True},
                {"b": True, "c": True},
            ]
        )
        # a co-occurs with b and c (all of S) → the IQ rule may fire; if it
        # does not, the fallback must still return a variable of the DNF.
        assert selector(dnf) in dnf.variables


class TestIQPolynomialCompilation:
    def test_theorem_6_9_linear_dtree(self):
        """Compiling IQ lineage with the Lemma 6.8 order stays small."""
        from repro.core.approx import approximate_probability
        from repro.core.variables import VariableRegistry

        dnf, relation_of = iq_lineage(8, 8)
        reg = VariableRegistry.from_boolean_probabilities(
            {v: 0.3 for v in dnf.variables}
        )
        selector = make_variable_selector(relation_of)
        result = approximate_probability(
            dnf, reg, epsilon=0.0, choose_variable=selector
        )
        assert result.converged
        # Polynomial behaviour: on 36 clauses the step count stays small
        # (exponential expansion would blow past this immediately).
        assert result.steps <= 200

    def test_iq_exact_matches_brute_force(self):
        from repro.core.exact import exact_probability
        from repro.core.semantics import brute_force_probability
        from repro.core.variables import VariableRegistry

        dnf, relation_of = iq_lineage(4, 4)
        reg = VariableRegistry.from_boolean_probabilities(
            {v: 0.4 for v in dnf.variables}
        )
        selector = make_variable_selector(relation_of)
        assert exact_probability(
            dnf, reg, choose_variable=selector
        ) == pytest.approx(brute_force_probability(dnf, reg))
