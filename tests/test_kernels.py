"""Differential tests for the vectorized kernel layer.

The contract of :mod:`repro.circuits.kernels` is that vectorization is
an *execution* detail, never a semantics one:

* batched circuit evaluation and bounds are **bit-identical** to the
  scalar :meth:`Circuit.evaluate` / :meth:`Circuit.evaluate_bounds`
  sweeps — on exact, partial, and conditioned circuits alike — because
  every kernel accumulation walks the same operands in the same order
  as the scalar recursion;
* batched gradients agree with :meth:`Circuit.gradients` to ~1e-12
  (the backward sweep accumulates adjoints in a different order, which
  is the one place bit-identity is not promised);
* circuit Monte Carlo is seed-deterministic and plugs into the engine's
  MC rung with the same ``(ε, δ)`` relative-error semantics as aconf;
* everything in this file also runs — and passes — without numpy, the
  batched paths then being literal aliases of the scalar ones.

Like the parallel differential suite, generation is plain seeded
``random.Random`` (``make_group`` is shared), so any failure reproduces
from the seed in its assertion message.
"""

import math
import random

import pytest

from repro import circuits
from repro.circuits import kernels
from repro.circuits.kernels import (
    BACKEND_NUMPY,
    BACKEND_SCALAR,
    CircuitKernel,
    CircuitSampler,
    KernelUnavailableError,
    circuit_monte_carlo,
    clause_probability_batch,
    kernel_backend,
    numpy_available,
)
from repro.circuits.sweep import (
    SweepResult,
    sweep_bounds,
    sweep_gradients,
    sweep_values,
    what_if_scenarios,
)
from repro.core.bounds import bucket_partition, independent_bounds
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry
from repro.engine import ConfidenceEngine, EngineConfig
from repro.db import ProbDB

from test_parallel_differential import make_group

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable"
)

GROUPS = ((11, 12), (12, 12), (13, 12))  # (seed, cases) triples
PARTIAL_BUDGET = 6  # small enough to leave residual leaves routinely


def scenario_batch(registry, rng, count, *, skip=()):
    """``count`` random override scenarios over ``registry``.

    Mixes ``None`` (base probabilities), single- and multi-variable
    overrides, and the occasional 0.0/1.0 clamp — the values that
    exercise residual widening and OR complement arithmetic hardest.
    """
    names = [
        name for name in registry.variables() if name not in skip
    ]
    scenarios = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.15:
            scenarios.append(None)
            continue
        overrides = {}
        for _ in range(rng.randint(1, 3)):
            name = rng.choice(names)
            pick = rng.random()
            if pick < 0.1:
                overrides[name] = 0.0
            elif pick < 0.2:
                overrides[name] = 1.0
            else:
                overrides[name] = rng.random()
        scenarios.append(overrides)
    return scenarios


def compiled_cases(tag, seed, cases):
    """(circuit, registry, dnf, rng) cases: exact, partial, conditioned."""
    registry, dnfs = make_group(tag, seed, cases)
    engine = ConfidenceEngine(registry)
    rng = random.Random(seed * 1013)
    names = list(registry.variables())
    for dnf in dnfs:
        exact = engine.compile_circuit(dnf)
        yield exact, registry, dnf, rng, ()
        partial = engine.compile_circuit(dnf, max_nodes=PARTIAL_BUDGET)
        yield partial, registry, dnf, rng, ()
        pivot = rng.choice(names)
        conditioned = exact.condition(pivot, rng.random() < 0.5)
        yield conditioned, registry, dnf, rng, (pivot,)


# ----------------------------------------------------------------------
# Batch vs scalar differential sweeps
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed,cases", GROUPS)
def test_sweep_values_bit_identical(seed, cases):
    """Batched evaluation == scalar evaluation, bit for bit."""
    for circuit, registry, dnf, rng, skip in compiled_cases(
        "kv", seed, cases
    ):
        scenarios = scenario_batch(registry, rng, 6, skip=skip)
        batched = sweep_values(circuit, scenarios)
        scalar = sweep_values(circuit, scenarios, vectorized=False)
        assert batched == scalar, (
            f"seed={seed} dnf={dnf} scenarios={scenarios}: "
            f"{batched} != {scalar}"
        )


@pytest.mark.parametrize("seed,cases", GROUPS)
def test_sweep_bounds_bit_identical(seed, cases):
    """Batched bounds == scalar bounds on exact AND partial circuits."""
    for circuit, registry, dnf, rng, skip in compiled_cases(
        "kb", seed, cases
    ):
        scenarios = scenario_batch(registry, rng, 6, skip=skip)
        batched = sweep_bounds(circuit, scenarios)
        scalar = sweep_bounds(circuit, scenarios, vectorized=False)
        assert batched == scalar, (
            f"seed={seed} dnf={dnf} scenarios={scenarios}: "
            f"{batched} != {scalar}"
        )
        for lower, upper in batched:
            assert 0.0 <= lower <= upper <= 1.0


@pytest.mark.parametrize("seed,cases", GROUPS)
def test_sweep_gradients_close(seed, cases):
    """Batched gradients match the scalar backward sweep to ~1e-12."""
    for circuit, registry, dnf, rng, skip in compiled_cases(
        "kg", seed, cases
    ):
        scenarios = scenario_batch(registry, rng, 4, skip=skip)
        batched = sweep_gradients(circuit, scenarios)
        scalar = sweep_gradients(circuit, scenarios, vectorized=False)
        assert [set(row) for row in batched] == [
            set(row) for row in scalar
        ]
        for row_b, row_s in zip(batched, scalar):
            for name, value in row_b.items():
                assert math.isclose(
                    value, row_s[name], rel_tol=1e-9, abs_tol=1e-12
                ), f"seed={seed} dnf={dnf} var={name}: {value} != {row_s[name]}"


def test_sweep_residual_widening_matches_scalar():
    """Overriding a residual leaf's variable widens per scenario, not
    globally — scenario s touching the leaf must not widen scenario t."""
    registry, dnfs = make_group("kw", 17, 8)
    engine = ConfidenceEngine(registry)
    from repro.core.variables import variable_name

    for dnf in dnfs:
        circuit = engine.compile_circuit(dnf, max_nodes=PARTIAL_BUDGET)
        residual_vids = set().union(
            *(vids for _lo, _hi, vids in circuit.residuals), frozenset()
        )
        if not residual_vids:
            continue
        touched = {variable_name(next(iter(residual_vids))): 0.5}
        scenarios = [None, touched, None]
        assert sweep_bounds(circuit, scenarios) == sweep_bounds(
            circuit, scenarios, vectorized=False
        )
        assert sweep_bounds(circuit, [None]) == [
            sweep_bounds(circuit, scenarios)[0]
        ]


def test_sweep_rejects_unknown_variable():
    """Scenario validation is the scalar evaluate() validation."""
    registry, dnfs = make_group("ku", 23, 1)
    circuit = ConfidenceEngine(registry).compile_circuit(dnfs[0])
    with pytest.raises(KeyError):
        sweep_values(circuit, [None, {"no-such-variable": 0.5}])


# ----------------------------------------------------------------------
# Kernel primitives
# ----------------------------------------------------------------------
@needs_numpy
def test_evaluate_batch_matches_point_evaluate():
    """The raw kernel on hand-built matrices equals circuit.evaluate."""
    registry, dnfs = make_group("kp", 31, 10)
    engine = ConfidenceEngine(registry)
    for dnf in dnfs:
        circuit = engine.compile_circuit(dnf)
        kernel = CircuitKernel(circuit)
        matrix = kernel.base_matrix(3)
        values = kernel.evaluate_batch(matrix)
        expected = circuit.evaluate()
        assert list(values) == [expected] * 3


@needs_numpy
def test_clause_probability_batch_bit_identical():
    registry, dnfs = make_group("kc", 37, 12)
    for dnf in dnfs:
        clauses = dnf.sorted_clauses()
        batched = clause_probability_batch(clauses, registry)
        assert batched is not None
        assert batched == [
            clause.probability(registry) for clause in clauses
        ]


@pytest.mark.parametrize("vectorized", [None, False])
def test_bucket_partition_backend_invariant(vectorized):
    """Fig. 3 bounds are bit-identical whichever backend computed the
    clause marginals (the partition feeds exact d-tree leaf bounds)."""
    registry, dnfs = make_group("kq", 41, 15)
    for dnf in dnfs:
        partition = bucket_partition(
            dnf, registry, vectorized=vectorized
        )
        reference = bucket_partition(dnf, registry, vectorized=False)
        assert partition.probabilities == reference.probabilities
        assert partition.buckets == reference.buckets
        assert independent_bounds(
            dnf, registry, vectorized=vectorized
        ) == independent_bounds(dnf, registry, vectorized=False)


# ----------------------------------------------------------------------
# Monte Carlo on circuits
# ----------------------------------------------------------------------
@needs_numpy
def test_sample_worlds_reproducible():
    registry, dnfs = make_group("km", 43, 5)
    engine = ConfidenceEngine(registry)
    for dnf in dnfs:
        circuit = engine.compile_circuit(dnf)
        kernel = CircuitKernel(circuit)
        first = kernel.sample_worlds(256, rng_seed=7)
        second = kernel.sample_worlds(256, rng_seed=7)
        assert (first == second).all()
        assert set(first.tolist()) <= {0.0, 1.0}
        # The sample mean estimates P(Φ) without bias.
        truth = brute_force_probability(dnf, registry)
        mean = kernel.sample_worlds(4096, rng_seed=11).mean()
        assert abs(mean - truth) < 0.05


@needs_numpy
def test_sample_worlds_requires_exact_circuit():
    registry, dnfs = make_group("kr", 47, 6)
    engine = ConfidenceEngine(registry)
    for dnf in dnfs:
        partial = engine.compile_circuit(dnf, max_nodes=PARTIAL_BUDGET)
        if partial.is_exact:
            continue
        with pytest.raises(ValueError):
            CircuitKernel(partial).sample_worlds(8, rng_seed=1)
        return
    pytest.skip("no partial circuit produced under the budget")


@needs_numpy
def test_circuit_monte_carlo_seeded_and_sound():
    registry, dnfs = make_group("kd", 53, 5)
    engine = ConfidenceEngine(registry)
    for dnf in dnfs:
        circuit = engine.compile_circuit(dnf)
        first = circuit_monte_carlo(
            circuit, epsilon=0.1, delta=0.01, seed=17
        )
        second = circuit_monte_carlo(
            circuit, epsilon=0.1, delta=0.01, seed=17
        )
        assert first.estimate == second.estimate
        assert first.samples == second.samples
        truth = brute_force_probability(dnf, registry)
        # (ε, δ) relative guarantee, checked loosely (δ slack).
        assert abs(first.estimate - truth) <= 0.1 * truth + 0.05


@needs_numpy
def test_circuit_sampler_chunks_are_deterministic():
    registry, dnfs = make_group("ks", 59, 1)
    circuit = ConfidenceEngine(registry).compile_circuit(dnfs[0])
    one = CircuitSampler(circuit, seed=3, chunk=16)
    two = CircuitSampler(circuit, seed=3, chunk=64)
    draws_one = [one.sample_unit() for _ in range(200)]
    draws_two = [two.sample_unit() for _ in range(200)]
    assert draws_one == draws_two  # chunking is invisible


# ----------------------------------------------------------------------
# Engine integration: the MC rung rides the circuit sampler
# ----------------------------------------------------------------------
def hard_instance(seed=5):
    """A correlated DNF whose Fig. 3 bounds stay loose at 0 steps."""
    rng = random.Random(seed)
    registry = VariableRegistry.from_boolean_probabilities(
        {f"h{seed}x{i}": rng.uniform(0.3, 0.7) for i in range(10)}
    )
    names = list(registry.variables())
    dnf = DNF(
        Clause({name: True for name in rng.sample(names, 3)})
        for _ in range(25)
    )
    return registry, dnf


def test_engine_mc_routes_through_circuit_sampler():
    registry, dnf = hard_instance()
    config = EngineConfig(
        epsilon=0.01, error_kind="relative", max_steps=0, rng_seed=99
    )
    engine = ConfidenceEngine(registry, config)
    circuit = engine.compile_circuit(dnf)
    engine.circuit_source = {dnf: circuit}.get

    result = engine.compute(dnf)
    assert result.strategy == "mc"
    expected_sampler = (
        "circuit" if kernel_backend(None) == BACKEND_NUMPY else "karp-luby"
    )
    assert result.details["mc_sampler"] == expected_sampler
    # rng_seed purity: a pure function of (seed, lineage).
    repeat = engine.compute(dnf)
    assert repeat.probability == result.probability
    truth = brute_force_probability(dnf, registry)
    assert result.lower <= truth <= result.upper


def test_engine_mc_fallback_without_circuit_is_karp_luby():
    registry, dnf = hard_instance()
    config = EngineConfig(
        epsilon=0.01, error_kind="relative", max_steps=0, rng_seed=99
    )
    engine = ConfidenceEngine(registry, config)
    result = engine.compute(dnf)
    assert result.strategy == "mc"
    assert result.details["mc_sampler"] == "karp-luby"

    # vectorized=False keeps the karp-luby sampler even with a circuit.
    scalar_engine = ConfidenceEngine(
        registry, config.replace(vectorized=False)
    )
    scalar_engine.circuit_source = {
        dnf: ConfidenceEngine(registry, config).compile_circuit(dnf)
    }.get
    scalar = scalar_engine.compute(dnf)
    assert scalar.strategy == "mc"
    assert scalar.details["mc_sampler"] == "karp-luby"


# ----------------------------------------------------------------------
# Session sweeps and the SweepResult container
# ----------------------------------------------------------------------
def test_session_sweep_and_what_if_grid():
    registry, dnfs = make_group("kt", 61, 3)
    session = ProbDB.from_registry(registry, EngineConfig(epsilon=0.0))
    answers = [((f"a{i}",), dnf) for i, dnf in enumerate(dnfs)]
    result = session.lineage(answers)

    names = list(registry.variables())
    scenarios = [None, {names[0]: 0.25}, {names[1]: 0.75, names[2]: 0.0}]
    swept = result.sweep(scenarios)
    scalar = result.sweep(scenarios, vectorized=False)
    assert swept.values == scalar.values
    assert swept.backend in (BACKEND_NUMPY, BACKEND_SCALAR)
    assert scalar.backend == BACKEND_SCALAR

    assert len(swept) == len(dnfs)
    assert swept.scenario_count == len(scenarios)
    for i, dnf in enumerate(dnfs):
        circuit = session.engine.compile_circuit(dnf)
        expected = [circuit.evaluate(s) for s in scenarios]
        assert swept.row((f"a{i}",)) == expected
    with pytest.raises(KeyError):
        swept.row(("missing",))
    assert swept.column(0) == [
        (answer, swept.values[i][0])
        for i, answer in enumerate(swept.answers)
    ]
    assert "scenarios" in repr(swept)

    grid = result.what_if_grid(names[0], [0.0, 0.5, 1.0])
    expected = result.sweep(what_if_scenarios(names[0], [0.0, 0.5, 1.0]))
    assert grid.values == expected.values


# ----------------------------------------------------------------------
# Backend selection and degradation
# ----------------------------------------------------------------------
def test_kernel_backend_resolution():
    resolved = kernel_backend(None)
    if numpy_available():
        assert resolved == BACKEND_NUMPY
        assert kernel_backend(True) == BACKEND_NUMPY
    else:
        assert resolved == BACKEND_SCALAR
        with pytest.raises(KernelUnavailableError):
            kernel_backend(True)
    assert kernel_backend(False) == BACKEND_SCALAR


def test_describe_reports_kernel_backend():
    description = EngineConfig().describe()
    assert description["kernel_backend"] == kernel_backend(None)
    assert (
        EngineConfig(vectorized=False).describe()["kernel_backend"]
        == BACKEND_SCALAR
    )


def test_vectorized_true_without_numpy_raises(monkeypatch):
    monkeypatch.setattr(kernels, "_np", None)
    with pytest.raises(KernelUnavailableError) as excinfo:
        EngineConfig(vectorized=True)
    message = str(excinfo.value)
    assert "repro[fast]" in message and "vectorized" in message
    # Auto mode degrades silently instead.
    assert EngineConfig().describe()["kernel_backend"] == BACKEND_SCALAR
    assert clause_probability_batch([], None) is None


def test_sweeps_degrade_without_numpy(monkeypatch):
    registry, dnfs = make_group("kz", 67, 4)
    engine = ConfidenceEngine(registry)
    circuits_list = [engine.compile_circuit(dnf) for dnf in dnfs]
    with_numpy = [
        sweep_values(c, [None, {next(iter(registry.variables())): 0.5}])
        for c in circuits_list
    ]
    monkeypatch.setattr(kernels, "_np", None)
    without = [
        sweep_values(c, [None, {next(iter(registry.variables())): 0.5}])
        for c in circuits_list
    ]
    assert with_numpy == without


def test_kernel_symbols_exported():
    for name in (
        "CircuitKernel",
        "CircuitSampler",
        "KernelUnavailableError",
        "SweepResult",
        "kernel_backend",
    ):
        assert name in circuits.__all__
        import repro

        assert name in repro.__all__
