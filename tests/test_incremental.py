"""Unit tests for cone-level incremental recompilation primitives.

The mutation subsystem (PR 9) relies on three small mechanisms:

* :meth:`CircuitCache.evict_intersecting` / :meth:`DecompositionCache.
  evict_intersecting` — surgical eviction of exactly the cached
  circuits / memo cones whose variable-id sets intersect a change;
* registry mutation (`set_boolean` / `set_distribution` /
  `remove_variable`) — in-place probability rewrites that keep the
  interned atom-probability window consistent;
* :meth:`CircuitCache.touch` — the serving read-your-writes signal: a
  committed mutation bumps the live-cache version, so snapshots re-cut
  and ``expect_version`` pins from before the commit 409.
"""

import asyncio

import pytest

from repro.circuits import (
    CircuitCache,
    InvalidationReport,
    invalidate_variables,
    variable_ids_of,
)
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.memo import DecompositionCache
from repro.core.variables import VariableRegistry, lookup_variable
from repro.db.database import Database
from repro.db.relation import Relation
from repro.engine import ConfidenceEngine, EngineConfig
from repro.db.session import ProbDB
from repro.serving import ServingClient, ServingError


def make_registry(prefix="i", count=8):
    registry = VariableRegistry()
    for index in range(count):
        registry.add_boolean(f"{prefix}{index}", 0.1 + 0.08 * index)
    return registry


def dnf(*clauses):
    return DNF([Clause({v: True for v in clause}) for clause in clauses])


class TestCircuitCacheEviction:
    def test_evicts_only_intersecting_entries(self):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        cache = CircuitCache()
        left = dnf(("i0", "i1"), ("i2",))
        right = dnf(("i5", "i6"), ("i7",))
        cache.put(left, engine.compile_circuit(left))
        cache.put(right, engine.compile_circuit(right))

        removed = cache.evict_intersecting(variable_ids_of(["i1"]))
        assert removed == 1
        assert cache.get(left) is None
        assert cache.get(right) is not None

    def test_disjoint_change_is_free_and_versionless(self):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        cache = CircuitCache()
        lineage = dnf(("i0", "i1"))
        cache.put(lineage, engine.compile_circuit(lineage))
        before = cache.version

        assert cache.evict_intersecting(variable_ids_of(["i7"])) == 0
        assert cache.version == before  # no change, no version bump
        assert cache.evict_intersecting(frozenset()) == 0
        assert cache.get(lineage) is not None

    def test_touch_bumps_version_without_evicting(self):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        cache = CircuitCache()
        lineage = dnf(("i0",))
        cache.put(lineage, engine.compile_circuit(lineage))
        before = cache.version
        assert cache.touch() == before + 1
        assert cache.get(lineage) is not None


class TestMemoEviction:
    def test_evicts_cones_touching_variables(self):
        registry = make_registry()
        cache = DecompositionCache()
        engine = ConfidenceEngine(registry, cache=cache)
        # P4 paths: not read-once, so they actually decompose and memoise.
        left = dnf(("i0", "i1"), ("i1", "i2"), ("i2", "i3"))
        right = dnf(("i4", "i5"), ("i5", "i6"), ("i6", "i7"))
        engine.compute(left)
        engine.compute(right)
        assert cache.stats()["entries"] > 0
        # Baseline: how many misses a fully-warm recompute records
        # (top-level probes miss transiently even with all cones cached).
        before = cache.stats()["misses"]
        engine.compute(right)
        warm_misses = cache.stats()["misses"] - before

        removed = cache.evict_intersecting(variable_ids_of(["i0"]))
        assert removed > 0
        # The disjoint query's cones survive: recomputing it is exactly
        # as warm as before the eviction.
        before = cache.stats()["misses"]
        engine.compute(right)
        assert cache.stats()["misses"] - before == warm_misses

    def test_empty_touched_set_is_noop(self):
        cache = DecompositionCache()
        assert cache.evict_intersecting(frozenset()) == 0


class TestVariableIdsOf:
    def test_maps_names_and_skips_uninterned(self):
        registry = make_registry(prefix="v", count=2)
        ids = variable_ids_of(["v0", "v1", "never-interned-xyz"])
        assert ids == frozenset(
            lookup_variable(name) for name in ("v0", "v1")
        )
        assert None not in ids

    def test_invalidation_report_merges(self):
        a = InvalidationReport(frozenset({1}), 2, 3)
        b = InvalidationReport(frozenset({4}), 1, 1)
        merged = a + b
        assert merged.variable_ids == frozenset({1, 4})
        assert merged.circuits_evicted == 3
        assert merged.memo_evicted == 4

    def test_invalidate_variables_routes_to_both_caches(self):
        registry = make_registry(prefix="w")
        engine = ConfidenceEngine(registry)
        circuits = CircuitCache()
        memo = DecompositionCache()
        cone_engine = ConfidenceEngine(registry, cache=memo)
        lineage = dnf(("w0", "w1"), ("w1", "w2"), ("w2", "w3"))
        circuits.put(lineage, engine.compile_circuit(lineage))
        cone_engine.compute(lineage)

        report = invalidate_variables(
            variable_ids_of(["w1"]), circuits=circuits, memo=memo
        )
        assert report.circuits_evicted == 1
        assert report.memo_evicted > 0
        assert circuits.get(lineage) is None


class TestRegistryMutation:
    def test_set_boolean_returns_old_distribution(self):
        registry = VariableRegistry()
        registry.add_boolean("t", 0.3)
        old = registry.set_boolean("t", 0.8)
        assert old[True] == pytest.approx(0.3)
        assert registry.probability("t", True) == pytest.approx(0.8)
        # The interned atom-probability fast path agrees.
        assert registry.set_boolean("t", 0.5)[True] == pytest.approx(0.8)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.0, 1.5])
    def test_set_boolean_rejects_degenerate_mass(self, bad):
        registry = VariableRegistry()
        registry.add_boolean("t", 0.3)
        with pytest.raises(ValueError):
            registry.set_boolean("t", bad)

    def test_set_distribution_swaps_support(self):
        registry = VariableRegistry()
        registry.add_variable("color", {"red": 0.5, "blue": 0.5})
        old = registry.set_distribution(
            "color", {"red": 0.2, "green": 0.8}
        )
        assert set(old) == {"red", "blue"}
        assert registry.probability("color", "green") == pytest.approx(0.8)
        with pytest.raises(KeyError):
            registry.probability("color", "blue")  # out of the new domain

    def test_remove_variable_clears_and_returns(self):
        registry = VariableRegistry()
        registry.add_boolean("gone", 0.4)
        old = registry.remove_variable("gone")
        assert old[True] == pytest.approx(0.4)
        assert "gone" not in registry
        with pytest.raises(KeyError):
            registry.remove_variable("gone")


class TestServingReadYourWrites:
    """Committed mutation → live-cache version bump → stale pins 409."""

    def test_commit_invalidates_expect_version_pins(self):
        registry = VariableRegistry()
        database = Database(registry)
        database.add(
            Relation.tuple_independent(
                "R", ["x"],
                [((value,), 0.3 + 0.1 * i)
                 for i, value in enumerate("abc")],
                registry,
            )
        )
        db = ProbDB(database, EngineConfig(compile_circuits=True))
        lineage = dnf((("R", 0),), (("R", 1),))
        db.confidence(lineage)  # compiles + caches the circuit
        engine = db.serving()
        client = ServingClient(engine)

        async def scenario():
            first = await client.evaluate(lineage, store="session")
            pinned = first["store_version"]
            assert pinned == f"cache:{db.circuits.version}"

            # Same pin, no mutation: still served.
            again = await client.evaluate(
                lineage, store="session", expect_version=pinned
            )
            assert again["value"] == first["value"]

            # An autocommitted mutation bumps the live-cache version...
            db.update("R", probability=0.9, where={"x": "a"})
            with pytest.raises(ServingError) as info:
                await client.evaluate(
                    lineage, store="session", expect_version=pinned
                )
            assert info.value.code == "stale-version"
            assert info.value.status == 409
            assert info.value.details["expected"] == pinned

            # ...and an unpinned request sees the new probabilities.
            fresh = await client.evaluate(lineage, store="session")
            assert fresh["store_version"] != pinned
            expected = db.confidence(lineage).probability
            assert fresh["value"] == pytest.approx(expected)
            await engine.close()

        asyncio.run(scenario())
        db.close()
