"""Property tests for the lineage compilation subsystem.

The contracts, exercised over the seeded generator shared with
``tests/test_parallel_differential.py``:

* **Evaluation bit-identity** — an exact circuit evaluated at the base
  probabilities reproduces the engine's exact compiled confidence
  (``exact_probability_compiled``) bit-for-bit, and the read-once rung
  bit-for-bit via ``EngineResult.circuit``; every exact path agrees
  with brute force to 1e-9.
* **Reusability** — evaluation under a new probability map equals the
  brute-force probability under a registry carrying those
  probabilities (no re-decomposition anywhere).
* **Gradients** — reverse-mode sensitivities match central finite
  differences at 1e-6 (the probability is multilinear, so central
  differences are exact up to roundoff) and an independent
  brute-force differentiation oracle.
* **Conditioning** — ``condition(x, a)`` equals the engine's
  confidence of the conditioned lineage ``Φ|_{x=a}``.
* **Partial circuits** — node-budgeted compiles stay sound at the base
  probabilities, under overrides (residual leaves touched by an
  override widen to [0, 1]), and under conditioning.
* **Session integration** — warm queries answer from the circuit cache
  with the engine skipped; ``explain()`` ranks influence by true
  gradients when circuits exist and says so.
"""

import random

import pytest

from repro import (
    Circuit,
    ConfidenceEngine,
    EngineConfig,
    ProbDB,
    compile_circuit,
)
from repro.circuits import CircuitCache
from repro.circuits.compiler import CircuitCompilationStats
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.exact import exact_probability_compiled
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry

from test_parallel_differential import make_group

#: (groups, cases per group) — the generated circuit corpus.
CIRCUIT_GROUPS = (6, 25)


def shifted_registry(tag, seed, registry):
    """A second registry over the same variable names with fresh
    probabilities, plus the override map that reproduces it."""
    rng = random.Random(seed * 7919 + 13)
    overrides = {}
    shifted = VariableRegistry()
    for name in registry.variables():
        prob = rng.uniform(0.05, 0.95)
        overrides[name] = prob
        shifted.add_boolean(name, prob)
    return shifted, overrides


class TestExactCircuitDifferential:
    @pytest.mark.parametrize("seed", range(CIRCUIT_GROUPS[0]))
    def test_evaluate_matches_engine_and_truth(self, seed):
        registry, dnfs = make_group("cxd", seed, CIRCUIT_GROUPS[1])
        engine = ConfidenceEngine(registry)
        shifted, overrides = shifted_registry("cxd", seed, registry)
        for index, dnf in enumerate(dnfs):
            circuit = compile_circuit(dnf, registry, cache=engine.cache)
            assert circuit.is_exact
            value = circuit.evaluate()
            truth = brute_force_probability(dnf, registry)
            assert abs(value - truth) <= 1e-9, (seed, index)
            if not dnf.is_false():
                # Same decomposition, same arithmetic: bit-identical to
                # the engine's exact compiled confidence.
                reference = exact_probability_compiled(dnf, registry)
                assert value == reference, (seed, index, value, reference)
            result = engine.compute(dnf)
            assert abs(value - result.probability) <= 1e-9, (seed, index)
            # Reuse under a new probability map: no re-decomposition,
            # same answer as a from-scratch computation over that map.
            warm = circuit.evaluate(overrides)
            cold = brute_force_probability(dnf, shifted)
            assert abs(warm - cold) <= 1e-9, (seed, index)

    def test_subcircuits_are_shared(self):
        # Shannon on x yields cofactors {ab, bc, d} and {ab, bc}: the
        # connected component {ab, bc} recurs and must be emitted once,
        # with the second occurrence folded into a shared reference.
        registry = VariableRegistry.from_boolean_probabilities(
            {name: 0.5 for name in ("cxs_x", "cxs_a", "cxs_b",
                                    "cxs_c", "cxs_d")}
        )
        dnf = DNF(
            (
                Clause({"cxs_x": True, "cxs_a": True, "cxs_b": True}),
                Clause({"cxs_x": True, "cxs_b": True, "cxs_c": True}),
                Clause({"cxs_x": False, "cxs_a": True, "cxs_b": True}),
                Clause({"cxs_x": False, "cxs_b": True, "cxs_c": True}),
                Clause({"cxs_x": True, "cxs_d": True}),
            )
        )
        stats = CircuitCompilationStats()
        circuit = compile_circuit(dnf, registry, stats=stats)
        assert stats.shared > 0
        assert abs(
            circuit.evaluate() - brute_force_probability(dnf, registry)
        ) <= 1e-9


class TestGradients:
    @pytest.mark.parametrize("seed", range(3))
    def test_gradients_match_central_finite_differences(self, seed):
        registry, dnfs = make_group("cgr", seed, 20)
        step = 1e-5
        for index, dnf in enumerate(dnfs):
            if not dnf.variables:
                continue
            circuit = compile_circuit(dnf, registry)
            gradients = circuit.gradients()
            for name in sorted(dnf.variables, key=repr)[:3]:
                base = registry.probability(name, True)
                up = circuit.evaluate({name: base + step})
                down = circuit.evaluate({name: base - step})
                finite = (up - down) / (2.0 * step)
                # A variable dropped by subsumption removal has no
                # input node: its gradient is 0 and absent from the map.
                gradient = gradients.get(name, 0.0)
                assert abs(finite - gradient) <= 1e-6, (
                    seed, index, name, finite, gradient,
                )

    def test_gradients_match_brute_force_oracle(self):
        registry, dnfs = make_group("cgo", 11, 8)
        step = 1e-5
        for dnf in dnfs:
            if not dnf.variables:
                continue
            circuit = compile_circuit(dnf, registry)
            gradients = circuit.gradients()
            name = sorted(dnf.variables, key=repr)[0]
            if name not in circuit.variables():
                continue  # dropped by subsumption: gradient is 0
            base = registry.probability(name, True)

            def oracle(prob):
                registry_shift = VariableRegistry()
                for other in registry.variables():
                    registry_shift.add_boolean(
                        other,
                        prob
                        if other == name
                        else registry.probability(other, True),
                    )
                return brute_force_probability(dnf, registry_shift)

            finite = (oracle(base + step) - oracle(base - step)) / (
                2.0 * step
            )
            assert abs(finite - gradients[name]) <= 1e-6

    def test_gradient_signs_make_sense(self):
        # P = x ∨ (¬x ∧ y): raising p(x) or p(y) raises P.
        registry = VariableRegistry.from_boolean_probabilities(
            {"cgs_x": 0.4, "cgs_y": 0.3}
        )
        dnf = DNF(
            (
                Clause({"cgs_x": True}),
                Clause({"cgs_x": False, "cgs_y": True}),
            )
        )
        gradients = compile_circuit(dnf, registry).gradients()
        assert gradients["cgs_x"] > 0
        assert gradients["cgs_y"] > 0


class TestConditioning:
    @pytest.mark.parametrize("seed", range(3))
    def test_condition_matches_engine_on_restricted_lineage(self, seed):
        registry, dnfs = make_group("ccd", seed, 20)
        engine = ConfidenceEngine(registry)
        for index, dnf in enumerate(dnfs):
            if not dnf.variables:
                continue
            circuit = compile_circuit(dnf, registry, cache=engine.cache)
            for value in (True, False):
                name = sorted(dnf.variables, key=repr)[0]
                conditioned = circuit.condition(name, value)
                restricted = dnf.restrict(name, value)
                expected = engine.compute(restricted).probability
                assert (
                    abs(conditioned.evaluate() - expected) <= 1e-9
                ), (seed, index, name, value)

    def test_chained_conditioning(self):
        registry, dnfs = make_group("ccc", 5, 10, variables=6)
        for dnf in dnfs:
            names = sorted(dnf.variables, key=repr)
            if len(names) < 2:
                continue
            circuit = compile_circuit(dnf, registry)
            chained = circuit.condition(names[0], True).condition(
                names[1], False
            )
            restricted = dnf.restrict(names[0], True).restrict(
                names[1], False
            )
            truth = brute_force_probability(restricted, registry)
            assert abs(chained.evaluate() - truth) <= 1e-9
            # Clamps surface in `conditioned` whenever the chosen atom
            # has an input node; either way nothing else may appear.
            assert set(chained.conditioned.items()) <= {
                (names[0], True), (names[1], False),
            }

    def test_condition_rejects_unknown_domain_value(self):
        registry = VariableRegistry.from_boolean_probabilities(
            {"ccx_x": 0.5}
        )
        circuit = compile_circuit(
            DNF((Clause({"ccx_x": True}),)), registry
        )
        with pytest.raises(KeyError):
            circuit.condition("ccx_x", "no-such-value")


class TestPartialCircuits:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("budget", [2, 6, 16])
    def test_bounds_sound_everywhere(self, seed, budget):
        registry, dnfs = make_group("cpb", seed, 15)
        shifted, overrides = shifted_registry("cpb", seed, registry)
        for index, dnf in enumerate(dnfs):
            circuit = compile_circuit(dnf, registry, max_nodes=budget)
            lower, upper = circuit.evaluate_bounds()
            truth = brute_force_probability(dnf, registry)
            assert lower - 1e-9 <= truth <= upper + 1e-9, (
                seed, budget, index,
            )
            lower, upper = circuit.evaluate_bounds(overrides)
            truth = brute_force_probability(dnf, shifted)
            assert lower - 1e-9 <= truth <= upper + 1e-9, (
                seed, budget, index,
            )
            if dnf.variables:
                name = sorted(dnf.variables, key=repr)[-1]
                lower, upper = circuit.condition(
                    name, True
                ).evaluate_bounds()
                truth = brute_force_probability(
                    dnf.restrict(name, True), registry
                )
                assert lower - 1e-9 <= truth <= upper + 1e-9, (
                    seed, budget, index,
                )

    def test_residual_leaves_widen_only_when_touched(self):
        registry = VariableRegistry.from_boolean_probabilities(
            {
                "cpw_a": 0.3, "cpw_b": 0.6, "cpw_c": 0.4,
                "cpw_d": 0.7, "cpw_e": 0.5,
            }
        )
        # Two independent components: {a,b}-lineage and {c,d,e}-lineage;
        # a tiny budget leaves at least one as a residual.
        dnf = DNF(
            (
                Clause({"cpw_a": True, "cpw_b": True}),
                Clause({"cpw_a": True, "cpw_b": False}),
                Clause({"cpw_c": True, "cpw_d": True}),
                Clause({"cpw_d": True, "cpw_e": True}),
                Clause({"cpw_c": True, "cpw_e": False}),
            )
        )
        circuit = compile_circuit(dnf, registry, max_nodes=1)
        assert not circuit.is_exact
        base_lower, base_upper = circuit.evaluate_bounds()
        residual_vars = set()
        for _low, _high, vids in circuit.residuals:
            residual_vars.update(vids)
        from repro.core.variables import variable_name

        # An override on a variable OUTSIDE every residual keeps the
        # stored leaf bounds valid: overriding it with its own base
        # probability must reproduce the base interval bit-for-bit.
        compiled_only = [
            variable_name(vid)
            for vid in circuit.var_atoms
            if vid not in residual_vars
        ]
        assert compiled_only, "budget of 1 should still compile atoms"
        outside = compiled_only[0]
        same = circuit.evaluate_bounds(
            {outside: registry.probability(outside, True)}
        )
        assert same == (base_lower, base_upper)

        # An override TOUCHING a residual voids its stored bounds; the
        # leaf widens to [0, 1] and the interval stays sound for the
        # overridden probability map.
        inside = variable_name(sorted(residual_vars)[0])
        lower, upper = circuit.evaluate_bounds({inside: 0.99})
        assert upper - lower >= (base_upper - base_lower) - 1e-12
        shifted = VariableRegistry()
        for name in registry.variables():
            shifted.add_boolean(
                name, 0.99 if name == inside else registry.probability(
                    name, True
                )
            )
        truth = brute_force_probability(dnf, shifted)
        assert lower - 1e-9 <= truth <= upper + 1e-9


class TestEngineIntegration:
    def test_read_once_rung_attaches_bit_identical_circuit(self):
        registry = VariableRegistry.from_boolean_probabilities(
            {"cei_x": 0.3, "cei_y": 0.2, "cei_z": 0.7, "cei_v": 0.8}
        )
        dnf = DNF.from_positive_clauses(
            [["cei_x", "cei_y"], ["cei_x", "cei_z"], ["cei_v"]]
        )
        engine = ConfidenceEngine(
            registry, EngineConfig(compile_circuits=True)
        )
        result = engine.compute(dnf)
        assert result.strategy == "read-once"
        assert isinstance(result.circuit, Circuit)
        assert result.circuit.is_exact
        assert result.circuit.evaluate() == result.probability

    @pytest.mark.parametrize("seed", range(2))
    def test_exact_dtree_rung_attaches_exact_circuit(self, seed):
        registry, dnfs = make_group("cei", seed, 15)
        engine = ConfidenceEngine(
            registry,
            EngineConfig(compile_circuits=True, try_read_once=False),
        )
        for result, dnf in zip(engine.compute_many(dnfs), dnfs):
            assert result.circuit is not None
            assert result.circuit.is_exact
            assert (
                abs(result.circuit.evaluate() - result.probability)
                <= 1e-9
            )

    def test_budgeted_run_attaches_partial_sound_circuit(self):
        # Hard-pattern bipartite lineage (R(X), S(X,Y), T(Y) over a
        # 5×5 grid): far too large for the step-1 budget, so the
        # attached circuit must be partial — and still sound.
        registry = VariableRegistry()
        grid = 5
        for index in range(grid):
            registry.add_boolean(f"cep_r{index}", 0.3)
            registry.add_boolean(f"cep_t{index}", 0.6)
        for left in range(grid):
            for right in range(grid):
                registry.add_boolean(f"cep_s{left}{right}", 0.4)
        dnf = DNF(
            Clause(
                {
                    f"cep_r{left}": True,
                    f"cep_s{left}{right}": True,
                    f"cep_t{right}": True,
                }
            )
            for left in range(grid)
            for right in range(grid)
        )
        engine = ConfidenceEngine(
            registry,
            EngineConfig(
                compile_circuits=True,
                try_read_once=False,
                epsilon=0.05,
                error_kind="relative",
                max_steps=1,
                mc_fallback=False,
            ),
        )
        result = engine.compute(dnf)
        circuit = result.circuit
        assert circuit is not None
        assert not circuit.is_exact, "step budget of 1 must truncate"
        lower, upper = circuit.evaluate_bounds()
        # Engine bounds and circuit bounds are both sound, so they
        # must overlap; the exact value is out of brute-force reach.
        assert max(lower, result.lower) <= min(upper, result.upper) + 1e-9

    def test_off_by_default(self):
        registry, dnfs = make_group("ceo", 4, 3)
        engine = ConfidenceEngine(registry)
        for result in engine.compute_many(dnfs):
            assert result.circuit is None

    def test_sharded_batch_compiles_on_the_coordinator(self):
        registry, dnfs = make_group("cew", 6, 6)
        engine = ConfidenceEngine(
            registry,
            EngineConfig(compile_circuits=True, workers=2,
                         executor_kind="thread"),
        )
        with engine:
            for dnf, result in zip(dnfs, engine.compute_many(dnfs)):
                assert result.circuit is not None
                lower, upper = result.circuit.evaluate_bounds()
                truth = brute_force_probability(dnf, registry)
                assert lower - 1e-9 <= truth <= upper + 1e-9

    def test_per_call_override_forces_compilation(self):
        registry, dnfs = make_group("cof", 7, 2)
        engine = ConfidenceEngine(registry)  # circuits off by default
        result = engine.compute(dnfs[0], compile_circuits=True)
        assert result.circuit is not None
        assert engine.compute(dnfs[1]).circuit is None


class TestOverrideValidation:
    def _circuit(self):
        registry = VariableRegistry()
        registry.add_variable(
            "ovv_u", {"a": 0.5, "b": 0.2, "c": 0.3}
        )
        registry.add_boolean("ovv_x", 0.4)
        dnf = DNF(
            (
                Clause({"ovv_u": "a", "ovv_x": True}),
                Clause({"ovv_u": "b"}),
            )
        )
        return registry, compile_circuit(dnf, registry)

    def test_mapping_override_must_sum_to_one(self):
        _registry, circuit = self._circuit()
        with pytest.raises(ValueError, match="sums to"):
            circuit.evaluate({"ovv_u": {"a": 0.9, "b": 0.9, "c": 0.9}})

    def test_mapping_override_must_cover_the_domain(self):
        _registry, circuit = self._circuit()
        with pytest.raises(ValueError, match="domain"):
            circuit.evaluate({"ovv_u": {"a": 0.6, "b": 0.4}})
        with pytest.raises(ValueError, match="domain"):
            circuit.evaluate(
                {"ovv_u": {"a": 0.5, "b": 0.2, "c": 0.2, "d": 0.1}}
            )

    def test_valid_mapping_override_is_accepted(self):
        registry, circuit = self._circuit()
        value = circuit.evaluate(
            {"ovv_u": {"a": 0.1, "b": 0.7, "c": 0.2}}
        )
        shifted = VariableRegistry()
        shifted.add_variable("ovv_u", {"a": 0.1, "b": 0.7, "c": 0.2})
        shifted.add_boolean("ovv_x", 0.4)
        dnf = DNF(
            (
                Clause({"ovv_u": "a", "ovv_x": True}),
                Clause({"ovv_u": "b"}),
            )
        )
        assert abs(value - brute_force_probability(dnf, shifted)) <= 1e-9

    def test_degenerate_mapping_override_is_conditioning(self):
        _registry, circuit = self._circuit()
        clamped = circuit.evaluate(
            {"ovv_u": {"a": 0.0, "b": 1.0, "c": 0.0}}
        )
        assert clamped == circuit.condition("ovv_u", "b").evaluate()

    def test_boolean_shorthand_out_of_range_rejected(self):
        _registry, circuit = self._circuit()
        with pytest.raises(ValueError, match="outside"):
            circuit.evaluate({"ovv_x": 1.5})

    def test_unknown_variable_override_is_rejected(self):
        _registry, circuit = self._circuit()
        with pytest.raises(KeyError, match="unknown"):
            circuit.evaluate({"ovv_x_typo": 0.5})

    def test_override_on_registry_variable_outside_circuit_is_noop(self):
        registry, circuit = self._circuit()
        registry.add_boolean("ovv_elsewhere", 0.5)
        assert circuit.evaluate({"ovv_elsewhere": 0.9}) == (
            circuit.evaluate()
        )

    def test_invalid_override_rejected_even_for_residual_only_vars(self):
        registry = VariableRegistry.from_boolean_probabilities(
            {f"ovr_v{index}": 0.5 for index in range(5)}
        )
        dnf = DNF(
            Clause(
                {
                    f"ovr_v{index}": True,
                    f"ovr_v{(index + 1) % 5}": True,
                }
            )
            for index in range(5)
        )
        partial = compile_circuit(dnf, registry, max_nodes=1)
        assert not partial.is_exact
        with pytest.raises(ValueError, match="outside"):
            partial.evaluate_bounds({"ovr_v0": 1.5})
        with pytest.raises(ValueError, match="domain"):
            partial.evaluate_bounds({"ovr_v0": {"bogus": 1.0}})

    def test_float_shorthand_rejected_for_non_boolean_variable(self):
        _registry, circuit = self._circuit()
        with pytest.raises(ValueError, match="not Boolean"):
            circuit.evaluate({"ovv_u": 0.99})

    def test_condition_rejects_unknown_variable(self):
        _registry, circuit = self._circuit()
        with pytest.raises(KeyError, match="unknown"):
            circuit.condition("ovv_u_typo", "a")

    def test_conditioned_map_survives_missing_atom_polarity(self):
        # The circuit holds only the x=True atom; clamping x to False
        # pins nothing to 1.0 but must still be reported.
        registry = VariableRegistry.from_boolean_probabilities(
            {"ovp_x": 0.4, "ovp_y": 0.6}
        )
        circuit = compile_circuit(
            DNF((Clause({"ovp_x": True, "ovp_y": True}),)), registry
        )
        conditioned = circuit.condition("ovp_x", False)
        assert conditioned.conditioned == {"ovp_x": False}
        assert conditioned.evaluate() == 0.0


class TestWhatIfTieBreak:
    def test_mixed_type_answer_values_do_not_crash_on_ties(self):
        registry = VariableRegistry.from_boolean_probabilities(
            {"wtb_x": 0.5, "wtb_y": 0.5}
        )
        pairs = [
            ((1,), compile_circuit(
                DNF((Clause({"wtb_x": True}),)), registry)),
            (("a",), compile_circuit(
                DNF((Clause({"wtb_y": True}),)), registry)),
        ]
        from repro import CompiledResult

        ranked = CompiledResult(pairs).what_if_top_k(2)
        assert {row.values for row in ranked} == {(1,), ("a",)}


class TestBatchedCompilation:
    def test_budgeted_batch_attaches_circuits_once_at_the_end(self):
        registry, dnfs = make_group("cbb", 41, 8)
        engine = ConfidenceEngine(
            registry,
            EngineConfig(
                compile_circuits=True,
                try_read_once=False,
                max_total_steps=40,
                initial_steps=1,
            ),
        )
        results = engine.compute_many(dnfs)
        for dnf, result in zip(dnfs, results):
            assert result.circuit is not None
            lower, upper = result.circuit.evaluate_bounds()
            truth = brute_force_probability(dnf, registry)
            assert lower - 1e-9 <= truth <= upper + 1e-9


class TestSessionCircuitCache:
    def _session(self, seed=21, cases=8):
        registry, dnfs = make_group("csc", seed, cases)
        session = ProbDB.from_registry(
            registry, EngineConfig(compile_circuits=True)
        )
        pairs = [((index,), dnf) for index, dnf in enumerate(dnfs)]
        return registry, session, pairs

    def test_warm_query_skips_the_engine(self):
        _registry, session, pairs = self._session()
        first = session.lineage(pairs).confidences()
        assert all(
            result.strategy != "circuit" for _values, result in first
        )
        warm = session.lineage(pairs).confidences()
        assert all(
            result.strategy == "circuit" for _values, result in warm
        )
        for (_v1, cold), (_v2, hot) in zip(first, warm):
            assert abs(cold.probability - hot.probability) <= 1e-9
            assert hot.converged
        stats = session.circuit_cache_stats()
        assert stats["hits"] >= len(pairs)

    def test_compile_populates_cache_for_warm_confidences(self):
        _registry, session, pairs = self._session(seed=22)
        compiled = session.lineage(pairs).compile()
        assert len(compiled) == len(pairs)
        warm = session.lineage(pairs).confidences()
        assert all(
            result.strategy == "circuit" for _values, result in warm
        )

    def test_what_if_top_k_matches_engine_on_shifted_registry(self):
        registry, session, pairs = self._session(seed=23, cases=10)
        compiled = session.lineage(pairs).compile()
        shifted, overrides = shifted_registry("csc", 23, registry)
        ranked = compiled.what_if_top_k(3, overrides)
        expected = sorted(
            (
                brute_force_probability(dnf, shifted)
                for _values, dnf in pairs
            ),
            reverse=True,
        )
        # Compare by probability: duplicate lineages (the generator may
        # repeat a DNF) make tie order among answers arbitrary.
        for row, expected_probability in zip(ranked, expected[:3]):
            assert abs(row.midpoint() - expected_probability) <= 1e-9

    def test_compiled_result_condition_and_sensitivities(self):
        registry, session, pairs = self._session(seed=24, cases=6)
        compiled = session.lineage(pairs).compile()
        name = next(iter(pairs[0][1].variables))
        conditioned = compiled.condition(name, True)
        for (values, dnf), (_values, probability) in zip(
            pairs, conditioned.evaluate()
        ):
            truth = brute_force_probability(
                dnf.restrict(name, True), registry
            )
            assert abs(probability - truth) <= 1e-9
        for (values, dnf), (_values, grads) in zip(
            pairs, compiled.sensitivities()
        ):
            for variable, gradient in grads.items():
                assert isinstance(gradient, float)

    def test_session_circuit_helper_is_cached(self):
        _registry, session, pairs = self._session(seed=25, cases=2)
        first = session.circuit(pairs[0][1])
        again = session.circuit(pairs[0][1])
        assert first is again

    def test_probdb_confidence_uses_the_circuit_cache(self):
        _registry, session, pairs = self._session(seed=26, cases=1)
        dnf = pairs[0][1]
        cold = session.confidence(dnf)
        assert cold.strategy != "circuit"
        warm = session.confidence(dnf)
        assert warm.strategy == "circuit"
        assert warm.converged
        assert abs(warm.probability - cold.probability) <= 1e-9


class TestExplainInfluence:
    def test_gradient_ranking_when_circuits_available(self):
        registry, dnfs = make_group("cxi", 31, 4)
        session = ProbDB.from_registry(
            registry, EngineConfig(compile_circuits=True)
        )
        pairs = [((index,), dnf) for index, dnf in enumerate(dnfs)]
        result = session.lineage(pairs).confidences()
        from repro.db.explain import rank_influence

        for (_values, outcome), (_v, dnf) in zip(result, pairs):
            report = rank_influence(
                dnf, registry, circuit=outcome.circuit
            )
            assert report.method == "circuit-gradient"
            # The ranking is by true derivative: cross-check the top
            # entry against the circuit's own gradient map.
            gradients = outcome.circuit.gradients()
            if report.entries:
                top_variable, top_score = report.entries[0]
                assert top_score == gradients[top_variable]
                assert abs(top_score) == max(
                    abs(score) for score in gradients.values()
                )

    def test_non_boolean_variables_ranked_by_strongest_value(self):
        from repro.db.explain import rank_influence

        registry = VariableRegistry()
        registry.add_variable(
            "cxb_u", {"a": 0.2, "b": 0.3, "c": 0.5}
        )
        registry.add_boolean("cxb_x", 0.4)
        dnf = DNF(
            (
                Clause({"cxb_u": "a", "cxb_x": True}),
                Clause({"cxb_u": "b"}),
            )
        )
        circuit = compile_circuit(dnf, registry)
        report = rank_influence(dnf, registry, circuit=circuit)
        assert report.method == "circuit-gradient"
        names = {name for name, _score in report.entries}
        # The multi-valued (BID-style) variable must not be dropped.
        assert "cxb_u" in names
        assert "cxb_x" in names

    def test_heuristic_fallback_reports_itself(self):
        registry, dnfs = make_group("cxh", 32, 2)
        from repro.db.explain import rank_influence

        report = rank_influence(dnfs[0], registry, circuit=None)
        assert report.method == "frequency-heuristic"
        assert report.entries
        assert "no compiled circuit" in report.note


class TestCircuitCacheThreadSafety:
    """Regression: ``get`` must read the entry dict under the lock.

    The unlocked read raced ``put``'s clear-on-overflow eviction — a
    ``get`` could count a hit for an entry wiped a moment earlier, so
    ``hits + misses`` drifted from the number of lookups and a caller
    pairing ``get()`` with ``version`` could observe a version older
    than the miss it just caused.
    """

    def test_threaded_get_put_counters_stay_exact(self):
        import threading

        registry = VariableRegistry()
        for index in range(8):
            registry.add_boolean(f"t{index}", 0.2 + 0.05 * index)
        engine = ConfidenceEngine(registry)
        lineages = [
            DNF([Clause({f"t{i}": True, f"t{(i + 1) % 8}": True})])
            for i in range(8)
        ]
        circuits = [engine.compile_circuit(dnf) for dnf in lineages]
        # Tiny cap: put() evicts wholesale constantly, so reads race
        # eviction as hard as possible.
        cache = CircuitCache(max_entries=2)
        rounds = 400
        threads = 6
        barrier = threading.Barrier(threads)
        errors = []

        def worker(seed):
            rng = random.Random(seed)
            barrier.wait()
            try:
                for _ in range(rounds):
                    index = rng.randrange(len(lineages))
                    if rng.random() < 0.5:
                        cache.put(
                            lineages[index],
                            circuits[index],
                            exact_only=False,
                        )
                    else:
                        found = cache.get(lineages[index])
                        if found is not None:
                            assert found is circuits[index]
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        pool = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert errors == []
        gets = sum(
            1
            for seed in range(threads)
            for draw in [random.Random(seed)]
            for _ in range(rounds)
            if not (draw.randrange(len(lineages)), draw.random())[1] < 0.5
        )
        # Replaying the per-thread RNGs reproduces the exact number of
        # get() calls; with the locked read, every one is accounted as
        # exactly one hit or one miss — no lost updates.
        assert cache.hits + cache.misses == gets

    def test_eviction_is_wholesale_and_consistent(self):
        registry = VariableRegistry()
        registry.add_boolean("a", 0.3)
        registry.add_boolean("b", 0.6)
        engine = ConfidenceEngine(registry)
        first = DNF([Clause({"a": True})])
        second = DNF([Clause({"b": True})])
        third = DNF([Clause({"a": True, "b": True})])
        cache = CircuitCache(max_entries=2)
        for lineage in (first, second, third):
            cache.put(
                lineage, engine.compile_circuit(lineage), exact_only=False
            )
        # Inserting the third wiped the first two wholesale.
        assert cache.get(third) is not None
        assert cache.get(first) is None
        assert cache.get(second) is None
