"""Tests for probabilistic graphs and motif queries."""

import itertools

import networkx as nx
import pytest

from repro.core.exact import exact_probability
from repro.core.semantics import brute_force_probability
from repro.datasets.graphs import (
    GRAPH_QUERIES,
    ProbabilisticGraph,
    graph_from_edges,
    path2_dnf,
    path3_dnf,
    random_graph,
    separation2_dnf,
    triangle_dnf,
)


@pytest.fixture
def small_graph():
    # 4-clique with p = 0.5 on every edge.
    return random_graph(4, 0.5)


class TestConstruction:
    def test_random_graph_is_clique(self):
        graph = random_graph(5, 0.3)
        assert graph.edge_count() == 10
        assert all(p == 0.3 for p in graph.edges.values())

    def test_edge_variables_registered(self, small_graph):
        for edge in small_graph.edges:
            assert ("E", edge) in small_graph.registry

    def test_from_edges(self):
        graph = graph_from_edges([(0, 1, 0.5), (2, 1, 0.7)])
        assert graph.edge_count() == 2
        assert graph.has_edge(1, 2)  # normalised

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            graph_from_edges([(0, 1, 0.5), (1, 0, 0.7)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            graph_from_edges([(1, 1, 0.5)])

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            random_graph(3, 0.0)
        with pytest.raises(ValueError):
            random_graph(1, 0.5)

    def test_neighbours(self):
        graph = graph_from_edges([(0, 1, 0.5), (1, 2, 0.5)])
        assert graph.neighbours(1) == [0, 2]

    def test_to_database(self, small_graph):
        db = small_graph.to_database()
        assert len(db["E"]) == 6
        assert db.variable_origins()


def world_graphs(graph):
    """Enumerate (deterministic subgraph, probability)."""
    edges = sorted(graph.edges)
    for present in itertools.product([False, True], repeat=len(edges)):
        chosen = [e for e, keep in zip(edges, present) if keep]
        probability = 1.0
        for edge, keep in zip(edges, present):
            p = graph.edges[edge]
            probability *= p if keep else (1 - p)
        g = nx.Graph()
        g.add_nodes_from(graph.nodes)
        g.add_edges_from(chosen)
        yield g, probability


def nx_motif_probability(graph, predicate):
    """Ground-truth probability that a world satisfies `predicate`."""
    return sum(
        probability
        for g, probability in world_graphs(graph)
        if predicate(g)
    )


class TestMotifsAgainstNetworkx:
    def test_triangle(self, small_graph):
        dnf = triangle_dnf(small_graph)
        truth = nx_motif_probability(
            small_graph,
            lambda g: any(nx.triangles(g).values()),
        )
        assert brute_force_probability(
            dnf, small_graph.registry
        ) == pytest.approx(truth)

    def test_path2(self, small_graph):
        def has_path2(g):
            return any(d >= 2 for _n, d in g.degree())

        dnf = path2_dnf(small_graph)
        truth = nx_motif_probability(small_graph, has_path2)
        assert brute_force_probability(
            dnf, small_graph.registry
        ) == pytest.approx(truth)

    def test_path3(self, small_graph):
        def has_path3(g):
            # A simple path on 4 distinct vertices.
            for u, v in g.edges():
                for a in g.neighbors(u):
                    if a in (u, v):
                        continue
                    for d in g.neighbors(v):
                        if d in (a, u, v):
                            continue
                        return True
            return False

        dnf = path3_dnf(small_graph)
        truth = nx_motif_probability(small_graph, has_path3)
        assert brute_force_probability(
            dnf, small_graph.registry
        ) == pytest.approx(truth)

    def test_separation2(self, small_graph):
        source, target = 0, 3

        def within_two(g):
            try:
                return nx.shortest_path_length(g, source, target) <= 2
            except nx.NetworkXNoPath:
                return False

        dnf = separation2_dnf(small_graph, source, target)
        truth = nx_motif_probability(small_graph, within_two)
        assert brute_force_probability(
            dnf, small_graph.registry
        ) == pytest.approx(truth)


class TestMotifsOnSparseGraphs:
    def test_triangle_only_over_existing_edges(self):
        # Path graph has no triangle: the DNF must be empty (false).
        graph = graph_from_edges(
            [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)]
        )
        assert triangle_dnf(graph).is_false()

    def test_separation_needs_distinct_nodes(self):
        graph = graph_from_edges([(0, 1, 0.5)])
        with pytest.raises(ValueError):
            separation2_dnf(graph, 1, 1)

    def test_clause_counts_on_clique(self):
        # The paper: a triangle query on an n-clique yields C(n,3) clauses.
        n = 7
        graph = random_graph(n, 0.5)
        assert len(triangle_dnf(graph)) == (
            n * (n - 1) * (n - 2) // 6
        )
        # path2: 3 * C(n,3) middles-choices... each unordered triple gives
        # 3 paths (choice of middle).
        assert len(path2_dnf(graph)) == 3 * (n * (n - 1) * (n - 2) // 6)

    def test_exact_probability_via_dtree(self):
        graph = random_graph(5, 0.3)
        dnf = triangle_dnf(graph)
        assert exact_probability(dnf, graph.registry) == pytest.approx(
            brute_force_probability(dnf, graph.registry)
        )

    def test_graph_queries_registry(self):
        graph = random_graph(5, 0.4)
        for name, generator in GRAPH_QUERIES.items():
            dnf = generator(graph)
            assert not dnf.is_false(), name


class TestEngineConsistency:
    def test_triangle_via_self_join_matches_enumerator(self):
        from repro.db.cq import ConjunctiveQuery, Inequality, SubGoal, Var

        graph = random_graph(5, 0.4)
        db = graph.to_database()
        x, y, z = Var("X"), Var("Y"), Var("Z")
        query = ConjunctiveQuery(
            [],
            [
                SubGoal("E", [x, y]),
                SubGoal("E", [y, z]),
                SubGoal("E", [x, z]),
            ],
            [Inequality(x, "<", y), Inequality(y, "<", z)],
        )
        from repro.db.engine import evaluate

        answers = evaluate(query, db)
        assert len(answers) == 1
        engine_dnf = answers[0].lineage.to_dnf()
        assert engine_dnf == triangle_dnf(graph)
