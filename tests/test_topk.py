"""Tests for bounds-based top-k answer ranking.

Exercises the deprecated ``top_k_answers`` free-function shim on purpose
(the session path is covered by ``tests/test_session.py``), so
DeprecationWarnings are expected here even under ``-W error``.
"""

import random

import pytest

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry
from repro.db.topk import RankedAnswer, top_k_answers


def make_answers(seed, answer_count=6, variables=10):
    rng = random.Random(seed)
    reg = VariableRegistry.from_boolean_probabilities(
        {f"v{i}": rng.uniform(0.1, 0.9) for i in range(variables)}
    )
    answers = []
    for index in range(answer_count):
        clauses = [
            Clause(
                {
                    f"v{rng.randrange(variables)}": rng.random() < 0.7
                    for _ in range(rng.randint(1, 3))
                }
            )
            for _ in range(rng.randint(1, 5))
        ]
        answers.append(((index,), DNF(clauses)))
    return answers, reg


class TestRanking:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_exact_ranking(self, k):
        for seed in range(10):
            answers, reg = make_answers(seed)
            truth = {
                values: brute_force_probability(dnf, reg)
                for values, dnf in answers
            }
            expected = sorted(truth, key=truth.get, reverse=True)[:k]
            ranked = top_k_answers(answers, reg, k)
            assert len(ranked) == k
            got = [r.values for r in ranked]
            # Ties (equal probabilities) permit any order among the tied;
            # compare probability multisets instead of identities.
            assert sorted(
                round(truth[v], 12) for v in got
            ) == sorted(round(truth[v], 12) for v in expected)

    def test_intervals_are_sound(self):
        answers, reg = make_answers(3)
        ranked = top_k_answers(answers, reg, 3)
        truth = {
            values: brute_force_probability(dnf, reg)
            for values, dnf in answers
        }
        for item in ranked:
            assert item.lower - 1e-9 <= truth[item.values]
            assert truth[item.values] <= item.upper + 1e-9

    def test_k_larger_than_input(self):
        answers, reg = make_answers(5, answer_count=3)
        ranked = top_k_answers(answers, reg, 10)
        assert len(ranked) == 3
        # Descending by upper bound.
        uppers = [r.upper for r in ranked]
        assert uppers == sorted(uppers, reverse=True)

    def test_invalid_k(self):
        answers, reg = make_answers(1)
        with pytest.raises(ValueError):
            top_k_answers(answers, reg, 0)

    def test_budget_cap_returns_best_effort(self):
        answers, reg = make_answers(7, answer_count=8, variables=14)
        ranked = top_k_answers(
            answers, reg, 2, initial_steps=1, max_total_steps=4
        )
        assert len(ranked) == 2
        for item in ranked:
            assert 0.0 <= item.lower <= item.upper <= 1.0

    def test_separation_certified_when_converged(self):
        # Clearly separated answers: one near-certain, one tiny.
        reg = VariableRegistry.from_boolean_probabilities(
            {"big": 0.95, "small": 0.01}
        )
        answers = [
            (("hi",), DNF.from_sets([{"big": True}])),
            (("lo",), DNF.from_sets([{"small": True}])),
        ]
        ranked = top_k_answers(answers, reg, 1)
        assert ranked[0].values == ("hi",)
        assert ranked[0].lower > 0.9

    def test_repr(self):
        item = RankedAnswer((1,), 0.25, 0.5, 3)
        assert "RankedAnswer" in repr(item)

    def test_saves_work_versus_exact(self):
        """With one dominant answer, ranking should certify before
        computing every probability exactly."""
        rng = random.Random(11)
        reg = VariableRegistry.from_boolean_probabilities(
            {f"v{i}": rng.uniform(0.4, 0.6) for i in range(12)}
            | {"sure": 0.99}
        )
        hard_clauses = [
            Clause(
                {
                    f"v{rng.randrange(12)}": rng.random() < 0.5
                    for _ in range(2)
                }
            )
            for _ in range(10)
        ]
        answers = [
            (("sure",), DNF.from_sets([{"sure": True}])),
            (("hard",), DNF(hard_clauses)),
        ]
        ranked = top_k_answers(answers, reg, 1, initial_steps=2)
        assert ranked[0].values == ("sure",)
