"""Unit tests for the Fig. 3 `Independent` bounds heuristic."""

import random

import pytest

from repro.core.bounds import bucket_partition, independent_bounds
from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry


@pytest.fixture
def example_5_2_registry():
    return VariableRegistry.from_boolean_probabilities(
        {"x": 0.3, "y": 0.2, "z": 0.7, "v": 0.8}
    )


@pytest.fixture
def example_5_2_dnf():
    # Φ = (x∧y) ∨ (x∧z) ∨ v
    return DNF.from_sets(
        [{"x": True, "y": True}, {"x": True, "z": True}, {"v": True}]
    )


class TestExample52:
    """The worked numbers of Example 5.2 of the paper."""

    def test_unsorted_partitioning(self, example_5_2_dnf, example_5_2_registry):
        # Without the probability sort the paper obtains B1 = c1 ∨ c3,
        # B2 = c2 with bounds [0.812, 1.0] — our first-fit over the
        # deterministic clause order reproduces exactly that.
        lower, upper = independent_bounds(
            example_5_2_dnf, example_5_2_registry, sort_by_probability=False
        )
        assert lower == pytest.approx(0.812)
        assert upper == pytest.approx(1.0)

    def test_sorted_partitioning_lower_bound(
        self, example_5_2_dnf, example_5_2_registry
    ):
        # Sorting descending by marginal probability yields B1 = c3 ∨ c2
        # with P(B1) = 1-(1-0.8)(1-0.21) = 0.842 (the paper's improved
        # lower bound).  NOTE: the paper's Example 5.2 then states the
        # upper bound 0.848, which is inconsistent with its own Fig. 3
        # formula (0.842 + P(B2) = 0.842 + 0.06 = 0.902); we follow the
        # algorithm, not the typo.
        lower, upper = independent_bounds(
            example_5_2_dnf, example_5_2_registry, sort_by_probability=True
        )
        assert lower == pytest.approx(0.842)
        assert upper == pytest.approx(0.902)

    def test_exact_probability_in_bounds(
        self, example_5_2_dnf, example_5_2_registry
    ):
        truth = brute_force_probability(
            example_5_2_dnf, example_5_2_registry
        )
        assert truth == pytest.approx(0.8456)
        for sort in (True, False):
            lower, upper = independent_bounds(
                example_5_2_dnf,
                example_5_2_registry,
                sort_by_probability=sort,
            )
            assert lower <= truth <= upper

    def test_read_once_extension_gives_exact_bounds(
        self, example_5_2_dnf, example_5_2_registry
    ):
        # Remark 5.3: Φ factors as x∧(y∨z) ∨ v, one occurrence form, so a
        # read-once bucket holds the whole DNF and both bounds are exact.
        lower, upper = independent_bounds(
            example_5_2_dnf,
            example_5_2_registry,
            allow_read_once_buckets=True,
        )
        assert lower == pytest.approx(0.8456)
        assert upper == pytest.approx(0.8456)


class TestBucketPartition:
    def test_buckets_pairwise_independent(self, example_5_2_registry):
        dnf = DNF.from_sets(
            [
                {"x": True, "y": True},
                {"x": True, "z": True},
                {"v": True},
                {"y": False},
            ]
        )
        partition = bucket_partition(dnf, example_5_2_registry)
        for bucket in partition.buckets:
            for i in range(len(bucket)):
                for j in range(i + 1, len(bucket)):
                    assert bucket[i].independent_of(bucket[j])

    def test_all_clauses_allocated(self, example_5_2_registry):
        dnf = DNF.from_sets(
            [{"x": True}, {"y": True}, {"x": False, "z": True}]
        )
        partition = bucket_partition(dnf, example_5_2_registry)
        allocated = [
            clause for bucket in partition.buckets for clause in bucket
        ]
        assert sorted(map(repr, allocated)) == sorted(
            map(repr, dnf.clauses)
        )

    def test_single_bucket_is_exact(self, example_5_2_registry):
        # Pairwise independent clauses land in one bucket: point bounds.
        dnf = DNF.from_sets([{"x": True}, {"y": True}, {"z": True}])
        lower, upper = independent_bounds(dnf, example_5_2_registry)
        truth = brute_force_probability(dnf, example_5_2_registry)
        assert lower == pytest.approx(truth)
        assert upper == pytest.approx(truth)

    def test_bucket_probability_formula(self, example_5_2_registry):
        dnf = DNF.from_sets([{"x": True}, {"y": True}])
        partition = bucket_partition(dnf, example_5_2_registry)
        assert len(partition.buckets) == 1
        assert partition.probabilities[0] == pytest.approx(
            1 - (1 - 0.3) * (1 - 0.2)
        )


class TestSoundness:
    """Prop. 5.1 on random inputs: L ≤ P(Φ) ≤ U in every configuration."""

    @pytest.mark.parametrize("sort", [True, False])
    @pytest.mark.parametrize("read_once", [True, False])
    def test_bounds_contain_truth(self, sort, read_once):
        for trial in range(40):
            rng = random.Random(trial)
            reg = VariableRegistry.from_boolean_probabilities(
                {f"v{i}": rng.uniform(0.05, 0.95) for i in range(7)}
            )
            clauses = []
            for _ in range(rng.randint(1, 7)):
                size = rng.randint(1, 3)
                clauses.append(
                    Clause(
                        {
                            f"v{rng.randrange(7)}": rng.random() < 0.7
                            for _ in range(size)
                        }
                    )
                )
            dnf = DNF(clauses)
            truth = brute_force_probability(dnf, reg)
            lower, upper = independent_bounds(
                dnf,
                reg,
                sort_by_probability=sort,
                allow_read_once_buckets=read_once,
            )
            assert lower - 1e-12 <= truth <= upper + 1e-12

    def test_degenerate_inputs(self):
        reg = VariableRegistry()
        assert independent_bounds(DNF.false(), reg) == (0.0, 0.0)
        assert independent_bounds(DNF.true(), reg) == (1.0, 1.0)

    def test_upper_clamped_at_one(self):
        reg = VariableRegistry.from_boolean_probabilities(
            {"a": 0.9, "b": 0.9, "c": 0.9}
        )
        # Heavily overlapping clauses: sum of buckets exceeds 1.
        dnf = DNF.from_sets(
            [
                {"a": True, "b": True},
                {"b": True, "c": True},
                {"a": True, "c": True},
            ]
        )
        _lower, upper = independent_bounds(dnf, reg)
        assert upper <= 1.0
