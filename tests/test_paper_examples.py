"""Every worked example of the paper, reproduced number by number.

Covers Example 4.1, Fig. 2 (Example 4.4), Example 5.2, Example 5.5/Fig. 4,
Example 5.9, Example 5.13, Fig. 5 (the social network and its queries),
and Examples 6.2 / 6.7 (query classifications).
"""

import pytest

from repro.core.approx import approximate_probability
from repro.core.bounds import independent_bounds
from repro.core.compiler import compile_dnf
from repro.core.dnf import DNF
from repro.core.dtree import (
    ExclusiveOrNode,
    IndependentAndNode,
    IndependentOrNode,
    LeafNode,
)
from repro.core.exact import exact_probability
from repro.core.formulas import atom, conj, disj
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry
from repro.db.cq import ConjunctiveQuery, Inequality, SubGoal, Var
from repro.db.database import Database
from repro.db.engine import evaluate
from repro.db.relation import Relation


class TestExample41:
    """(x ∨ y) ∧ ((z ∧ u) ∨ (¬z ∧ v)) ≡ (x ⊗ y) ⊙ ((z ⊙ u) ⊕ (¬z ⊙ v))."""

    def test_probability_formula(self):
        reg = VariableRegistry.from_boolean_probabilities(
            {"x": 0.3, "y": 0.2, "z": 0.7, "u": 0.5, "v": 0.8}
        )
        formula = conj(
            disj(atom("x"), atom("y")),
            disj(
                conj(atom("z"), atom("u")),
                conj(atom("z", False), atom("v")),
            ),
        )
        expected = (1 - (1 - 0.3) * (1 - 0.2)) * (
            0.7 * 0.5 + (1 - 0.7) * 0.8
        )
        assert brute_force_probability(
            formula.to_dnf(), reg
        ) == pytest.approx(expected)
        assert exact_probability(formula.to_dnf(), reg) == pytest.approx(
            expected
        )


class TestFigure2:
    """Φ = {{x=1}, {x=2,y=1}, {x=2,z=1}, {u=1,v=1}, {u=2}} compiles into a
    complete d-tree with an ⊗ root over the {x,y,z} and {u,v} components."""

    def _setup(self):
        reg = VariableRegistry()
        reg.add_variable("x", {1: 0.2, 2: 0.8})
        reg.add_variable("y", {1: 0.3, 2: 0.7})
        reg.add_variable("z", {1: 0.4, 2: 0.6})
        reg.add_variable("u", {1: 0.5, 2: 0.25, 3: 0.25})
        reg.add_variable("v", {1: 0.6, 2: 0.4})
        dnf = DNF.from_sets(
            [
                {"x": 1},
                {"x": 2, "y": 1},
                {"x": 2, "z": 1},
                {"u": 1, "v": 1},
                {"u": 2},
            ]
        )
        return reg, dnf

    def test_structure_and_probability(self):
        reg, dnf = self._setup()
        tree = compile_dnf(dnf, reg)
        assert isinstance(tree, IndependentOrNode)
        assert len(tree.children) == 2
        assert tree.is_complete()
        assert tree.probability(reg) == pytest.approx(
            brute_force_probability(dnf, reg)
        )

    def test_component_probabilities(self):
        reg, dnf = self._setup()
        # {x,y,z} component: x=1 ∨ x=2∧(y=1 ∨ z=1)
        left = 0.2 + 0.8 * (1 - (1 - 0.3) * (1 - 0.4))
        # {u,v} component: u=1∧v=1 ∨ u=2
        right = 0.5 * 0.6 + 0.25
        expected = 1 - (1 - left) * (1 - right)
        assert exact_probability(dnf, reg) == pytest.approx(expected)


class TestExample52And59:
    """Bucket bounds of Example 5.2 and the ε-interval arithmetic of
    Example 5.9."""

    def setup_method(self):
        self.reg = VariableRegistry.from_boolean_probabilities(
            {"x": 0.3, "y": 0.2, "z": 0.7, "v": 0.8}
        )
        self.dnf = DNF.from_sets(
            [{"x": True, "y": True}, {"x": True, "z": True}, {"v": True}]
        )

    def test_exact_probability(self):
        assert brute_force_probability(self.dnf, self.reg) == pytest.approx(
            0.8456
        )

    def test_first_partitioning(self):
        lower, upper = independent_bounds(
            self.dnf, self.reg, sort_by_probability=False
        )
        assert lower == pytest.approx(0.812)
        assert upper == pytest.approx(1.0)

    def test_sorted_partitioning_lower(self):
        lower, _upper = independent_bounds(self.dnf, self.reg)
        assert lower == pytest.approx(0.842)

    def test_example_5_9_interval_arithmetic(self):
        # With bounds [0.842, 0.848] (as printed in the paper), the unique
        # absolute 0.003-approximation is 0.845, and the absolute
        # 0.004-approximations form [0.844, 0.846].
        lower, upper = 0.842, 0.848
        eps = 0.003
        assert upper - lower <= 2 * eps + 1e-12
        assert upper - eps == pytest.approx(lower + eps)
        assert (upper - eps + lower + eps) / 2 == pytest.approx(0.845)
        eps = 0.004
        assert upper - eps == pytest.approx(0.844)
        assert lower + eps == pytest.approx(0.846)


class TestExample55And513:
    """Fig. 4 bound propagation (Example 5.5) and the closing decision of
    Example 5.13."""

    def _tree(self):
        reg = VariableRegistry.from_boolean_probabilities(
            {"x": 0.5, "p1": 0.5, "p2": 0.5, "p3": 0.5}
        )
        phi1 = LeafNode(DNF.from_sets([{"p1": True}]), leaf_bounds=(0.1, 0.11))
        x_leaf = LeafNode(DNF.from_sets([{"x": True}]), leaf_bounds=(0.5, 0.5))
        phi2 = LeafNode(DNF.from_sets([{"p2": True}]), leaf_bounds=(0.4, 0.44))
        phi3 = LeafNode(DNF.from_sets([{"p3": True}]), leaf_bounds=(0.35, 0.38))
        tree = IndependentOrNode(
            [
                phi1,
                ExclusiveOrNode(
                    [IndependentAndNode([x_leaf, phi2]), phi3]
                ),
            ]
        )
        return reg, tree, (phi1, x_leaf, phi2, phi3)

    def test_example_5_5_bounds(self):
        reg, tree, _leaves = self._tree()
        lower, upper = tree.bounds(reg)
        assert lower == pytest.approx(0.595)
        assert upper == pytest.approx(0.644, abs=1e-4)

    def test_example_5_13_stop_check_fails(self):
        # U − L = 0.049 > 2·0.012: cannot stop yet.
        reg, tree, _leaves = self._tree()
        lower, upper = tree.bounds(reg)
        assert upper - lower == pytest.approx(0.049, abs=1e-4)
        assert not (upper - lower <= 2 * 0.012)

    def test_example_5_13_close_check_succeeds(self):
        # L(d): open leaf Φ3 pinned to its lower bound 0.35; the current
        # leaf Φ2 keeps [0.4, 0.44].  U' = 0.6173, U' − L = 0.0223 ≤ 0.024,
        # so Φ2 may be closed.
        reg = VariableRegistry.from_boolean_probabilities(
            {"x": 0.5, "p1": 0.5, "p2": 0.5, "p3": 0.5}
        )
        phi1 = LeafNode(DNF.from_sets([{"p1": True}]), leaf_bounds=(0.1, 0.11))
        x_leaf = LeafNode(DNF.from_sets([{"x": True}]), leaf_bounds=(0.5, 0.5))
        phi2 = LeafNode(DNF.from_sets([{"p2": True}]), leaf_bounds=(0.4, 0.44))
        phi3_pinned = LeafNode(
            DNF.from_sets([{"p3": True}]), leaf_bounds=(0.35, 0.35)
        )
        tree = IndependentOrNode(
            [
                phi1,
                ExclusiveOrNode(
                    [IndependentAndNode([x_leaf, phi2]), phi3_pinned]
                ),
            ]
        )
        lower, upper_prime = tree.bounds(reg)
        assert lower == pytest.approx(0.595)
        assert upper_prime == pytest.approx(0.6173, abs=1e-4)
        assert upper_prime - lower <= 2 * 0.012


class TestFigure5SocialNetwork:
    """The running social-network example: the edge table of Fig. 5(a) and
    the triangle lineage of Fig. 5(c)."""

    def _database(self):
        reg = VariableRegistry()
        edges = [
            ((5, 7), 0.9),
            ((5, 11), 0.8),
            ((6, 7), 0.1),
            ((6, 11), 0.9),
            ((6, 17), 0.5),
            ((7, 17), 0.2),
        ]
        relation = Relation.tuple_independent("E", ["u", "v"], edges, reg)
        return Database(reg, [relation]), reg

    def test_triangle_lineage_is_e3_e5_e6(self):
        database, reg = self._database()
        x, y, z = Var("X"), Var("Y"), Var("Z")
        query = ConjunctiveQuery(
            [],
            [
                SubGoal("E", [x, y]),
                SubGoal("E", [y, z]),
                SubGoal("E", [x, z]),
            ],
            [Inequality(x, "<", y), Inequality(y, "<", z)],
            name="triangle",
        )
        answers = evaluate(query, database)
        assert len(answers) == 1
        dnf = answers[0].lineage.to_dnf()
        # The only triangle is 6-7-17: edges e3 (index 2), e5 (4), e6 (5).
        assert len(dnf) == 1
        clause = dnf.sole_clause()
        assert clause.variables == frozenset(
            {("E", 2), ("E", 4), ("E", 5)}
        )
        assert exact_probability(dnf, reg) == pytest.approx(0.1 * 0.5 * 0.2)

    def test_world_probability_from_the_text(self):
        # "the world with edges e1, e2, and e3, but not the others, has
        # probability .9 * .8 * .1 * (1-.9) * (1-.5) * (1-.2)"
        _database, reg = self._database()
        world = {
            ("E", 0): True,
            ("E", 1): True,
            ("E", 2): True,
            ("E", 3): False,
            ("E", 4): False,
            ("E", 5): False,
        }
        expected = 0.9 * 0.8 * 0.1 * (1 - 0.9) * (1 - 0.5) * (1 - 0.2)
        assert reg.world_probability(world) == pytest.approx(expected)


class TestExample62And67:
    """Query classifications: Example 6.2 (hierarchical) and Example 6.7
    (IQ queries)."""

    def test_example_6_2_hierarchical(self):
        a, b, c, d = Var("A"), Var("B"), Var("C"), Var("D")
        q1 = ConjunctiveQuery(
            [], [SubGoal("R1", [a, b]), SubGoal("R2", [a, c])]
        )
        assert q1.is_hierarchical()
        q2 = ConjunctiveQuery(
            [d],
            [
                SubGoal("R1", [a, b, c]),
                SubGoal("R2", [a, b]),
                SubGoal("R3", [a, d]),
            ],
        )
        assert q2.is_hierarchical()

    def test_prototypical_hard_query(self):
        x, y = Var("X"), Var("Y")
        q = ConjunctiveQuery(
            [],
            [
                SubGoal("R", [x]),
                SubGoal("S", [x, y]),
                SubGoal("T", [y]),
            ],
        )
        assert not q.is_hierarchical()

    def test_example_6_7_iq_queries(self):
        e, f, d, g, h = Var("E"), Var("F"), Var("D"), Var("G"), Var("H")
        b, c = Var("B"), Var("C")
        a = Var("A")
        q1 = ConjunctiveQuery(
            [],
            [
                SubGoal("R", [e, f]),
                SubGoal("T", [d]),
                SubGoal("T2", [g, h]),
            ],
            [Inequality(e, "<", d), Inequality(d, "<", h)],
        )
        assert q1.is_iq()
        q2 = ConjunctiveQuery(
            [],
            [
                SubGoal("R2", [e, f]),
                SubGoal("T", [d]),
                SubGoal("S", [b, c]),
            ],
            [Inequality(e, "<", d), Inequality(e, "<", c)],
        )
        assert q2.is_iq()
        q3 = ConjunctiveQuery(
            [], [SubGoal("R", [a]), SubGoal("T", [d])]
        )
        assert q3.is_iq()
        q4 = ConjunctiveQuery(
            [],
            [
                SubGoal("R", [a]),
                SubGoal("T", [d]),
                SubGoal("R2", [e, f]),
                SubGoal("T2", [g, h]),
            ],
            [
                Inequality(a, "<", e),
                Inequality(d, "<", e),
                Inequality(d, "<", g),
            ],
        )
        assert q4.is_iq()

    def test_max_one_violation(self):
        # Two variables of one subgoal both crossing: not max-one.
        e, f, d = Var("E"), Var("F"), Var("D")
        q = ConjunctiveQuery(
            [],
            [SubGoal("R", [e, f]), SubGoal("T", [d])],
            [Inequality(e, "<", d), Inequality(f, "<", d)],
        )
        assert not q.has_max_one_property()
        assert not q.is_iq()

    def test_equality_join_breaks_iq(self):
        a, b, c = Var("A"), Var("B"), Var("C")
        q = ConjunctiveQuery(
            [], [SubGoal("R", [a, b]), SubGoal("S", [a, c])]
        )
        assert not q.is_iq()
