"""Tests for probabilistic relations and the database container."""

import pytest

from repro.core.formulas import AtomNode, TrueNode
from repro.core.semantics import brute_force_formula_probability
from repro.core.variables import VariableRegistry
from repro.db.database import Database
from repro.db.relation import Relation


class TestCertain:
    def test_rows_have_true_lineage(self):
        rel = Relation.certain("R", ["a", "b"], [(1, 2), (3, 4)])
        assert len(rel) == 2
        for _values, lineage in rel:
            assert isinstance(lineage, TrueNode)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError, match="attributes"):
            Relation.certain("R", ["a", "b"], [(1,)])


class TestTupleIndependent:
    def test_one_boolean_variable_per_row(self):
        reg = VariableRegistry()
        rel = Relation.tuple_independent(
            "R", ["a"], [((1,), 0.5), ((2,), 0.7)], reg
        )
        assert len(rel) == 2
        assert ("R", 0) in reg and ("R", 1) in reg
        assert reg.probability(("R", 0), True) == pytest.approx(0.5)
        for _values, lineage in rel:
            assert isinstance(lineage, AtomNode)

    def test_probability_one_rows_become_certain(self):
        reg = VariableRegistry()
        rel = Relation.tuple_independent(
            "R", ["a"], [((1,), 1.0), ((2,), 0.4)], reg
        )
        lineages = [lineage for _v, lineage in rel]
        assert isinstance(lineages[0], TrueNode)
        assert isinstance(lineages[1], AtomNode)
        assert len(reg) == 1  # only one real variable

    def test_variable_origin_recorded(self):
        reg = VariableRegistry()
        rel = Relation.tuple_independent("R", ["a"], [((1,), 0.5)], reg)
        assert rel.variable_origin == {("R", 0): "R"}


class TestBlockIndependentDisjoint:
    def test_alternatives_are_exclusive(self):
        reg = VariableRegistry()
        rel = Relation.block_independent_disjoint(
            "E",
            ["u", "v", "present"],
            {
                (5, 7): [((5, 7, 1), 0.9), ((5, 7, 0), 0.1)],
            },
            reg,
        )
        assert len(rel) == 2
        variable = ("E", (5, 7))
        assert variable in reg
        assert reg.domain(variable) == (0, 1)
        # Mutual exclusivity: the two rows' lineage atoms bind the same
        # variable to different values.
        atoms = [lineage.atom for _v, lineage in rel]
        assert atoms[0].variable == atoms[1].variable
        assert atoms[0].value != atoms[1].value

    def test_remainder_becomes_none_alternative(self):
        reg = VariableRegistry()
        Relation.block_independent_disjoint(
            "B", ["x"], {"k": [((1,), 0.3), ((2,), 0.2)]}, reg
        )
        dist = reg.distribution(("B", "k"))
        assert dist["__none__"] == pytest.approx(0.5)

    def test_overweight_block_rejected(self):
        reg = VariableRegistry()
        with pytest.raises(ValueError, match="> 1"):
            Relation.block_independent_disjoint(
                "B", ["x"], {"k": [((1,), 0.7), ((2,), 0.6)]}, reg
            )

    def test_block_probabilities(self):
        reg = VariableRegistry()
        rel = Relation.block_independent_disjoint(
            "B", ["x"], {"k": [((1,), 0.3), ((2,), 0.2)]}, reg
        )
        probabilities = [
            brute_force_formula_probability(lineage, reg)
            for _v, lineage in rel
        ]
        assert probabilities == [pytest.approx(0.3), pytest.approx(0.2)]

    def test_empty_block_skipped(self):
        reg = VariableRegistry()
        rel = Relation.block_independent_disjoint("B", ["x"], {"k": []}, reg)
        assert len(rel) == 0


class TestRelationAccess:
    def test_column_and_attribute_index(self):
        rel = Relation.certain("R", ["a", "b"], [(1, 2), (3, 4)])
        assert rel.column("b") == [2, 4]
        assert rel.attribute_index("a") == 0
        with pytest.raises(KeyError):
            rel.attribute_index("zzz")

    def test_renamed_keeps_rows_and_origin(self):
        reg = VariableRegistry()
        rel = Relation.tuple_independent("R", ["a"], [((1,), 0.5)], reg)
        clone = rel.renamed("R2")
        assert clone.name == "R2"
        assert clone.rows == rel.rows
        assert clone.variable_origin == rel.variable_origin


class TestDatabase:
    def test_add_and_lookup(self):
        reg = VariableRegistry()
        db = Database(reg)
        rel = Relation.certain("R", ["a"], [(1,)])
        db.add(rel)
        assert db["R"] is rel
        assert "R" in db
        assert list(db.relation_names()) == ["R"]

    def test_duplicate_name_rejected(self):
        db = Database()
        db.add(Relation.certain("R", ["a"], [(1,)]))
        with pytest.raises(ValueError, match="already exists"):
            db.add(Relation.certain("R", ["a"], [(2,)]))

    def test_unknown_relation(self):
        db = Database()
        with pytest.raises(KeyError, match="unknown relation"):
            db["ghost"]

    def test_variable_origins_merged(self):
        reg = VariableRegistry()
        db = Database(reg)
        db.add(Relation.tuple_independent("R", ["a"], [((1,), 0.5)], reg))
        db.add(Relation.tuple_independent("S", ["b"], [((2,), 0.6)], reg))
        origins = db.variable_origins()
        assert origins[("R", 0)] == "R"
        assert origins[("S", 0)] == "S"

    def test_default_registry_created(self):
        db = Database()
        assert len(db.registry) == 0
