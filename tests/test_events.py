"""Unit tests for atoms and clauses (repro.core.events)."""

import pytest

from repro.core.events import Atom, Clause, InconsistentClauseError
from repro.core.variables import VariableRegistry


@pytest.fixture
def registry():
    reg = VariableRegistry.from_boolean_probabilities({"x": 0.3, "y": 0.2})
    reg.add_variable("u", {1: 0.5, 2: 0.2, 3: 0.3})
    return reg


class TestAtom:
    def test_equality_and_hash(self):
        assert Atom("x", True) == Atom("x", True)
        assert Atom("x", True) != Atom("x", False)
        assert hash(Atom("u", 2)) == hash(Atom("u", 2))

    def test_default_value_is_true(self):
        assert Atom("x").value is True

    def test_immutability(self):
        atom = Atom("x", True)
        with pytest.raises(AttributeError):
            atom.value = False

    def test_probability(self, registry):
        assert Atom("x", True).probability(registry) == pytest.approx(0.3)
        assert Atom("u", 3).probability(registry) == pytest.approx(0.3)

    def test_negation_boolean(self):
        assert Atom("x", True).negated() == Atom("x", False)
        assert Atom("x", False).negated() == Atom("x", True)

    def test_negation_of_multivalued_rejected(self):
        with pytest.raises(ValueError, match="negate non-Boolean"):
            Atom("u", 2).negated()

    def test_repr_shorthand(self):
        assert repr(Atom("x", True)) == "x"
        assert repr(Atom("x", False)) == "¬x"
        assert repr(Atom("u", 2)) == "u=2"


class TestClauseConstruction:
    def test_from_atoms(self):
        clause = Clause([Atom("x", True), Atom("u", 2)])
        assert clause.value_of("x") is True
        assert clause.value_of("u") == 2

    def test_from_mapping(self):
        clause = Clause({"x": True, "u": 2})
        assert clause.binds("x") and clause.binds("u")

    def test_duplicate_atom_deduplicated(self):
        clause = Clause([Atom("x", True), Atom("x", True)])
        assert len(clause) == 1

    def test_inconsistent_rejected(self):
        with pytest.raises(InconsistentClauseError):
            Clause([Atom("x", True), Atom("x", False)])
        with pytest.raises(InconsistentClauseError):
            Clause([Atom("u", 1), Atom("u", 2)])

    def test_positive_helper(self):
        clause = Clause.positive("x", "y")
        assert clause.value_of("x") is True and clause.value_of("y") is True

    def test_empty_clause_is_true_and_truthy(self):
        clause = Clause()
        assert clause.is_empty()
        assert bool(clause)  # explicitly not container-falsy
        assert repr(clause) == "⊤"

    def test_immutability(self):
        clause = Clause({"x": True})
        with pytest.raises(AttributeError):
            clause._bindings = {}


class TestClauseLogic:
    def test_subsumes_subset(self):
        small = Clause({"x": True})
        big = Clause({"x": True, "y": False})
        assert small.subsumes(big)
        assert not big.subsumes(small)
        assert small.subsumes(small)

    def test_subsumes_requires_same_values(self):
        a = Clause({"x": True})
        b = Clause({"x": False, "y": True})
        assert not a.subsumes(b)

    def test_empty_clause_subsumes_everything(self):
        assert Clause().subsumes(Clause({"x": True, "y": False}))

    def test_restrict_consistent_strips_atom(self):
        clause = Clause({"x": True, "y": False})
        restricted = clause.restrict("x", True)
        assert restricted == Clause({"y": False})

    def test_restrict_inconsistent_returns_none(self):
        clause = Clause({"x": True})
        assert clause.restrict("x", False) is None

    def test_restrict_unbound_variable_is_identity(self):
        clause = Clause({"y": False})
        assert clause.restrict("x", True) is clause

    def test_union_merges(self):
        merged = Clause({"x": True}).union(Clause({"y": False}))
        assert merged == Clause({"x": True, "y": False})

    def test_union_conflict_raises(self):
        with pytest.raises(InconsistentClauseError):
            Clause({"x": True}).union(Clause({"x": False}))

    def test_independence(self):
        assert Clause({"x": True}).independent_of(Clause({"y": True}))
        assert not Clause({"x": True}).independent_of(
            Clause({"x": False, "y": True})
        )

    def test_project(self):
        clause = Clause({"x": True, "y": False, "u": 2})
        assert clause.project(frozenset(["x", "u"])) == Clause(
            {"x": True, "u": 2}
        )

    def test_is_consistent_with_atom(self):
        clause = Clause({"x": True})
        assert clause.is_consistent_with_atom("x", True)
        assert not clause.is_consistent_with_atom("x", False)
        assert clause.is_consistent_with_atom("y", False)


class TestClauseSemantics:
    def test_probability_is_product(self, registry):
        clause = Clause({"x": True, "u": 2})
        assert clause.probability(registry) == pytest.approx(0.3 * 0.2)

    def test_empty_clause_probability_is_one(self, registry):
        assert Clause().probability(registry) == 1.0

    def test_evaluate(self):
        clause = Clause({"x": True, "y": False})
        assert clause.evaluate({"x": True, "y": False})
        assert not clause.evaluate({"x": True, "y": True})
        assert not clause.evaluate({"x": True})  # unbound y

    def test_atoms_in_deterministic_order(self):
        clause = Clause({"y": False, "x": True})
        assert [repr(a) for a in clause.atoms()] == ["x", "¬y"]

    def test_equality_and_hash(self):
        assert Clause({"x": True, "y": False}) == Clause(
            {"y": False, "x": True}
        )
        assert hash(Clause({"x": True})) == hash(Clause({"x": True}))
