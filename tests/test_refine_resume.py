"""Resumable anytime refinement: persisted sub-DNFs and circuit-refine.

The acceptance surface of the format-v2 + refinement-unification work:

- Format v2 stores carry each residual leaf's sub-DNF, so a reloaded
  partial circuit refines exactly like the in-memory original;
  format-v1 stores still load, read-only (sound bounds, no refinement).
- ``BatchComputation.refine`` resumes a cached partial circuit
  (strategy ``"circuit-refine"``) instead of re-running the
  ε-approximation — with a warm decomposition cache the resume does
  *zero* cold decomposition work, proven by cache-stats deltas.
- A truncated run persisted by one process resumes in another process
  bit-identically to a never-persisted circuit.
- ``refine_sweep_bounds`` edge cases: ``target_width`` reached
  mid-schedule, ``max_rounds=0``, and a scenario batch that touches no
  residual leaf.
- ``rank_answers(guided=True)`` certifies the same ordering as the
  widest-interval schedule.
- Serving ``refine:true`` write-back: progress survives requests (and
  the session's ``persist_circuits`` store), and partial circuits are
  never served where exact values are required.
"""

import asyncio
import json
import os
import subprocess
import sys

import pytest

import repro
from repro.circuits import CircuitCache
from repro.circuits.serialize import (
    CircuitStoreError,
    FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    decode_circuit,
    encode_circuit,
    load_circuit_store,
    save_circuit_store,
)
from repro.circuits.sweep import refine_sweep_bounds, sweep_bounds
from repro.core.dnf import DNF
from repro.core.variables import VariableRegistry
from repro.db.session import ProbDB
from repro.db.topk import rank_answers
from repro.engine import ConfidenceEngine, EngineConfig
from repro.serving import CircuitStoreService, ServingEngine
from repro.serving.client import ServingClient


def run(coroutine):
    return asyncio.run(coroutine)


def make_registry(n=12):
    registry = VariableRegistry()
    for index in range(n):
        registry.add_boolean(f"x{index}", 0.08 + 0.06 * (index % 10))
    return registry


def cycle_lineage(n=12, chords=True):
    """A clause cycle (plus chords): dense sharing defeats independence
    decomposition, so small node budgets genuinely truncate."""
    names = [f"x{i}" for i in range(n)]
    clauses = [(names[i], names[(i + 1) % n]) for i in range(n)]
    if chords:
        clauses += [(names[i], names[(i + 5) % n]) for i in range(0, n, 2)]
    return DNF.from_positive_clauses(clauses)


def partial_circuit(engine, lineage, max_nodes=8):
    circuit = engine.compile_circuit(lineage, max_nodes=max_nodes)
    assert circuit.residuals, "expected the node budget to truncate"
    return circuit


# ----------------------------------------------------------------------
# Format v2: sub-DNFs round-trip; v1 loads read-only
# ----------------------------------------------------------------------
class TestFormatVersions:
    def test_v2_roundtrip_preserves_subdnfs(self):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        lineage = cycle_lineage()
        circuit = partial_circuit(engine, lineage)
        decoded, key = decode_circuit(
            encode_circuit(circuit, key=lineage), registry
        )
        assert key == lineage
        assert decoded.refinable
        assert [
            dnf for dnf in decoded.residual_dnfs
        ] == list(circuit.residual_dnfs)
        assert decoded.evaluate_bounds() == circuit.evaluate_bounds()

    def test_v2_reload_refines_bit_identically(self, tmp_path):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        lineage = cycle_lineage()
        circuit = partial_circuit(engine, lineage)
        path = tmp_path / "store.rcir"
        save_circuit_store(path, [(lineage, circuit)])
        loaded = dict(load_circuit_store(path, registry))[lineage]
        scenarios = [None, {"x1": 0.4}]
        _, expected = refine_sweep_bounds(
            circuit,
            scenarios,
            compile_subcircuit=engine.compile_circuit,
            max_rounds=3,
        )
        _, resumed = refine_sweep_bounds(
            loaded,
            scenarios,
            compile_subcircuit=engine.compile_circuit,
            max_rounds=3,
        )
        assert resumed == expected

    def test_v1_store_loads_readonly(self, tmp_path):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        lineage = cycle_lineage()
        circuit = partial_circuit(engine, lineage)
        path = tmp_path / "old.rcir"
        save_circuit_store(path, [(lineage, circuit)], format_version=1)
        loaded = dict(load_circuit_store(path, registry))[lineage]
        # Same sound bounds, but no recorded sub-DNFs: not refinable.
        assert loaded.evaluate_bounds() == circuit.evaluate_bounds()
        assert not loaded.refinable
        refined, bounds = refine_sweep_bounds(
            loaded,
            [None],
            compile_subcircuit=engine.compile_circuit,
            max_rounds=4,
        )
        assert refined is loaded
        assert bounds == sweep_bounds(loaded, [None])

    def test_unsupported_versions_rejected(self, tmp_path):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        lineage = cycle_lineage()
        circuit = partial_circuit(engine, lineage)
        with pytest.raises(CircuitStoreError, match="format version"):
            encode_circuit(circuit, format_version=99)
        path = tmp_path / "future.rcir"
        save_circuit_store(path, [(lineage, circuit)])
        data = bytearray(path.read_bytes())
        data[4:6] = (99).to_bytes(2, "little")  # header version field
        path.write_bytes(bytes(data))
        with pytest.raises(CircuitStoreError):
            load_circuit_store(path, registry)

    def test_current_version_is_supported(self):
        assert FORMAT_VERSION in SUPPORTED_VERSIONS
        assert 1 in SUPPORTED_VERSIONS


# ----------------------------------------------------------------------
# Engine unification: refine resumes cached partial circuits
# ----------------------------------------------------------------------
class TestCircuitRefine:
    def _warm_engine(self):
        registry = make_registry()
        engine = ConfidenceEngine(registry, epsilon=0.0)
        lineage = cycle_lineage()
        # Converged run + full compile first: the decomposition cache
        # now holds the complete trace, so everything below is a replay.
        engine.compute(lineage, epsilon=0.0)
        engine.compile_circuit(lineage)
        cache = CircuitCache()
        cache.put(
            lineage, partial_circuit(engine, lineage), exact_only=False
        )
        engine.circuit_source = cache.get
        return engine, lineage

    def test_refine_resumes_with_zero_cold_decomposition(self):
        engine, lineage = self._warm_engine()
        batch = engine.refine_many(
            [lineage], epsilon=0.0, initial_steps=2, step_growth=2
        )
        previous = batch.results[0]
        assert not previous.converged
        before = engine.cache.stats()["misses"]
        result = batch.refine(0)
        assert result.strategy == "circuit-refine"
        assert result.details["cold_steps"] == 0
        assert engine.cache.stats()["misses"] == before
        assert result.lower >= previous.lower
        assert result.upper <= previous.upper
        assert result.width() < previous.width()

    def test_refine_converges_through_circuit_rounds(self):
        engine, lineage = self._warm_engine()
        exact = engine.compute(lineage, epsilon=0.0)
        batch = engine.refine_many(
            [lineage], epsilon=0.0, initial_steps=2, step_growth=2
        )
        strategies = set()
        for _ in range(64):
            result = batch.refine(0)
            strategies.add(result.strategy)
            if result.converged:
                break
        assert result.converged
        assert "circuit-refine" in strategies
        assert result.lower <= exact.probability <= result.upper

    def test_refine_without_circuit_falls_back(self):
        registry = make_registry()
        engine = ConfidenceEngine(registry, epsilon=0.0)
        lineage = cycle_lineage()
        batch = engine.refine_many(
            [lineage], epsilon=0.0, initial_steps=2, step_growth=2
        )
        result = batch.refine(0)
        assert result.strategy != "circuit-refine"

    def test_sharded_refine_uses_cached_circuit(self):
        engine, lineage = self._warm_engine()
        batch = engine.refine_many(
            [lineage, cycle_lineage(10)],
            epsilon=0.0,
            initial_steps=2,
            step_growth=2,
            workers=2,
        )
        try:
            previous = batch.results[0]
            if previous.converged:
                pytest.skip("initial sharded round already converged")
            result = batch.refine(0)
            assert result.width() <= previous.width()
            assert result.strategy == "circuit-refine"
        finally:
            close = getattr(batch, "close", None)
            if close is not None:
                close()
            engine.close()


# ----------------------------------------------------------------------
# refine_sweep_bounds edge cases
# ----------------------------------------------------------------------
class TestRefineSweepEdges:
    def setup_method(self):
        self.registry = make_registry()
        self.engine = ConfidenceEngine(self.registry)
        self.lineage = cycle_lineage()
        self.partial = partial_circuit(self.engine, self.lineage)

    def test_target_width_stops_mid_schedule(self):
        start = max(
            high - low
            for low, high in sweep_bounds(self.partial, [None])
        )
        target = start / 2.0
        refined, bounds = refine_sweep_bounds(
            self.partial,
            [None],
            compile_subcircuit=self.engine.compile_circuit,
            target_width=target,
            max_rounds=64,
        )
        assert all(high - low <= target for low, high in bounds)
        # Mid-schedule stop: something was left unexpanded (the exact
        # circuit would have width 0 < target already).
        assert refined.residuals

    def test_max_rounds_zero_is_a_pure_sweep(self):
        refined, bounds = refine_sweep_bounds(
            self.partial,
            [None, {"x0": 0.2}],
            compile_subcircuit=self.engine.compile_circuit,
            max_rounds=0,
        )
        assert refined is self.partial
        assert bounds == sweep_bounds(self.partial, [None, {"x0": 0.2}])

    def test_untouched_residuals_still_refine(self):
        # A scenario batch that touches no residual leaf (base
        # probabilities and an empty override): every leaf keeps its
        # stored bounds, and refinement converges to the exact sweep.
        scenarios = [None, {}]
        refined, bounds = refine_sweep_bounds(
            self.partial,
            scenarios,
            compile_subcircuit=self.engine.compile_circuit,
            max_rounds=64,
        )
        assert not refined.residuals
        exact = self.engine.compile_circuit(self.lineage)
        assert bounds == sweep_bounds(exact, scenarios)


# ----------------------------------------------------------------------
# Cross-process resume: persist mid-refinement, finish elsewhere
# ----------------------------------------------------------------------
_RESUME_SCRIPT = """
import json, sys
from repro.circuits import CircuitCache
from repro.core.dnf import DNF
from repro.core.variables import VariableRegistry
from repro.circuits.sweep import refine_sweep_bounds
from repro.engine import ConfidenceEngine

registry = VariableRegistry()
for index in range(12):
    registry.add_boolean(f"x{index}", 0.08 + 0.06 * (index % 10))
names = [f"x{i}" for i in range(12)]
clauses = [(names[i], names[(i + 1) % 12]) for i in range(12)]
clauses += [(names[i], names[(i + 5) % 12]) for i in range(0, 12, 2)]
lineage = DNF.from_positive_clauses(clauses)

cache = CircuitCache()
cache.load_into(sys.argv[1], registry)
circuit = cache.get(lineage)
assert circuit is not None and circuit.refinable
engine = ConfidenceEngine(registry)
refined, bounds = refine_sweep_bounds(
    circuit,
    [None, {"x1": 0.4}],
    compile_subcircuit=engine.compile_circuit,
    max_rounds=64,
)
print(json.dumps(bounds))
"""


class TestSubprocessResume:
    def test_resume_in_fresh_process_is_bit_identical(self, tmp_path):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        lineage = cycle_lineage()
        circuit = partial_circuit(engine, lineage)
        cache = CircuitCache()
        cache.put(lineage, circuit, exact_only=False)
        path = tmp_path / "truncated.rcir"
        cache.save(path)

        # The never-persisted refinement this session would have run.
        _, expected = refine_sweep_bounds(
            circuit,
            [None, {"x1": 0.4}],
            compile_subcircuit=engine.compile_circuit,
            max_rounds=64,
        )

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        output = subprocess.run(
            [sys.executable, "-c", _RESUME_SCRIPT, str(path)],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        resumed = [tuple(pair) for pair in json.loads(output.stdout)]
        assert resumed == [tuple(pair) for pair in expected]

    def test_probdb_open_resumes_truncated_run(self, tmp_path):
        store = tmp_path / "session.rcir"
        lineage = cycle_lineage()

        db = ProbDB.from_registry(
            make_registry(),
            EngineConfig(max_total_steps=None),
            persist_circuits=store,
        )
        db.circuits.put(
            lineage,
            partial_circuit(db.engine, lineage),
            exact_only=False,
        )
        db.close()  # persists the truncated circuit (format v2)

        resumed = ProbDB.from_registry(
            make_registry(),
            EngineConfig(max_total_steps=None),
            persist_circuits=store,
        )
        try:
            circuit = resumed.circuits.get(lineage)
            assert circuit is not None and circuit.refinable
            refined, (bounds,) = refine_sweep_bounds(
                circuit,
                [None],
                compile_subcircuit=resumed.engine.compile_circuit,
                max_rounds=64,
            )
            exact = resumed.engine.compile_circuit(lineage)
            assert bounds == exact.evaluate_bounds()
        finally:
            resumed.close()


# ----------------------------------------------------------------------
# Gradient-guided top-k: same certified ordering as widest-interval
# ----------------------------------------------------------------------
class TestGuidedTopK:
    def _answers(self, registry, count=5, seed=0):
        import random

        rng = random.Random(seed)
        answers = []
        for a in range(count):
            names = [f"a{a}_{i}" for i in range(10)]
            for name in names:
                registry.add_boolean(name, rng.uniform(0.1, 0.6))
            groups = [rng.sample(names, 3) for _ in range(8)]
            answers.append(
                ((f"answer{a}",), DNF.from_positive_clauses(groups))
            )
        return answers

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_guided_matches_widest_ordering(self, seed):
        orderings = []
        for guided in (False, True):
            registry = VariableRegistry()
            answers = self._answers(registry, seed=seed)
            engine = ConfidenceEngine(registry, epsilon=0.0)
            cache = CircuitCache()
            for _values, dnf in answers:
                cache.put(
                    dnf,
                    engine.compile_circuit(dnf, max_nodes=40),
                    exact_only=False,
                )
            engine.circuit_source = cache.get
            ranked = rank_answers(
                engine,
                answers,
                2,
                initial_steps=4,
                step_growth=2,
                guided=guided,
            )
            orderings.append([r.values for r in ranked])
        assert orderings[0] == orderings[1]

    def test_guided_defaults_on(self):
        registry = VariableRegistry()
        answers = self._answers(registry, count=3)
        engine = ConfidenceEngine(registry, epsilon=0.0)
        default = rank_answers(engine, answers, 2)
        explicit = rank_answers(engine, answers, 2, guided=True)
        assert [r.values for r in default] == [
            r.values for r in explicit
        ]


# ----------------------------------------------------------------------
# Serving write-back: refinement progress survives requests/processes
# ----------------------------------------------------------------------
class TestServingWriteback:
    def test_live_cache_refine_survives_requests(self, tmp_path):
        store = tmp_path / "live.rcir"
        lineage = cycle_lineage()
        db = ProbDB.from_registry(
            make_registry(),
            EngineConfig(max_total_steps=None),
            persist_circuits=store,
        )
        db.circuits.put(
            lineage,
            partial_circuit(db.engine, lineage),
            exact_only=False,
        )
        client = ServingClient(db.serving())

        async def scenario():
            first = await client.bounds(lineage)
            refined = await client.bounds(lineage, refine=True)
            after = await client.bounds(lineage)
            return first, refined, after

        first, refined, after = run(scenario())
        assert first["strategy"] == "store"
        assert refined["strategy"] == "store+refined"
        assert refined["width"] < first["width"]
        # Write-back bumped the live cache: the re-cut snapshot now
        # serves the refined circuit — no overlay, no stale bounds.
        assert after["strategy"] == "store"
        assert after["width"] == refined["width"]
        db.close()  # persists the refined circuit
        assert store.exists()

        resumed = ProbDB.from_registry(
            make_registry(),
            EngineConfig(max_total_steps=None),
            persist_circuits=store,
        )
        try:
            circuit = resumed.circuits.get(lineage)
            assert circuit is not None
            low, high = circuit.evaluate_bounds()
            assert high - low == refined["width"]
        finally:
            resumed.close()

    def test_file_store_refine_prefers_overlay(self, tmp_path):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        lineage = cycle_lineage()
        path = tmp_path / "frozen.rcir"
        save_circuit_store(
            path, [(lineage, partial_circuit(engine, lineage))]
        )
        stores = CircuitStoreService(registry, {"frozen": path})
        client = ServingClient(ServingEngine(stores, engine))

        async def scenario():
            first = await client.bounds(lineage, store="frozen")
            refined = await client.bounds(
                lineage, store="frozen", refine=True
            )
            after = await client.bounds(lineage, store="frozen")
            return first, refined, after

        first, refined, after = run(scenario())
        assert first["strategy"] == "store"
        assert refined["strategy"] == "store+refined"
        # The file snapshot is immutable; progress lives in the overlay
        # and later requests must see it, not the stale partial.
        assert after["strategy"] == "overlay"
        assert after["width"] == refined["width"] < first["width"]

    def test_exact_operations_never_serve_partials(self, tmp_path):
        registry = make_registry()
        engine = ConfidenceEngine(registry)
        lineage = cycle_lineage()
        path = tmp_path / "partial.rcir"
        save_circuit_store(
            path, [(lineage, partial_circuit(engine, lineage))]
        )
        stores = CircuitStoreService(registry, {"partial": path})
        client = ServingClient(ServingEngine(stores, engine))
        exact = engine.compile_circuit(lineage)

        async def scenario():
            value = await client.evaluate(lineage, store="partial")
            gradients = await client.gradients(lineage, store="partial")
            return value, gradients

        value, gradients = run(scenario())
        # The partial store hit was rejected: evaluate degraded to a
        # direct engine computation, gradients to an exact cold compile.
        assert value["strategy"] == "engine"
        assert value["value"] == pytest.approx(exact.evaluate())
        assert gradients["strategy"] == "engine-compile"
        assert dict(gradients["gradients"]) == {
            str(k): v for k, v in exact.gradients().items()
        }
