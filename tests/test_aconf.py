"""Tests for the aconf baseline (Karp–Luby + DKLR)."""

import random

import pytest

from repro.core.dnf import DNF
from repro.core.events import Clause
from repro.core.semantics import brute_force_probability
from repro.core.variables import VariableRegistry
from repro.mc.aconf import DEFAULT_DELTA, aconf
from repro.mc.naive import hoeffding_sample_bound, naive_monte_carlo


def random_instance(seed, variables=7, clauses=6):
    rng = random.Random(seed)
    reg = VariableRegistry.from_boolean_probabilities(
        {f"v{i}": rng.uniform(0.1, 0.9) for i in range(variables)}
    )
    specs = [
        Clause(
            {
                f"v{rng.randrange(variables)}": rng.random() < 0.7
                for _ in range(rng.randint(1, 3))
            }
        )
        for _ in range(clauses)
    ]
    return DNF(specs), reg


class TestAconf:
    def test_relative_accuracy_on_random_instances(self):
        for seed in range(8):
            dnf, reg = random_instance(seed)
            truth = brute_force_probability(dnf, reg)
            result = aconf(dnf, reg, epsilon=0.05, delta=0.05, seed=seed)
            assert not result.capped
            # Allow 2x slack over the probabilistic guarantee.
            assert abs(result.estimate - truth) <= 2 * 0.05 * truth + 1e-9

    def test_small_probability_instance(self):
        reg = VariableRegistry.from_boolean_probabilities(
            {"a": 0.01, "b": 0.02, "c": 0.015}
        )
        dnf = DNF.from_sets([{"a": True, "b": True}, {"c": True}])
        truth = brute_force_probability(dnf, reg)
        result = aconf(dnf, reg, epsilon=0.1, delta=0.05, seed=1)
        assert abs(result.estimate - truth) <= 2 * 0.1 * truth

    def test_default_delta_matches_paper(self):
        assert DEFAULT_DELTA == 0.0001

    def test_degenerate_inputs(self):
        reg = VariableRegistry()
        assert aconf(DNF.false(), reg, epsilon=0.1).estimate == 0.0
        assert aconf(DNF.true(), reg, epsilon=0.1).estimate == 1.0

    def test_max_samples_cap(self):
        dnf, reg = random_instance(3)
        result = aconf(
            dnf, reg, epsilon=0.001, delta=0.0001, seed=3, max_samples=50
        )
        assert result.capped
        assert result.samples <= 50

    def test_sra_algorithm_variant(self):
        dnf, reg = random_instance(4)
        truth = brute_force_probability(dnf, reg)
        result = aconf(
            dnf, reg, epsilon=0.05, delta=0.05, seed=4, algorithm="sra"
        )
        assert abs(result.estimate - truth) <= 2 * 0.05 * truth

    def test_unknown_algorithm_rejected(self):
        dnf, reg = random_instance(5)
        with pytest.raises(ValueError, match="algorithm"):
            aconf(dnf, reg, epsilon=0.1, algorithm="magic")

    def test_determinism_with_seed(self):
        dnf, reg = random_instance(6)
        a = aconf(dnf, reg, epsilon=0.1, delta=0.05, seed=42)
        b = aconf(dnf, reg, epsilon=0.1, delta=0.05, seed=42)
        assert a.estimate == b.estimate
        assert a.samples == b.samples

    def test_estimate_never_exceeds_one(self):
        reg = VariableRegistry.from_boolean_probabilities(
            {"a": 0.99, "b": 0.99}
        )
        dnf = DNF.from_sets([{"a": True}, {"b": True}])
        result = aconf(dnf, reg, epsilon=0.2, delta=0.1, seed=0)
        assert result.estimate <= 1.0


class TestNaive:
    def test_converges_to_truth(self):
        dnf, reg = random_instance(9)
        truth = brute_force_probability(dnf, reg)
        estimate = naive_monte_carlo(dnf, reg, 30000, seed=9)
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_hoeffding_bound(self):
        import math

        bound = hoeffding_sample_bound(0.05, 0.01)
        assert bound == math.ceil(math.log(2 / 0.01) / (2 * 0.05**2))

    def test_degenerate(self):
        reg = VariableRegistry()
        assert naive_monte_carlo(DNF.false(), reg, 10) == 0.0
        assert naive_monte_carlo(DNF.true(), reg, 10) == 1.0

    def test_sample_count_validated(self):
        dnf, reg = random_instance(1)
        with pytest.raises(ValueError):
            naive_monte_carlo(dnf, reg, 0)

    def test_multivalued_variables(self):
        reg = VariableRegistry()
        reg.add_variable("u", {1: 0.5, 2: 0.3, 3: 0.2})
        reg.add_boolean("x", 0.4)
        dnf = DNF.from_sets([{"u": 2, "x": True}, {"u": 3}])
        truth = brute_force_probability(dnf, reg)
        assert naive_monte_carlo(dnf, reg, 30000, seed=2) == pytest.approx(
            truth, abs=0.02
        )
