#!/usr/bin/env python3
"""Quickstart: approximate confidence computation on a small DNF.

Reproduces the running example of the paper (Example 5.2): the DNF
``Φ = (x∧y) ∨ (x∧z) ∨ v`` whose exact probability is 0.8456, computed

* exactly, via d-tree compilation,
* approximately with an absolute error guarantee,
* approximately with a relative error guarantee,
* with the aconf Monte-Carlo baseline,
* through the ``ProbDB`` session façade, which picks the cheapest sound
  strategy automatically (one ``EngineConfig``, one shared cache),

and shows the Fig. 3 bucket bounds and the compiled d-tree itself.

Run:  python examples/quickstart.py
"""

from repro import (
    DNF,
    EngineConfig,
    ProbDB,
    VariableRegistry,
    approximate_probability,
    brute_force_probability,
    compile_dnf,
    exact_probability,
    independent_bounds,
)
from repro.mc import aconf


def main() -> None:
    # 1. A probability space: four independent Boolean variables.
    registry = VariableRegistry.from_boolean_probabilities(
        {"x": 0.3, "y": 0.2, "z": 0.7, "v": 0.8}
    )

    # 2. The DNF of Example 5.2: (x ∧ y) ∨ (x ∧ z) ∨ v.
    phi = DNF.from_positive_clauses([["x", "y"], ["x", "z"], ["v"]])
    print(f"Φ = {phi}")
    print(f"ground truth (possible worlds): "
          f"{brute_force_probability(phi, registry):.6f}")

    # 3. Quick bounds without any compilation (Fig. 3 heuristic).
    lower, upper = independent_bounds(phi, registry)
    print(f"bucket bounds:                  [{lower:.4f}, {upper:.4f}]")

    # 4. Exact probability via d-trees.
    print(f"d-tree exact:                   "
          f"{exact_probability(phi, registry):.6f}")

    # 5. Approximate with guarantees.
    absolute = approximate_probability(phi, registry, epsilon=0.01)
    print(f"absolute ε=0.01:                {absolute.estimate:.6f}  "
          f"(bounds [{absolute.lower:.4f}, {absolute.upper:.4f}], "
          f"{absolute.steps} steps)")

    relative = approximate_probability(
        phi, registry, epsilon=0.05, error_kind="relative"
    )
    print(f"relative ε=0.05:                {relative.estimate:.6f}  "
          f"(converged={relative.converged})")

    # 6. The Monte-Carlo baseline the paper compares against.
    mc = aconf(phi, registry, epsilon=0.01, delta=0.001, seed=0)
    print(f"aconf(0.01, 0.001):             {mc.estimate:.6f}  "
          f"({mc.samples} Karp-Luby samples)")

    # 7. The session façade: ProbDB owns one planner + cache and picks
    #    the cheapest sound strategy itself (read-once here).
    session = ProbDB.from_registry(registry, EngineConfig(epsilon=0.01))
    outcome = session.confidence(phi)
    print(f"ProbDB session planner:         {outcome.probability:.6f}  "
          f"(strategy: {outcome.strategy})")

    # 8. Peek at the complete d-tree.
    print("\ncomplete d-tree:")
    print(compile_dnf(phi, registry).pretty())


if __name__ == "__main__":
    main()
