#!/usr/bin/env python3
"""Persisting compiled circuits across processes.

A ``ProbDB`` session opened with a circuit store compiles each query's
lineage once and saves the circuits on close; the *next* session — even
in a brand-new process with fresh intern tables — warm-starts from the
store and answers the same queries with strategy ``"circuit"``, never
touching the engine, bit-identically to the cold run.

This script demonstrates (and checks) exactly that:

1. build a seeded lineage workload,
2. session A (this process): cold confidences, circuits compiled and
   persisted to the store,
3. session B (a **subprocess** — a genuinely fresh interpreter): loads
   the store, answers warm, asserts every strategy is ``"circuit"`` and
   every probability is bit-identical to session A's.

Run:  python examples/persist_circuits.py [--store PATH]

With ``--store`` the store file is kept (CI uploads it as an artifact);
without it a temporary directory is used and cleaned up.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

from repro import EngineConfig, ProbDB
from repro.circuits import circuit_store_info

EXAMPLE_DIR = os.path.dirname(os.path.abspath(__file__))


def build_workload():
    """A seeded registry + answer-lineage corpus, identical every run.

    Determinism matters: session B rebuilds the same workload in a
    fresh process and must produce equal lineage DNFs (by variable
    *name* — the interned ids will differ, which is the point).
    """
    import random

    from repro import DNF, VariableRegistry
    from repro.core.events import Clause

    rng = random.Random(2026)
    names = [f"pc_v{index}" for index in range(10)]
    registry = VariableRegistry.from_boolean_probabilities(
        {name: rng.uniform(0.05, 0.95) for name in names}
    )
    dnfs = []
    for _ in range(20):
        dnfs.append(
            DNF(
                Clause(
                    {
                        rng.choice(names): rng.random() < 0.6
                        for _ in range(rng.randint(1, 4))
                    }
                )
                for _ in range(rng.randint(1, 7))
            )
        )
    return registry, [((index,), dnf) for index, dnf in enumerate(dnfs)]


def run_session(store_path: str) -> dict:
    """One session against the store; returns strategies + confidences."""
    registry, pairs = build_workload()
    with ProbDB.from_registry(
        registry,
        EngineConfig(compile_circuits=True),
        persist_circuits=store_path,
    ) as session:
        results = session.lineage(pairs).confidences()
        return {
            "strategies": [result.strategy for _values, result in results],
            "probabilities": [
                result.probability for _values, result in results
            ],
        }


def main() -> int:
    if sys.argv[1:2] == ["verify"]:
        # Session B, running inside the subprocess spawned below.
        print(json.dumps(run_session(sys.argv[2])))
        return 0

    keep_store = "--store" in sys.argv
    if keep_store:
        store_path = sys.argv[sys.argv.index("--store") + 1]
        os.makedirs(os.path.dirname(store_path) or ".", exist_ok=True)
        temp_dir = None
    else:
        temp_dir = tempfile.TemporaryDirectory()
        store_path = os.path.join(temp_dir.name, "circuits.rcir")

    # Session A: cold — every answer goes through the engine, circuits
    # are compiled along the way and saved when the session closes.
    cold = run_session(store_path)
    assert all(s != "circuit" for s in cold["strategies"])
    info = circuit_store_info(store_path)
    print(
        f"session A compiled {info['entries']} circuits "
        f"({info['payload_bytes']} bytes, format v{info['format_version']})"
    )

    # Session B: a fresh interpreter — fresh intern tables, nothing
    # shared but the store file on disk.
    completed = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "verify", store_path],
        capture_output=True,
        text=True,
        env=dict(os.environ),
    )
    if completed.returncode != 0:
        print(completed.stderr, file=sys.stderr)
        return 1
    warm = json.loads(completed.stdout.strip().splitlines()[-1])

    assert all(s == "circuit" for s in warm["strategies"]), (
        f"warm session did not answer from circuits: {warm['strategies']}"
    )
    assert warm["probabilities"] == cold["probabilities"], (
        "cross-process confidences are not bit-identical"
    )
    print(
        f"session B (fresh process) answered all "
        f"{len(warm['strategies'])} queries with strategy 'circuit', "
        "bit-identical to session A"
    )
    if keep_store:
        print(f"store kept at {store_path}")
    if temp_dir is not None:
        temp_dir.cleanup()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
