#!/usr/bin/env python3
"""Serving compiled circuits: compile once, answer forever, over a wire.

End-to-end tour of the serving tier:

1. **Compile & persist** — a session compiles a seeded lineage
   workload into arithmetic circuits and saves the versioned store
   (exactly like ``examples/persist_circuits.py``).
2. **Serve** — a :class:`CircuitStoreService` loads the store into an
   immutable snapshot and a :class:`ServingEngine` answers requests
   against it, micro-batching concurrent same-circuit work into single
   kernel sweeps.  An attached :class:`ConfidenceEngine` handles cold
   lineages the store has never seen.
3. **Ask, concurrently** — an in-process :class:`ASGIClient` drives
   the real ASGI/JSON app (everything but the socket): point
   confidences, a what-if grid, a scenario sweep, top-k ranking, and a
   cold lineage — all launched together, so the stats at the end show
   batch occupancy above 1.
4. **Verify** — every served number is asserted **bit-identical**
   (``==``, not approximately) to the direct in-process circuit call.

Run:  python examples/serve_circuits.py

For a real HTTP endpoint, ``pip install uvicorn`` and call
``repro.serving.serve(stores, engine)`` — the app is plain ASGI 3.
"""

from __future__ import annotations

import asyncio
import os
import random
import tempfile

from repro import DNF, VariableRegistry
from repro.circuits import CircuitCache
from repro.core.events import Clause
from repro.engine import ConfidenceEngine
from repro.serving import (
    ASGIClient,
    CircuitStoreService,
    ServingApp,
    ServingEngine,
)

SEED = 424242
VARIABLES = 14
CIRCUITS = 5


def build_registry() -> VariableRegistry:
    rng = random.Random(SEED)
    registry = VariableRegistry()
    for index in range(VARIABLES):
        registry.add_boolean(f"t{index}", round(rng.uniform(0.1, 0.6), 4))
    return registry


def build_lineages() -> list:
    rng = random.Random(SEED + 1)
    names = [f"t{i}" for i in range(VARIABLES)]
    lineages = []
    for _ in range(CIRCUITS):
        clauses = []
        for _ in range(rng.randint(3, 5)):
            picks = rng.sample(names, rng.randint(1, 3))
            clauses.append(Clause({name: True for name in picks}))
        lineages.append(DNF(clauses))
    return lineages


async def demo(client: ASGIClient, lineages, reference) -> None:
    grid = [0.0, 0.25, 0.5, 0.75, 1.0]
    # Sweep a variable the swept circuit actually reads, so the worlds
    # visibly differ (overrides on absent variables are no-ops).
    swept = next(iter(lineages[1].sorted_clauses()[0].items()))[0]
    scenarios = [None, {swept: 0.9}, {swept: 0.05}]
    cold = DNF(
        [Clause({"t0": True, "t13": True}), Clause({"t5": True})]
    )

    health = await client.healthz()
    print(f"health: {health}")

    # Fire everything at once: the point of the serving tier is that
    # concurrent requests against the same circuits coalesce.
    evaluate_tasks = [
        client.evaluate(lineage, overrides={"t0": 0.7})
        for lineage in lineages
    ]
    responses, what_if, sweep, top_k, cold_response = await asyncio.gather(
        asyncio.gather(*evaluate_tasks),
        client.what_if(lineages[0], "t4", grid),
        client.sweep(lineages[1], scenarios),
        client.top_k(lineages, 3),
        client.evaluate(cold),
    )

    print("\npoint confidences (overrides t0=0.7):")
    for index, response in enumerate(responses):
        expected = reference[index].evaluate({"t0": 0.7})
        assert response["value"] == expected, "wire != direct"
        print(
            f"  q{index}: {response['value']:.6f} "
            f"[{response['strategy']}]"
        )

    expected_grid = [
        reference[0].evaluate({"t4": p}) for p in grid
    ]
    assert what_if["values"] == expected_grid
    print(f"\nwhat-if on t4 over {grid}:")
    print("  " + ", ".join(f"{v:.6f}" for v in what_if["values"]))

    expected_sweep = [reference[1].evaluate(s) for s in scenarios]
    assert sweep["results"] == expected_sweep
    print(f"scenario sweep ({len(scenarios)} worlds): "
          + ", ".join(f"{v:.6f}" for v in sweep["results"]))

    print("\ntop-3 answers by confidence:")
    for label, value in top_k["answers"]:
        print(f"  answer {label}: {value:.6f}")

    print(
        f"\ncold lineage (not in store): {cold_response['value']:.6f} "
        f"via strategy {cold_response['strategy']!r}"
    )

    stats = await client.stats()
    print(
        f"\nserving stats: {stats['requests_total']} requests, "
        f"occupancy {stats['batch_occupancy']:.2f}, "
        f"store hits {stats['store_hits']}, "
        f"engine fallbacks {stats['engine_fallbacks']}, "
        f"p99 {stats['latency']['p99_ms']:.2f} ms"
    )
    assert stats["batch_occupancy"] > 1.0, "batching did not coalesce"


def main() -> None:
    registry = build_registry()
    lineages = build_lineages()

    with tempfile.TemporaryDirectory() as temp_dir:
        store_path = os.path.join(temp_dir, "circuits.rcir")

        # 1. Compile once, persist the store.
        compiler = ConfidenceEngine(registry)
        cache = CircuitCache()
        for lineage in lineages:
            cache.put(lineage, compiler.compile_circuit(lineage))
        count = cache.save(store_path)
        print(f"compiled and persisted {count} circuits -> store")

        # 2. Serve the store (fresh cache objects: the server shares
        #    nothing with the compiling session but the file).
        stores = CircuitStoreService(registry, {"demo": store_path})
        serving = ServingEngine(stores, ConfidenceEngine(registry))
        client = ASGIClient(ServingApp(serving))
        snapshot = stores.snapshot("demo")
        print(
            f"serving store 'demo' version {snapshot.version} "
            f"({len(snapshot)} circuits)\n"
        )

        # 3.+4. Concurrent requests, bit-identity asserted throughout.
        reference = [cache.get(lineage) for lineage in lineages]
        asyncio.run(demo(client, lineages, reference))

    print("\nall served answers bit-identical to direct evaluation ✓")


if __name__ == "__main__":
    main()
