#!/usr/bin/env python3
"""Compile once, ask many questions: circuits, sensitivity, what-if.

A probabilistic graph (each edge exists with its own probability) and
the triangle motif from the paper's Fig. 8 workload.  The lineage of
"the graph contains a triangle" is decomposed once into an arithmetic
circuit; afterwards every question is a linear sweep — no re-run of the
confidence engine:

* re-evaluate the confidence under drifting edge probabilities,
* rank edges by true sensitivity ``∂P(triangle)/∂p(edge)``,
* condition on an edge being observed present or absent,
* re-rank the individual triangles under a hypothetical world.

Run:  python examples/circuit_what_if.py
"""

import random
from itertools import combinations

from repro import EngineConfig, ProbDB
from repro.datasets.graphs import graph_from_edges, triangle_dnf


def main() -> None:
    rng = random.Random(11)
    nodes = range(7)
    graph = graph_from_edges(
        (u, v, round(rng.uniform(0.15, 0.9), 2))
        for u, v in combinations(nodes, 2)
        if rng.random() < 0.75
    )
    dnf = triangle_dnf(graph)
    registry = graph.registry
    print(
        f"{graph}: triangle lineage has {len(dnf)} clauses over "
        f"{len(dnf.variables)} edge variables\n"
    )

    # compile_circuits=True makes every engine answer carry its
    # circuit, and the session cache turns warm queries into sweeps.
    session = ProbDB.from_registry(
        registry, EngineConfig(compile_circuits=True)
    )
    result = session.lineage([(("triangle",), dnf)])
    ((_values, cold),) = result.confidences()
    print(
        f"P(some triangle) = {cold.probability:.6f}   "
        f"(cold: strategy={cold.strategy!r})"
    )
    ((_values, warm),) = session.lineage(
        [(("triangle",), dnf)]
    ).confidences()
    print(
        f"P(some triangle) = {warm.probability:.6f}   "
        f"(warm repeat: strategy={warm.strategy!r} — engine skipped)\n"
    )

    compiled = result.compile()
    circuit = compiled.circuits[0]
    print(f"compiled: {circuit}")

    # --- sensitivity: which edge matters most? -----------------------
    gradients = circuit.gradients()
    ranked = sorted(gradients.items(), key=lambda item: -abs(item[1]))
    print("\nmost influential edges (∂P/∂p, one backward sweep):")
    for edge, gradient in ranked[:5]:
        print(f"  {str(edge):>14}  {gradient:+.6f}")

    # --- what-if: every edge degrades by 20% -------------------------
    degraded = {
        edge: 0.8 * registry.probability(edge, True)
        for edge in registry.variables()
    }
    print(
        f"\nall edges 20% less likely -> P = "
        f"{circuit.evaluate(degraded):.6f}   (one sweep, no engine)"
    )

    # --- conditioning: observe the top edge --------------------------
    top_edge = ranked[0][0]
    present = circuit.condition(top_edge, True).evaluate()
    absent = circuit.condition(top_edge, False).evaluate()
    print(
        f"observe {top_edge}: present -> P = {present:.6f}, "
        f"absent -> P = {absent:.6f}"
    )

    # --- per-triangle what-if ranking --------------------------------
    triangles = []
    for a, b, c in combinations(graph.nodes, 3):
        if (
            graph.has_edge(a, b)
            and graph.has_edge(b, c)
            and graph.has_edge(a, c)
        ):
            lineage = triangle_dnf(
                graph_from_edges(
                    (
                        (u, v, graph.edges[(u, v)])
                        for u, v in combinations((a, b, c), 2)
                    ),
                    registry=registry,
                )
            )
            triangles.append(((a, b, c), lineage))
    per_triangle = session.lineage(triangles).compile()
    print(
        f"\ntop triangles under the degraded world "
        f"({len(triangles)} candidates, circuit re-ranking):"
    )
    for row in per_triangle.what_if_top_k(3, degraded):
        print(f"  {row.values}  P = {row.midpoint():.6f}")


if __name__ == "__main__":
    main()
