#!/usr/bin/env python3
"""The SQL conf() front-end and bounds-based top-k ranking.

Two downstream-facing features, both reached through the ``ProbDB``
session façade:

1. the MayBMS-style SQL syntax of Section VI.A, including the verbatim
   triangle query over a probabilistic social network (self-joins via
   aliases) — ``db.sql(...)`` returns a lazy ``QueryResult``;
2. top-k answer ranking that exploits the d-tree algorithm's *certified
   intervals*: ``QueryResult.top_k(k)`` refines answers only far enough
   to prove the ranking, usually long before any probability is computed
   exactly.

Run:  python examples/sql_and_topk.py
"""

from repro import ProbDB
from repro.core.variables import VariableRegistry
from repro.datasets.tpch import TPCHConfig, generate_tpch
from repro.datasets.tpch_queries import make_query
from repro.db.database import Database
from repro.db.relation import Relation


def sql_demo() -> None:
    # The Fig. 5(a) social network as a tuple-independent edge table.
    registry = VariableRegistry()
    edges = [
        ((5, 7), 0.9), ((5, 11), 0.8), ((6, 7), 0.1),
        ((6, 11), 0.9), ((6, 17), 0.5), ((7, 17), 0.2),
    ]
    db = ProbDB(
        Database(
            registry,
            [Relation.tuple_independent("E", ["u", "v"], edges, registry)],
        )
    )

    triangle_sql = """
        select conf() as triangle_prob
        from E n1, E n2, E n3
        where n1.v = n2.u and n2.v = n3.v and
              n1.u = n3.u and n1.u < n2.u and n2.u < n3.v;
    """
    ((_answer, result),) = db.sql(triangle_sql).confidences()
    print("Section VI.A triangle query")
    print(f"  P(triangle) = {result.probability:.4f}   "
          f"(paper: .1·.5·.2 = 0.0100, via {result.strategy})")

    neighbours = db.sql("""
        select n1.u, conf()
        from E n1
        where n1.v = 17
    """)
    print("\nwho is (probably) friends with 17?")
    for answer, outcome in neighbours.confidences():
        print(f"  node {answer[0]}: {outcome.probability:.3f}")


def topk_demo() -> None:
    db = ProbDB(generate_tpch(TPCHConfig(scale_factor=0.1, seed=1)))
    result = db.query(make_query("15"))  # supplier revenue: s_suppkey

    print(f"\ntop-3 suppliers of query 15 ({len(result)} answers):")
    ranked = result.top_k(3)
    for position, item in enumerate(ranked, start=1):
        print(
            f"  #{position} supplier {item.values[0]}: "
            f"P ∈ [{item.lower:.4f}, {item.upper:.4f}] "
            f"after {item.steps_spent} decomposition steps"
        )
    total_steps = sum(item.steps_spent for item in ranked)
    print(f"  (ranking certified with {total_steps} total steps on the "
          f"returned answers)")


def main() -> None:
    sql_demo()
    topk_demo()


if __name__ == "__main__":
    main()
