#!/usr/bin/env python3
"""The SQL conf() front-end and bounds-based top-k ranking.

Two downstream-facing features built on the paper's machinery:

1. the MayBMS-style SQL syntax of Section VI.A, including the verbatim
   triangle query over a probabilistic social network (self-joins via
   aliases);
2. top-k answer ranking that exploits the d-tree algorithm's *certified
   intervals*: answers are refined only far enough to prove the ranking,
   usually long before any probability is computed exactly.

Run:  python examples/sql_and_topk.py
"""

from repro.core.variables import VariableRegistry
from repro.datasets.tpch import TPCHConfig, generate_tpch
from repro.datasets.tpch_queries import make_query
from repro.db.database import Database
from repro.db.engine import answer_selector, evaluate_to_dnf
from repro.db.relation import Relation
from repro.db.sql import run_conf_query
from repro.db.topk import top_k_answers


def sql_demo() -> None:
    # The Fig. 5(a) social network as a tuple-independent edge table.
    registry = VariableRegistry()
    edges = [
        ((5, 7), 0.9), ((5, 11), 0.8), ((6, 7), 0.1),
        ((6, 11), 0.9), ((6, 17), 0.5), ((7, 17), 0.2),
    ]
    database = Database(
        registry,
        [Relation.tuple_independent("E", ["u", "v"], edges, registry)],
    )

    triangle_sql = """
        select conf() as triangle_prob
        from E n1, E n2, E n3
        where n1.v = n2.u and n2.v = n3.v and
              n1.u = n3.u and n1.u < n2.u and n2.u < n3.v;
    """
    (_answer, probability), = run_conf_query(triangle_sql, database)
    print("Section VI.A triangle query")
    print(f"  P(triangle) = {probability:.4f}   (paper: .1·.5·.2 = 0.0100)")

    neighbours_sql = """
        select n1.u, conf()
        from E n1
        where n1.v = 17
    """
    print("\nwho is (probably) friends with 17?")
    for answer, confidence in run_conf_query(neighbours_sql, database):
        print(f"  node {answer[0]}: {confidence:.3f}")


def topk_demo() -> None:
    database = generate_tpch(TPCHConfig(scale_factor=0.1, seed=1))
    query = make_query("15")  # supplier revenue view: head = s_suppkey
    answers = evaluate_to_dnf(query, database)
    selector = answer_selector(database)

    print(f"\ntop-3 suppliers of query 15 ({len(answers)} answers):")
    ranked = top_k_answers(
        answers, database.registry, 3, choose_variable=selector
    )
    for position, item in enumerate(ranked, start=1):
        print(
            f"  #{position} supplier {item.values[0]}: "
            f"P ∈ [{item.lower:.4f}, {item.upper:.4f}] "
            f"after {item.steps_spent} decomposition steps"
        )
    total_steps = sum(item.steps_spent for item in ranked)
    print(f"  (ranking certified with {total_steps} total steps on the "
          f"returned answers)")


def main() -> None:
    sql_demo()
    topk_demo()


if __name__ == "__main__":
    main()
