#!/usr/bin/env python3
"""Motif confidence in probabilistic social networks (paper, Sec. VI-A/VII-B).

Loads Zachary's karate club with per-edge belief probabilities, then asks
the paper's motif questions — triangle, path-of-length-2, and
two-degrees-of-separation — through one ``ProbDB`` session: the three
motif lineages are answered as a *single batched anytime computation*
(``QueryResult.confidences()`` over shared lineage), compared against the
aconf Monte-Carlo baseline.

Also demonstrates the relational route: the triangle query expressed as a
three-way self-join over the edge table, exactly like the conf() SQL query
in Section VI.A of the paper.

Run:  python examples/social_network_motifs.py
"""

import time

from repro import EngineConfig, ProbDB
from repro.datasets.graphs import (
    path2_dnf,
    separation2_dnf,
    triangle_dnf,
)
from repro.datasets.social import karate_club_network
from repro.db.cq import ConjunctiveQuery, Inequality, SubGoal, Var
from repro.mc import aconf


def main() -> None:
    network = karate_club_network()
    registry = network.registry
    print(
        f"karate club: {len(network.nodes)} members, "
        f"{network.edge_count()} probabilistic friendships"
    )

    motifs = [
        (("triangle",), triangle_dnf(network)),
        (("path of length 2",), path2_dnf(network)),
        (("separation ≤ 2 (nodes 0, 33)",), separation2_dnf(network, 0, 33)),
    ]

    # One session, one EngineConfig, one shared decomposition cache: the
    # three motif confidences run as a single batched computation.
    session = ProbDB.from_registry(
        registry, EngineConfig(epsilon=0.01, error_kind="relative")
    )
    started = time.perf_counter()
    batched = session.lineage(motifs).confidences()
    elapsed = time.perf_counter() - started

    print(f"\n{'query':<30} {'engine(rel 0.01)':>18} {'strategy':>10} "
          f"{'steps':>7}   {'aconf(0.05)':>12}")
    for (values, result), (_v, dnf) in zip(batched, motifs):
        mc = aconf(
            dnf, registry, epsilon=0.05, delta=0.01, seed=7,
            max_samples=200_000,
        )
        flag = "" if not mc.capped else " (capped)"
        print(
            f"{values[0]:<30} {result.probability:>18.6f} "
            f"{result.strategy:>10} {result.steps:>7}   "
            f"{mc.estimate:>12.6f}{flag}"
        )
    print(f"(batch wall-clock: {elapsed:.3f}s, "
          f"cache: {session.cache_stats()})")

    # ------------------------------------------------------------------
    # The same triangle question through the query engine (self-join),
    # as in the paper's SQL example.
    # ------------------------------------------------------------------
    db = ProbDB(
        network.to_database(),
        EngineConfig(epsilon=0.01, error_kind="relative"),
    )
    x, y, z = Var("X"), Var("Y"), Var("Z")
    triangle_query = ConjunctiveQuery(
        [],
        [
            SubGoal("E", [x, y]),
            SubGoal("E", [y, z]),
            SubGoal("E", [x, z]),
        ],
        [Inequality(x, "<", y), Inequality(y, "<", z)],
        name="triangle",
    )
    result = db.query(triangle_query)
    ((_values, outcome),) = result.confidences()
    ((_same_values, lineage),) = result.lineage()
    print(
        f"\nvia relational self-join: {len(lineage)} lineage clauses, "
        f"P(triangle) ≈ {outcome.probability:.6f} "
        f"(routed to {db.explain(triangle_query).engine_strategy!r}: "
        f"self-join)"
    )


if __name__ == "__main__":
    main()
