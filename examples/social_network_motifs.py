#!/usr/bin/env python3
"""Motif confidence in probabilistic social networks (paper, Sec. VI-A/VII-B).

Loads Zachary's karate club with per-edge belief probabilities, then asks
the paper's four motif questions — triangle, path-of-length-2,
path-of-length-3, and two-degrees-of-separation — with the d-tree
algorithm, comparing against the aconf Monte-Carlo baseline.

Also demonstrates the relational route: the triangle query expressed as a
three-way self-join over the edge table, exactly like the conf() SQL query
in Section VI.A of the paper.

Run:  python examples/social_network_motifs.py
"""

import time

from repro.core.approx import approximate_probability
from repro.datasets.graphs import (
    path2_dnf,
    separation2_dnf,
    triangle_dnf,
)
from repro.datasets.social import karate_club_network
from repro.db.cq import ConjunctiveQuery, Inequality, SubGoal, Var
from repro.db.engine import evaluate
from repro.mc import aconf


def main() -> None:
    network = karate_club_network()
    registry = network.registry
    print(
        f"karate club: {len(network.nodes)} members, "
        f"{network.edge_count()} probabilistic friendships"
    )

    queries = {
        "triangle": triangle_dnf(network),
        "path of length 2": path2_dnf(network),
        "separation ≤ 2 (nodes 0, 33)": separation2_dnf(network, 0, 33),
    }

    print(f"\n{'query':<30} {'d-tree(rel 0.01)':>18} {'steps':>7} "
          f"{'time':>8}   {'aconf(0.05)':>12}")
    for name, dnf in queries.items():
        started = time.perf_counter()
        result = approximate_probability(
            dnf, registry, epsilon=0.01, error_kind="relative"
        )
        elapsed = time.perf_counter() - started
        mc = aconf(
            dnf, registry, epsilon=0.05, delta=0.01, seed=7,
            max_samples=200_000,
        )
        flag = "" if not mc.capped else " (capped)"
        print(
            f"{name:<30} {result.estimate:>18.6f} {result.steps:>7} "
            f"{elapsed:>7.3f}s   {mc.estimate:>12.6f}{flag}"
        )

    # ------------------------------------------------------------------
    # The same triangle question through the query engine (self-join),
    # as in the paper's SQL example.
    # ------------------------------------------------------------------
    db = network.to_database()
    x, y, z = Var("X"), Var("Y"), Var("Z")
    triangle_query = ConjunctiveQuery(
        [],
        [
            SubGoal("E", [x, y]),
            SubGoal("E", [y, z]),
            SubGoal("E", [x, z]),
        ],
        [Inequality(x, "<", y), Inequality(y, "<", z)],
        name="triangle",
    )
    answers = evaluate(triangle_query, db)
    dnf = answers[0].lineage.to_dnf()
    result = approximate_probability(
        dnf, registry, epsilon=0.01, error_kind="relative"
    )
    print(
        f"\nvia relational self-join: {len(dnf)} lineage clauses, "
        f"P(triangle) ≈ {result.estimate:.6f}"
    )


if __name__ == "__main__":
    main()
