#!/usr/bin/env python3
"""Confidence computation on probabilistic TPC-H (paper, Section VII.A).

Generates a tuple-independent TPC-H database, opens one ``ProbDB``
session over it, and for each query of the paper's suite compares:

* SPROUT      — exact, query-aware (hierarchical queries only);
* d-tree(0)   — exact, generic;
* session     — ``ProbDB.query(q).confidences()``: the planner picks
                read-once / SPROUT / d-tree(rel 0.01) per query and
                answer, batching the whole answer set on one cache;
* aconf       — the Monte-Carlo baseline (work-capped).

This is a miniature of Fig. 6 of the paper; the benchmark suite under
``benchmarks/`` runs the full sweeps.

Run:  python examples/tpch_confidence.py
"""

import time

from repro import EngineConfig, ProbDB
from repro.core.exact import exact_probability
from repro.datasets.tpch import TPCHConfig, generate_tpch
from repro.datasets.tpch_queries import (
    HARD_QUERIES,
    HIERARCHICAL_QUERIES,
    IQ_QUERIES,
    make_query,
)
from repro.db.engine import answer_selector
from repro.db.sprout import UnsafeQueryError, sprout_confidence
from repro.mc import aconf


def timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def main() -> None:
    config = TPCHConfig(scale_factor=0.1, seed=1)
    database = generate_tpch(config)
    selector = answer_selector(database)
    registry = database.registry
    session = ProbDB(
        database,
        EngineConfig(epsilon=0.01, error_kind="relative"),
    )
    print(
        "probabilistic TPC-H at scale factor "
        f"{config.scale_factor}: "
        + ", ".join(
            f"{name}={len(database[name])}"
            for name in database.relation_names()
        )
    )
    print(f"session config: {session.config.describe()}")

    suites = [
        ("hierarchical", HIERARCHICAL_QUERIES),
        ("inequality (IQ)", IQ_QUERIES),
        ("#P-hard", HARD_QUERIES),
    ]
    for suite_name, suite in suites:
        print(f"\n== {suite_name} queries ==")
        print(
            f"{'query':<7} {'answers':>7} {'clauses':>8} "
            f"{'sprout':>10} {'d-tree(0)':>10} {'session':>10} "
            f"{'aconf':>10}  strategies"
        )
        for name in suite:
            query = make_query(name)
            result = session.query(query)
            answers, _t = timed(result.lineage)
            clauses = sum(len(dnf) for _v, dnf in answers)

            try:
                _sprout, sprout_time = timed(
                    lambda: sprout_confidence(query, database)
                )
                sprout_cell = f"{sprout_time:>9.3f}s"
            except UnsafeQueryError:
                sprout_cell = f"{'n/a':>10}"

            if name == "B9":
                exact_cell = f"{'skipped':>10}"
            else:
                _exact, exact_time = timed(
                    lambda: [
                        exact_probability(
                            dnf, registry, choose_variable=selector
                        )
                        for _v, dnf in answers
                    ]
                )
                exact_cell = f"{exact_time:>9.3f}s"

            confidences, session_time = timed(result.confidences)
            strategies = ",".join(
                sorted({r.strategy for _v, r in confidences})
            )

            _mc, mc_time = timed(
                lambda: [
                    aconf(
                        dnf,
                        registry,
                        epsilon=0.1,
                        delta=0.01,
                        seed=0,
                        max_samples=20_000,
                    )
                    for _v, dnf in answers
                ]
            )

            print(
                f"{name:<7} {len(answers):>7} {clauses:>8} "
                f"{sprout_cell} {exact_cell} {session_time:>9.3f}s "
                f"{mc_time:>9.3f}s  [{strategies}]"
            )

    print(
        "\nNote: aconf is work-capped at 20k samples per answer here; "
        "see benchmarks/ for the full Fig. 6/7 reproductions."
    )


if __name__ == "__main__":
    main()
