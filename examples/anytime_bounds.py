#!/usr/bin/env python3
"""The d-tree algorithm as an *anytime* algorithm (paper, Section I/V).

"Being incremental, the algorithm is also useful under a given time
budget."  This example makes that concrete: a hard-query lineage on a
random graph is approximated under increasing step budgets, and the
certified probability interval narrows monotonically toward the exact
value — every intermediate interval is sound.

Run:  python examples/anytime_bounds.py
"""

from repro.core.approx import approximate_probability
from repro.core.semantics import brute_force_probability
from repro.datasets.graphs import random_graph, triangle_dnf


def main() -> None:
    graph = random_graph(7, 0.3)
    dnf = triangle_dnf(graph)
    registry = graph.registry
    truth = brute_force_probability(dnf, registry)
    print(
        f"triangle lineage on a 7-clique: {len(dnf)} clauses over "
        f"{len(dnf.variables)} edges; exact P = {truth:.6f}\n"
    )

    print(f"{'budget':>7} {'lower':>10} {'upper':>10} {'width':>10} "
          f"{'converged':>10}")
    for budget in (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, None):
        result = approximate_probability(
            dnf,
            registry,
            epsilon=0.0,
            max_steps=budget,
        )
        label = "∞" if budget is None else str(budget)
        print(
            f"{label:>7} {result.lower:>10.6f} {result.upper:>10.6f} "
            f"{result.width():>10.6f} {str(result.converged):>10}"
        )
        assert result.lower - 1e-9 <= truth <= result.upper + 1e-9

    final = approximate_probability(dnf, registry, epsilon=0.0)
    print(
        f"\nnode kinds constructed: {final.node_histogram} "
        f"(leaves closed: {final.leaves_closed}, "
        f"exact leaves folded: {final.leaves_exact})"
    )


if __name__ == "__main__":
    main()
