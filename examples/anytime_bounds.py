#!/usr/bin/env python3
"""The d-tree algorithm as an *anytime* algorithm (paper, Section I/V).

"Being incremental, the algorithm is also useful under a given time
budget."  This example makes that concrete through the session façade:
``QueryResult.bounds()`` is an anytime iterator of certified interval
snapshots — a hard-query lineage on a random graph is refined step by
step, and every intermediate interval is sound and narrows monotonically
toward the exact value.  Stop consuming whenever the answer is good
enough.

Run:  python examples/anytime_bounds.py
"""

from repro import EngineConfig, ProbDB
from repro.core.semantics import brute_force_probability
from repro.datasets.graphs import random_graph, triangle_dnf


def main() -> None:
    graph = random_graph(7, 0.3)
    dnf = triangle_dnf(graph)
    registry = graph.registry
    truth = brute_force_probability(dnf, registry)
    print(
        f"triangle lineage on a 7-clique: {len(dnf)} clauses over "
        f"{len(dnf.variables)} edges; exact P = {truth:.6f}\n"
    )

    # One session = one planner + one decomposition cache.  The config
    # forces the d-tree path (no read-once shortcut) and starts the
    # anytime refinement from a single-step budget.
    session = ProbDB.from_registry(
        registry,
        EngineConfig(epsilon=0.0, try_read_once=False, initial_steps=1),
    )
    result = session.lineage([(("triangle",), dnf)])

    print(f"{'steps':>7} {'lower':>10} {'upper':>10} {'width':>10} "
          f"{'converged':>10}")
    shown = 0
    for snapshot in result.bounds():
        ((_values, lower, upper),) = snapshot.intervals
        # The iterator yields after every refinement; print a sample.
        if shown % 4 == 0 or snapshot.converged:
            print(
                f"{snapshot.total_steps:>7} {lower:>10.6f} "
                f"{upper:>10.6f} {upper - lower:>10.6f} "
                f"{str(snapshot.converged):>10}"
            )
        shown += 1
        assert lower - 1e-9 <= truth <= upper + 1e-9

    final = session.confidence(dnf)
    details = final.details["dtree"]
    print(
        f"\nfinal: P = {final.probability:.6f} via {final.strategy} "
        f"(node kinds: {details.node_histogram}, "
        f"leaves closed: {details.leaves_closed}, "
        f"exact leaves folded: {details.leaves_exact})"
    )


if __name__ == "__main__":
    main()
