"""Sharded parallel execution of batched confidence computation.

The paper's anytime d-tree decomposition is embarrassingly parallel
across answer tuples: each lineage DNF is an independent computation
against a shared, read-only probability space.  This module is the
execution layer that exploits it — :class:`ShardedBatchComputation`
partitions a batch of interned lineages across a pool of workers, runs a
full :class:`~repro.engine.ConfidenceEngine` (with its own
:class:`~repro.core.memo.DecompositionCache`) in every worker, and
merges the per-shard results deterministically.

It is a drop-in sibling of :class:`~repro.engine.BatchComputation`: the
same attributes and methods, so :meth:`ConfidenceEngine.compute_many`,
top-k ranking, and the session façade's ``bounds()`` iterator drive it
unchanged.  ``workers``/``executor_kind`` on
:class:`~repro.engine.EngineConfig` (or the per-call overrides) select
it; the default ``workers=1`` keeps every path serial.

Executor kinds
--------------
``"process"``
    A :class:`~concurrent.futures.ProcessPoolExecutor`.  Escapes the
    GIL — the only way CPU-bound d-tree work actually scales — at the
    cost of pool start-up and per-task pickling.  The pool initializer
    ships three things **once per worker**, not per task: the
    process-wide intern-table snapshot
    (:func:`~repro.core.variables.intern_snapshot`), the registry, and
    the engine config.  After the snapshot is installed, clauses and
    DNFs cross the boundary as bare integer-id tuples (see
    ``Clause.__reduce__``), which keeps task payloads tiny.
``"thread"``
    A :class:`~concurrent.futures.ThreadPoolExecutor` over per-shard
    engines in the current process.  No pickling, no start-up cost, one
    shared intern table — but GIL-bound, so it parallelises nothing
    CPU-heavy.  It exists for cheap differential testing of the sharded
    machinery and for workloads dominated by waiting (deadlines).

Work-stealing refinement schedule
---------------------------------
Refinement proceeds in rounds.  Each round the coordinator collects the
refinable tuples (unconverged, budget headroom left), orders them by
certified interval width — widest, i.e. most ambiguous, first — and
deals the top ``shards`` of them round-robin across the shards.  A tuple
is *not* pinned to the shard that previously refined it: the widest
intervals are rebalanced across the whole pool every round, so one shard
stuck with all the hard tuples sheds them to idle siblings (at the price
of re-warming a different worker's cache, which the decomposition memo
makes cheap).  Within a shard, the dealt tuples are processed in that
same width order.

Determinism
-----------
Shard assignment, round scheduling, and merge order are pure functions
of the input batch — no reliance on pool completion order.  Exact
strategies (trivial / read-once / converged ``ε = 0`` d-tree) therefore
return bit-identical probabilities to the serial path; anytime runs
return certified bounds that are sound by the same argument as the
serial path's (and are intersected monotonically across rounds).  The
differential suite in ``tests/test_parallel_differential.py`` enforces
both properties.
"""

from __future__ import annotations

import os
import pickle
import threading
import weakref
from contextlib import contextmanager
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .circuits.serialize import (
    decode_circuit,
    encode_cache_slice,
    encode_circuit,
    merge_cache_slice,
)
from .core import clock
from .core.dnf import DNF
from .core.events import Clause
from .core.formulas import Formula
from .core.memo import DecompositionCache
from .core.variables import (
    InternSnapshot,
    VariableRegistry,
    install_intern_snapshot,
    intern_snapshot,
    intern_version,
)
from .engine import (
    ConfidenceEngine,
    EngineConfig,
    EngineResult,
    Lineage,
    _circuit_refine_result,
    _merge_refined,
    _wants_exact_circuit,
    resumable_circuit,
)

__all__ = ["ShardedBatchComputation", "WorkerPool", "build_worker_engine"]

#: ``(index, dnf, step budget)`` — one unit of shard work.  The process
#: path ships the DNF through the interned-id codec below instead of
#: the (safe but heavier) name-based pickle encoding.
_WorkItem = Tuple[int, object, Optional[int]]

#: A DNF as nested interned-id tuples — one tuple of small ints per
#: clause.  Valid only between snapshot-synchronised processes.
_EncodedDNF = Tuple[Tuple[int, ...], ...]


def _encode_dnf(dnf: DNF) -> _EncodedDNF:
    """Cheap wire form for pool tasks: bare atom-id tuples.

    Public ``pickle`` of a DNF re-interns by variable/value names so it
    is safe anywhere; this codec skips that for the pool's hot path,
    which is sound because every pool worker replayed the coordinator's
    intern snapshot in its initializer.
    """
    return tuple(clause.atom_ids for clause in dnf.sorted_clauses())


def _decode_dnf(encoded: _EncodedDNF) -> DNF:
    return DNF(Clause._from_atom_ids(ids) for ids in encoded)
#: ``(per-item results, cache stats, worker key)`` — one task's report.
_ShardReport = Tuple[List[Tuple[int, EngineResult]], Dict[str, int], object]

#: ``(index, circuit record)`` — one compiled and serialized final
#: answer; a ``None`` record means the worker could not serialize it
#: (coordinator falls back to compiling that index itself).
_CircuitPayload = Tuple[int, Optional[bytes]]
#: ``(circuit payloads, union cache slice, cache stats, worker key)``.
_CompileReport = Tuple[
    List[_CircuitPayload], Optional[bytes], Dict[str, int], object
]

# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------
#: The per-process engine built by :func:`_process_worker_init`.  One per
#: pool worker, owning its own DecompositionCache for the pool's
#: lifetime, so repeated refinement rounds resume instead of restarting.
_WORKER_ENGINE: Optional[ConfidenceEngine] = None


def build_worker_engine(
    snapshot: InternSnapshot,
    registry: VariableRegistry,
    config: EngineConfig,
) -> ConfidenceEngine:
    """Install a coordinator's intern snapshot and build a worker engine.

    The one true recipe for standing up a shard process: replay the
    intern-table snapshot first (so id-encoded clauses deserialise
    correctly and ids stay stable both ways), then build a private
    engine + cache on top.  Used by this module's pool initializer and
    by :mod:`repro.serving.fleet` worker processes, which must agree
    with the pools on intern-id semantics to share persisted stores.
    """
    install_intern_snapshot(snapshot)
    return ConfidenceEngine(registry, config)


def _process_worker_init(
    snapshot: InternSnapshot,
    registry: VariableRegistry,
    config: EngineConfig,
) -> None:
    """Process-pool initializer: runs once per worker process."""
    global _WORKER_ENGINE
    _WORKER_ENGINE = build_worker_engine(snapshot, registry, config)


def _run_items(
    engine: ConfidenceEngine,
    items: Sequence[_WorkItem],
    epsilon: float,
    error_kind: str,
    deadline_remaining: Optional[float],
    worker_key: object,
) -> _ShardReport:
    """Compute every item of one shard task, in order, on one engine.

    The MC rung is always disabled here: sampling fallback runs exactly
    once, on the coordinator, after all refinement (so seeded runs don't
    depend on shard assignment).
    """
    started = clock.monotonic()
    out: List[Tuple[int, EngineResult]] = []
    for index, dnf, budget in items:
        remaining = (
            None
            if deadline_remaining is None
            else max(
                deadline_remaining - (clock.monotonic() - started), 0.0
            )
        )
        result = engine.compute(
            dnf,
            epsilon=epsilon,
            error_kind=error_kind,
            max_steps=budget,
            deadline_seconds=remaining,
            mc_fallback=False,
        )
        out.append((index, result))
    return out, engine.cache.stats(), worker_key


def _process_run_items(
    items: Sequence[_WorkItem],
    epsilon: float,
    error_kind: str,
    deadline_remaining: Optional[float],
) -> _ShardReport:
    """Process-pool task body: decode the id-encoded DNFs and run them
    on the per-process engine."""
    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker engine missing: initializer did not run")
    decoded = [
        (index, _decode_dnf(encoded), budget)
        for index, encoded, budget in items
    ]
    return _run_items(
        engine, decoded, epsilon, error_kind, deadline_remaining,
        os.getpid(),
    )


def _compile_items(
    engine: ConfidenceEngine,
    items: Sequence[_WorkItem],
    worker_key: object,
) -> _CompileReport:
    """Compile one shard's final-answer circuits and serialize them.

    Runs on the same worker (and cache) that just decomposed the
    lineage, so compilation is a warm replay.  Each circuit ships as a
    name-based :mod:`repro.circuits.serialize` record — valid in any
    process — and the whole shard ships **one union slice** of the
    decomposition-cache cones its compiles walked (shared cones are
    serialized once), so the coordinator can both attach the circuits
    *and* warm its own cache without re-decomposing anything.

    Thread pools run the very same codec even though they could hand
    objects across directly — deliberately: the cheap thread-pool
    differential suites then exercise exactly the wire path the
    process pool uses, and thread pools are the testing/deadline
    executor, not the CPU-throughput one.
    """
    out: List[_CircuitPayload] = []
    compiled: List[DNF] = []
    for index, dnf, max_nodes in items:
        circuit = engine.compile_circuit(dnf, max_nodes=max_nodes)
        try:
            payload = encode_circuit(circuit)
        except Exception:
            # Unserializable variable names (possible on thread pools,
            # which never pickle anything): fall back to a coordinator
            # compile for this index rather than failing the batch.
            out.append((index, None))
            continue
        out.append((index, payload))
        compiled.append(dnf)
    slice_payload: Optional[bytes] = None
    if compiled:
        try:
            slice_payload = encode_cache_slice(engine.cache, *compiled)
        except Exception:
            slice_payload = None  # circuits still ship; cache stays cold
    return out, slice_payload, engine.cache.stats(), worker_key


def _process_compile_items(items: Sequence[_WorkItem]) -> _CompileReport:
    """Process-pool task body for the final circuit-compile round."""
    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker engine missing: initializer did not run")
    decoded = [
        (index, _decode_dnf(encoded), budget)
        for index, encoded, budget in items
    ]
    return _compile_items(engine, decoded, os.getpid())


def _worker_probe(encoded: _EncodedDNF):
    """Decode an id-encoded DNF and report structure *and* ids.

    Test hook for the pickle/snapshot property suite: a spawn-started
    worker (fresh, empty intern tables until the initializer replayed
    the snapshot) decodes bare atom ids and reports what it sees —
    the parent asserts the ids mapped back to the very same variables
    and values, and that re-interning them yields the same ids.
    """
    dnf = _decode_dnf(encoded)
    return [
        (
            clause.atom_ids,
            sorted(clause.items(), key=lambda item: repr(item)),
        )
        for clause in dnf.sorted_clauses()
    ]


# ----------------------------------------------------------------------
# Engine-lifetime worker pools
# ----------------------------------------------------------------------
class WorkerPool:
    """An executor (plus per-worker engines) amortized across batches.

    Historically every :class:`ShardedBatchComputation` built and tore
    down its own pool — correct, but a ``workers=N`` session serving
    many small queries paid pool start-up per call and every worker's
    decomposition cache restarted cold.  A :class:`WorkerPool` instead
    lives on the :class:`~repro.engine.ConfidenceEngine`
    (``engine._worker_pool``) for the engine's lifetime and is shared
    by every batch the engine runs.

    Staleness: a process pool ships the intern-table snapshot once per
    worker at start-up, and tasks cross the boundary as bare interned
    ids — valid only while the coordinator's tables match the shipped
    snapshot.  The pool therefore records its snapshot's
    :func:`~repro.core.variables.intern_version`;
    :func:`acquire_worker_pool` compares it per round and rebuilds the
    pool (re-shipping a fresh snapshot) only when new atoms were
    interned since pool start.  Thread pools share the process's
    tables and never go stale; their per-shard engines (and caches)
    persist warm across batches.

    Concurrency: a shared pool serializes *rounds* via
    :attr:`round_lock` — two batches driving one engine from different
    threads interleave whole rounds instead of racing the per-shard
    worker engines (which are single-threaded by design), and a stale
    pool is only ever closed between rounds, never under one.
    """

    __slots__ = (
        "kind",
        "size",
        "registry",
        "config",
        "executor",
        "thread_engines",
        "snapshot_version",
        "round_lock",
        "_finalizer",
        "__weakref__",
    )

    def __init__(
        self,
        registry: VariableRegistry,
        config: EngineConfig,
        kind: str,
        size: int,
    ) -> None:
        self.kind = kind
        self.size = size
        self.registry = registry
        self.config = config
        self.thread_engines: Optional[List[ConfidenceEngine]] = None
        self.snapshot_version: Optional[Tuple[int, int]] = None
        self.round_lock = threading.Lock()
        if kind == "thread":
            self.thread_engines = [
                ConfidenceEngine(registry, config) for _ in range(size)
            ]
            executor: Executor = ThreadPoolExecutor(
                max_workers=size,
                thread_name_prefix="repro-shard",
            )
        else:
            try:
                payload = pickle.dumps((registry, config))
            except Exception as exc:
                raise ValueError(
                    "process-pool execution needs a picklable registry "
                    "and EngineConfig; choose_variable closures are the "
                    "usual culprit — use a picklable selector (e.g. "
                    "repro.core.orders.CompositeSelector) or "
                    "executor_kind='thread'"
                ) from exc
            del payload
            mp_context = None
            import multiprocessing

            # fork (where available) shares the parent's pages — intern
            # tables included — making the snapshot install a cheap
            # verification replay; spawn pays a fresh-interpreter start
            # but replays the snapshot for real.
            if "fork" in multiprocessing.get_all_start_methods():
                mp_context = multiprocessing.get_context("fork")
            snapshot = intern_snapshot()
            # Version derived from the snapshot itself, so the staleness
            # comparison is exact even if another thread interns between
            # the snapshot and this assignment.
            self.snapshot_version = (len(snapshot[0]), len(snapshot[1]))
            executor = ProcessPoolExecutor(
                max_workers=size,
                mp_context=mp_context,
                initializer=_process_worker_init,
                initargs=(snapshot, registry, config),
            )
        self.executor = executor
        # GC backstop: must capture the executor, never ``self``.
        self._finalizer = weakref.finalize(
            self, _shutdown_executor, executor
        )

    def serves(self, kind: str, shards: int, config: EngineConfig) -> bool:
        """Can this pool run a round of ``shards`` tasks as configured?"""
        if self.kind != kind or self.size < shards:
            return False
        if self.config != config:
            return False
        if self.kind == "process":
            return self.snapshot_version == intern_version()
        return True

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        if self._finalizer is not None:
            self._finalizer()  # runs _shutdown_executor exactly once
        self.thread_engines = None

    def __repr__(self) -> str:
        return (
            f"WorkerPool({self.size} {self.kind} workers, "
            f"snapshot_version={self.snapshot_version})"
        )


def acquire_worker_pool(
    engine: ConfidenceEngine,
    kind: str,
    shards: int,
    size: int,
    config: EngineConfig,
) -> WorkerPool:
    """The engine's worker pool for ``kind``, (re)built only when it
    cannot serve.

    One slot per executor kind (interleaved thread- and process-pool
    batches don't evict each other); within a kind, reuse requires the
    same shard config, enough workers, and — for process pools — no
    atoms interned since the pool's snapshot was shipped.  On a
    rebuild the old pool is shut down first; ``engine._pool_starts``
    counts builds (observable by tests and benchmarks as the
    amortization measure).
    """
    with engine._pool_lock:
        stale = engine._worker_pools.get(kind)
        if stale is not None and stale.serves(kind, shards, config):
            return stale
        if stale is not None:
            del engine._worker_pools[kind]
        pool = WorkerPool(
            engine.registry, config, kind, max(shards, size)
        )
        engine._worker_pools[kind] = pool
        engine._pool_starts += 1
    if stale is not None:
        # Shut the displaced pool down outside the engine lock, and
        # never mid-round: a concurrent batch may be inside one (it
        # re-acquires per round and heals onto the new pool).  The
        # only lock nesting anywhere is round_lock -> engine lock
        # (_evict_pool), so waiting on round_lock here cannot deadlock.
        with stale.round_lock:
            stale.close()
    return pool


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
class ShardedBatchComputation:
    """Anytime batched refinement fanned out across a worker pool.

    Drop-in interface twin of :class:`~repro.engine.BatchComputation`
    (``results`` / ``budgets`` / ``total_steps`` / ``converged`` /
    ``refinable`` / ``widest`` / ``refine`` / ``step`` …), so every
    consumer of the serial batch drives a sharded one unchanged.

    Parameters mirror :meth:`ConfidenceEngine.refine_many`, plus:

    workers:
        Pool size; shards = ``min(workers, len(batch))``.
    executor_kind:
        ``"process"`` or ``"thread"`` (engine-config default when
        ``None``); see the module docstring for the trade-off.
    run_to_guarantee:
        When true, the initial pass gives every tuple its *full*
        per-call budget (``max_steps``, possibly unbounded) instead of
        ``initial_steps`` — the parallel analogue of the serial
        unbudgeted ``compute_many`` path, one task per shard.

    The worker pool is **engine-lifetime** (see :class:`WorkerPool`):
    acquired from the coordinating engine on first execution, reused
    across batches with warm worker caches, and rebuilt only when it
    cannot serve (kind/size mismatch, or — process pools — new atoms
    interned since its snapshot shipped).  :meth:`close` merely drops
    this batch's reference; retire the pool with
    ``ConfidenceEngine.close()`` or let the GC finalizer reap it.  The
    coordinating engine is *never* called for d-tree work here — every
    decomposition runs on a worker engine with its own cache;
    per-worker cache statistics are aggregated in :meth:`cache_stats`.
    """

    def __init__(
        self,
        engine: ConfidenceEngine,
        lineages: Iterable[Lineage],
        *,
        workers: int,
        executor_kind: Optional[str] = None,
        epsilon: Optional[float] = None,
        error_kind: Optional[str] = None,
        initial_steps: Optional[int] = None,
        step_growth: Optional[int] = None,
        max_steps: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        run_to_guarantee: bool = False,
    ) -> None:
        config = engine.config
        self.engine = engine
        self.epsilon = config.epsilon if epsilon is None else epsilon
        self.error_kind = (
            config.error_kind if error_kind is None else error_kind
        )
        if initial_steps is None:
            initial_steps = config.initial_steps
        self.step_growth = (
            config.step_growth if step_growth is None else step_growth
        )
        # Mirror BatchComputation: the refinement cap is the *argument*
        # (engine-config max_steps applies per compute call, not here).
        self.max_steps = max_steps
        self.deadline_seconds = (
            config.deadline_seconds
            if deadline_seconds is None
            else deadline_seconds
        )
        self.dnfs: List[DNF] = [
            lineage.to_dnf() if isinstance(lineage, Formula) else lineage
            for lineage in lineages
        ]
        if not self.dnfs:
            raise ValueError("sharded batch needs at least one lineage")
        self.workers = max(1, int(workers))
        self.executor_kind = (
            config.executor_kind if executor_kind is None else executor_kind
        )
        if self.executor_kind not in ("process", "thread"):
            raise ValueError(
                "executor_kind must be 'process' or 'thread', got "
                f"{self.executor_kind!r}"
            )
        self.shards = min(self.workers, len(self.dnfs))
        # Workers never recurse into sharding, never sample (MC is
        # finalized on the coordinator, deterministic under rng_seed),
        # and never compile circuits mid-refinement (round results are
        # replaced, and payloads stay small); final-answer circuits
        # are compiled in one dedicated round and shipped back
        # serialized (compile_final_circuits).
        self._shard_config = config.replace(
            workers=1, mc_fallback=False, max_total_steps=None,
            compile_circuits=False,
        )
        self._started = clock.monotonic()
        self._pool: Optional[WorkerPool] = None
        #: Latest cache stats per worker (shard id for threads, pid for
        #: processes) — the ingredients of :meth:`cache_stats`.
        self.worker_stats: Dict[object, Dict[str, int]] = {}

        self._single_pass = run_to_guarantee
        self.budgets: List[Optional[int]]
        if run_to_guarantee:
            # Full per-call budget, resolved the way compute() would:
            # the explicit argument, else the engine config's cap.
            full = (
                config.max_steps if max_steps is None else max_steps
            )
            self.budgets = [full] * len(self.dnfs)
        else:
            self.budgets = [
                self._capped(initial_steps) for _ in self.dnfs
            ]
        self.total_steps = 0
        self.results: List[EngineResult] = [None] * len(self.dnfs)  # type: ignore[list-item]
        # Initial pass: every tuple once, dealt round-robin by index.
        self._execute_round(list(range(len(self.dnfs))), initial=True)

    # -- budget / deadline bookkeeping (serial-batch semantics) ----------
    def _capped(self, budget: int) -> int:
        if self.max_steps is not None:
            return min(budget, self.max_steps)
        return budget

    def remaining_seconds(self) -> Optional[float]:
        """Time left on the whole-batch deadline (``None`` = unbounded)."""
        if self.deadline_seconds is None:
            return None
        return self.deadline_seconds - (clock.monotonic() - self._started)

    def out_of_time(self) -> bool:
        remaining = self.remaining_seconds()
        return remaining is not None and remaining <= 0.0

    def converged(self) -> bool:
        """Has every tuple certified the requested guarantee?"""
        return all(result.converged for result in self.results)

    def refinable(
        self, indices: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Indices that can still make progress (unconverged, headroom)."""
        if indices is None:
            indices = range(len(self.dnfs))
        out = []
        for index in indices:
            if self.results[index].converged:
                continue
            budget = self.budgets[index]
            if budget is None:
                continue  # already ran unbounded: nothing left to grow
            if self.max_steps is not None and budget >= self.max_steps:
                continue
            out.append(index)
        return out

    def widest(
        self, indices: Optional[Sequence[int]] = None
    ) -> Optional[int]:
        """The refinable tuple with the widest certified interval."""
        candidates = self.refinable(indices)
        if not candidates:
            return None
        return max(
            candidates, key=lambda index: self.results[index].width()
        )

    def __len__(self) -> int:
        return len(self.dnfs)

    # -- executor plumbing ----------------------------------------------
    def _ensure_executor(self) -> Executor:
        """The engine's pool, re-validated every round.

        Revalidation is two integer comparisons in the warm case; a
        rebuild only happens when the pool cannot serve this batch —
        wrong kind, too few workers, or (process pools) new atoms
        interned since the snapshot was shipped.
        """
        pool = acquire_worker_pool(
            self.engine,
            self.executor_kind,
            self.shards,
            self.workers,
            self._shard_config,
        )
        self._pool = pool
        return pool.executor

    @contextmanager
    def _locked_round(
        self, executor: Optional[Executor] = None
    ) -> Iterator[Executor]:
        """Hold the pool's round lock around one parallel round.

        Whole rounds serialize on the pool: concurrent batches on one
        engine interleave rounds instead of racing the single-threaded
        per-shard worker engines.  Between acquisition and locking, a
        concurrent acquire may have displaced (and closed) our pool —
        re-validate under the lock and re-acquire if so, instead of
        submitting on a shut-down executor.
        """
        if executor is None:
            executor = self._ensure_executor()
        pool = self._pool
        assert pool is not None
        for _attempt in range(8):
            pool.round_lock.acquire()
            if (
                self.engine._worker_pools.get(self.executor_kind)
                is pool
            ):
                break
            pool.round_lock.release()
            self._pool = None
            executor = self._ensure_executor()
            pool = self._pool
            assert pool is not None
        else:  # pragma: no cover - displacement storm
            raise RuntimeError(
                "worker pool kept being displaced by concurrent batches"
            )
        try:
            yield executor
        finally:
            pool.round_lock.release()

    def close(self) -> None:
        """Release this batch's reference to the engine's pool.

        The pool itself stays alive on the engine (that amortization is
        the point); shut it down with ``engine.close()`` when the
        engine is retired, or rely on the GC finalizer.
        """
        self._pool = None

    def _evict_pool(self) -> None:
        """Drop a broken pool from the engine so the next batch heals.

        A crashed worker (OOM kill, segfault) breaks the executor for
        good; without eviction every later batch on this engine would
        inherit the corpse.  The current batch still surfaces the
        error — matching the historical per-batch-pool behaviour,
        where the *next* batch simply built a fresh pool.
        """
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        with self.engine._pool_lock:
            pools = self.engine._worker_pools
            for kind, candidate in list(pools.items()):
                if candidate is pool:
                    del pools[kind]
        # Called from inside this batch's own round (round_lock held
        # by us), so closing here cannot yank the pool from under a
        # concurrent round.
        pool.close()

    def __enter__(self) -> "ShardedBatchComputation":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def cache_stats(self) -> Dict[str, int]:
        """Cache counters aggregated across every worker seen so far."""
        return DecompositionCache.merge_stats(self.worker_stats.values())

    # -- execution -------------------------------------------------------
    def _submit_shard(
        self,
        executor: Executor,
        shard: int,
        items: List[_WorkItem],
        deadline_remaining: Optional[float],
    ) -> Future:
        if self.executor_kind == "thread":
            assert self._pool is not None
            engines = self._pool.thread_engines
            assert engines is not None
            return executor.submit(
                _run_items,
                engines[shard],
                items,
                self.epsilon,
                self.error_kind,
                deadline_remaining,
                shard,
            )
        return executor.submit(
            _process_run_items,
            items,
            self.epsilon,
            self.error_kind,
            deadline_remaining,
        )

    def _execute_round(
        self, indices: List[int], *, initial: bool = False
    ) -> None:
        """Run one parallel round over ``indices`` and merge the results.

        ``indices`` arrive pre-ordered (by index for the initial pass,
        widest-first for refinement rounds) and are dealt round-robin
        across the shards; merge order is by tuple index, independent of
        pool completion order, so the whole round is deterministic.
        """
        executor = self._ensure_executor()
        encode = (
            _encode_dnf
            if self.executor_kind == "process"
            else (lambda dnf: dnf)
        )
        assignments: List[List[_WorkItem]] = [
            [] for _ in range(self.shards)
        ]
        for position, index in enumerate(indices):
            assignments[position % self.shards].append(
                (index, encode(self.dnfs[index]), self.budgets[index])
            )
        merged: List[Tuple[int, EngineResult]] = []
        with self._locked_round(executor) as executor:
            # Budget measured only after the lock is held: waiting out
            # another batch's round (or a pool rebuild) must come out
            # of THIS batch's wall-clock allowance, not be handed to
            # the workers as compute time.
            deadline_remaining = self.remaining_seconds()
            try:
                futures = [
                    self._submit_shard(
                        executor, shard, items, deadline_remaining
                    )
                    for shard, items in enumerate(assignments)
                    if items
                ]
            except (BrokenExecutor, RuntimeError):
                # submit() raises only when the executor itself is
                # broken or shut down — either way the pool is a
                # corpse: evict it so the next batch builds fresh.
                self._evict_pool()
                raise
            try:
                for future in futures:
                    shard_results, stats, worker_key = future.result()
                    self.worker_stats[worker_key] = stats
                    merged.extend(shard_results)
            except BrokenExecutor:
                # A worker died mid-task (OOM kill, segfault):
                # permanent.  Errors raised *by* worker computation
                # re-raise through result() without this handler — they
                # must not cost a healthy pool its warm caches.
                self._evict_pool()
                raise
        merged.sort(key=lambda pair: pair[0])
        for index, result in merged:
            if initial:
                self.results[index] = result
                self.total_steps += result.steps
                continue
            previous = self.results[index]
            result = _merge_refined(previous, result)
            self.results[index] = result
            self.total_steps += result.steps - previous.steps

    # -- final circuit shipping ------------------------------------------
    def _submit_compile_shard(
        self, executor: Executor, shard: int, items: List[_WorkItem]
    ) -> Future:
        if self.executor_kind == "thread":
            assert self._pool is not None
            engines = self._pool.thread_engines
            assert engines is not None
            return executor.submit(
                _compile_items, engines[shard], items, shard
            )
        return executor.submit(_process_compile_items, items)

    def compile_final_circuits(self) -> int:
        """One compile round on the warm workers; circuits ship back.

        Every final result still missing a circuit is dealt in index
        order round-robin across the shards — the same deal as the
        initial pass, so in the common case each lineage lands on a
        worker whose cache already replayed it.  The worker compiles
        it (exact or node-budgeted, mirroring the serial attach
        policy) and serializes it with
        :func:`repro.circuits.serialize.encode_circuit`; each shard
        additionally ships one *union* slice of the decomposition-cache
        cones its compiles walked (shared cones serialized once).
        The coordinator decodes the circuits onto ``results`` and
        merges the cache slices into its own
        :class:`~repro.core.memo.DecompositionCache`, so the final
        answers carry circuits with **zero cold decomposition steps on
        the coordinator** — the sharded analogue of the serial path's
        cheap cache replay.

        Returns the number of circuits installed.  Indices a worker
        could not serialize (payload ``None``) are left for the
        coordinator's fallback compile in
        :meth:`~repro.engine.ConfidenceEngine._attach_batch_circuits`.
        """
        items: List[Tuple[int, DNF, Optional[int]]] = []
        for index, result in enumerate(self.results):
            if result.circuit is not None:
                continue
            dnf = self.dnfs[index]
            max_nodes = (
                None
                if _wants_exact_circuit(result)
                else ConfidenceEngine._circuit_node_budget(
                    result.steps, dnf
                )
            )
            items.append((index, dnf, max_nodes))
        if not items:
            return 0
        encode = (
            _encode_dnf
            if self.executor_kind == "process"
            else (lambda dnf: dnf)
        )
        assignments: List[List[_WorkItem]] = [
            [] for _ in range(self.shards)
        ]
        for position, (index, dnf, max_nodes) in enumerate(items):
            assignments[position % self.shards].append(
                (index, encode(dnf), max_nodes)
            )
        merged: List[_CircuitPayload] = []
        slices: List[bytes] = []
        with self._locked_round() as executor:
            try:
                futures = [
                    self._submit_compile_shard(
                        executor, shard, shard_items
                    )
                    for shard, shard_items in enumerate(assignments)
                    if shard_items
                ]
            except (BrokenExecutor, RuntimeError):
                self._evict_pool()
                raise
            try:
                for future in futures:
                    payloads, slice_bytes, stats, worker_key = (
                        future.result()
                    )
                    self.worker_stats[worker_key] = stats
                    merged.extend(payloads)
                    if slice_bytes is not None:
                        slices.append(slice_bytes)
            except BrokenExecutor:
                self._evict_pool()
                raise
        registry = self.engine.registry
        # Bind first so the merged slices survive the engine's next
        # bind instead of being cleared as foreign-config entries.
        cache = self.engine.bind_cache()
        for slice_bytes in slices:
            merge_cache_slice(slice_bytes, cache)
        installed = 0
        merged.sort(key=lambda payload: payload[0])
        for index, circuit_bytes in merged:
            if circuit_bytes is None:
                continue
            circuit, _key = decode_circuit(
                circuit_bytes, registry, validate=False
            )
            self.results[index].circuit = circuit
            installed += 1
        return installed

    def refine(self, index: int) -> EngineResult:
        """Grow ``index``'s budget and tighten it.

        Mirrors :meth:`repro.engine.BatchComputation.refine`: when a
        refinable partial circuit exists for the tuple (the batch's own
        expansion progress, or the coordinator session's cache — the
        coordinator owns ``circuit_source``), the round expands the
        widest residual leaf in place on the coordinator (strategy
        ``"circuit-refine"``); otherwise the tuple is recomputed on a
        worker with a grown budget, as before.
        """
        budget = self.budgets[index]
        if budget is not None:
            self.budgets[index] = self._capped(budget * self.step_growth)
        previous = self.results[index]
        circuit = resumable_circuit(
            self.engine, self.dnfs[index], previous.circuit
        )
        if circuit is not None:
            node_budget = self.budgets[index]
            if node_budget is None:
                node_budget = max(previous.steps, 64)
            result = _circuit_refine_result(
                self.engine,
                self.dnfs[index],
                circuit,
                previous,
                node_budget,
                self.epsilon,
                self.error_kind,
            )
            if (
                result.converged
                or result.steps != previous.steps
                or result.width() < previous.width()
            ):
                self.results[index] = result
                self.total_steps += result.steps - previous.steps
                return result
            # Expansion stalled: fall through to the worker re-run.
        self._execute_round([index])
        return self.results[index]

    def step(
        self, indices: Optional[Sequence[int]] = None
    ) -> Optional[int]:
        """One work-stealing refinement round; the widest index, or
        ``None`` when nothing is refinable.

        Takes the (up to) ``shards`` widest refinable tuples — from
        ``indices`` when given — grows each one's budget, and deals them
        widest-first round-robin across the shards.  The serial batch
        refines exactly one tuple per step; a sharded round refines one
        per shard, which is the same prioritized schedule saturating the
        pool instead of a single core.
        """
        candidates = self.refinable(indices)
        if not candidates:
            return None
        candidates.sort(
            key=lambda index: (-self.results[index].width(), index)
        )
        chosen = candidates[: self.shards]
        for index in chosen:
            budget = self.budgets[index]
            if budget is not None:
                self.budgets[index] = self._capped(
                    budget * self.step_growth
                )
        self._execute_round(chosen)
        return chosen[0]

    def run(
        self, max_total_steps: Optional[int] = None
    ) -> List[EngineResult]:
        """Refine until convergence, budget exhaustion, or deadline.

        The initial pass already ran in the constructor; this is the
        round loop :meth:`ConfidenceEngine.compute_many` drives (MC
        finalization stays with the engine).  A ``run_to_guarantee``
        batch is single-pass by construction — every tuple already got
        its full budget, exactly like the serial unbudgeted path — so
        there is nothing left to arbitrate.
        """
        if self._single_pass:
            return self.results
        while (
            not self.converged()
            and (
                max_total_steps is None
                or self.total_steps < max_total_steps
            )
            and not self.out_of_time()
        ):
            if self.step() is None:
                break
        return self.results

    def __repr__(self) -> str:
        return (
            f"ShardedBatchComputation({len(self.dnfs)} lineages, "
            f"{self.shards} {self.executor_kind} shards, "
            f"steps={self.total_steps})"
        )


def _shutdown_executor(executor: Executor) -> None:
    # wait=True: rounds are synchronous, so nothing is ever in flight
    # here, and draining the pool's threads deterministically matters —
    # a stray worker thread would make a later fork() warn on 3.12+.
    executor.shutdown(wait=True, cancel_futures=True)
