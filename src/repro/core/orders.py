"""Variable-elimination orders for Shannon expansion.

The order of Shannon pivots greatly influences d-tree size (paper,
Section IV).  Two strategies are provided:

* :func:`max_frequency_choice` — the paper's default: pick a variable that
  occurs in the most clauses.

* :func:`iq_variable_choice` — the order of Lemma 6.8 for IQ (inequality)
  queries: pick a variable ``v`` from relation ``Rᵢ`` that occurs in
  clauses together with *all* variables of *all other* relations appearing
  in the DNF.  After Shannon expansion on ``v``, the positive cofactor's
  clause set collapses under subsumption (the co-factor of ``v`` subsumes
  ``Φ|_v``), which is what makes the compilation polynomial (Thm. 6.9).

:func:`make_variable_selector` composes them: try the IQ order when
variable→relation provenance is available, fall back to max frequency —
exactly the strategy described at the end of Section IV.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Hashable, Mapping, Optional

from .dnf import DNF

__all__ = [
    "VariableSelector",
    "max_frequency_choice",
    "iq_variable_choice",
    "make_variable_selector",
]

VariableSelector = Callable[[DNF], Hashable]


def max_frequency_choice(dnf: DNF) -> Hashable:
    """A variable occurring in the most clauses (deterministic ties)."""
    return dnf.most_frequent_variable()


def iq_variable_choice(
    dnf: DNF,
    relation_of: Mapping[Hashable, Hashable],
    *,
    max_candidates: Optional[int] = None,
) -> Optional[Hashable]:
    """The Lemma 6.8 pivot, or ``None`` when no variable qualifies.

    A variable ``x`` from relation ``R`` qualifies when restricting the DNF
    to the clauses containing ``x`` preserves the per-relation distinct
    variable counts of every relation other than ``R``.  Candidates are
    tried in descending frequency order (for sorted inequality lineage the
    most frequent variable is the minimal one, which qualifies), so the
    scan almost always succeeds on the first candidate.

    ``max_candidates`` bounds the scan; the lemma guarantees success for IQ
    lineage, so a small cap only matters for non-IQ inputs where ``None``
    (fallback to max frequency) is the right answer anyway.

    Variables missing from ``relation_of`` disqualify the heuristic (we
    cannot establish the lemma's counting condition), and ``None`` is
    returned.
    """
    variables = dnf.variables
    if not variables:
        return None
    if any(variable not in relation_of for variable in variables):
        return None

    total_counts: Counter = Counter(
        relation_of[variable] for variable in variables
    )
    if len(total_counts) < 2:
        return None  # single relation: the lemma is vacuous

    frequencies = dnf.variable_frequencies()
    candidates = sorted(
        variables, key=lambda v: (-frequencies[v], repr(v))
    )
    if max_candidates is not None:
        candidates = candidates[:max_candidates]

    for candidate in candidates:
        home_relation = relation_of[candidate]
        co_occurring: set = set()
        for clause in dnf:
            if clause.binds(candidate):
                co_occurring.update(clause.variables)
        restricted_counts: Counter = Counter(
            relation_of[variable] for variable in co_occurring
        )
        if all(
            restricted_counts.get(relation, 0) == count
            for relation, count in total_counts.items()
            if relation != home_relation
        ):
            return candidate
    return None


def make_variable_selector(
    relation_of: Optional[Mapping[Hashable, Hashable]] = None,
    *,
    max_iq_candidates: Optional[int] = 25,
) -> VariableSelector:
    """Build the paper's composite pivot strategy.

    With provenance (``relation_of``), the IQ order is attempted first and
    max-frequency is the fallback; without provenance the selector is plain
    max-frequency.
    """
    if relation_of is None:
        return max_frequency_choice

    def selector(dnf: DNF) -> Hashable:
        choice = iq_variable_choice(
            dnf, relation_of, max_candidates=max_iq_candidates
        )
        if choice is not None:
            return choice
        return max_frequency_choice(dnf)

    return selector
