"""Variable-elimination orders for Shannon expansion.

The order of Shannon pivots greatly influences d-tree size (paper,
Section IV).  Two strategies are provided:

* :func:`max_frequency_choice` — the paper's default: pick a variable that
  occurs in the most clauses.

* :func:`iq_variable_choice` — the order of Lemma 6.8 for IQ (inequality)
  queries: pick a variable ``v`` from relation ``Rᵢ`` that occurs in
  clauses together with *all* variables of *all other* relations appearing
  in the DNF.  After Shannon expansion on ``v``, the positive cofactor's
  clause set collapses under subsumption (the co-factor of ``v`` subsumes
  ``Φ|_v``), which is what makes the compilation polynomial (Thm. 6.9).

:func:`make_variable_selector` composes them: try the IQ order when
variable→relation provenance is available, fall back to max frequency —
exactly the strategy described at the end of Section IV.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, Mapping, Optional

from .dnf import DNF
from .variables import variable_name, variable_repr

__all__ = [
    "VariableSelector",
    "CompositeSelector",
    "max_frequency_choice",
    "iq_variable_choice",
    "make_variable_selector",
]

VariableSelector = Callable[[DNF], Hashable]


def max_frequency_choice(dnf: DNF) -> Hashable:
    """A variable occurring in the most clauses (deterministic ties)."""
    return dnf.most_frequent_variable()


#: Sentinel for "name not in the provenance mapping" cache entries.
_NO_RELATION = object()


def iq_variable_choice(
    dnf: DNF,
    relation_of: Mapping[Hashable, Hashable],
    *,
    max_candidates: Optional[int] = None,
    _relation_cache: Optional[Dict[int, Hashable]] = None,
) -> Optional[Hashable]:
    """The Lemma 6.8 pivot, or ``None`` when no variable qualifies.

    A variable ``x`` from relation ``R`` qualifies when restricting the DNF
    to the clauses containing ``x`` preserves the per-relation distinct
    variable counts of every relation other than ``R``.  Candidates are
    tried in descending frequency order (for sorted inequality lineage the
    most frequent variable is the minimal one, which qualifies), so the
    scan almost always succeeds on the first candidate.

    ``max_candidates`` bounds the scan; the lemma guarantees success for IQ
    lineage, so a small cap only matters for non-IQ inputs where ``None``
    (fallback to max frequency) is the right answer anyway.

    Variables missing from ``relation_of`` disqualify the heuristic (we
    cannot establish the lemma's counting condition), and ``None`` is
    returned.
    """
    variable_ids = dnf.variable_ids
    if not variable_ids:
        return None

    # vid -> relation, resolved through a cache shared across calls (the
    # selector is invoked once per Shannon step; provenance is fixed).
    cache = _relation_cache if _relation_cache is not None else {}
    relation_by_id: Dict[int, Hashable] = {}
    total_counts: Dict[Hashable, int] = {}
    for vid in variable_ids:
        relation = cache.get(vid, _NO_RELATION)
        if relation is _NO_RELATION:
            relation = relation_of.get(variable_name(vid), _NO_RELATION)
            cache[vid] = relation
        if relation is _NO_RELATION:
            return None  # unknown provenance: cannot certify the lemma
        relation_by_id[vid] = relation
        total_counts[relation] = total_counts.get(relation, 0) + 1
    if len(total_counts) < 2:
        return None  # single relation: the lemma is vacuous

    frequencies = dnf.variable_id_frequencies()
    sort_key = lambda vid: (-frequencies[vid], variable_repr(vid))  # noqa: E731
    if max_candidates is not None and max_candidates < len(variable_ids):
        candidates = heapq.nsmallest(max_candidates, variable_ids,
                                     key=sort_key)
    else:
        candidates = sorted(variable_ids, key=sort_key)
    if not candidates:
        return None

    def qualifies(candidate: int, occurring: set) -> bool:
        home_relation = relation_by_id[candidate]
        restricted_counts: Dict[Hashable, int] = {}
        for vid in occurring:
            relation = relation_by_id[vid]
            restricted_counts[relation] = (
                restricted_counts.get(relation, 0) + 1
            )
        return all(
            restricted_counts.get(relation, 0) == count
            for relation, count in total_counts.items()
            if relation != home_relation
        )

    # For IQ lineage the most frequent variable is the minimal one and
    # qualifies immediately (Lemma 6.8), so try it with a targeted scan
    # before paying for the remaining candidates.
    first = candidates[0]
    first_occurring: set = set()
    for clause in dnf:
        clause_vids = clause.variable_ids
        if first in clause_vids:
            first_occurring.update(clause_vids)
    if qualifies(first, first_occurring):
        return variable_name(first)
    if len(candidates) == 1:
        return None

    # Co-occurring variables of the remaining candidates in ONE pass over
    # the clauses (scanning per candidate would repeat the whole clause
    # walk up to ``max_candidates`` times on non-IQ inputs).
    co_occurring: Dict[int, set] = {vid: set() for vid in candidates[1:]}
    for clause in dnf:
        clause_vids = clause.variable_ids
        for vid in clause_vids:
            acc = co_occurring.get(vid)
            if acc is not None:
                acc.update(clause_vids)

    for candidate in candidates[1:]:
        if qualifies(candidate, co_occurring[candidate]):
            return variable_name(candidate)
    return None


class CompositeSelector:
    """The paper's composite pivot strategy as a picklable callable.

    Tries the Lemma 6.8 IQ order (using ``variable → relation``
    provenance) and falls back to max frequency — the Section IV
    strategy.  Being a plain class rather than a closure, it survives
    :mod:`pickle`, so a database-wired :class:`~repro.engine.EngineConfig`
    can be shipped to process-pool workers intact.  The per-instance
    relation cache is transient (rebuilt lazily after unpickling).
    """

    __slots__ = ("relation_of", "max_iq_candidates", "_relation_cache")

    def __init__(
        self,
        relation_of: Mapping[Hashable, Hashable],
        max_iq_candidates: Optional[int] = 25,
    ) -> None:
        self.relation_of = dict(relation_of)
        self.max_iq_candidates = max_iq_candidates
        self._relation_cache: Dict[int, Hashable] = {}

    def __call__(self, dnf: DNF) -> Hashable:
        choice = iq_variable_choice(
            dnf,
            self.relation_of,
            max_candidates=self.max_iq_candidates,
            _relation_cache=self._relation_cache,
        )
        if choice is not None:
            return choice
        return max_frequency_choice(dnf)

    def __reduce__(self):
        return (CompositeSelector, (self.relation_of,
                                    self.max_iq_candidates))

    def __repr__(self) -> str:
        return (
            f"CompositeSelector({len(self.relation_of)} variables, "
            f"max_iq_candidates={self.max_iq_candidates})"
        )


def make_variable_selector(
    relation_of: Optional[Mapping[Hashable, Hashable]] = None,
    *,
    max_iq_candidates: Optional[int] = 25,
) -> VariableSelector:
    """Build the paper's composite pivot strategy.

    With provenance (``relation_of``), the IQ order is attempted first and
    max-frequency is the fallback (a picklable
    :class:`CompositeSelector`); without provenance the selector is plain
    max-frequency.
    """
    if relation_of is None:
        return max_frequency_choice
    return CompositeSelector(relation_of, max_iq_candidates)
