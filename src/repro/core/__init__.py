"""Core of the reproduction: DNFs, d-trees, bounds, approximation.

This subpackage implements the paper's contribution proper:

* the propositional machinery of Section III
  (:mod:`~repro.core.variables`, :mod:`~repro.core.events`,
  :mod:`~repro.core.dnf`, :mod:`~repro.core.formulas`,
  :mod:`~repro.core.semantics`);
* d-trees and their compiler, Section IV
  (:mod:`~repro.core.dtree`, :mod:`~repro.core.decompositions`,
  :mod:`~repro.core.compiler`, :mod:`~repro.core.orders`);
* bounds and the incremental approximation algorithm, Section V
  (:mod:`~repro.core.bounds`, :mod:`~repro.core.approx`,
  :mod:`~repro.core.exact`);
* read-once factorization underlying the tractability results of
  Section VI (:mod:`~repro.core.readonce`).
"""

from .approx import (
    ABSOLUTE,
    RELATIVE,
    ApproximationResult,
    approximate_probability,
)
from .bounds import BucketPartition, bucket_partition, independent_bounds
from .compiler import (
    CompilationBudgetExceeded,
    CompilationStats,
    compile_dnf,
)
from .counting import (
    conditional_probability,
    model_count,
    weighted_model_count,
)
from .decompositions import (
    ShannonBranch,
    independent_and_factorization,
    independent_or_partition,
    shannon_expansion,
)
from .dnf import DNF
from .dtree import (
    DTree,
    ExclusiveOrNode,
    IndependentAndNode,
    IndependentOrNode,
    LeafNode,
)
from .events import Atom, Clause, InconsistentClauseError
from .exact import exact_probability, exact_probability_compiled
from .formulas import (
    FALSE,
    TRUE,
    AndNode,
    AtomNode,
    Formula,
    OrNode,
    atom,
    conj,
    disj,
)
from .memo import DecompositionCache
from .orders import (
    iq_variable_choice,
    make_variable_selector,
    max_frequency_choice,
)
from .readonce import read_once_probability, try_read_once
from .semantics import (
    brute_force_formula_probability,
    brute_force_probability,
    equivalent_on_registry,
)
from .variables import BOOLEAN_DOMAIN, VariableRegistry

__all__ = [
    "ABSOLUTE",
    "RELATIVE",
    "ApproximationResult",
    "approximate_probability",
    "BucketPartition",
    "bucket_partition",
    "independent_bounds",
    "CompilationBudgetExceeded",
    "CompilationStats",
    "compile_dnf",
    "conditional_probability",
    "model_count",
    "weighted_model_count",
    "DecompositionCache",
    "ShannonBranch",
    "independent_and_factorization",
    "independent_or_partition",
    "shannon_expansion",
    "DNF",
    "DTree",
    "ExclusiveOrNode",
    "IndependentAndNode",
    "IndependentOrNode",
    "LeafNode",
    "Atom",
    "Clause",
    "InconsistentClauseError",
    "exact_probability",
    "exact_probability_compiled",
    "FALSE",
    "TRUE",
    "AndNode",
    "AtomNode",
    "Formula",
    "OrNode",
    "atom",
    "conj",
    "disj",
    "iq_variable_choice",
    "make_variable_selector",
    "max_frequency_choice",
    "read_once_probability",
    "try_read_once",
    "brute_force_formula_probability",
    "brute_force_probability",
    "equivalent_on_registry",
    "BOOLEAN_DOMAIN",
    "VariableRegistry",
]
