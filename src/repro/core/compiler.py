"""Exhaustive compilation of DNFs into complete d-trees (paper, Fig. 1).

The compiler applies, in order: subsumption removal, independent-or
partitioning, independent-and factorization, and Shannon expansion on a
pivot chosen by a pluggable variable selector.  The result is a complete
d-tree whose probability is computable in one linear pass (Prop. 4.3).

This is the *non*-incremental path: it materialises the whole tree and is
used for exact computation on tractable lineage (Sec. VI.B), for tests, and
as the building block the incremental approximation algorithm of
:mod:`repro.core.approx` mirrors frame by frame.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Hashable, Iterator, List, Optional

from .decompositions import (
    independent_and_factorization,
    independent_or_partition,
    shannon_expansion,
)
from .dnf import DNF
from .dtree import (
    DTree,
    ExclusiveOrNode,
    IndependentAndNode,
    IndependentOrNode,
    LeafNode,
)
from .events import Clause
from .orders import VariableSelector, max_frequency_choice
from .variables import VariableRegistry

__all__ = [
    "compile_dnf",
    "raised_recursion_limit",
    "CompilationBudgetExceeded",
    "CompilationStats",
]


@contextmanager
def raised_recursion_limit(needed: int) -> Iterator[None]:
    """Temporarily raise the interpreter recursion limit to ``needed``.

    Compiler recursion depth is proportional to d-tree depth, and IQ
    lineage produces ``⊕`` chains one node per literal (Thm. 6.9), so
    deep tractable instances need headroom.  No-op when the current
    limit already suffices; always restored on exit.  Shared by the
    exact d-tree path and the circuit compiler.
    """
    old_limit = sys.getrecursionlimit()
    if needed > old_limit:
        sys.setrecursionlimit(needed)
    try:
        yield
    finally:
        if needed > old_limit:
            sys.setrecursionlimit(old_limit)


class CompilationBudgetExceeded(RuntimeError):
    """Raised when compilation would exceed the node budget."""


class CompilationStats:
    """Counters collected during exhaustive compilation."""

    __slots__ = ("nodes", "shannon_expansions", "subsumed_clauses")

    def __init__(self) -> None:
        self.nodes = 0
        self.shannon_expansions = 0
        self.subsumed_clauses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompilationStats(nodes={self.nodes}, "
            f"shannon={self.shannon_expansions}, "
            f"subsumed={self.subsumed_clauses})"
        )


def compile_dnf(
    dnf: DNF,
    registry: VariableRegistry,
    *,
    choose_variable: Optional[VariableSelector] = None,
    max_nodes: Optional[int] = None,
    stats: Optional[CompilationStats] = None,
) -> DTree:
    """Compile a non-empty DNF into a complete d-tree (Fig. 1).

    ``choose_variable`` picks Shannon pivots (default: most frequent
    variable).  ``max_nodes`` aborts runaway compilations with
    :class:`CompilationBudgetExceeded` — the incremental algorithm is the
    right tool for those inputs.
    """
    if dnf.is_false():
        raise ValueError("cannot compile the empty (unsatisfiable) DNF")
    selector = choose_variable or max_frequency_choice
    stats = stats if stats is not None else CompilationStats()
    return _compile(dnf, registry, selector, max_nodes, stats)


def _charge(stats: CompilationStats, max_nodes: Optional[int]) -> None:
    stats.nodes += 1
    if max_nodes is not None and stats.nodes > max_nodes:
        raise CompilationBudgetExceeded(
            f"compilation exceeded {max_nodes} nodes"
        )


def _compile(
    dnf: DNF,
    registry: VariableRegistry,
    selector: VariableSelector,
    max_nodes: Optional[int],
    stats: CompilationStats,
) -> DTree:
    # Fig. 1 head: a DNF containing the empty clause is the constant true.
    if dnf.is_true():
        _charge(stats, max_nodes)
        return LeafNode(DNF.true())

    # Step 1: remove subsumed clauses.
    reduced = dnf.remove_subsumed()
    stats.subsumed_clauses += len(dnf) - len(reduced)
    dnf = reduced
    if dnf.is_true():
        _charge(stats, max_nodes)
        return LeafNode(DNF.true())

    if dnf.is_single_clause():
        _charge(stats, max_nodes)
        return LeafNode(dnf)

    # Step 2: independent-or.
    components = independent_or_partition(dnf)
    if len(components) > 1:
        _charge(stats, max_nodes)
        children = [
            _compile(component, registry, selector, max_nodes, stats)
            for component in components
        ]
        return IndependentOrNode(children)

    # Step 3: independent-and.
    factors = independent_and_factorization(dnf)
    if factors is not None:
        _charge(stats, max_nodes)
        children = [
            _compile(factor, registry, selector, max_nodes, stats)
            for factor in factors
        ]
        return IndependentAndNode(children)

    # Step 4: Shannon expansion.
    pivot = selector(dnf)
    stats.shannon_expansions += 1
    _charge(stats, max_nodes)
    branches = shannon_expansion(dnf, pivot, registry)
    children: List[DTree] = []
    for branch in branches:
        clause_leaf = LeafNode(
            DNF((Clause({branch.variable: branch.value}),))
        )
        _charge(stats, max_nodes)
        if branch.cofactor.is_true():
            # {x=a} ⊙ ⊤ is just the clause itself.
            children.append(clause_leaf)
            continue
        cofactor_tree = _compile(
            branch.cofactor, registry, selector, max_nodes, stats
        )
        children.append(IndependentAndNode([clause_leaf, cofactor_tree]))
    if len(children) == 1:
        return children[0]
    return ExclusiveOrNode(children)
