"""Shared decomposition memo cache.

The incremental algorithm of Section V explores one d-tree path at a time,
but Shannon expansion on overlapping variables reproduces *identical*
residual DNFs in many different subtrees — on the paper's hard TPC-H
queries well over 90% of refinement steps revisit a DNF that was already
decomposed elsewhere.  All of the per-DNF work is pure (given a registry,
a pivot selector and the bounds-heuristic flags):

* subsumption removal,
* ⊗ connected-component partitioning,
* ⊙ product factorization,
* Shannon pivot choice and expansion,
* the Fig. 3 bucket bounds,
* and — once a subtree has been *fully* refined — the exact probability
  of its root DNF.

:class:`DecompositionCache` memoises all of these keyed by the (immutable,
cheaply hashable) DNF.  A cache is bound to one configuration — registry,
selector, heuristic flags — and resets itself when used with another, so
sharing one cache across calls (as :class:`repro.engine.ConfidenceEngine`
does for top-k refinement rounds and repeated queries) is always sound.

The cache is bounded: when the total number of memoised entries exceeds
``max_entries`` it is cleared wholesale, which keeps memory proportional
to the working set without LRU bookkeeping on the hot path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .dnf import DNF

__all__ = ["DecompositionCache"]


class DecompositionCache:
    """Memo store for pure per-DNF decomposition results."""

    __slots__ = (
        "reduced",
        "components",
        "factors",
        "branches",
        "bounds",
        "exact",
        "max_entries",
        "_config",
        "hits",
        "misses",
    )

    def __init__(self, max_entries: int = 200_000) -> None:
        self.max_entries = max_entries
        self._config: Optional[Tuple] = None
        self.hits = 0
        self.misses = 0
        self.reduced: Dict[DNF, DNF] = {}
        self.components: Dict[DNF, List[DNF]] = {}
        self.factors: Dict[DNF, Optional[List[DNF]]] = {}
        self.branches: Dict[DNF, list] = {}
        self.bounds: Dict[DNF, Tuple[float, float]] = {}
        self.exact: Dict[DNF, float] = {}

    def _reset(self) -> None:
        # Clear IN PLACE: callers (the approx main loop) hold direct
        # references to these dicts, which must stay valid across a
        # mid-run trim.
        self.reduced.clear()
        self.components.clear()
        self.factors.clear()
        self.branches.clear()
        self.bounds.clear()
        self.exact.clear()

    def __len__(self) -> int:
        return (
            len(self.reduced)
            + len(self.components)
            + len(self.factors)
            + len(self.branches)
            + len(self.bounds)
            + len(self.exact)
        )

    @staticmethod
    def bind_config(
        registry: object,
        selector: object,
        sort_buckets: bool,
        read_once_buckets: bool,
    ) -> Tuple:
        """The canonical bind tuple for :meth:`bind`.

        Every site that binds a cache — the ε-approximation main loop,
        the circuit compiler, and the engine's slice-merge path — must
        build the tuple through this one function: :meth:`bind`
        compares element-by-element by *identity*, so two sites
        assembling the tuple with a different shape (or different
        selector defaulting) would silently clear the cache on every
        alternation instead of sharing it.
        """
        return (registry, selector, sort_buckets, read_once_buckets)

    def bind(self, config: Tuple) -> None:
        """Attach the cache to one (registry, selector, flags) config.

        Results memoised under a different configuration would be wrong,
        not just stale, so a config change clears the cache.  The config
        objects are compared by identity and kept alive by the cache —
        never by ``id()`` alone, which the allocator may reuse.
        """
        current = self._config
        if (
            current is None
            or len(current) != len(config)
            or any(a is not b for a, b in zip(current, config))
        ):
            if current is not None:
                self._reset()
            self._config = config

    def trim(self) -> None:
        """Clear everything once the entry cap is exceeded."""
        if len(self) > self.max_entries:
            self._reset()

    def evict_intersecting(self, variable_ids) -> int:
        """Drop every memo entry whose DNF mentions a touched variable.

        The surgical half of incremental recompilation (the other half
        is :meth:`repro.circuits.cache.CircuitCache.evict_intersecting`):
        a mutation hands in the interned variable ids it touched, and
        only cones whose variable sets intersect them are evicted.
        Decomposition children always use a *subset* of their parent's
        variables, so a disjoint parent cone — and therefore its whole
        subtree — stays warm and sound.  All six sections are evicted,
        not just the numeric ``bounds``/``exact`` ones: pivot selection
        and bucket ordering may consult probabilities, so a stale
        ``branches``/``reduced`` entry could disagree with what a fresh
        decomposition would produce.

        Deletion is in place (callers hold direct references to the
        section dicts).  Returns the number of entries removed.
        """
        touched = frozenset(variable_ids)
        if not touched:
            return 0
        removed = 0
        for section in (
            self.reduced,
            self.components,
            self.factors,
            self.branches,
            self.bounds,
            self.exact,
        ):
            stale = [
                dnf
                for dnf in section
                if not touched.isdisjoint(dnf.variable_ids)
            ]
            for dnf in stale:
                del section[dnf]
            removed += len(stale)
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self)}

    @staticmethod
    def merge_stats(
        stats: Iterable[Mapping[str, int]]
    ) -> Dict[str, int]:
        """Aggregate per-cache :meth:`stats` dicts (one per shard/worker).

        The sharded execution layer runs one cache per worker; this is
        the fleet-wide view it reports — counters summed, plus how many
        caches contributed.
        """
        merged = {"hits": 0, "misses": 0, "entries": 0, "caches": 0}
        for entry in stats:
            merged["hits"] += entry.get("hits", 0)
            merged["misses"] += entry.get("misses", 0)
            merged["entries"] += entry.get("entries", 0)
            merged["caches"] += 1
        return merged
