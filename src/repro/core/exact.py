"""Exact probability computation via d-trees.

Two paths are offered (paper, Section VII reports both: "d-tree(error 0)"):

* :func:`exact_probability` — runs the incremental algorithm with ε = 0.
  It still benefits from the Fig. 3 bucket heuristic: a leaf whose clauses
  are pairwise independent gets *point* bounds and is folded immediately,
  so the exponential Shannon fallback is avoided whenever independence is
  discovered — this is the paper's exact mode.

* :func:`exact_probability_compiled` — materialises the complete d-tree of
  Fig. 1 and evaluates it in one pass (Prop. 4.3).  Useful for inspecting
  the tree and for the tractable-query results of Section VI, where the
  tree is guaranteed to stay polynomial.
"""

from __future__ import annotations

from typing import Optional

from .approx import ABSOLUTE, approximate_probability
from .compiler import (
    CompilationStats,
    compile_dnf,
    raised_recursion_limit,
)
from .dnf import DNF
from .dtree import DTree
from .orders import VariableSelector
from .variables import VariableRegistry

__all__ = ["exact_probability", "exact_probability_compiled"]


def exact_probability(
    dnf: DNF,
    registry: VariableRegistry,
    *,
    choose_variable: Optional[VariableSelector] = None,
    max_steps: Optional[int] = None,
) -> float:
    """Exact ``P(Φ)`` via the ε = 0 incremental algorithm.

    Raises :class:`RuntimeError` if a ``max_steps`` budget is given and
    exhausted before the computation finishes.
    """
    result = approximate_probability(
        dnf,
        registry,
        epsilon=0.0,
        error_kind=ABSOLUTE,
        choose_variable=choose_variable,
        max_steps=max_steps,
    )
    if not result.converged:
        raise RuntimeError(
            "exact computation exhausted its step budget "
            f"(bounds so far: [{result.lower}, {result.upper}])"
        )
    return result.estimate


def exact_probability_compiled(
    dnf: DNF,
    registry: VariableRegistry,
    *,
    choose_variable: Optional[VariableSelector] = None,
    max_nodes: Optional[int] = None,
    stats: Optional[CompilationStats] = None,
) -> float:
    """Exact ``P(Φ)`` by full compilation into a complete d-tree.

    The recursion depth of the compiler is proportional to the d-tree
    depth; the interpreter recursion limit is raised accordingly for large
    tractable instances (IQ lineage produces chains of ``⊕`` nodes, one
    per literal — Thm. 6.9).
    """
    if dnf.is_false():
        return 0.0
    with raised_recursion_limit(dnf.size() + len(dnf.variables) + 100):
        tree: DTree = compile_dnf(
            dnf,
            registry,
            choose_variable=choose_variable,
            max_nodes=max_nodes,
            stats=stats,
        )
        return tree.probability(registry)
