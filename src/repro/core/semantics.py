"""Brute-force possible-worlds semantics.

These functions realise the definition ``P(φ) = Σ_{ψ ∈ ω(φ)} P(ψ)`` from
Section III of the paper literally, by enumerating valuations.  They are
exponential and exist as the *ground truth* that every other algorithm in
the library is tested against, and as a didactic reference.

A small optimisation keeps tests fast: only the variables that occur in the
formula are enumerated — the remaining variables marginalise out.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Sequence, Tuple

from .dnf import DNF
from .events import Clause
from .variables import VariableRegistry

__all__ = [
    "enumerate_worlds",
    "brute_force_probability",
    "brute_force_formula_probability",
    "satisfying_worlds",
    "equivalent_on_registry",
]


def enumerate_worlds(
    registry: VariableRegistry, variables: Sequence[Hashable]
) -> Iterator[Tuple[Dict[Hashable, Hashable], float]]:
    """Yield ``(world, probability)`` over the given variables."""
    names = list(variables)
    domains = [registry.domain(name) for name in names]
    for combo in itertools.product(*domains):
        world = dict(zip(names, combo))
        yield world, registry.world_probability(world)


def brute_force_probability(dnf: DNF, registry: VariableRegistry) -> float:
    """Exact ``P(Φ)`` by summing over satisfying valuations.

    Exponential in ``|vars(Φ)|``; use only on small formulas (tests).
    """
    if dnf.is_false():
        return 0.0
    if dnf.is_true():
        return 1.0
    variables = sorted(dnf.variables, key=repr)
    total = 0.0
    for world, prob in enumerate_worlds(registry, variables):
        if dnf.evaluate(world):
            total += prob
    return total


def brute_force_formula_probability(formula, registry: VariableRegistry) -> float:
    """Exact probability of a lineage :class:`~repro.core.formulas.Formula`."""
    variables = sorted(formula.variables(), key=repr)
    if not variables:
        return 1.0 if formula.evaluate({}) else 0.0
    total = 0.0
    for world, prob in enumerate_worlds(registry, variables):
        if formula.evaluate(world):
            total += prob
    return total


def satisfying_worlds(
    dnf: DNF, registry: VariableRegistry
) -> Iterator[Dict[Hashable, Hashable]]:
    """Enumerate the valuations (over vars(Φ)) on which Φ is true."""
    variables = sorted(dnf.variables, key=repr)
    for world, _prob in enumerate_worlds(registry, variables):
        if dnf.evaluate(world):
            yield world


def equivalent_on_registry(
    left: DNF, right: DNF, registry: VariableRegistry
) -> bool:
    """Semantic equivalence check by enumeration (tests only)."""
    variables = sorted(left.variables | right.variables, key=repr)
    for world, _prob in enumerate_worlds(registry, variables):
        if left.evaluate(world) != right.evaluate(world):
            return False
    return True
