"""d-trees: decomposition trees for DNFs (paper, Section IV).

A d-tree is a formula built from ``⊗`` (independent-or), ``⊙``
(independent-and) and ``⊕`` (exclusive-or) with non-empty DNFs at the
leaves.  A d-tree is *complete* when every leaf is a single clause.

Two evaluations are supported, both in one bottom-up pass:

* :func:`DTree.probability` — exact probability, defined when every leaf is
  a single clause or carries an exact probability (Prop. 4.3);
* :func:`DTree.bounds` — lower/upper bound propagation from leaf bounds
  (Prop. 5.4), using the monotone combination formulas of Section V.B.

The combination formulas (Section IV):

* ``⊗``: ``P = 1 − Π (1 − P(cᵢ))``
* ``⊙``: ``P = Π P(cᵢ)``
* ``⊕``: ``P = Σ P(cᵢ)`` (children mutually exclusive; upper bounds are
  clamped at 1 because heuristic leaf bounds may over-sum)
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Optional, Sequence, Tuple

from .dnf import DNF
from .events import Clause
from .variables import VariableRegistry

__all__ = [
    "DTree",
    "LeafNode",
    "IndependentOrNode",
    "IndependentAndNode",
    "ExclusiveOrNode",
    "Bounds",
    "combine_or_bounds",
    "combine_and_bounds",
    "combine_xor_bounds",
]

Bounds = Tuple[float, float]


# ----------------------------------------------------------------------
# Bound combination helpers (shared with the incremental algorithm)
# ----------------------------------------------------------------------
def combine_or_bounds(children: Sequence[Bounds]) -> Bounds:
    """``⊗`` combination: monotone in every child."""
    lower_complement = 1.0
    upper_complement = 1.0
    for low, high in children:
        lower_complement *= 1.0 - low
        upper_complement *= 1.0 - high
    return 1.0 - lower_complement, 1.0 - upper_complement


def combine_and_bounds(children: Sequence[Bounds]) -> Bounds:
    """``⊙`` combination: products of bounds."""
    lower = 1.0
    upper = 1.0
    for low, high in children:
        lower *= low
        upper *= high
    return lower, upper


def combine_xor_bounds(children: Sequence[Bounds]) -> Bounds:
    """``⊕`` combination: sums, with the upper bound clamped at 1."""
    lower = 0.0
    upper = 0.0
    for low, high in children:
        lower += low
        upper += high
    return min(1.0, lower), min(1.0, upper)


# ----------------------------------------------------------------------
# Nodes
# ----------------------------------------------------------------------
class DTree:
    """Abstract base of d-tree nodes."""

    __slots__ = ()

    KIND: str = "abstract"

    def probability(self, registry: VariableRegistry) -> float:
        """Exact probability; raises when a leaf is not exactly computable."""
        raise NotImplementedError

    def bounds(self, registry: VariableRegistry) -> Bounds:
        """Lower/upper probability bounds (Prop. 5.4)."""
        raise NotImplementedError

    def leaves(self) -> Iterator["LeafNode"]:
        raise NotImplementedError

    def is_complete(self) -> bool:
        """True when every leaf holds a single clause."""
        return all(leaf.dnf.is_single_clause() for leaf in self.leaves())

    def node_count(self) -> int:
        """Number of nodes in the tree (leaves included)."""
        raise NotImplementedError

    def depth(self) -> int:
        raise NotImplementedError

    def inner_node_histogram(self) -> dict:
        """Count nodes by kind — the paper reports "90% ⊗ nodes"."""
        histogram: dict = {}
        stack: List[DTree] = [self]
        while stack:
            node = stack.pop()
            histogram[node.KIND] = histogram.get(node.KIND, 0) + 1
            if isinstance(node, _InnerNode):
                stack.extend(node.children)
        return histogram

    def pretty(self, indent: int = 0) -> str:
        """Human-readable multi-line rendering (used in examples)."""
        raise NotImplementedError


class LeafNode(DTree):
    """A leaf holding a non-empty DNF.

    A leaf may carry externally computed ``leaf_bounds`` (from the
    :mod:`repro.core.bounds` heuristic).  Bounds default to the trivial
    ``[0, 1]`` unless the DNF is a single clause, whose probability is
    exact by a table lookup.
    """

    __slots__ = ("dnf", "leaf_bounds")

    KIND = "leaf"

    def __init__(self, dnf: DNF, leaf_bounds: Optional[Bounds] = None) -> None:
        if dnf.is_false():
            raise ValueError("d-tree leaves must hold non-empty DNFs")
        self.dnf = dnf
        self.leaf_bounds = leaf_bounds

    def probability(self, registry: VariableRegistry) -> float:
        # Explicit bounds take precedence: they are how callers (and the
        # paper's examples) override a leaf with externally computed
        # values.
        if self.leaf_bounds is not None:
            low, high = self.leaf_bounds
            if low == high:
                return low
            raise ValueError(
                "exact probability undefined for a leaf with non-point "
                f"bounds {self.leaf_bounds}; use bounds()"
            )
        if self.dnf.is_single_clause():
            return self.dnf.sole_clause().probability(registry)
        raise ValueError(
            "exact probability undefined for a multi-clause leaf without "
            "point bounds; compile further or use bounds()"
        )

    def bounds(self, registry: VariableRegistry) -> Bounds:
        if self.leaf_bounds is not None:
            return self.leaf_bounds
        if self.dnf.is_single_clause():
            prob = self.dnf.sole_clause().probability(registry)
            return prob, prob
        return 0.0, 1.0

    def leaves(self) -> Iterator["LeafNode"]:
        yield self

    def node_count(self) -> int:
        return 1

    def depth(self) -> int:
        return 1

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        suffix = ""
        if self.leaf_bounds is not None:
            suffix = f"  bounds={self.leaf_bounds}"
        return f"{pad}leaf {self.dnf!r}{suffix}"


class _InnerNode(DTree):
    """Shared plumbing of the three inner node kinds."""

    __slots__ = ("children",)

    SYMBOL = "?"

    def __init__(self, children: Sequence[DTree]) -> None:
        if not children:
            raise ValueError("inner d-tree nodes need at least one child")
        self.children = tuple(children)

    def leaves(self) -> Iterator[LeafNode]:
        for child in self.children:
            yield from child.leaves()

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children)

    def depth(self) -> int:
        return 1 + max(child.depth() for child in self.children)

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.SYMBOL}"]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


class IndependentOrNode(_InnerNode):
    """``⊗`` — disjunction of pairwise independent children."""

    __slots__ = ()

    KIND = "independent-or"
    SYMBOL = "⊗"

    def probability(self, registry: VariableRegistry) -> float:
        complement = 1.0
        for child in self.children:
            complement *= 1.0 - child.probability(registry)
        return 1.0 - complement

    def bounds(self, registry: VariableRegistry) -> Bounds:
        return combine_or_bounds(
            [child.bounds(registry) for child in self.children]
        )


class IndependentAndNode(_InnerNode):
    """``⊙`` — conjunction of pairwise independent children."""

    __slots__ = ()

    KIND = "independent-and"
    SYMBOL = "⊙"

    def probability(self, registry: VariableRegistry) -> float:
        product = 1.0
        for child in self.children:
            product *= child.probability(registry)
        return product

    def bounds(self, registry: VariableRegistry) -> Bounds:
        return combine_and_bounds(
            [child.bounds(registry) for child in self.children]
        )


class ExclusiveOrNode(_InnerNode):
    """``⊕`` — disjunction of mutually exclusive children.

    Children produced by Shannon expansion have the shape
    ``{x=a} ⊙ Φ|_{x=a}`` and are therefore inconsistent pairwise.
    """

    __slots__ = ()

    KIND = "exclusive-or"
    SYMBOL = "⊕"

    def probability(self, registry: VariableRegistry) -> float:
        return min(
            1.0, sum(child.probability(registry) for child in self.children)
        )

    def bounds(self, registry: VariableRegistry) -> Bounds:
        return combine_xor_bounds(
            [child.bounds(registry) for child in self.children]
        )
