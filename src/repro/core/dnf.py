"""DNF formulas represented as sets of clauses.

The paper represents a DNF "by a set of sets of atomic formulae"
(Section IV).  :class:`DNF` is that representation: an immutable set of
consistent :class:`~repro.core.events.Clause` objects, with the operations
the compiler of Fig. 1 needs — subsumption removal, Shannon restriction,
and bookkeeping over the variable set.

Inconsistent clauses are dropped at construction (they have probability
zero and the paper assumes every clause of a DNF has non-null probability).

Clauses are interned integer structures (see :mod:`repro.core.events`):
subsumption is frozenset containment over atom ids, restriction compares
atom ids, and the deterministic clause order is the lexicographic order of
sorted atom-id tuples — no ``repr`` strings on any hot path.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Sequence,
    Set,
    Tuple,
)

from .events import Atom, Clause, InconsistentClauseError
from .variables import (
    VariableRegistry,
    lookup_atom,
    variable_name,
    variable_repr,
)

__all__ = ["DNF"]


class DNF:
    """An immutable DNF: a finite set of consistent clauses.

    The empty DNF is the constant *false*; a DNF containing the empty
    clause is the constant *true* (after subsumption removal it is exactly
    ``{∅}``).
    """

    __slots__ = ("_clauses", "_vids", "_names", "_hash", "_sorted")

    def __init__(self, clauses: Iterable[Clause] = ()) -> None:
        clause_set = frozenset(clauses)
        vids: Set[int] = set()
        for clause in clause_set:
            vids.update(clause._vids)
        object.__setattr__(self, "_clauses", clause_set)
        object.__setattr__(self, "_vids", frozenset(vids))
        object.__setattr__(self, "_names", None)
        object.__setattr__(self, "_hash", hash(clause_set))
        object.__setattr__(self, "_sorted", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DNF is immutable")

    def __reduce__(self):
        # Clauses pickle self-contained by (variable, value) pairs (see
        # :meth:`repro.core.events.Clause.__reduce__`), so a pickled DNF
        # is valid in any process.  ``sorted_clauses`` keeps the payload
        # deterministic.  The parallel executor bypasses this with its
        # interned-id task codec (cheap, snapshot-synchronised pools).
        return (DNF, (tuple(self.sorted_clauses()),))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def false(cls) -> "DNF":
        """The empty DNF — unsatisfiable."""
        return cls()

    @classmethod
    def true(cls) -> "DNF":
        """The DNF ``{∅}`` — valid."""
        return cls((Clause(),))

    @classmethod
    def from_sets(
        cls, clause_specs: Iterable[Mapping[Hashable, Hashable]]
    ) -> "DNF":
        """Build from an iterable of ``var -> value`` mappings.

        Mappings that are internally inconsistent cannot arise (dict keys
        are unique), so every spec becomes a clause.
        """
        return cls(Clause(spec) for spec in clause_specs)

    @classmethod
    def from_positive_clauses(
        cls, variable_groups: Iterable[Iterable[Hashable]]
    ) -> "DNF":
        """Build a positive-Boolean DNF: each group is a conjunction of
        ``v = True`` atoms.  This is the shape produced by positive
        relational algebra on tuple-independent tables."""
        return cls(Clause.positive(*group) for group in variable_groups)

    @classmethod
    def of_atoms(cls, *atoms: Atom) -> "DNF":
        """A DNF with one singleton clause per atom (a plain disjunction)."""
        return cls(Clause((atom,)) for atom in atoms)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def clauses(self) -> FrozenSet[Clause]:
        return self._clauses

    @property
    def variables(self) -> FrozenSet[Hashable]:
        """The variable *names* occurring in the DNF (lazily computed)."""
        names = self._names
        if names is None:
            names = frozenset(variable_name(vid) for vid in self._vids)
            object.__setattr__(self, "_names", names)
        return names

    @property
    def variable_ids(self) -> FrozenSet[int]:
        """Occurring variables as interned ids (hot-loop currency)."""
        return self._vids

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __contains__(self, clause: object) -> bool:
        return clause in self._clauses

    def is_false(self) -> bool:
        return not self._clauses

    def is_true(self) -> bool:
        """True iff the DNF contains the empty clause (constant true)."""
        return any(clause.is_empty() for clause in self._clauses)

    def is_single_clause(self) -> bool:
        return len(self._clauses) == 1

    def sole_clause(self) -> Clause:
        """The only clause of a singleton DNF (raises otherwise)."""
        if len(self._clauses) != 1:
            raise ValueError(f"DNF has {len(self._clauses)} clauses, not 1")
        return next(iter(self._clauses))

    def size(self) -> int:
        """Total number of atoms — the paper's notion of DNF size."""
        return sum(len(clause) for clause in self._clauses)

    def sorted_clauses(self) -> List[Clause]:
        """Clauses in a deterministic order (by atom-id tuples).

        The order is computed once per (immutable) DNF; callers receive a
        fresh copy they may reorder freely.
        """
        cached = self._sorted
        if cached is None:
            cached = sorted(self._clauses, key=_clause_sort_key)
            object.__setattr__(self, "_sorted", cached)
        return list(cached)

    # ------------------------------------------------------------------
    # Logic operations
    # ------------------------------------------------------------------
    def remove_subsumed(self) -> "DNF":
        """Drop every clause that is a strict superset of another clause.

        This is step 1 of the compiler in Fig. 1 of the paper: if
        ``s ⊂ t`` then ``t`` is redundant.  Quadratic in the number of
        clauses, with a grouping-by-atom pre-filter that makes the common
        relational-lineage case close to linear; all set algebra runs on
        interned atom ids.
        """
        clauses = list(self._clauses)
        if len(clauses) <= 1:
            return self
        # Sort by clause length: only shorter (or equal-length, but equal
        # length + subset means equality, already deduplicated) clauses can
        # subsume longer ones.
        clauses.sort(key=len)
        kept: List[Clause] = []
        # Index kept clauses by one of their atoms to prune comparisons: a
        # kept clause subsumes `candidate` only if all its atoms appear in
        # `candidate`, so it suffices to scan the buckets of the
        # candidate's own atoms.
        by_atom: Dict[int, List[Clause]] = {}
        for candidate in clauses:
            if candidate.is_empty():
                # The empty clause subsumes everything.
                return DNF.true()
            subsumed = False
            candidate_idset = candidate._idset
            seen: Set[int] = set()
            for atom_id in candidate._ids:
                for keeper in by_atom.get(atom_id, ()):
                    keeper_key = id(keeper)
                    if keeper_key in seen:
                        continue
                    seen.add(keeper_key)
                    if keeper._idset <= candidate_idset:
                        subsumed = True
                        break
                if subsumed:
                    break
            if not subsumed:
                kept.append(candidate)
                for atom_id in candidate._ids:
                    by_atom.setdefault(atom_id, []).append(candidate)
        if len(kept) == len(self._clauses):
            return self
        return DNF(kept)

    def restrict(self, variable: Hashable, value: Hashable) -> "DNF":
        """``Φ|_{variable=value}`` — the Shannon cofactor (Fig. 1, step 4).

        Removes clauses inconsistent with ``variable = value`` and strips
        the atom from the remaining clauses.
        """
        atom_id, var_id = lookup_atom(variable, value)
        if var_id is None:
            return self  # the variable occurs nowhere: identity
        if atom_id is None:
            atom_id = -1  # un-interned value: conflicts with any binding
        restricted: List[Clause] = []
        for clause in self._clauses:
            reduced = clause.restrict_ids(var_id, atom_id)
            if reduced is not None:
                restricted.append(reduced)
        return DNF(restricted)

    def union(self, other: "DNF") -> "DNF":
        """Disjunction: union of clause sets."""
        return DNF(self._clauses | other._clauses)

    def conjoin(self, other: "DNF") -> "DNF":
        """Conjunction via clause-wise distribution; inconsistent products
        are dropped.  Quadratic in the clause counts (DNF × DNF)."""
        product: Set[Clause] = set()
        for left in self._clauses:
            for right in other._clauses:
                try:
                    product.add(left.union(right))
                except InconsistentClauseError:
                    continue
        return DNF(product)

    def conjoin_clause(self, clause: Clause) -> "DNF":
        """Conjunction with a single clause."""
        return self.conjoin(DNF((clause,)))

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def evaluate(self, world: Mapping[Hashable, Hashable]) -> bool:
        """Truth under a valuation covering the DNF's variables."""
        return any(clause.evaluate(world) for clause in self._clauses)

    def variable_frequencies(self) -> Dict[Hashable, int]:
        """How many clauses each variable name appears in."""
        return {
            variable_name(vid): count
            for vid, count in self.variable_id_frequencies().items()
        }

    def variable_id_frequencies(self) -> Dict[int, int]:
        """Clause counts per interned variable id (Shannon heuristic)."""
        counts: Dict[int, int] = {}
        for clause in self._clauses:
            for vid in clause._vids:
                counts[vid] = counts.get(vid, 0) + 1
        return counts

    def most_frequent_variable(self) -> Hashable:
        """The paper's default Shannon pivot: a most frequent variable.

        Ties are broken deterministically by ``repr`` of the variable
        (cached per interned id).
        """
        counts = self.variable_id_frequencies()
        if not counts:
            raise ValueError("DNF has no variables")
        best = max(
            counts.items(),
            key=lambda item: (item[1], variable_repr(item[0])),
        )[0]
        return variable_name(best)

    def marginal_probabilities(
        self, registry: VariableRegistry
    ) -> List[Tuple[Clause, float]]:
        """Each clause paired with its marginal probability."""
        return [
            (clause, clause.probability(registry)) for clause in self._clauses
        ]

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DNF):
            return NotImplemented
        return self._clauses == other._clauses

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._clauses:
            return "⊥"
        parts = [f"({clause!r})" for clause in self.sorted_clauses()]
        return " ∨ ".join(parts)


def _clause_sort_key(clause: Clause) -> Tuple[int, ...]:
    return clause._ids
