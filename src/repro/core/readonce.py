"""Read-once (one-occurrence form, 1OF) factorization of DNFs.

A formula is in one-occurrence form when every variable occurs exactly once
(paper, Section VI.B).  The probability of a 1OF can be computed in linear
time because ``∧``/``∨`` over variable-disjoint subformulas are exactly the
``⊙``/``⊗`` decompositions.

:func:`try_read_once` attempts to factor a DNF into 1OF by recursively
alternating independent-or partitioning and independent-and factorization,
the same structure the d-tree compiler uses (Prop. 6.3: complete d-trees
with only ``⊗``/``⊙`` inner nodes capture read-once functions).  For DNFs
that are the full expansion of a read-once form — which is what positive
relational algebra on tuple-independent tables produces for hierarchical
queries — the recursion succeeds; on failure it returns ``None``.

The result is a :class:`ReadOnceFormula` tree whose probability evaluator is
linear in its size.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from .decompositions import (
    independent_and_factorization,
    independent_or_partition,
)
from .dnf import DNF
from .events import Atom, Clause
from .variables import VariableRegistry

__all__ = [
    "ReadOnceFormula",
    "ReadOnceAtom",
    "ReadOnceAnd",
    "ReadOnceOr",
    "try_read_once",
    "read_once_probability",
]


class ReadOnceFormula:
    """Base class of 1OF nodes."""

    __slots__ = ()

    def probability(self, registry: VariableRegistry) -> float:
        raise NotImplementedError

    def variable_count(self) -> int:
        raise NotImplementedError


class ReadOnceAtom(ReadOnceFormula):
    """A single atomic event."""

    __slots__ = ("atom",)

    def __init__(self, atom: Atom) -> None:
        self.atom = atom

    def probability(self, registry: VariableRegistry) -> float:
        return self.atom.probability(registry)

    def variable_count(self) -> int:
        return 1

    def __repr__(self) -> str:
        return repr(self.atom)


class ReadOnceAnd(ReadOnceFormula):
    """Conjunction of variable-disjoint 1OFs."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[ReadOnceFormula]) -> None:
        self.children = tuple(children)

    def probability(self, registry: VariableRegistry) -> float:
        product = 1.0
        for child in self.children:
            product *= child.probability(registry)
        return product

    def variable_count(self) -> int:
        return sum(child.variable_count() for child in self.children)

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(c) for c in self.children) + ")"


class ReadOnceOr(ReadOnceFormula):
    """Disjunction of variable-disjoint 1OFs."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[ReadOnceFormula]) -> None:
        self.children = tuple(children)

    def probability(self, registry: VariableRegistry) -> float:
        complement = 1.0
        for child in self.children:
            complement *= 1.0 - child.probability(registry)
        return 1.0 - complement

    def variable_count(self) -> int:
        return sum(child.variable_count() for child in self.children)

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(c) for c in self.children) + ")"


def _clause_to_read_once(clause: Clause) -> ReadOnceFormula:
    atoms = [ReadOnceAtom(atom) for atom in clause.atoms()]
    if len(atoms) == 1:
        return atoms[0]
    return ReadOnceAnd(atoms)


def try_read_once(
    dnf: DNF, *, _already_reduced: bool = False
) -> Optional[ReadOnceFormula]:
    """Factor ``Φ`` into one-occurrence form, or return ``None``.

    The input is subsumption-reduced first (a 1OF expansion is always
    subsumption-free, and reduction never changes semantics).
    """
    if dnf.is_false() or dnf.is_true():
        return None  # constants are not 1OF over variables
    if not _already_reduced:
        dnf = dnf.remove_subsumed()
        if dnf.is_true():
            return None
    if dnf.is_single_clause():
        return _clause_to_read_once(dnf.sole_clause())

    components = independent_or_partition(dnf)
    if len(components) > 1:
        children: List[ReadOnceFormula] = []
        for component in components:
            child = try_read_once(component, _already_reduced=True)
            if child is None:
                return None
            children.append(child)
        return ReadOnceOr(children)

    factors = independent_and_factorization(dnf)
    if factors is None:
        return None
    children = []
    for factor in factors:
        child = try_read_once(factor, _already_reduced=True)
        if child is None:
            return None
        children.append(child)
    return ReadOnceAnd(children)


def read_once_probability(
    dnf: DNF, registry: VariableRegistry
) -> Optional[float]:
    """Exact probability when ``Φ`` factors into 1OF, else ``None``.

    Linear-time evaluation over the factored form (paper [19]).
    """
    if dnf.is_false():
        return 0.0
    if dnf.is_true():
        return 1.0
    formula = try_read_once(dnf)
    if formula is None:
        return None
    return formula.probability(registry)
