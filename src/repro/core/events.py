"""Atomic events and clauses.

An *atomic event* (paper, Section III) has the form ``x = a`` for a random
variable ``x`` and a domain value ``a``.  A *clause* is a conjunction of
atomic events.  A clause is consistent iff it does not bind the same
variable to two different values; consistent clauses are exactly partial
valuations, so we represent a clause as an immutable mapping ``var -> value``.

Boolean shorthand: ``x`` means ``x = True`` and ``¬x`` means ``x = False``.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Tuple,
)

from .variables import VariableRegistry

__all__ = ["Atom", "Clause", "InconsistentClauseError"]


class InconsistentClauseError(ValueError):
    """Raised when a clause would bind one variable to two distinct values."""


class Atom:
    """The atomic event ``variable = value``.

    Atoms are immutable value objects; two atoms are equal iff they name the
    same variable and value.
    """

    __slots__ = ("variable", "value", "_hash")

    def __init__(self, variable: Hashable, value: Hashable = True) -> None:
        object.__setattr__(self, "variable", variable)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash((variable, value)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Atom is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self.variable == other.variable and self.value == other.value

    def __hash__(self) -> int:
        return self._hash

    def probability(self, registry: VariableRegistry) -> float:
        """``P(variable = value)`` under ``registry``."""
        return registry.probability(self.variable, self.value)

    def negated(self) -> "Atom":
        """For Boolean atoms only: ``x`` becomes ``¬x`` and vice versa."""
        if self.value is True:
            return Atom(self.variable, False)
        if self.value is False:
            return Atom(self.variable, True)
        raise ValueError(
            f"cannot negate non-Boolean atom {self!r}; enumerate the domain"
        )

    def __repr__(self) -> str:
        if self.value is True:
            return f"{self.variable}"
        if self.value is False:
            return f"¬{self.variable}"
        return f"{self.variable}={self.value}"


class Clause:
    """A consistent conjunction of atomic events.

    Internally a frozen ``var -> value`` mapping.  The empty clause is the
    constant *true*.  Construction from atoms that bind the same variable to
    two different values raises :class:`InconsistentClauseError`, mirroring
    the paper's convention that every clause of a DNF has non-null
    probability.
    """

    __slots__ = ("_bindings", "_hash", "_repr")

    def __init__(
        self,
        atoms: Iterable[Atom] | Mapping[Hashable, Hashable] = (),
    ) -> None:
        bindings: Dict[Hashable, Hashable] = {}
        if isinstance(atoms, Mapping):
            items: Iterable[Tuple[Hashable, Hashable]] = atoms.items()
        else:
            items = ((atom.variable, atom.value) for atom in atoms)
        for variable, value in items:
            existing = bindings.get(variable, _MISSING)
            if existing is not _MISSING and existing != value:
                raise InconsistentClauseError(
                    f"clause binds {variable!r} to both {existing!r} "
                    f"and {value!r}"
                )
            bindings[variable] = value
        object.__setattr__(self, "_bindings", bindings)
        object.__setattr__(
            self, "_hash", hash(frozenset(bindings.items()))
        )
        object.__setattr__(self, "_repr", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Clause is immutable")

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, *atoms: Atom) -> "Clause":
        """Clause from atoms given positionally."""
        return cls(atoms)

    @classmethod
    def positive(cls, *variables: Hashable) -> "Clause":
        """Clause asserting ``v = True`` for each Boolean variable given."""
        return cls(Atom(v, True) for v in variables)

    # ------------------------------------------------------------------
    # Mapping-like access
    # ------------------------------------------------------------------
    @property
    def variables(self) -> FrozenSet[Hashable]:
        return frozenset(self._bindings)

    def value_of(self, variable: Hashable) -> Hashable:
        """The value this clause binds ``variable`` to (KeyError if unbound)."""
        return self._bindings[variable]

    def binds(self, variable: Hashable) -> bool:
        return variable in self._bindings

    def atoms(self) -> Iterator[Atom]:
        """Iterate the atoms of the clause in deterministic order."""
        for variable, value in sorted(
            self._bindings.items(), key=lambda item: repr(item[0])
        ):
            yield Atom(variable, value)

    def items(self) -> Iterator[Tuple[Hashable, Hashable]]:
        return iter(self._bindings.items())

    def __len__(self) -> int:
        return len(self._bindings)

    def __bool__(self) -> bool:
        # Even the empty clause (constant true) is a real object; avoid the
        # accidental falsiness of empty containers.
        return True

    def is_empty(self) -> bool:
        """True for the empty clause, i.e. the constant *true*."""
        return not self._bindings

    # ------------------------------------------------------------------
    # Logic
    # ------------------------------------------------------------------
    def is_consistent_with_atom(self, variable: Hashable, value: Hashable) -> bool:
        """False iff this clause binds ``variable`` to a different value."""
        bound = self._bindings.get(variable, _MISSING)
        return bound is _MISSING or bound == value

    def subsumes(self, other: "Clause") -> bool:
        """True when ``self ⊆ other`` as atom sets (``self`` is more general).

        In a DNF, a clause that subsumes another makes the other redundant:
        whenever the superset clause is true the subset clause is, too.
        """
        if len(self._bindings) > len(other._bindings):
            return False
        other_bindings = other._bindings
        for variable, value in self._bindings.items():
            if other_bindings.get(variable, _MISSING) != value:
                return False
        return True

    def restrict(self, variable: Hashable, value: Hashable) -> "Clause | None":
        """The clause conditioned on ``variable = value``.

        Returns ``None`` when the clause is inconsistent with the atom;
        otherwise the clause with any ``variable`` binding removed (it is
        implied by the condition).  This is the per-clause step of Shannon
        expansion (paper, Section IV).
        """
        bound = self._bindings.get(variable, _MISSING)
        if bound is _MISSING:
            return self
        if bound != value:
            return None
        remaining = {
            var: val for var, val in self._bindings.items() if var != variable
        }
        return Clause(remaining)

    def union(self, other: "Clause") -> "Clause":
        """Conjunction of two clauses (raises if inconsistent)."""
        merged = dict(self._bindings)
        for variable, value in other._bindings.items():
            existing = merged.get(variable, _MISSING)
            if existing is not _MISSING and existing != value:
                raise InconsistentClauseError(
                    f"clauses disagree on {variable!r}: "
                    f"{existing!r} vs {value!r}"
                )
            merged[variable] = value
        return Clause(merged)

    def independent_of(self, other: "Clause") -> bool:
        """True when the clauses share no variable (paper, Section III)."""
        mine, theirs = self._bindings, other._bindings
        if len(mine) > len(theirs):
            mine, theirs = theirs, mine
        return not any(variable in theirs for variable in mine)

    def project(self, variables: FrozenSet[Hashable]) -> "Clause":
        """The sub-clause over ``variables`` (used by ⊙-factorization)."""
        return Clause(
            {
                var: val
                for var, val in self._bindings.items()
                if var in variables
            }
        )

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def probability(self, registry: VariableRegistry) -> float:
        """Product of atomic-event probabilities (1.0 for the empty clause)."""
        result = 1.0
        for variable, value in self._bindings.items():
            result *= registry.probability(variable, value)
        return result

    def evaluate(self, world: Mapping[Hashable, Hashable]) -> bool:
        """Truth value under a (possibly partial) valuation.

        Unbound variables make the clause false only if the clause binds
        them; the caller is expected to pass worlds covering the clause.
        """
        for variable, value in self._bindings.items():
            if world.get(variable, _MISSING) != value:
                return False
        return True

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        return self._bindings == other._bindings

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        # Cached: clause reprs double as deterministic sort keys on hot
        # paths (bucket partitioning, component ordering).
        cached = self._repr
        if cached is not None:
            return cached
        if not self._bindings:
            text = "⊤"
        else:
            parts = []
            for variable, value in sorted(
                self._bindings.items(), key=lambda item: repr(item[0])
            ):
                if value is True:
                    parts.append(f"{variable}")
                elif value is False:
                    parts.append(f"¬{variable}")
                else:
                    parts.append(f"{variable}={value}")
            text = " ∧ ".join(parts)
        object.__setattr__(self, "_repr", text)
        return text


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()
