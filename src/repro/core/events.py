"""Atomic events and clauses.

An *atomic event* (paper, Section III) has the form ``x = a`` for a random
variable ``x`` and a domain value ``a``.  A *clause* is a conjunction of
atomic events.  A clause is consistent iff it does not bind the same
variable to two different values; consistent clauses are exactly partial
valuations, so a clause behaves as an immutable mapping ``var -> value``.

Boolean shorthand: ``x`` means ``x = True`` and ``¬x`` means ``x = False``.

Representation
--------------
Atoms and clauses are backed by the process-wide intern table of
:mod:`repro.core.variables`: an atom stores its dense ``atom_id`` /
``var_id`` pair, and a clause stores a sorted tuple plus frozenset of atom
ids and a ``var_id -> (atom_id, value)`` map.  Equality, hashing,
subsumption, independence and restriction therefore operate on small
integers — the inner-loop currency of the decomposition algorithms —
while the public API continues to speak in the original variable names.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Tuple,
)

from .variables import (
    VariableRegistry,
    atom_entry,
    intern_atom,
    intern_variable,
    lookup_atom,
    lookup_variable,
    variable_name,
)

__all__ = ["Atom", "Clause", "InconsistentClauseError"]


class InconsistentClauseError(ValueError):
    """Raised when a clause would bind one variable to two distinct values."""


class Atom:
    """The atomic event ``variable = value``.

    Atoms are immutable value objects; two atoms are equal iff they name the
    same variable and value — which, by interning, is an integer comparison.
    """

    __slots__ = ("variable", "value", "atom_id", "var_id")

    def __init__(self, variable: Hashable, value: Hashable = True) -> None:
        atom_id, var_id = intern_atom(variable, value)
        object.__setattr__(self, "variable", variable)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "atom_id", atom_id)
        object.__setattr__(self, "var_id", var_id)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Atom is immutable")

    def __reduce__(self):
        # Self-contained pickling: re-intern by (variable, value) on load,
        # so an unpickled atom is valid in any process (ids are assigned
        # by the receiving process's own tables).
        return (Atom, (self.variable, self.value))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self.atom_id == other.atom_id

    def __hash__(self) -> int:
        return self.atom_id

    def probability(self, registry: VariableRegistry) -> float:
        """``P(variable = value)`` under ``registry``."""
        return registry.atom_probability(self.atom_id)

    def negated(self) -> "Atom":
        """For Boolean atoms only: ``x`` becomes ``¬x`` and vice versa."""
        if self.value is True:
            return Atom(self.variable, False)
        if self.value is False:
            return Atom(self.variable, True)
        raise ValueError(
            f"cannot negate non-Boolean atom {self!r}; enumerate the domain"
        )

    def __repr__(self) -> str:
        if self.value is True:
            return f"{self.variable}"
        if self.value is False:
            return f"¬{self.variable}"
        return f"{self.variable}={self.value}"


class Clause:
    """A consistent conjunction of atomic events.

    The empty clause is the constant *true*.  Construction from atoms that
    bind the same variable to two different values raises
    :class:`InconsistentClauseError`, mirroring the paper's convention that
    every clause of a DNF has non-null probability.
    """

    __slots__ = ("_ids", "_idset", "_byvar", "_vids", "_hash", "_names",
                 "_repr")

    def __init__(
        self,
        atoms: Iterable[Atom] | Mapping[Hashable, Hashable] = (),
    ) -> None:
        byvar: Dict[int, Tuple[int, Hashable]] = {}
        if isinstance(atoms, Mapping):
            for variable, value in atoms.items():
                atom_id, var_id = intern_atom(variable, value)
                existing = byvar.get(var_id)
                if existing is not None and existing[0] != atom_id:
                    raise InconsistentClauseError(
                        f"clause binds {variable!r} to both "
                        f"{existing[1]!r} and {value!r}"
                    )
                byvar[var_id] = (atom_id, value)
        else:
            for atom in atoms:
                if isinstance(atom, Atom):
                    atom_id, var_id, value = (
                        atom.atom_id, atom.var_id, atom.value
                    )
                else:  # (variable, value) pair tolerated for flexibility
                    variable, value = atom
                    atom_id, var_id = intern_atom(variable, value)
                existing = byvar.get(var_id)
                if existing is not None and existing[0] != atom_id:
                    raise InconsistentClauseError(
                        f"clause binds {variable_name(var_id)!r} to both "
                        f"{existing[1]!r} and {value!r}"
                    )
                byvar[var_id] = (atom_id, value)
        self._init_from_byvar(byvar)

    def _init_from_byvar(
        self, byvar: Dict[int, Tuple[int, Hashable]]
    ) -> None:
        ids = tuple(sorted(entry[0] for entry in byvar.values()))
        idset = frozenset(ids)
        object.__setattr__(self, "_ids", ids)
        object.__setattr__(self, "_idset", idset)
        object.__setattr__(self, "_byvar", byvar)
        object.__setattr__(self, "_vids", frozenset(byvar))
        object.__setattr__(self, "_hash", hash(idset))
        object.__setattr__(self, "_names", None)
        object.__setattr__(self, "_repr", None)

    @classmethod
    def _from_byvar(
        cls, byvar: Dict[int, Tuple[int, Hashable]]
    ) -> "Clause":
        """Internal constructor from already-interned bindings."""
        clause = cls.__new__(cls)
        clause._init_from_byvar(byvar)
        return clause

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Clause is immutable")

    @classmethod
    def _from_atom_ids(cls, atom_ids: Tuple[int, ...]) -> "Clause":
        """Rebuild a clause from bare interned atom ids.

        Valid only when the receiving process shares the sender's intern
        tables — the same process, a forked child, or a worker that ran
        :func:`~repro.core.variables.install_intern_snapshot` (the
        parallel executor's pool initializer does, and its task codec is
        the only caller).  Deliberately *not* the pickle encoding: bare
        ids in an unsynchronised process would silently rebind to
        unrelated atoms.
        """
        byvar: Dict[int, Tuple[int, Hashable]] = {}
        for atom_id in atom_ids:
            var_id, _name, value = atom_entry(atom_id)
            byvar[var_id] = (atom_id, value)
        return cls._from_byvar(byvar)

    def __reduce__(self):
        # Self-contained pickling by (variable, value) pairs: safe in
        # any process (re-interned on load), like Atom.  The parallel
        # execution layer ships clauses as cheap interned-id tuples
        # instead, through its own codec over snapshot-synchronised
        # pools (see repro.engine_parallel).
        return (Clause, (dict(self.items()),))

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, *atoms: Atom) -> "Clause":
        """Clause from atoms given positionally."""
        return cls(atoms)

    @classmethod
    def positive(cls, *variables: Hashable) -> "Clause":
        """Clause asserting ``v = True`` for each Boolean variable given."""
        return cls(Atom(v, True) for v in variables)

    # ------------------------------------------------------------------
    # Mapping-like access
    # ------------------------------------------------------------------
    @property
    def variables(self) -> FrozenSet[Hashable]:
        """The bound variable *names* (lazily mapped back from ids)."""
        names = self._names
        if names is None:
            names = frozenset(variable_name(vid) for vid in self._byvar)
            object.__setattr__(self, "_names", names)
        return names

    @property
    def variable_ids(self) -> FrozenSet[int]:
        """The bound variables as interned ids (hot-loop currency)."""
        return self._vids

    @property
    def atom_ids(self) -> Tuple[int, ...]:
        """Sorted interned atom ids — doubles as a deterministic sort key."""
        return self._ids

    def value_of(self, variable: Hashable) -> Hashable:
        """The value this clause binds ``variable`` to (KeyError if unbound)."""
        var_id = lookup_variable(variable)
        entry = self._byvar.get(var_id) if var_id is not None else None
        if entry is None:
            raise KeyError(variable)
        return entry[1]

    def binds(self, variable: Hashable) -> bool:
        var_id = lookup_variable(variable)
        return var_id is not None and var_id in self._byvar

    def atoms(self) -> Iterator[Atom]:
        """Iterate the atoms of the clause in deterministic order."""
        for atom_id in self._ids:
            _var_id, variable, value = atom_entry(atom_id)
            yield Atom(variable, value)

    def items(self) -> Iterator[Tuple[Hashable, Hashable]]:
        for var_id, (_atom_id, value) in self._byvar.items():
            yield variable_name(var_id), value

    def __len__(self) -> int:
        return len(self._byvar)

    def __bool__(self) -> bool:
        # Even the empty clause (constant true) is a real object; avoid the
        # accidental falsiness of empty containers.
        return True

    def is_empty(self) -> bool:
        """True for the empty clause, i.e. the constant *true*."""
        return not self._byvar

    # ------------------------------------------------------------------
    # Logic
    # ------------------------------------------------------------------
    def is_consistent_with_atom(self, variable: Hashable, value: Hashable) -> bool:
        """False iff this clause binds ``variable`` to a different value."""
        var_id = lookup_variable(variable)
        entry = self._byvar.get(var_id) if var_id is not None else None
        return entry is None or entry[1] == value

    def subsumes(self, other: "Clause") -> bool:
        """True when ``self ⊆ other`` as atom sets (``self`` is more general).

        In a DNF, a clause that subsumes another makes the other redundant:
        whenever the superset clause is true the subset clause is, too.
        """
        return self._idset <= other._idset

    def restrict(self, variable: Hashable, value: Hashable) -> "Clause | None":
        """The clause conditioned on ``variable = value``.

        Returns ``None`` when the clause is inconsistent with the atom;
        otherwise the clause with any ``variable`` binding removed (it is
        implied by the condition).  This is the per-clause step of Shannon
        expansion (paper, Section IV).
        """
        atom_id, var_id = lookup_atom(variable, value)
        if var_id is None or var_id not in self._byvar:
            return self  # variable unbound (or never interned): no-op
        # -1 never equals a real atom id: an un-interned value conflicts
        # with whatever this clause binds the variable to.
        return self.restrict_ids(var_id, atom_id if atom_id is not None
                                 else -1)

    def restrict_ids(self, var_id: int, atom_id: int) -> "Clause | None":
        """Id-based :meth:`restrict` used by the DNF-level hot path."""
        entry = self._byvar.get(var_id)
        if entry is None:
            return self
        if entry[0] != atom_id:
            return None
        remaining = {
            vid: binding
            for vid, binding in self._byvar.items()
            if vid != var_id
        }
        return Clause._from_byvar(remaining)

    def union(self, other: "Clause") -> "Clause":
        """Conjunction of two clauses (raises if inconsistent)."""
        merged = dict(self._byvar)
        for var_id, binding in other._byvar.items():
            existing = merged.get(var_id)
            if existing is not None and existing[0] != binding[0]:
                raise InconsistentClauseError(
                    f"clauses disagree on {variable_name(var_id)!r}: "
                    f"{existing[1]!r} vs {binding[1]!r}"
                )
            merged[var_id] = binding
        return Clause._from_byvar(merged)

    def independent_of(self, other: "Clause") -> bool:
        """True when the clauses share no variable (paper, Section III)."""
        return self._vids.isdisjoint(other._vids)

    def project(self, variables: FrozenSet[Hashable]) -> "Clause":
        """The sub-clause over ``variables`` (used by ⊙-factorization)."""
        var_ids = set()
        for variable in variables:
            var_id = lookup_variable(variable)
            if var_id is not None:
                var_ids.add(var_id)
        return self.project_ids(frozenset(var_ids))

    def project_ids(self, var_ids: FrozenSet[int]) -> "Clause":
        """Id-based :meth:`project` used by the factorization hot path."""
        return Clause._from_byvar(
            {
                vid: binding
                for vid, binding in self._byvar.items()
                if vid in var_ids
            }
        )

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def probability(self, registry: VariableRegistry) -> float:
        """Product of atomic-event probabilities (1.0 for the empty clause)."""
        probs = registry._atom_probs
        base = registry._atom_base
        size = len(probs)
        result = 1.0
        for atom_id in self._ids:
            index = atom_id - base
            prob = probs[index] if 0 <= index < size else None
            if prob is None:
                # Overflow entries and unknown atoms take the slow path.
                prob = registry.atom_probability(atom_id)
            result *= prob
        return result

    def evaluate(self, world: Mapping[Hashable, Hashable]) -> bool:
        """Truth value under a (possibly partial) valuation.

        Unbound variables make the clause false only if the clause binds
        them; the caller is expected to pass worlds covering the clause.
        """
        for var_id, (_atom_id, value) in self._byvar.items():
            if world.get(variable_name(var_id), _MISSING) != value:
                return False
        return True

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        return self._idset == other._idset

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        cached = self._repr
        if cached is not None:
            return cached
        if not self._byvar:
            text = "⊤"
        else:
            parts = []
            for variable, value in sorted(
                self.items(), key=lambda item: repr(item[0])
            ):
                if value is True:
                    parts.append(f"{variable}")
                elif value is False:
                    parts.append(f"¬{variable}")
                else:
                    parts.append(f"{variable}={value}")
            text = " ∧ ".join(parts)
        object.__setattr__(self, "_repr", text)
        return text


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()
