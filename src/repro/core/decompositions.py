"""The three d-tree decompositions (paper, Section IV).

* **Independent-or (⊗)** — partition a DNF ``Φ`` into variable-disjoint
  DNFs ``Φ₁ ∨ … ∨ Φ_k``.  This is finding connected components of the
  variable co-occurrence structure; we use a union-find over variables,
  which is the linear-time method the paper alludes to.

* **Independent-and (⊙)** — factor ``Φ`` into variable-disjoint DNFs with
  ``Φ ≡ Φ₁ ∧ … ∧ Φ_k``.  For relational lineage this is the unique
  algebraic factorization of [Olteanu, Koch, Antova; TCS 2008]: the clause
  set must be the cartesian (union-)product of the factors.  We grow factors
  from a pivot using a column-coupling test and then *verify* with the
  product-cardinality check ``|Φ| = Π|Φᵢ|``, which is sound (a failed
  verification simply reports "no factorization").

* **Shannon expansion (⊕)** — choose a variable ``x`` and rewrite
  ``Φ ≡ ⊕_{a ∈ Dom(x)} ({x=a} ⊙ Φ|_{x=a})``, skipping empty cofactors.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .dnf import DNF
from .events import Clause
from .variables import VariableRegistry, variable_repr

__all__ = [
    "independent_or_partition",
    "independent_and_factorization",
    "shannon_expansion",
    "ShannonBranch",
]


# ----------------------------------------------------------------------
# Independent-or: connected components via union-find
# ----------------------------------------------------------------------
class _UnionFind:
    """Union-find over interned integer ids with path compression."""

    __slots__ = ("_parent", "_rank")

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._rank: Dict[int, int] = {}

    def find(self, item: int) -> int:
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._rank[item] = 0
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, left: int, right: int) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return
        if self._rank[left_root] < self._rank[right_root]:
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root
        if self._rank[left_root] == self._rank[right_root]:
            self._rank[left_root] += 1


def independent_or_partition(dnf: DNF) -> List[DNF]:
    """Partition ``Φ`` into pairwise independent DNFs (⊗ children).

    Returns a list with more than one element iff the decomposition is
    non-trivial; a singleton list means ``Φ`` is connected.  Clauses with no
    variables (the constant-true clause) should have been handled by the
    caller; they are grouped into their own component here for safety.

    Runs in near-linear time in ``size(Φ)``, on interned variable ids.
    """
    uf = _UnionFind()
    find = uf.find
    union = uf.union
    for clause in dnf:
        vids = clause.variable_ids
        if len(vids) < 2:
            continue
        vid_iter = iter(vids)
        first = next(vid_iter)
        for vid in vid_iter:
            union(first, vid)
    groups: Dict[int, List[Clause]] = {}
    empties: List[Clause] = []
    for clause in dnf.sorted_clauses():
        vids = clause.variable_ids
        if not vids:
            empties.append(clause)
            continue
        root = find(next(iter(vids)))
        groups.setdefault(root, []).append(clause)
    components = [
        DNF(clauses)
        for _root, clauses in sorted(
            groups.items(), key=lambda item: variable_repr(item[0])
        )
    ]
    if empties:
        components.append(DNF(empties))
    return components


# ----------------------------------------------------------------------
# Independent-and: product factorization
# ----------------------------------------------------------------------
def independent_and_factorization(dnf: DNF) -> Optional[List[DNF]]:
    """Try to factor ``Φ ≡ Φ₁ ⊙ … ⊙ Φ_k`` with disjoint variables.

    Strategy: compute the finest candidate partition of the variables by
    growing a factor around a pivot variable.  A variable ``u`` joins the
    factor ``F`` when the pair column ``(proj_F, col_u)`` over the clauses
    is *not* a full cross product of the respective distinct values —
    then ``u`` is coupled to ``F`` and must share its factor.  Once the
    candidate partition is found, verify ``|Φ| = Π |proj_{Vᵢ}(Φ)|``;
    because every clause is the union of its projections, ``Φ`` is always a
    subset of the cartesian combination, so equal cardinality proves
    equality.

    Returns ``None`` when no non-trivial factorization exists (or when the
    candidate fails verification, in which case Shannon expansion remains
    available to the compiler).  Requires a subsumption-free, connected-or
    handled input for best results but is sound on any DNF.
    """
    clauses = dnf.sorted_clauses()
    if len(clauses) < 2:
        return None
    variables = sorted(dnf.variable_ids)
    if len(variables) < 2:
        return None

    # Column of each variable: atom id per clause, ``None`` when absent.
    # Distinctness of atom ids equals distinctness of bound values, and
    # integer columns hash far faster than arbitrary user values.  Built in
    # one pass over the clause atoms, O(size(Φ)).
    clause_count = len(clauses)
    raw_columns: Dict[int, List[object]] = {
        vid: [None] * clause_count for vid in variables
    }
    for index, clause in enumerate(clauses):
        for vid, (atom_id, _value) in clause._byvar.items():
            raw_columns[vid][index] = atom_id
    columns: Dict[int, Tuple[object, ...]] = {
        vid: tuple(column) for vid, column in raw_columns.items()
    }

    # Distinct value count per column, computed once.
    col_distinct: Dict[int, int] = {
        vid: len(set(column)) for vid, column in columns.items()
    }

    unassigned: List[int] = list(variables)
    partition: List[Set[int]] = []
    while unassigned:
        pivot = unassigned.pop(0)
        factor: Set[int] = {pivot}
        factor_key: List[Tuple[object, ...]] = [columns[pivot]]
        changed = True
        while changed:
            changed = False
            # Projection signature of the factor per clause.
            proj = tuple(zip(*factor_key))
            proj_distinct = len(set(proj))
            still_unassigned: List[int] = []
            for candidate in unassigned:
                col = columns[candidate]
                pairs = len(set(zip(proj, col)))
                if pairs != proj_distinct * col_distinct[candidate]:
                    factor.add(candidate)
                    factor_key.append(col)
                    changed = True
                else:
                    still_unassigned.append(candidate)
            unassigned = still_unassigned
        partition.append(factor)

    if len(partition) < 2:
        return None

    # Verification: |Φ| must equal the product of distinct projection counts.
    factors: List[DNF] = []
    product = 1
    for var_group in partition:
        group = frozenset(var_group)
        projections = {clause.project_ids(group) for clause in clauses}
        product *= len(projections)
        factors.append(DNF(projections))
    if product != len(clauses):
        return None
    # A factor containing the empty clause would be the constant true and
    # signals a degenerate factorization; reject it (the size check usually
    # already has).
    if any(factor.is_true() for factor in factors):
        return None
    return factors


# ----------------------------------------------------------------------
# Shannon expansion
# ----------------------------------------------------------------------
class ShannonBranch:
    """One branch of a Shannon expansion: ``{x=a} ⊙ Φ|_{x=a}``."""

    __slots__ = ("variable", "value", "probability", "cofactor")

    def __init__(
        self,
        variable: Hashable,
        value: Hashable,
        probability: float,
        cofactor: DNF,
    ) -> None:
        self.variable = variable
        self.value = value
        self.probability = probability
        self.cofactor = cofactor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShannonBranch({self.variable!r}={self.value!r}, "
            f"p={self.probability}, cofactor={self.cofactor!r})"
        )


def shannon_expansion(
    dnf: DNF, variable: Hashable, registry: VariableRegistry
) -> List[ShannonBranch]:
    """Expand ``Φ`` on ``variable`` into mutually exclusive branches.

    Branches whose cofactor is empty (unsatisfiable conjunct) are skipped,
    exactly as in Fig. 1 of the paper.  The branch cofactor of a value
    ``a`` contains the restricted clauses plus all clauses not mentioning
    ``variable``.
    """
    if variable not in dnf.variables:
        raise ValueError(f"variable {variable!r} does not occur in the DNF")
    branches: List[ShannonBranch] = []
    for value in registry.domain(variable):
        cofactor = dnf.restrict(variable, value)
        if cofactor.is_false():
            continue
        branches.append(
            ShannonBranch(
                variable,
                value,
                registry.probability(variable, value),
                cofactor,
            )
        )
    return branches
