"""Monotonic-clock indirection for deadline budgets.

Every deadline check in the library (the anytime approximation loop, the
batched refinement drivers, the parallel execution layer) reads time
through :func:`monotonic` instead of calling :func:`time.monotonic`
directly.  Production behaviour is identical — the default source *is*
``time.monotonic`` — but tests can swap in a fake clock and exercise
"deadline expires mid-run" paths deterministically, without sleeping and
without flaking under CI load (see the ``fake_clock`` fixture in
``tests/conftest.py``).
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["monotonic", "set_source", "reset_source"]

#: The active time source.  Swapped wholesale by :func:`set_source`;
#: reads always go through :func:`monotonic` so callers see the swap.
_source: Callable[[], float] = time.monotonic


def monotonic() -> float:
    """Seconds from the active monotonic source (default: wall clock)."""
    return _source()


def set_source(source: Callable[[], float]) -> None:
    """Replace the time source (tests only; pair with :func:`reset_source`)."""
    global _source
    _source = source


def reset_source() -> None:
    """Restore the real ``time.monotonic`` source."""
    global _source
    _source = time.monotonic
