"""Lower and upper probability bounds for DNFs (paper, Fig. 3).

The ``Independent`` heuristic partitions a DNF into *buckets* of pairwise
independent clauses.  Each bucket's probability is exact (independent-or of
its clauses); the maximum bucket probability is a lower bound for ``P(Φ)``
and the clamped sum of bucket probabilities an upper bound (Prop. 5.1).

Following the paper's empirical refinement, clauses are first sorted in
descending order of marginal probability, so the first bucket collects the
most probable clause and the subsequent independent ones — this tightens
the lower bound considerably in practice (Example 5.2).

Remark 5.3's extension is also implemented (opt-in): buckets may admit
*positively correlated* clauses as long as the bucket still factors into
one-occurrence form, whose probability remains exactly computable in
linear time.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Set, Tuple

from .dnf import DNF
from .events import Clause
from .readonce import try_read_once
from .variables import VariableRegistry

__all__ = ["independent_bounds", "BucketPartition", "bucket_partition"]

Bounds = Tuple[float, float]

#: Below this many clauses the numpy batch setup costs more than the
#: scalar loop it replaces.
_VECTORIZE_MIN_CLAUSES = 8

#: Lazy handle on :mod:`repro.circuits.kernels` (imported on first use —
#: a module-level import would cycle through the circuits package, whose
#: compiler imports this module).  ``False`` marks a failed import.
_kernels: Any = None


def _clause_probabilities(
    clauses: Sequence[Clause],
    registry: VariableRegistry,
    vectorized: Optional[bool],
) -> List[float]:
    """Marginal probability per clause, batched when it pays off.

    The d-tree leaf-bounds hot path: every :func:`bucket_partition`
    call starts by computing all clause marginals.  With numpy
    available (and unless ``vectorized=False``) the products run over
    the registry's dense probability window as one array pass per
    clause arity — bit-identical to :meth:`Clause.probability`, which
    multiplies the same atom probabilities in the same order.
    """
    global _kernels
    if (
        vectorized is False
        or len(clauses) < _VECTORIZE_MIN_CLAUSES
    ):
        return [clause.probability(registry) for clause in clauses]
    if _kernels is None:
        try:
            from ..circuits import kernels as _kernels_module
        except ImportError:  # pragma: no cover - circuits ships with core
            _kernels = False
        else:
            _kernels = _kernels_module
    if _kernels is not False:
        batched = _kernels.clause_probability_batch(clauses, registry)
        if batched is not None:
            return batched
    return [clause.probability(registry) for clause in clauses]


class BucketPartition:
    """The outcome of the Fig. 3 partitioning: buckets plus their exact
    probabilities, ready to be turned into bounds."""

    __slots__ = ("buckets", "probabilities")

    def __init__(
        self, buckets: List[List[Clause]], probabilities: List[float]
    ) -> None:
        self.buckets = buckets
        self.probabilities = probabilities

    def bounds(self) -> Bounds:
        """``[max bucket prob, min(1, Σ bucket probs)]`` (Prop. 5.1)."""
        if not self.probabilities:
            return 0.0, 0.0
        lower = max(self.probabilities)
        upper = min(1.0, sum(self.probabilities))
        return lower, upper


def bucket_partition(
    dnf: DNF,
    registry: VariableRegistry,
    *,
    sort_by_probability: bool = True,
    allow_read_once_buckets: bool = False,
    vectorized: Optional[bool] = None,
) -> BucketPartition:
    """Greedy first-fit partitioning of clauses into independent buckets.

    ``sort_by_probability`` enables the paper's refinement of processing
    clauses in descending order of marginal probability.

    ``allow_read_once_buckets`` enables the Remark 5.3 extension: a clause
    that shares variables with a bucket may still join it when the enlarged
    bucket factors into one-occurrence form; the bucket probability is then
    evaluated on the factored form.

    ``vectorized`` selects the clause-marginal backend (``None`` auto:
    numpy-batched when available and the clause set is large enough,
    ``False`` forces the scalar loop); the partition — and therefore
    the bounds — is bit-identical either way.
    """
    clauses = dnf.sorted_clauses()
    probabilities = dict(
        zip(
            clauses,
            _clause_probabilities(clauses, registry, vectorized),
        )
    )
    if sort_by_probability:
        clauses.sort(
            key=lambda clause: (-probabilities[clause], clause.atom_ids)
        )

    bucket_clauses: List[List[Clause]] = []
    bucket_variables: List[Set[int]] = []
    # For non-read-once buckets the probability is maintained incrementally
    # with the independent-or formula; read-once buckets are re-evaluated on
    # their factored form whenever a correlated clause joins.
    bucket_probabilities: List[float] = []

    for clause in clauses:
        clause_vars = clause.variable_ids
        clause_prob = probabilities[clause]
        placed = False
        for index, used_vars in enumerate(bucket_variables):
            if clause_vars.isdisjoint(used_vars):
                bucket_clauses[index].append(clause)
                used_vars.update(clause_vars)
                bucket_probabilities[index] = 1.0 - (
                    1.0 - bucket_probabilities[index]
                ) * (1.0 - clause_prob)
                placed = True
                break
            if allow_read_once_buckets:
                candidate = DNF(bucket_clauses[index] + [clause])
                factored = try_read_once(candidate)
                if factored is not None:
                    bucket_clauses[index].append(clause)
                    used_vars.update(clause_vars)
                    bucket_probabilities[index] = factored.probability(
                        registry
                    )
                    placed = True
                    break
        if not placed:
            bucket_clauses.append([clause])
            bucket_variables.append(set(clause_vars))
            bucket_probabilities.append(clause_prob)

    return BucketPartition(bucket_clauses, bucket_probabilities)


def independent_bounds(
    dnf: DNF,
    registry: VariableRegistry,
    *,
    sort_by_probability: bool = True,
    allow_read_once_buckets: bool = False,
    vectorized: Optional[bool] = None,
) -> Bounds:
    """``Independent(Φ)`` of Fig. 3: quick lower/upper bounds for ``P(Φ)``.

    Guarantees ``L ≤ P(Φ) ≤ U`` (Prop. 5.1).  Quadratic in the number of
    clauses in the worst case; single-bucket outcomes (all clauses pairwise
    independent) yield *exact* point bounds, which is what makes leaves of
    mostly-``⊗`` d-trees cheap.
    """
    if dnf.is_false():
        return 0.0, 0.0
    if dnf.is_true():
        return 1.0, 1.0
    if dnf.is_single_clause():
        prob = dnf.sole_clause().probability(registry)
        return prob, prob
    partition = bucket_partition(
        dnf,
        registry,
        sort_by_probability=sort_by_probability,
        allow_read_once_buckets=allow_read_once_buckets,
        vectorized=vectorized,
    )
    return partition.bounds()
