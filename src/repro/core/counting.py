"""Model counting and conditioning on top of d-trees.

The paper frames exact probability computation as "a generalization of
counting the number of satisfying assignments" and notes the study "may
be of interest to model counting (#SAT) and probabilistic inference"
(Section I).  This module makes those connections concrete:

* :func:`model_count` — #Φ over a set of Boolean variables, computed as
  ``P(Φ) · 2^n`` under the uniform distribution; with ``epsilon`` an
  approximate count with the same multiplicative guarantee.
* :func:`weighted_model_count` — WMC with per-atom weights: exactly
  ``P(Φ)`` under the induced (normalised) distribution, scaled by the
  total weight, which is how WMC solvers reduce to probability
  computation.
* :func:`conditional_probability` — ``P(φ | ψ) = P(φ ∧ ψ) / P(ψ)``,
  the conditioning operation of probabilistic databases (cf. the
  ws-trees of Koch & Olteanu, "Conditioning Probabilistic Databases").
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Sequence, Tuple

from .approx import ABSOLUTE, RELATIVE, approximate_probability
from .dnf import DNF
from .exact import exact_probability
from .variables import VariableRegistry

__all__ = [
    "model_count",
    "weighted_model_count",
    "conditional_probability",
]


def _uniform_registry(variables: Sequence[Hashable]) -> VariableRegistry:
    return VariableRegistry.from_boolean_probabilities(
        {variable: 0.5 for variable in variables}
    )


def model_count(
    dnf: DNF,
    variables: Optional[Sequence[Hashable]] = None,
    *,
    epsilon: float = 0.0,
) -> float:
    """Number of satisfying assignments of a Boolean DNF.

    ``variables`` fixes the assignment universe (default: exactly the
    variables occurring in ``Φ``).  With ``epsilon > 0`` the result is a
    relative ε-approximation of the count — the guarantee transfers from
    the probability because the scale factor ``2^n`` is exact.

    Atoms must be Boolean (``x = True`` / ``x = False``).
    """
    if variables is None:
        variables = sorted(dnf.variables, key=repr)
    else:
        variables = list(variables)
        missing = dnf.variables - set(variables)
        if missing:
            raise ValueError(
                f"DNF mentions variables outside the universe: {missing}"
            )
    universe_size = len(variables)
    if dnf.is_false():
        return 0.0
    if dnf.is_true():
        return float(2**universe_size)

    registry = _uniform_registry(variables)
    if epsilon == 0.0:
        probability = exact_probability(dnf, registry)
    else:
        probability = approximate_probability(
            dnf, registry, epsilon=epsilon, error_kind=RELATIVE
        ).estimate
    return probability * (2.0**universe_size)


def weighted_model_count(
    dnf: DNF,
    weights: Mapping[Tuple[Hashable, Hashable], float],
    *,
    epsilon: float = 0.0,
) -> float:
    """Weighted model count ``Σ_ω⊨Φ Π_atoms w(atom)``.

    ``weights`` maps each atom ``(variable, value)`` to a non-negative
    weight; every variable of ``Φ`` needs weights for its full domain
    (both polarities for Boolean variables).  The WMC equals the formula
    probability under the normalised per-variable distribution times the
    product of per-variable weight totals — the classical WMC-to-
    probability reduction.
    """
    by_variable: Dict[Hashable, Dict[Hashable, float]] = {}
    for (variable, value), weight in weights.items():
        if weight < 0:
            raise ValueError(f"negative weight for {(variable, value)}")
        by_variable.setdefault(variable, {})[value] = weight

    missing = dnf.variables - set(by_variable)
    if missing:
        raise ValueError(f"missing weights for variables: {missing}")

    registry = VariableRegistry()
    scale = 1.0
    for variable, table in by_variable.items():
        total = sum(table.values())
        if total <= 0:
            return 0.0
        scale *= total
        registry.add_variable(
            variable,
            {value: weight / total for value, weight in table.items()
             if weight > 0},
        )

    if dnf.is_false():
        return 0.0
    if dnf.is_true():
        return scale

    # Clauses using zero-weight atoms contribute nothing: drop them by
    # re-normalising the DNF against the registry's (positive) domains.
    clauses = []
    for clause in dnf:
        if all(
            value in dict(registry.distribution(variable))
            for variable, value in clause.items()
        ):
            clauses.append(clause)
    pruned = DNF(clauses)
    if pruned.is_false():
        return 0.0

    if epsilon == 0.0:
        probability = exact_probability(pruned, registry)
    else:
        probability = approximate_probability(
            pruned, registry, epsilon=epsilon, error_kind=RELATIVE
        ).estimate
    return probability * scale


def conditional_probability(
    phi: DNF,
    given: DNF,
    registry: VariableRegistry,
    *,
    epsilon: float = 0.0,
) -> float:
    """``P(φ | ψ)`` for DNFs over one probability space.

    Computed as ``P(φ ∧ ψ) / P(ψ)`` with the d-tree algorithm; raises
    :class:`ZeroDivisionError` when the condition is (almost surely)
    false.  With ``epsilon > 0``, numerator and denominator are relative
    ε-approximations, so the quotient carries a relative error of at most
    ``2ε/(1−ε)`` — fine for exploratory use; use ``epsilon=0`` for exact
    conditioning.
    """
    conjunction = phi.conjoin(given)

    def probability_of(target: DNF) -> float:
        if target.is_false():
            return 0.0
        if target.is_true():
            return 1.0
        if epsilon == 0.0:
            return exact_probability(target, registry)
        return approximate_probability(
            target, registry, epsilon=epsilon, error_kind=RELATIVE
        ).estimate

    denominator = probability_of(given)
    if denominator == 0.0:
        raise ZeroDivisionError("conditioning on an almost-surely-false event")
    return probability_of(conjunction) / denominator
