"""Discrete random variables and their probability distributions.

The paper (Section III) defines a finite probability space via a set of
*independent* random variables with finite domains.  A distribution assigns
``P(x = a)`` in ``(0, 1]`` to each atomic event so that for every variable
the assigned probabilities sum to one.

:class:`VariableRegistry` is that probability space.  Everything else in the
library (DNFs, d-trees, Monte-Carlo estimators, the query engine) computes
probabilities against a registry.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Sequence, Tuple

__all__ = ["VariableRegistry", "BOOLEAN_DOMAIN"]

#: Domain of a Boolean random variable; ``x`` abbreviates ``x = True`` and
#: ``¬x`` abbreviates ``x = False`` (paper, Section III).
BOOLEAN_DOMAIN: Tuple[bool, bool] = (True, False)

_SUM_TOLERANCE = 1e-9


class VariableRegistry:
    """A finite probability space over independent discrete random variables.

    Variables are registered with a finite domain and a probability for each
    domain value.  The registry validates that probabilities are in
    ``(0, 1]`` and sum to one per variable (within a small tolerance, after
    which they are renormalised so downstream arithmetic is exact).

    Example
    -------
    >>> reg = VariableRegistry()
    >>> reg.add_boolean("x", 0.3)
    'x'
    >>> reg.add_variable("u", {1: 0.5, 2: 0.2, 3: 0.3})
    'u'
    >>> reg.probability("u", 2)
    0.2
    """

    def __init__(self) -> None:
        self._distributions: Dict[Hashable, Dict[Hashable, float]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_variable(
        self, name: Hashable, distribution: Mapping[Hashable, float]
    ) -> Hashable:
        """Register ``name`` with the given ``value -> probability`` map.

        Returns the variable name so registration chains read naturally.
        Raises :class:`ValueError` on empty domains, out-of-range
        probabilities, sums far from one, or duplicate registration with a
        *different* distribution (re-registering the identical distribution
        is a no-op, which makes data loaders idempotent).
        """
        if not distribution:
            raise ValueError(f"variable {name!r} needs a non-empty domain")
        for value, prob in distribution.items():
            if not (0.0 < prob <= 1.0):
                raise ValueError(
                    f"P({name!r} = {value!r}) = {prob} is outside (0, 1]"
                )
        total = math.fsum(distribution.values())
        if abs(total - 1.0) > _SUM_TOLERANCE:
            raise ValueError(
                f"distribution of {name!r} sums to {total}, expected 1.0"
            )
        normalised = {value: prob / total for value, prob in distribution.items()}
        existing = self._distributions.get(name)
        if existing is not None:
            if existing != normalised:
                raise ValueError(f"variable {name!r} already registered")
            return name
        self._distributions[name] = normalised
        return name

    def add_boolean(self, name: Hashable, probability_true: float) -> Hashable:
        """Register a Boolean variable with ``P(name = True)`` given."""
        if not (0.0 < probability_true < 1.0):
            raise ValueError(
                f"P({name!r}) = {probability_true} must be strictly in (0, 1) "
                "for a Boolean variable (both outcomes need positive mass)"
            )
        return self.add_variable(
            name, {True: probability_true, False: 1.0 - probability_true}
        )

    def add_booleans(
        self, names_and_probabilities: Iterable[Tuple[Hashable, float]]
    ) -> None:
        """Bulk-register Boolean variables from ``(name, P(True))`` pairs."""
        for name, prob in names_and_probabilities:
            self.add_boolean(name, prob)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, name: Hashable) -> bool:
        return name in self._distributions

    def __len__(self) -> int:
        return len(self._distributions)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._distributions)

    def variables(self) -> Iterator[Hashable]:
        """Iterate over all registered variable names."""
        return iter(self._distributions)

    def domain(self, name: Hashable) -> Tuple[Hashable, ...]:
        """Domain values of ``name`` (insertion order, deterministic)."""
        return tuple(self._distribution_of(name))

    def distribution(self, name: Hashable) -> Dict[Hashable, float]:
        """A copy of the ``value -> probability`` map of ``name``."""
        return dict(self._distribution_of(name))

    def probability(self, name: Hashable, value: Hashable) -> float:
        """``P(name = value)``; raises ``KeyError`` on unknown atoms."""
        dist = self._distribution_of(name)
        try:
            return dist[value]
        except KeyError:
            raise KeyError(
                f"value {value!r} not in domain of variable {name!r}"
            ) from None

    def is_boolean(self, name: Hashable) -> bool:
        """True when ``name`` has the domain ``{True, False}``."""
        return set(self._distribution_of(name)) == {True, False}

    def _distribution_of(self, name: Hashable) -> Dict[Hashable, float]:
        try:
            return self._distributions[name]
        except KeyError:
            raise KeyError(f"unknown random variable {name!r}") from None

    # ------------------------------------------------------------------
    # Worlds
    # ------------------------------------------------------------------
    def world_count(self, names: Sequence[Hashable] | None = None) -> int:
        """Number of valuations over ``names`` (default: all variables)."""
        names = list(self._distributions) if names is None else list(names)
        count = 1
        for name in names:
            count *= len(self._distribution_of(name))
        return count

    def worlds(
        self, names: Sequence[Hashable] | None = None
    ) -> Iterator[Dict[Hashable, Hashable]]:
        """Enumerate valuations of ``names`` as ``var -> value`` dicts.

        Exponential in the number of variables; intended for tests and for
        the brute-force semantics in :mod:`repro.core.semantics`.
        """
        names = list(self._distributions) if names is None else list(names)
        domains = [self.domain(name) for name in names]
        for combo in itertools.product(*domains):
            yield dict(zip(names, combo))

    def world_probability(self, world: Mapping[Hashable, Hashable]) -> float:
        """Probability of a full valuation (product of atomic events)."""
        result = 1.0
        for name, value in world.items():
            result *= self.probability(name, value)
        return result

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_boolean_probabilities(
        cls, probabilities: Mapping[Hashable, float]
    ) -> "VariableRegistry":
        """Build a registry of Boolean variables from a ``name -> P`` map."""
        registry = cls()
        for name, prob in probabilities.items():
            registry.add_boolean(name, prob)
        return registry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VariableRegistry({len(self)} variables)"
