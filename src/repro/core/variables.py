"""Discrete random variables and their probability distributions.

The paper (Section III) defines a finite probability space via a set of
*independent* random variables with finite domains.  A distribution assigns
``P(x = a)`` in ``(0, 1]`` to each atomic event so that for every variable
the assigned probabilities sum to one.

:class:`VariableRegistry` is that probability space.  Everything else in the
library (DNFs, d-trees, Monte-Carlo estimators, the query engine) computes
probabilities against a registry.

Interning
---------
Variable names and atomic events are *interned*: a process-wide table maps
every distinct variable name to a dense integer id, and every distinct
``(variable, value)`` atom to a dense atom id.  The formula layer
(:mod:`repro.core.events`, :mod:`repro.core.dnf`) stores only these ids, so
the hot loops of decomposition — subsumption, union-find partitioning,
Shannon restriction, bucket bounds — run on small integers instead of
hashing arbitrary user objects.  Public constructors keep accepting
arbitrary hashable names; interning happens here, at the registry boundary.
Each registry additionally keeps an array mapping atom ids to
probabilities, giving ``P(x = a)`` by a single list index in the inner
loops.
"""

from __future__ import annotations

import itertools
import math
import threading
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "VariableRegistry",
    "BOOLEAN_DOMAIN",
    "intern_variable",
    "intern_atom",
    "intern_snapshot",
    "intern_version",
    "install_intern_snapshot",
    "lookup_variable",
    "lookup_atom",
    "variable_name",
    "variable_repr",
    "atom_entry",
]

#: Domain of a Boolean random variable; ``x`` abbreviates ``x = True`` and
#: ``¬x`` abbreviates ``x = False`` (paper, Section III).
BOOLEAN_DOMAIN: Tuple[bool, bool] = (True, False)

_SUM_TOLERANCE = 1e-9

#: A registration landing further than this past the end of a registry's
#: probability window goes to the overflow dict instead of extending the
#: array — bounding per-registry memory by its own contiguous id span.
_WINDOW_GROWTH_LIMIT = 4096


# ----------------------------------------------------------------------
# Interning
# ----------------------------------------------------------------------
# The tables are process-wide and grow monotonically: an id, once
# assigned, is never reclaimed (formulas hold bare ints, so reclamation
# would require tracing them).  They store one entry per distinct
# variable name / atomic event ever constructed — orders of magnitude
# smaller than the lineage built over them, but a deliberate trade-off a
# future compaction pass could revisit.

#: name -> dense variable id
_VARIABLE_IDS: Dict[Hashable, int] = {}
#: variable id -> name
_VARIABLE_NAMES: List[Hashable] = []
#: (variable id, value) -> dense atom id
_ATOM_IDS: Dict[Tuple[int, Hashable], int] = {}
#: atom id -> (variable id, name, value)
_ATOM_ENTRIES: List[Tuple[int, Hashable, Hashable]] = []
#: Guards id assignment; reads go lock-free (an id published in the
#: lookup dict always has its entry list slot filled first).
_INTERN_LOCK = threading.Lock()


def intern_variable(name: Hashable) -> int:
    """Dense integer id of a variable name (assigned on first sight)."""
    var_id = _VARIABLE_IDS.get(name)
    if var_id is not None:
        return var_id
    with _INTERN_LOCK:
        var_id = _VARIABLE_IDS.get(name)
        if var_id is None:
            var_id = len(_VARIABLE_NAMES)
            _VARIABLE_NAMES.append(name)
            _VARIABLE_IDS[name] = var_id  # publish after the slot exists
        return var_id


def intern_atom(name: Hashable, value: Hashable) -> Tuple[int, int]:
    """``(atom id, variable id)`` of the atomic event ``name = value``."""
    var_id = intern_variable(name)
    key = (var_id, value)
    atom_id = _ATOM_IDS.get(key)
    if atom_id is not None:
        return atom_id, var_id
    with _INTERN_LOCK:
        atom_id = _ATOM_IDS.get(key)
        if atom_id is None:
            atom_id = len(_ATOM_ENTRIES)
            _ATOM_ENTRIES.append((var_id, name, value))
            _ATOM_IDS[key] = atom_id  # publish after the slot exists
    return atom_id, var_id


#: One intern-table snapshot: ``(variable names, atom entries)`` in id
#: order.  Picklable as long as the interned names/values are.
InternSnapshot = Tuple[
    Tuple[Hashable, ...], Tuple[Tuple[int, Hashable, Hashable], ...]
]


def intern_snapshot() -> InternSnapshot:
    """A picklable snapshot of the process-wide intern tables.

    Ship this once per worker process (the parallel execution layer does
    so in its pool initializer) and replay it with
    :func:`install_intern_snapshot`; afterwards the worker assigns the
    exact same dense ids as the snapshotting process, so clauses and DNFs
    can cross the process boundary as bare integer-id tuples.
    """
    with _INTERN_LOCK:
        return tuple(_VARIABLE_NAMES), tuple(_ATOM_ENTRIES)


def intern_version() -> Tuple[int, int]:
    """Monotone version of the intern tables: ``(variables, atoms)``.

    The tables are append-only, so two equal versions imply identical
    table contents.  The parallel execution layer compares a pool's
    snapshot version against the current one to decide whether an
    engine-lifetime worker pool must re-ship its snapshot (new atoms
    interned since pool start) before encoding tasks as bare ids.
    """
    with _INTERN_LOCK:
        return len(_VARIABLE_NAMES), len(_ATOM_ENTRIES)


def install_intern_snapshot(snapshot: InternSnapshot) -> None:
    """Replay a snapshot so this process assigns identical interned ids.

    Idempotent: entries already interned (e.g. in a forked child, which
    inherits the parent's tables) are verified rather than re-added.
    Raises :class:`RuntimeError` if this process has already interned
    conflicting entries — ids are append-only, so a diverged process can
    never be reconciled and must not exchange id-encoded formulas.
    """
    names, entries = snapshot
    for expected_id, name in enumerate(names):
        var_id = intern_variable(name)
        if var_id != expected_id:
            raise RuntimeError(
                f"intern table diverged: variable {name!r} has id "
                f"{var_id}, snapshot expects {expected_id}"
            )
    for expected_id, (var_id, name, value) in enumerate(entries):
        atom_id, got_var_id = intern_atom(name, value)
        if atom_id != expected_id or got_var_id != var_id:
            raise RuntimeError(
                f"intern table diverged: atom ({name!r}, {value!r}) has "
                f"id {atom_id}/var {got_var_id}, snapshot expects "
                f"{expected_id}/var {var_id}"
            )


def lookup_variable(name: Hashable) -> Optional[int]:
    """The id of ``name`` if already interned, else ``None``.

    Read-only probes (``binds``, ``restrict`` on a variable that occurs
    nowhere) use this so they don't grow the process-wide tables.
    """
    return _VARIABLE_IDS.get(name)


def lookup_atom(
    name: Hashable, value: Hashable
) -> Tuple[Optional[int], Optional[int]]:
    """``(atom id, variable id)`` if interned, ``None`` components otherwise."""
    var_id = _VARIABLE_IDS.get(name)
    if var_id is None:
        return None, None
    return _ATOM_IDS.get((var_id, value)), var_id


#: variable id -> cached ``repr(name)``; deterministic tie-break currency.
_VARIABLE_REPRS: Dict[int, str] = {}


def variable_name(var_id: int) -> Hashable:
    """The name a variable id was interned from."""
    return _VARIABLE_NAMES[var_id]


def variable_repr(var_id: int) -> str:
    """Cached ``repr`` of a variable name.

    Tie-breaks in pivot selection and component ordering follow the repr
    order of the original names (as the seed implementation did), but the
    strings are computed once per variable instead of once per comparison.
    """
    cached = _VARIABLE_REPRS.get(var_id)
    if cached is None:
        cached = repr(_VARIABLE_NAMES[var_id])
        _VARIABLE_REPRS[var_id] = cached
    return cached


def atom_entry(atom_id: int) -> Tuple[int, Hashable, Hashable]:
    """``(variable id, variable name, value)`` of an atom id."""
    return _ATOM_ENTRIES[atom_id]


class VariableRegistry:
    """A finite probability space over independent discrete random variables.

    Variables are registered with a finite domain and a probability for each
    domain value.  The registry validates that probabilities are in
    ``(0, 1]`` and sum to one per variable (within a small tolerance, after
    which they are renormalised so downstream arithmetic is exact).

    Example
    -------
    >>> reg = VariableRegistry()
    >>> reg.add_boolean("x", 0.3)
    'x'
    >>> reg.add_variable("u", {1: 0.5, 2: 0.2, 3: 0.3})
    'u'
    >>> reg.probability("u", 2)
    0.2
    """

    def __init__(self) -> None:
        self._distributions: Dict[Hashable, Dict[Hashable, float]] = {}
        # Probability per interned atom id, shared with the formula layer
        # for array-indexed lookup in decomposition inner loops.  The
        # list is offset by ``_atom_base`` (the first registered atom's
        # id); registrations landing far outside the current window —
        # ids reused from much earlier process history, or ids far ahead
        # after heavy unrelated interning — go to the overflow dict so a
        # registry never allocates memory proportional to the
        # process-wide atom count.
        self._atom_probs: List[Optional[float]] = []
        self._atom_base: int = 0
        self._atom_overflow: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_variable(
        self, name: Hashable, distribution: Mapping[Hashable, float]
    ) -> Hashable:
        """Register ``name`` with the given ``value -> probability`` map.

        Returns the variable name so registration chains read naturally.
        Raises :class:`ValueError` on empty domains, out-of-range
        probabilities, sums far from one, or duplicate registration with a
        *different* distribution (re-registering the identical distribution
        is a no-op, which makes data loaders idempotent).
        """
        if not distribution:
            raise ValueError(f"variable {name!r} needs a non-empty domain")
        for value, prob in distribution.items():
            if not (0.0 < prob <= 1.0):
                raise ValueError(
                    f"P({name!r} = {value!r}) = {prob} is outside (0, 1]"
                )
        total = math.fsum(distribution.values())
        if abs(total - 1.0) > _SUM_TOLERANCE:
            raise ValueError(
                f"distribution of {name!r} sums to {total}, expected 1.0"
            )
        normalised = {value: prob / total for value, prob in distribution.items()}
        existing = self._distributions.get(name)
        if existing is not None:
            if existing != normalised:
                raise ValueError(f"variable {name!r} already registered")
            return name
        self._distributions[name] = normalised
        for value, prob in normalised.items():
            atom_id, _var_id = intern_atom(name, value)
            self._store_atom_prob(atom_id, prob)
        return name

    def _store_atom_prob(self, atom_id: int, prob: float) -> None:
        """Write one atom's probability into the array window (or the
        overflow dict when it lands outside the growth limit)."""
        probs = self._atom_probs
        if not probs and not self._atom_overflow:
            self._atom_base = atom_id
        index = atom_id - self._atom_base
        if index < 0 or index >= len(probs) + _WINDOW_GROWTH_LIMIT:
            self._atom_overflow[atom_id] = prob
        else:
            if index >= len(probs):
                probs.extend([None] * (index + 1 - len(probs)))
            probs[index] = prob

    def _clear_atom_prob(self, atom_id: int) -> None:
        index = atom_id - self._atom_base
        if 0 <= index < len(self._atom_probs):
            self._atom_probs[index] = None
        self._atom_overflow.pop(atom_id, None)

    def add_boolean(self, name: Hashable, probability_true: float) -> Hashable:
        """Register a Boolean variable with ``P(name = True)`` given."""
        if not (0.0 < probability_true < 1.0):
            raise ValueError(
                f"P({name!r}) = {probability_true} must be strictly in (0, 1) "
                "for a Boolean variable (both outcomes need positive mass)"
            )
        return self.add_variable(
            name, {True: probability_true, False: 1.0 - probability_true}
        )

    def add_booleans(
        self, names_and_probabilities: Iterable[Tuple[Hashable, float]]
    ) -> None:
        """Bulk-register Boolean variables from ``(name, P(True))`` pairs."""
        for name, prob in names_and_probabilities:
            self.add_boolean(name, prob)

    # ------------------------------------------------------------------
    # Mutation (DML support)
    # ------------------------------------------------------------------
    def set_distribution(
        self, name: Hashable, distribution: Mapping[Hashable, float]
    ) -> Dict[Hashable, float]:
        """Replace the distribution of an existing variable.

        Validates exactly like :meth:`add_variable` and returns the
        *previous* ``value -> probability`` map so a transaction can
        undo the change.  Atom-probability slots for domain values the
        new distribution drops are cleared (lookups then fall back to
        the authoritative distribution dict, which raises with precise
        diagnostics).
        """
        old = dict(self._distribution_of(name))
        if not distribution:
            raise ValueError(f"variable {name!r} needs a non-empty domain")
        for value, prob in distribution.items():
            if not (0.0 < prob <= 1.0):
                raise ValueError(
                    f"P({name!r} = {value!r}) = {prob} is outside (0, 1]"
                )
        total = math.fsum(distribution.values())
        if abs(total - 1.0) > _SUM_TOLERANCE:
            raise ValueError(
                f"distribution of {name!r} sums to {total}, expected 1.0"
            )
        normalised = {
            value: prob / total for value, prob in distribution.items()
        }
        for value in old:
            if value not in normalised:
                atom_id, _var_id = lookup_atom(name, value)
                if atom_id is not None:
                    self._clear_atom_prob(atom_id)
        self._distributions[name] = normalised
        for value, prob in normalised.items():
            atom_id, _var_id = intern_atom(name, value)
            self._store_atom_prob(atom_id, prob)
        return old

    def set_boolean(
        self, name: Hashable, probability_true: float
    ) -> Dict[Hashable, float]:
        """Replace ``P(name = True)``; returns the previous distribution."""
        if not (0.0 < probability_true < 1.0):
            raise ValueError(
                f"P({name!r}) = {probability_true} must be strictly in "
                "(0, 1) for a Boolean variable"
            )
        return self.set_distribution(
            name, {True: probability_true, False: 1.0 - probability_true}
        )

    def remove_variable(self, name: Hashable) -> Dict[Hashable, float]:
        """Unregister ``name``; returns its distribution for undo.

        Only the registry entry is removed — interned ids are process
        lifetime by design.  Formulas still holding the variable will
        raise on evaluation, which is exactly the signal a dangling
        lineage reference should produce.
        """
        old = self._distributions.pop(name, None)
        if old is None:
            raise KeyError(f"unknown random variable {name!r}")
        for value in old:
            atom_id, _var_id = lookup_atom(name, value)
            if atom_id is not None:
                self._clear_atom_prob(atom_id)
        return dict(old)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, name: Hashable) -> bool:
        return name in self._distributions

    def __len__(self) -> int:
        return len(self._distributions)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._distributions)

    def variables(self) -> Iterator[Hashable]:
        """Iterate over all registered variable names."""
        return iter(self._distributions)

    def domain(self, name: Hashable) -> Tuple[Hashable, ...]:
        """Domain values of ``name`` (insertion order, deterministic)."""
        return tuple(self._distribution_of(name))

    def distribution(self, name: Hashable) -> Dict[Hashable, float]:
        """A copy of the ``value -> probability`` map of ``name``."""
        return dict(self._distribution_of(name))

    def probability(self, name: Hashable, value: Hashable) -> float:
        """``P(name = value)``; raises ``KeyError`` on unknown atoms."""
        dist = self._distribution_of(name)
        try:
            return dist[value]
        except KeyError:
            raise KeyError(
                f"value {value!r} not in domain of variable {name!r}"
            ) from None

    def atom_probability(self, atom_id: int) -> float:
        """``P`` of an interned atom id; raises ``KeyError`` when unknown."""
        probs = self._atom_probs
        index = atom_id - self._atom_base
        if 0 <= index < len(probs):
            prob = probs[index]
            if prob is not None:
                return prob
        prob = self._atom_overflow.get(atom_id)
        if prob is not None:
            return prob
        _var_id, name, value = atom_entry(atom_id)
        # Re-raises with the precise variable/value diagnostics.
        return self.probability(name, value)

    def is_boolean(self, name: Hashable) -> bool:
        """True when ``name`` has the domain ``{True, False}``."""
        return set(self._distribution_of(name)) == {True, False}

    def _distribution_of(self, name: Hashable) -> Dict[Hashable, float]:
        try:
            return self._distributions[name]
        except KeyError:
            raise KeyError(f"unknown random variable {name!r}") from None

    # ------------------------------------------------------------------
    # Worlds
    # ------------------------------------------------------------------
    def world_count(self, names: Sequence[Hashable] | None = None) -> int:
        """Number of valuations over ``names`` (default: all variables)."""
        names = list(self._distributions) if names is None else list(names)
        count = 1
        for name in names:
            count *= len(self._distribution_of(name))
        return count

    def worlds(
        self, names: Sequence[Hashable] | None = None
    ) -> Iterator[Dict[Hashable, Hashable]]:
        """Enumerate valuations of ``names`` as ``var -> value`` dicts.

        Exponential in the number of variables; intended for tests and for
        the brute-force semantics in :mod:`repro.core.semantics`.
        """
        names = list(self._distributions) if names is None else list(names)
        domains = [self.domain(name) for name in names]
        for combo in itertools.product(*domains):
            yield dict(zip(names, combo))

    def world_probability(self, world: Mapping[Hashable, Hashable]) -> float:
        """Probability of a full valuation (product of atomic events)."""
        result = 1.0
        for name, value in world.items():
            result *= self.probability(name, value)
        return result

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_boolean_probabilities(
        cls, probabilities: Mapping[Hashable, float]
    ) -> "VariableRegistry":
        """Build a registry of Boolean variables from a ``name -> P`` map."""
        registry = cls()
        for name, prob in probabilities.items():
            registry.add_boolean(name, prob)
        return registry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VariableRegistry({len(self)} variables)"
