"""Positive propositional formulas (the lineage AST).

The query engine annotates tuples with *events* built from atomic events
with ``∧`` and ``∨`` (paper, Section III).  Keeping lineage as an AST and
converting to DNF only when a confidence is requested mirrors how SPROUT
materialises lineage relationally and casts confidence computation as a DNF
probability problem.

The AST is deliberately small: :class:`AtomNode`, :class:`AndNode`,
:class:`OrNode` plus the constants.  ``to_dnf`` distributes conjunctions
over disjunctions (worst-case exponential, as unavoidable), dropping
inconsistent clauses.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence, Tuple

from .dnf import DNF
from .events import Atom, Clause
from .variables import VariableRegistry

__all__ = [
    "Formula",
    "AtomNode",
    "AndNode",
    "OrNode",
    "TrueNode",
    "FalseNode",
    "TRUE",
    "FALSE",
    "atom",
    "conj",
    "disj",
]


class Formula:
    """Base class for positive event formulas."""

    __slots__ = ()

    # -- combinators ----------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return conj(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return disj(self, other)

    # -- interface -------------------------------------------------------
    def to_dnf(self) -> DNF:
        raise NotImplementedError

    def evaluate(self, world: Mapping[Hashable, Hashable]) -> bool:
        raise NotImplementedError

    def variables(self) -> frozenset:
        raise NotImplementedError

    def probability_exact(self, registry: VariableRegistry) -> float:
        """Exact probability via d-tree compilation (convenience)."""
        from .exact import exact_probability

        return exact_probability(self.to_dnf(), registry)


class TrueNode(Formula):
    """The constant true."""

    __slots__ = ()

    def to_dnf(self) -> DNF:
        return DNF.true()

    def evaluate(self, world: Mapping[Hashable, Hashable]) -> bool:
        return True

    def variables(self) -> frozenset:
        return frozenset()

    def __repr__(self) -> str:
        return "⊤"


class FalseNode(Formula):
    """The constant false."""

    __slots__ = ()

    def to_dnf(self) -> DNF:
        return DNF.false()

    def evaluate(self, world: Mapping[Hashable, Hashable]) -> bool:
        return False

    def variables(self) -> frozenset:
        return frozenset()

    def __repr__(self) -> str:
        return "⊥"


TRUE = TrueNode()
FALSE = FalseNode()


class AtomNode(Formula):
    """A leaf holding one atomic event ``x = a``."""

    __slots__ = ("atom",)

    def __init__(self, atom_: Atom) -> None:
        object.__setattr__(self, "atom", atom_)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("AtomNode is immutable")

    def to_dnf(self) -> DNF:
        return DNF((Clause((self.atom,)),))

    def evaluate(self, world: Mapping[Hashable, Hashable]) -> bool:
        return world.get(self.atom.variable) == self.atom.value

    def variables(self) -> frozenset:
        return frozenset((self.atom.variable,))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AtomNode):
            return NotImplemented
        return self.atom == other.atom

    def __hash__(self) -> int:
        return hash(("AtomNode", self.atom))

    def __repr__(self) -> str:
        return repr(self.atom)


class _NaryNode(Formula):
    """Shared structure of ``AndNode`` / ``OrNode``."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[Formula]) -> None:
        object.__setattr__(self, "children", tuple(children))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("formula nodes are immutable")

    def variables(self) -> frozenset:
        result: frozenset = frozenset()
        for child in self.children:
            result |= child.variables()
        return result

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))


class AndNode(_NaryNode):
    """Conjunction of sub-formulas."""

    __slots__ = ()

    def to_dnf(self) -> DNF:
        result = DNF.true()
        for child in self.children:
            result = result.conjoin(child.to_dnf())
            if result.is_false():
                return result
        return result

    def evaluate(self, world: Mapping[Hashable, Hashable]) -> bool:
        return all(child.evaluate(world) for child in self.children)

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(c) for c in self.children) + ")"


class OrNode(_NaryNode):
    """Disjunction of sub-formulas."""

    __slots__ = ()

    def to_dnf(self) -> DNF:
        result = DNF.false()
        for child in self.children:
            result = result.union(child.to_dnf())
        return result

    def evaluate(self, world: Mapping[Hashable, Hashable]) -> bool:
        return any(child.evaluate(world) for child in self.children)

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(c) for c in self.children) + ")"


# ----------------------------------------------------------------------
# Smart constructors (flatten, fold constants)
# ----------------------------------------------------------------------
def atom(variable: Hashable, value: Hashable = True) -> AtomNode:
    """Shorthand for ``AtomNode(Atom(variable, value))``."""
    return AtomNode(Atom(variable, value))


def conj(*formulas: Formula) -> Formula:
    """N-ary conjunction with flattening and constant folding."""
    flat: list[Formula] = []
    for formula in formulas:
        if isinstance(formula, FalseNode):
            return FALSE
        if isinstance(formula, TrueNode):
            continue
        if isinstance(formula, AndNode):
            flat.extend(formula.children)
        else:
            flat.append(formula)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return AndNode(flat)


def disj(*formulas: Formula) -> Formula:
    """N-ary disjunction with flattening and constant folding."""
    flat: list[Formula] = []
    for formula in formulas:
        if isinstance(formula, TrueNode):
            return TRUE
        if isinstance(formula, FalseNode):
            continue
        if isinstance(formula, OrNode):
            flat.extend(formula.children)
        else:
            flat.append(formula)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return OrNode(flat)
