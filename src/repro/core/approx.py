"""Incremental ε-approximation of DNF probability (paper, Section V).

This is the paper's main algorithm.  It compiles the input DNF into a
d-tree *lazily*, depth-first left-to-right, keeping only the current
root-to-leaf path in memory.  Before constructing each node it performs two
checks (Section V.D):

1. **Termination** (Prop. 5.8): with every leaf at its heuristic bounds
   (Fig. 3), do the propagated root bounds ``[L, U]`` already certify an
   ε-approximation?  Absolute: ``U − L ≤ 2ε``; relative:
   ``(1−ε)·U ≤ (1+ε)·L``.  If so, stop and report.

2. **Closing** (Lemma 5.11 / Thm. 5.12): may the current leaf be *closed*
   (its heuristic bounds frozen, the leaf never refined)?  This is safe
   when the worst case over the bound space — every other open leaf pinned
   to its lower bound — still satisfies the ε-condition.  Closed leaves are
   aggregated into their parent's accumulator and released, which is what
   gives the algorithm its memory profile.

If neither check fires, the current leaf is refined by one decomposition
step (subsumption removal, then ⊗ / ⊙ / ⊕ in the order of Fig. 1).

The paper's restriction that at most one child of each ``⊙`` node may be
closed without being complete is enforced: further incomplete closings
under the same ``⊙`` are refused and those children are refined instead.

Implementation notes
--------------------
The d-tree is never materialised.  The stack holds one :class:`_Frame` per
inner node on the current root-to-leaf path.  A frame's first pending child
is, by construction, either the *current leaf* (when the frame is on top of
the stack) or the subtree represented by the frame directly above it; bound
propagation therefore always skips ``pending[0]`` and splices in the
explicitly propagated child interval instead.

Shannon branches ``{x=a} ⊙ Φ|_{x=a}`` are folded into a single weighted
child of the ``⊕`` frame: the clause probability ``P(x=a)`` becomes the
child's ``weight``, and when the child is itself refined, the weight moves
onto the new frame (its bounds are scaled on the way up).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import clock
from .bounds import independent_bounds
from .decompositions import (
    independent_and_factorization,
    independent_or_partition,
    shannon_expansion,
)
from .dnf import DNF
from .memo import DecompositionCache
from .orders import VariableSelector, max_frequency_choice
from .variables import VariableRegistry

__all__ = [
    "approximate_probability",
    "ApproximationResult",
    "ABSOLUTE",
    "RELATIVE",
]

Bounds = Tuple[float, float]

ABSOLUTE = "absolute"
RELATIVE = "relative"

_OR = "or"
_AND = "and"
_XOR = "xor"
_ROOT = "root"

#: Sentinel distinguishing "not memoised" from a memoised ``None``.
_UNCOMPUTED = object()


class ApproximationResult:
    """Outcome of :func:`approximate_probability`.

    Attributes
    ----------
    lower, upper:
        The final propagated probability bounds; always ``L ≤ P(Φ) ≤ U``.
    estimate:
        The midpoint of the ε-approximation interval of Prop. 5.8 when
        converged, otherwise the midpoint of ``[lower, upper]``.
    converged:
        Whether the requested ε-guarantee was certified.  ``False`` only
        when a work budget (``max_steps`` / ``deadline_seconds``) ran out.
    epsilon, error_kind:
        The request this result answers.
    steps:
        Number of decomposition steps performed.
    leaves_closed:
        Leaves frozen via the Theorem 5.12 closing rule.
    leaves_exact:
        Leaves whose bucket bounds were already point intervals.
    max_depth:
        Deepest frame stack observed (memory is proportional to it).
    node_histogram:
        Inner-node construction counts by kind (the paper reports ``⊗``
        dominating on tractable queries).
    elapsed_seconds:
        Wall-clock duration of the call.
    """

    __slots__ = (
        "lower",
        "upper",
        "estimate",
        "converged",
        "epsilon",
        "error_kind",
        "steps",
        "leaves_closed",
        "leaves_exact",
        "max_depth",
        "node_histogram",
        "elapsed_seconds",
    )

    def __init__(
        self,
        lower: float,
        upper: float,
        estimate: float,
        converged: bool,
        epsilon: float,
        error_kind: str,
        steps: int,
        leaves_closed: int,
        leaves_exact: int,
        max_depth: int,
        node_histogram: dict,
        elapsed_seconds: float,
    ) -> None:
        self.lower = lower
        self.upper = upper
        self.estimate = estimate
        self.converged = converged
        self.epsilon = epsilon
        self.error_kind = error_kind
        self.steps = steps
        self.leaves_closed = leaves_closed
        self.leaves_exact = leaves_exact
        self.max_depth = max_depth
        self.node_histogram = node_histogram
        self.elapsed_seconds = elapsed_seconds

    def width(self) -> float:
        """Bound interval width ``U − L``."""
        return self.upper - self.lower

    def __repr__(self) -> str:
        return (
            f"ApproximationResult(estimate={self.estimate:.6g}, "
            f"bounds=[{self.lower:.6g}, {self.upper:.6g}], "
            f"converged={self.converged}, steps={self.steps})"
        )


# ----------------------------------------------------------------------
# Internal structures
# ----------------------------------------------------------------------
class _PendingChild:
    """A not-yet-processed leaf: a DNF plus cached heuristic bounds.

    ``weight`` carries the exact probability of the clause sibling of a
    Shannon branch, folding ``{x=a} ⊙ Φ|_{x=a}`` into a single weighted
    child of the ``⊕`` frame.

    ``reduced`` marks DNFs that are already subsumption-free: ⊗-components
    and ⊙-factors of a reduced DNF stay reduced (a subsuming pair inside
    one would lift to a subsuming pair in the parent), so only Shannon
    cofactors need another subsumption pass on refinement.
    """

    __slots__ = ("dnf", "lower", "upper", "weight", "reduced")

    def __init__(
        self,
        dnf: DNF,
        lower: float,
        upper: float,
        weight: float = 1.0,
        reduced: bool = False,
    ) -> None:
        self.dnf = dnf
        self.lower = lower
        self.upper = upper
        self.weight = weight
        self.reduced = reduced

    def effective_bounds(self) -> Bounds:
        return self.weight * self.lower, self.weight * self.upper

    def effective_lower_point(self) -> Bounds:
        low = self.weight * self.lower
        return low, low

    def is_exact(self) -> bool:
        return self.lower == self.upper


class _Frame:
    """One inner node of the d-tree under construction.

    Finished children (exact or closed) are folded into a kind-specific
    accumulator:

    * ``or``   — ``acc = (Π(1−Lᵢ), Π(1−Uᵢ))`` (complement products)
    * ``and``  — ``acc = (Π Lᵢ, Π Uᵢ)``
    * ``xor``  — ``acc = (Σ Lᵢ, Σ Uᵢ)``
    * ``root`` — identity over its single child

    ``weight`` scales the finished node value (used when the frame refines
    a weighted Shannon-branch child).
    """

    __slots__ = ("kind", "acc_lower", "acc_upper", "pending", "weight",
                 "closed_incomplete", "_rest_cache", "source")

    def __init__(
        self,
        kind: str,
        pending: List[_PendingChild],
        weight: float = 1.0,
        source: Optional[DNF] = None,
    ) -> None:
        self.kind = kind
        if kind == _XOR or kind == _ROOT:
            self.acc_lower, self.acc_upper = 0.0, 0.0
        else:  # or / and both accumulate multiplicatively from 1
            self.acc_lower, self.acc_upper = 1.0, 1.0
        self.pending = pending
        self.weight = weight
        self.closed_incomplete = False
        self._rest_cache: Optional[Bounds] = None
        # The (reduced) DNF this frame decomposes; when the frame finishes
        # with point bounds, that DNF's exact probability is memoised.
        self.source = source

    def pop_head(self) -> None:
        """Drop the current (head) pending child; invalidates the cached
        aggregate over the remaining open siblings."""
        self.pending.pop(0)
        self._rest_cache = None

    def _rest_aggregate(self) -> Bounds:
        """Kind-specific accumulator over ``pending[1:]`` heuristic bounds.

        The lower-point (Lemma 5.11) aggregate needs no separate cache: it
        equals the pair ``(A, A)`` where ``A`` is the lower component.
        """
        cached = self._rest_cache
        if cached is not None:
            return cached
        if self.kind == _OR:
            low_acc, up_acc = 1.0, 1.0
            for item in self.pending[1:]:
                low, high = item.effective_bounds()
                low_acc *= 1.0 - low
                up_acc *= 1.0 - high
        elif self.kind == _AND:
            low_acc, up_acc = 1.0, 1.0
            for item in self.pending[1:]:
                low, high = item.effective_bounds()
                low_acc *= low
                up_acc *= high
        else:  # xor / root
            low_acc, up_acc = 0.0, 0.0
            for item in self.pending[1:]:
                low, high = item.effective_bounds()
                low_acc += low
                up_acc += high
        self._rest_cache = (low_acc, up_acc)
        return self._rest_cache

    # -- accumulation ----------------------------------------------------
    def absorb(self, bounds: Bounds) -> None:
        """Fold a finished child's bounds into the accumulator."""
        low, high = bounds
        if self.kind == _OR:
            self.acc_lower *= 1.0 - low
            self.acc_upper *= 1.0 - high
        elif self.kind == _AND:
            self.acc_lower *= low
            self.acc_upper *= high
        elif self.kind == _XOR:
            self.acc_lower += low
            self.acc_upper += high
        else:  # root: single child, store directly
            self.acc_lower, self.acc_upper = low, high

    def _raw_bounds(self, child: Optional[Bounds], at_lower: bool) -> Bounds:
        """Node bounds from accumulator + explicit child + open siblings.

        ``pending[0]`` is always skipped: it is either the current leaf
        (interval supplied via ``child``) or the subtree of the frame above
        (ditto).  ``at_lower`` pins the remaining open siblings to their
        lower bound — the Lemma 5.11 worst case, whose aggregate is the
        (lower, lower) pair of the cached heuristic aggregate.
        """
        rest_low, rest_up = self._rest_aggregate()
        if at_lower:
            rest_up = rest_low
        if self.kind == _OR:
            low_c, up_c = self.acc_lower, self.acc_upper
            if child is not None:
                low_c *= 1.0 - child[0]
                up_c *= 1.0 - child[1]
            return 1.0 - low_c * rest_low, 1.0 - up_c * rest_up
        if self.kind == _AND:
            low_a, up_a = self.acc_lower, self.acc_upper
            if child is not None:
                low_a *= child[0]
                up_a *= child[1]
            return low_a * rest_low, up_a * rest_up
        if self.kind == _XOR:
            low_s, up_s = self.acc_lower, self.acc_upper
            if child is not None:
                low_s += child[0]
                up_s += child[1]
            return min(1.0, low_s + rest_low), min(1.0, up_s + rest_up)
        # root: identity on the single child
        if child is not None:
            return child
        return self.acc_lower, self.acc_upper

    def combine(self, child: Optional[Bounds], at_lower: bool) -> Bounds:
        low, high = self._raw_bounds(child, at_lower)
        if self.weight != 1.0:
            return self.weight * low, self.weight * high
        return low, high

    def combine_both(
        self,
        heur_low: float,
        heur_up: float,
        worst_low: float,
        worst_up: float,
    ) -> Tuple[float, float, float, float]:
        """One walk step computing both check modes at once.

        ``(heur_low, heur_up)`` propagates with open siblings at their
        heuristic bounds (the Prop. 5.8 termination check);
        ``(worst_low, worst_up)`` with open siblings pinned to their lower
        bounds (the Lemma 5.11 closing check).
        """
        rest_low, rest_up = self._rest_aggregate()
        kind = self.kind
        if kind == _OR:
            acc_l, acc_u = self.acc_lower, self.acc_upper
            h_low = 1.0 - acc_l * (1.0 - heur_low) * rest_low
            h_up = 1.0 - acc_u * (1.0 - heur_up) * rest_up
            w_low = 1.0 - acc_l * (1.0 - worst_low) * rest_low
            w_up = 1.0 - acc_u * (1.0 - worst_up) * rest_low
        elif kind == _AND:
            acc_l, acc_u = self.acc_lower, self.acc_upper
            h_low = acc_l * heur_low * rest_low
            h_up = acc_u * heur_up * rest_up
            w_low = acc_l * worst_low * rest_low
            w_up = acc_u * worst_up * rest_low
        elif kind == _XOR:
            acc_l, acc_u = self.acc_lower, self.acc_upper
            h_low = acc_l + heur_low + rest_low
            h_up = acc_u + heur_up + rest_up
            w_low = acc_l + worst_low + rest_low
            w_up = acc_u + worst_up + rest_low
            if h_low > 1.0:
                h_low = 1.0
            if h_up > 1.0:
                h_up = 1.0
            if w_low > 1.0:
                w_low = 1.0
            if w_up > 1.0:
                w_up = 1.0
        else:  # root
            return heur_low, heur_up, worst_low, worst_up
        weight = self.weight
        if weight != 1.0:
            return (
                weight * h_low,
                weight * h_up,
                weight * w_low,
                weight * w_up,
            )
        return h_low, h_up, w_low, w_up

    def raw_finished_bounds(self) -> Bounds:
        """Unweighted bounds of the node once no children remain pending.

        The caller applies ``weight`` (after memoising the raw point, if
        any, as the source DNF's exact probability).
        """
        if self.kind == _OR:
            return 1.0 - self.acc_lower, 1.0 - self.acc_upper
        if self.kind == _XOR:
            return min(1.0, self.acc_lower), min(1.0, self.acc_upper)
        return self.acc_lower, self.acc_upper


# ----------------------------------------------------------------------
# The algorithm
# ----------------------------------------------------------------------
def approximate_probability(
    dnf: DNF,
    registry: VariableRegistry,
    *,
    epsilon: float,
    error_kind: str = ABSOLUTE,
    choose_variable: Optional[VariableSelector] = None,
    allow_closing: bool = True,
    sort_buckets: bool = True,
    read_once_buckets: bool = False,
    max_steps: Optional[int] = None,
    deadline_seconds: Optional[float] = None,
    cache: Optional[DecompositionCache] = None,
    vectorized: Optional[bool] = None,
) -> ApproximationResult:
    """Compute an ε-approximation of ``P(Φ)`` with certified bounds.

    Parameters
    ----------
    epsilon:
        Allowed error, ``0 ≤ ε < 1``.  ``ε = 0`` requests the exact
        probability (the incremental machinery then behaves as an exact
        algorithm that still exploits exact bucket bounds at leaves).
    error_kind:
        ``"absolute"`` (additive) or ``"relative"`` (multiplicative),
        Definition 5.7.
    choose_variable:
        Shannon pivot selector; default max-frequency, see
        :func:`repro.core.orders.make_variable_selector` for the IQ order.
    allow_closing:
        Enable the Theorem 5.12 leaf-closing rule (on by default; turning
        it off yields the naive incremental algorithm, for ablations).
    sort_buckets, read_once_buckets:
        Forwarded to the Fig. 3 bounds heuristic.
    max_steps, deadline_seconds:
        Work budgets.  On exhaustion the result carries the best bounds
        found so far with ``converged=False`` (the algorithm is anytime).
    cache:
        A :class:`~repro.core.memo.DecompositionCache` shared across
        calls (pass the engine's cache for top-k refinement rounds and
        repeated queries); a private per-call cache is created when
        omitted.  Shannon expansion revisits identical residual DNFs
        constantly, so even the per-call cache collapses most repeat
        subtrees into single folds.
    vectorized:
        Backend preference for the batched leaf-bounds clause marginals
        (see :func:`repro.core.bounds.bucket_partition`); the bounds are
        bit-identical either way.

    Returns
    -------
    ApproximationResult
        With ``lower ≤ P(Φ) ≤ upper`` always, and the ε-guarantee when
        ``converged`` is true.
    """
    if not (0.0 <= epsilon < 1.0):
        raise ValueError(f"epsilon must be in [0, 1), got {epsilon}")
    if error_kind not in (ABSOLUTE, RELATIVE):
        raise ValueError(f"unknown error kind {error_kind!r}")

    started = clock.monotonic()
    histogram = {"independent-or": 0, "independent-and": 0,
                 "exclusive-or": 0}
    steps = 0
    closed = 0
    exact_leaves = 0
    max_depth = 1

    def make_result(
        lower: float, upper: float, converged: bool
    ) -> ApproximationResult:
        lower = max(0.0, min(lower, 1.0))
        upper = max(lower, min(upper, 1.0))
        if converged:
            # Any value in the Prop. 5.8 interval qualifies; report its
            # midpoint, clipped into the bound interval.
            if error_kind == ABSOLUTE:
                estimate = ((upper - epsilon) + (lower + epsilon)) / 2.0
            else:
                estimate = (
                    (1.0 - epsilon) * upper + (1.0 + epsilon) * lower
                ) / 2.0
            estimate = max(lower, min(upper, estimate))
        else:
            estimate = (lower + upper) / 2.0
        return ApproximationResult(
            lower=lower,
            upper=upper,
            estimate=estimate,
            converged=converged,
            epsilon=epsilon,
            error_kind=error_kind,
            steps=steps,
            leaves_closed=closed,
            leaves_exact=exact_leaves,
            max_depth=max_depth,
            node_histogram=dict(histogram),
            elapsed_seconds=clock.monotonic() - started,
        )

    # Degenerate inputs.
    if dnf.is_false():
        return make_result(0.0, 0.0, True)
    if dnf.is_true():
        return make_result(1.0, 1.0, True)

    selector = choose_variable or max_frequency_choice

    if cache is None:
        cache = DecompositionCache()
    # The config tuple holds the objects themselves (compared by
    # identity, and kept alive by the cache) — id()-based keys could be
    # silently reused after garbage collection.
    cache.bind(
        DecompositionCache.bind_config(
            registry, selector, sort_buckets, read_once_buckets
        )
    )
    # Enforce the entry cap across calls too: a long-lived engine issuing
    # many small computes would otherwise never hit the in-loop trim.
    cache.trim()
    exact_cache = cache.exact
    bounds_cache = cache.bounds

    def leaf_bounds(leaf: DNF) -> Bounds:
        value = exact_cache.get(leaf)
        if value is not None:
            # Count exact-subtree reuse here too: cross-tuple sharing in
            # batched computation mostly surfaces as point *leaf bounds*
            # (the leaf folds before the in-loop exact lookup runs).
            cache.hits += 1
            return value, value
        bounds = bounds_cache.get(leaf)
        if bounds is None:
            bounds = independent_bounds(
                leaf,
                registry,
                sort_by_probability=sort_buckets,
                allow_read_once_buckets=read_once_buckets,
                vectorized=vectorized,
            )
            bounds_cache[leaf] = bounds
        return bounds

    def satisfies(bounds: Bounds) -> bool:
        lower, upper = bounds
        if error_kind == ABSOLUTE:
            return upper - lower <= 2.0 * epsilon
        return (1.0 - epsilon) * upper <= (1.0 + epsilon) * lower

    root_dnf = dnf.remove_subsumed()
    if root_dnf.is_true():
        return make_result(1.0, 1.0, True)
    root_lower, root_upper = leaf_bounds(root_dnf)
    stack: List[_Frame] = [
        _Frame(
            _ROOT,
            [_PendingChild(root_dnf, root_lower, root_upper, reduced=True)],
        )
    ]

    def global_bounds(current: Bounds, at_lower: bool) -> Bounds:
        """Propagate the current leaf's interval up to the root."""
        value: Optional[Bounds] = current
        for frame in reversed(stack):
            value = frame.combine(value, at_lower)
        assert value is not None
        return value

    def global_bounds_both(
        current: Bounds,
    ) -> Tuple[Bounds, Bounds]:
        """Both check modes — termination (heuristic open leaves) and
        closing (open leaves at lower bounds) — in a single stack walk."""
        heur_low, heur_up = current
        worst_low, worst_up = current
        for frame in reversed(stack):
            heur_low, heur_up, worst_low, worst_up = frame.combine_both(
                heur_low, heur_up, worst_low, worst_up
            )
        return (heur_low, heur_up), (worst_low, worst_up)

    def out_of_budget() -> bool:
        if max_steps is not None and steps >= max_steps:
            return True
        if (
            deadline_seconds is not None
            and clock.monotonic() - started > deadline_seconds
        ):
            return True
        return False

    while stack:
        frame = stack[-1]

        # A frame with no pending children is finished: fold it upward.
        if not frame.pending:
            raw_low, raw_high = frame.raw_finished_bounds()
            if raw_low == raw_high and frame.source is not None:
                # The subtree collapsed to its exact probability; any
                # later re-occurrence of this DNF folds in one step.
                exact_cache[frame.source] = raw_low
            if frame.weight != 1.0:
                bounds = (frame.weight * raw_low, frame.weight * raw_high)
            else:
                bounds = (raw_low, raw_high)
            stack.pop()
            if not stack:
                lower, upper = bounds
                return make_result(lower, upper, satisfies(bounds))
            parent = stack[-1]
            parent.absorb(bounds)
            parent.pop_head()
            continue

        current = frame.pending[0]
        current_bounds = current.effective_bounds()

        # Both global checks in one stack walk: termination (Prop. 5.8,
        # heuristic bounds everywhere) and closing (Lemma 5.11 worst case).
        overall, worst = global_bounds_both(current_bounds)

        # Check 1 — may we stop with an ε-approximation?
        if satisfies(overall):
            return make_result(overall[0], overall[1], True)

        # Budget exhaustion: report the (always sound) current bounds.
        if out_of_budget():
            return make_result(overall[0], overall[1], False)

        # Exact leaves fold straight into the accumulator.
        if current.is_exact():
            exact_leaves += 1
            frame.absorb(current_bounds)
            frame.pop_head()
            continue

        # Check 2 — may the current leaf be closed?  (Lemma 5.11 worst
        # case: every other open leaf pinned to its lower bound.)
        closing_allowed = allow_closing and not (
            frame.kind == _AND and frame.closed_incomplete
        )
        if closing_allowed:
            if satisfies(worst):
                closed += 1
                if frame.kind == _AND:
                    frame.closed_incomplete = True
                frame.absorb(current_bounds)
                frame.pop_head()
                continue

        # Refine the current leaf by one decomposition step.  The leaf
        # stays at the head of ``frame.pending``: the new frame represents
        # it, and when the new frame finishes its bounds are absorbed and
        # the head is popped.
        steps += 1
        if current.reduced:
            child_dnf = current.dnf
        else:
            child_dnf = cache.reduced.get(current.dnf)
            if child_dnf is None:
                child_dnf = current.dnf.remove_subsumed()
                cache.reduced[current.dnf] = child_dnf
        if child_dnf.is_true():
            frame.absorb((current.weight, current.weight))
            frame.pop_head()
            continue
        if child_dnf.is_single_clause():
            value = current.weight * child_dnf.sole_clause().probability(
                registry
            )
            frame.absorb((value, value))
            frame.pop_head()
            continue

        # A previously completed subtree over the same DNF folds at once.
        known = exact_cache.get(child_dnf)
        if known is not None:
            cache.hits += 1
            value = current.weight * known
            frame.absorb((value, value))
            frame.pop_head()
            continue
        cache.misses += 1

        components = cache.components.get(child_dnf)
        if components is None:
            components = independent_or_partition(child_dnf)
            cache.components[child_dnf] = components
        if len(components) > 1:
            histogram["independent-or"] += 1
            pending = [
                _PendingChild(
                    component, *leaf_bounds(component), reduced=True
                )
                for component in components
            ]
            new_frame = _Frame(
                _OR, pending, weight=current.weight, source=child_dnf
            )
        else:
            factors = cache.factors.get(child_dnf, _UNCOMPUTED)
            if factors is _UNCOMPUTED:
                factors = independent_and_factorization(child_dnf)
                cache.factors[child_dnf] = factors
            if factors is not None:
                histogram["independent-and"] += 1
                pending = [
                    _PendingChild(factor, *leaf_bounds(factor), reduced=True)
                    for factor in factors
                ]
                new_frame = _Frame(
                    _AND, pending, weight=current.weight, source=child_dnf
                )
            else:
                histogram["exclusive-or"] += 1
                branches = cache.branches.get(child_dnf)
                if branches is None:
                    pivot = selector(child_dnf)
                    branches = shannon_expansion(child_dnf, pivot, registry)
                    cache.branches[child_dnf] = branches
                pending = []
                for branch in branches:
                    if branch.cofactor.is_true():
                        low, high = 1.0, 1.0
                    else:
                        low, high = leaf_bounds(branch.cofactor)
                    pending.append(
                        _PendingChild(
                            branch.cofactor,
                            low,
                            high,
                            weight=branch.probability,
                        )
                    )
                new_frame = _Frame(
                    _XOR, pending, weight=current.weight, source=child_dnf
                )

        stack.append(new_frame)
        max_depth = max(max_depth, len(stack))
        if not steps & 0x3FF:
            cache.trim()

    raise AssertionError("unreachable: stack drained without returning")
