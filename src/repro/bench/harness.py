"""Benchmark harness utilities.

The paper's evaluation plots wall-clock time per (query, method) pair,
with a timeout line.  This harness reproduces that protocol in a
deterministic, laptop-friendly way:

* each method runs once under a *work cap* (decomposition steps for the
  d-tree algorithms, sample counts for aconf) standing in for the paper's
  wall-clock timeout;
* results are collected as :class:`SeriesPoint` rows and printed as the
  aligned series tables the paper's figures plot;
* everything is also written to ``benchmarks/results/*.csv`` so the series
  can be re-plotted.

pytest-benchmark handles the timing statistics; this module handles the
experiment structure.
"""

from __future__ import annotations

import csv
import json
import os
import time
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "SeriesPoint",
    "Harness",
    "format_table",
    "render_engine_config",
    "ALL_HARNESSES",
]


def render_engine_config(config: object) -> str:
    """Render an EngineConfig / dict / string as a compact JSON string."""
    if config is None:
        return ""
    describe = getattr(config, "describe", None)
    if callable(describe):
        config = describe()
    if isinstance(config, str):
        return config
    return json.dumps(config, sort_keys=True, separators=(",", ":"))

#: Every Harness registers itself here so a pytest terminal-summary hook
#: can print all series tables after the run (plain prints from fixtures
#: are swallowed by pytest's output capture).
ALL_HARNESSES: List["Harness"] = []


class SeriesPoint:
    """One measurement: a method on a workload configuration.

    ``strategy`` records which :class:`repro.engine.ConfidenceEngine`
    ladder rung(s) answered the run (empty for methods that bypass the
    planner).  ``engine_config`` records the JSON-rendered
    :class:`repro.engine.EngineConfig` the run used, so recorded rows
    are reproducible (empty for non-engine methods).
    """

    __slots__ = (
        "experiment",
        "workload",
        "method",
        "seconds",
        "value",
        "status",
        "detail",
        "strategy",
        "engine_config",
    )

    def __init__(
        self,
        experiment: str,
        workload: str,
        method: str,
        seconds: float,
        value: Optional[float],
        status: str = "ok",
        detail: str = "",
        strategy: str = "",
        engine_config: str = "",
    ) -> None:
        self.experiment = experiment
        self.workload = workload
        self.method = method
        self.seconds = seconds
        self.value = value
        self.status = status
        self.detail = detail
        self.strategy = strategy
        self.engine_config = engine_config

    def row(self) -> List[str]:
        value = "" if self.value is None else f"{self.value:.6g}"
        return [
            self.experiment,
            self.workload,
            self.method,
            f"{self.seconds:.6f}",
            value,
            self.status,
            self.detail,
            self.strategy,
            self.engine_config,
        ]


class Harness:
    """Collects :class:`SeriesPoint` rows for one experiment (figure)."""

    def __init__(self, experiment: str, results_dir: Optional[str] = None):
        self.experiment = experiment
        self.points: List[SeriesPoint] = []
        if results_dir is None:
            results_dir = os.path.join(
                os.path.dirname(os.path.dirname(os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))))),
                "benchmarks",
                "results",
            )
        self.results_dir = results_dir
        ALL_HARNESSES.append(self)

    def run(
        self,
        workload: str,
        method: str,
        fn: Callable[[], object],
        *,
        value_of: Optional[Callable[[object], float]] = None,
        status_of: Optional[Callable[[object], str]] = None,
        detail_of: Optional[Callable[[object], str]] = None,
        strategy_of: Optional[Callable[[object], str]] = None,
        engine_config: object = None,
    ) -> SeriesPoint:
        """Time one call and record the outcome.

        ``engine_config`` may be an :class:`repro.engine.EngineConfig`
        (rendered via ``describe()``), a dict, or a pre-rendered string;
        it is stored on the point (and in the CSV) so the run can be
        reproduced.
        """
        started = time.perf_counter()
        outcome = fn()
        elapsed = time.perf_counter() - started
        point = SeriesPoint(
            self.experiment,
            workload,
            method,
            elapsed,
            value_of(outcome) if value_of else None,
            status_of(outcome) if status_of else "ok",
            detail_of(outcome) if detail_of else "",
            strategy_of(outcome) if strategy_of else "",
            render_engine_config(engine_config),
        )
        self.points.append(point)
        return point

    # ------------------------------------------------------------------
    def series_table(self, group_by: str = "workload") -> str:
        """Render the experiment as an aligned table grouped by workload."""
        methods: List[str] = []
        for point in self.points:
            if point.method not in methods:
                methods.append(point.method)
        groups: Dict[str, Dict[str, SeriesPoint]] = {}
        order: List[str] = []
        for point in self.points:
            key = point.workload
            if key not in groups:
                groups[key] = {}
                order.append(key)
            groups[key][point.method] = point

        header = [group_by] + [f"{m} [s]" for m in methods]
        rows = []
        for key in order:
            row = [key]
            for method in methods:
                point = groups[key].get(method)
                if point is None:
                    row.append("-")
                else:
                    cell = f"{point.seconds:.3f}"
                    if point.status != "ok":
                        cell += f" ({point.status})"
                    if point.strategy:
                        cell += f" [{point.strategy}]"
                    row.append(cell)
            rows.append(row)
        return (
            f"\n=== {self.experiment} ===\n"
            + format_table(header, rows)
        )

    def print_series(self, group_by: str = "workload") -> None:
        """Print the series table (see :meth:`series_table`)."""
        print(self.series_table(group_by))

    def write_csv(self, filename: Optional[str] = None) -> str:
        os.makedirs(self.results_dir, exist_ok=True)
        if filename is None:
            safe = self.experiment.lower().replace(" ", "_").replace(
                "/", "-"
            )
            filename = f"{safe}.csv"
        path = os.path.join(self.results_dir, filename)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [
                    "experiment",
                    "workload",
                    "method",
                    "seconds",
                    "value",
                    "status",
                    "detail",
                    "strategy",
                    "engine_config",
                ]
            )
            for point in self.points:
                writer.writerow(point.row())
        return path


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Simple aligned text table."""
    widths = [len(h) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header))
    ]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
