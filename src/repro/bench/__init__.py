"""Benchmark harness (timing, series tables, CSV output)."""

from .harness import Harness, SeriesPoint, format_table

__all__ = ["Harness", "SeriesPoint", "format_table"]
