"""Benchmark harness (timing, series tables, CSV output)."""

from .harness import (
    Harness,
    SeriesPoint,
    format_table,
    render_engine_config,
)

__all__ = [
    "Harness",
    "SeriesPoint",
    "format_table",
    "render_engine_config",
]
