"""Cone-level incremental recompilation for mutating databases.

A tuple mutation (insert / delete / probability update) changes a small
set of random variables.  Everything the session has memoised — compiled
circuits in the :class:`~repro.circuits.cache.CircuitCache`, decomposition
cones in the :class:`~repro.core.memo.DecompositionCache` — is keyed by
DNFs that carry their interned variable-id sets, which *is* the
dependency structure: an entry is affected by a mutation iff its
variable set intersects the touched variables.

:func:`invalidate_variables` is that one surgical pass.  It is sound for
the memo because decomposition children only ever mention subsets of
their parent's variables (Shannon restriction, component splitting and
factoring never introduce variables), so a disjoint cone's entire
subtree is disjoint too — and it stays warm.  The mutation subsystem
(:mod:`repro.db.mutations`) calls this once per mutation with the union
of touched variable ids; untouched queries then re-answer with strategy
``"circuit"`` and zero cold decomposition steps, which the test suite
asserts via cache stats.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Optional

from ..core.memo import DecompositionCache
from ..core.variables import lookup_variable
from .cache import CircuitCache

__all__ = [
    "InvalidationReport",
    "invalidate_variables",
    "variable_ids_of",
]


class InvalidationReport:
    """What one incremental-invalidation pass evicted.

    ``variable_ids`` is the touched set the pass ran with;
    ``circuits_evicted`` / ``memo_evicted`` count removed cache entries.
    Reports from the mutations in one transaction add up with ``+``.
    """

    __slots__ = ("variable_ids", "circuits_evicted", "memo_evicted")

    def __init__(
        self,
        variable_ids: FrozenSet[int],
        circuits_evicted: int = 0,
        memo_evicted: int = 0,
    ) -> None:
        self.variable_ids = frozenset(variable_ids)
        self.circuits_evicted = circuits_evicted
        self.memo_evicted = memo_evicted

    def __add__(self, other: "InvalidationReport") -> "InvalidationReport":
        if not isinstance(other, InvalidationReport):
            return NotImplemented
        return InvalidationReport(
            self.variable_ids | other.variable_ids,
            self.circuits_evicted + other.circuits_evicted,
            self.memo_evicted + other.memo_evicted,
        )

    def __repr__(self) -> str:
        return (
            f"InvalidationReport({len(self.variable_ids)} variables, "
            f"circuits={self.circuits_evicted}, memo={self.memo_evicted})"
        )


def variable_ids_of(names: Iterable[Hashable]) -> FrozenSet[int]:
    """Interned ids of the given variable names.

    Names never interned cannot occur in any cached DNF (caches key on
    interned formulas), so they are skipped rather than interned — a
    pure-insert mutation of brand-new variables correctly touches
    nothing that exists yet.
    """
    ids = set()
    for name in names:
        var_id = lookup_variable(name)
        if var_id is not None:
            ids.add(var_id)
    return frozenset(ids)


def invalidate_variables(
    variable_ids: Iterable[int],
    *,
    circuits: Optional[CircuitCache] = None,
    memo: Optional[DecompositionCache] = None,
) -> InvalidationReport:
    """Evict every cached cone whose variable set touches ``variable_ids``.

    Pass the session's circuit cache and/or the engine's decomposition
    memo; either may be ``None``.  Disjoint entries are left untouched
    and keep answering warm.  Returns an :class:`InvalidationReport`.
    """
    touched = frozenset(variable_ids)
    circuits_evicted = 0
    memo_evicted = 0
    if touched:
        if circuits is not None:
            circuits_evicted = circuits.evict_intersecting(touched)
        if memo is not None:
            memo_evicted = memo.evict_intersecting(touched)
    return InvalidationReport(touched, circuits_evicted, memo_evicted)
