"""Compilation of DNF lineage into arithmetic circuits.

:func:`compile_circuit` replays the d-tree decomposition of Fig. 1 —
subsumption removal, ``⊗`` partitioning, ``⊙`` factorization, Shannon
expansion — and records it as a flat :class:`~repro.circuits.Circuit`
instead of folding probabilities on the fly.  Two properties matter:

* **Trace sharing.**  Given the engine's
  :class:`~repro.core.memo.DecompositionCache`, every decomposition
  step is looked up in the same memo the exact/ε-approximation paths
  populate, so compiling right after a confidence run replays the
  recorded trace instead of re-searching for decompositions.  Repeated
  sub-DNFs (ubiquitous under Shannon expansion) become *shared
  subcircuits* — the circuit is a DAG, the d-DNNF view of the d-tree.

* **Bit-compatible arithmetic.**  Node emission order and per-node
  arithmetic mirror :func:`repro.core.compiler.compile_dnf` /
  ``DTree.probability`` exactly, so an exact circuit evaluated at the
  base probabilities reproduces ``exact_probability_compiled`` (and the
  read-once rung, whose ⊗/⊙ recursion is the same structure)
  bit-for-bit.

``max_nodes`` caps compilation for hard lineage: once the budget is
spent, unexpanded sub-DNFs become residual leaves carrying their Fig. 3
heuristic bounds and variable set — the partial-circuit analogue of a
truncated ε-run, still sound and still re-evaluable.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from array import array

from ..core.bounds import independent_bounds
from ..core.compiler import raised_recursion_limit
from ..core.decompositions import (
    independent_and_factorization,
    independent_or_partition,
    shannon_expansion,
)
from ..core.dnf import DNF
from ..core.events import Clause
from ..core.memo import DecompositionCache
from ..core.orders import VariableSelector, max_frequency_choice
from ..core.variables import VariableRegistry, atom_entry
from .circuit import (
    KIND_ATOM,
    KIND_CONST,
    KIND_OR,
    KIND_PROD,
    KIND_RESIDUAL,
    KIND_SUM,
    Circuit,
)

__all__ = [
    "compile_circuit",
    "expand_residuals",
    "CircuitCompilationStats",
]


class CircuitCompilationStats:
    """Counters collected while compiling a circuit.

    ``cold_steps`` counts decomposition searches (⊗ partitioning, ⊙
    factorization, Shannon expansion) the compile had to run afresh
    because the shared cache held no entry; a pure replay — compiling
    right after a confidence run, or after a worker's cache slice was
    merged in — reports ``cold_steps == 0``.
    """

    __slots__ = (
        "nodes",
        "shared",
        "residuals",
        "shannon_expansions",
        "cold_steps",
    )

    def __init__(self) -> None:
        self.nodes = 0
        self.shared = 0
        self.residuals = 0
        self.shannon_expansions = 0
        self.cold_steps = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitCompilationStats(nodes={self.nodes}, "
            f"shared={self.shared}, residuals={self.residuals}, "
            f"shannon={self.shannon_expansions}, "
            f"cold={self.cold_steps})"
        )


class _Builder:
    """Accumulates flat node arrays in topological emission order."""

    __slots__ = (
        "kinds",
        "arg0",
        "arg1",
        "children",
        "consts",
        "residuals",
        "residual_dnfs",
        "atom_nodes",
        "var_atoms",
        "stats",
    )

    def __init__(self, stats: CircuitCompilationStats) -> None:
        self.kinds = array("B")
        self.arg0 = array("q")
        self.arg1 = array("q")
        self.children = array("q")
        self.consts: List[float] = []
        self.residuals: List[Tuple[float, float, FrozenSet[int]]] = []
        self.residual_dnfs: List[Optional[DNF]] = []
        self.atom_nodes: Dict[int, int] = {}
        self.var_atoms: Dict[int, List[int]] = {}
        self.stats = stats

    def _emit(self, kind: int, a: int, b: int) -> int:
        index = len(self.kinds)
        self.kinds.append(kind)
        self.arg0.append(a)
        self.arg1.append(b)
        self.stats.nodes += 1
        return index

    def const(self, value: float) -> int:
        for index, existing in enumerate(self.consts):
            if existing == value:
                break
        else:
            index = len(self.consts)
            self.consts.append(value)
        return self._emit(KIND_CONST, index, 0)

    def atom(self, atom_id: int, var_id: int) -> int:
        node = self.atom_nodes.get(atom_id)
        if node is not None:
            return node
        node = self._emit(KIND_ATOM, atom_id, 0)
        self.atom_nodes[atom_id] = node
        self.var_atoms.setdefault(var_id, []).append(atom_id)
        return node

    def inner(self, kind: int, child_ids: List[int]) -> int:
        start = len(self.children)
        self.children.extend(child_ids)
        return self._emit(kind, start, len(self.children))

    def residual(
        self,
        bounds: Tuple[float, float],
        vids: FrozenSet[int],
        dnf: Optional[DNF] = None,
    ) -> int:
        index = len(self.residuals)
        self.residuals.append((bounds[0], bounds[1], vids))
        self.residual_dnfs.append(dnf)
        self.stats.residuals += 1
        return self._emit(KIND_RESIDUAL, index, 0)


def compile_circuit(
    dnf: DNF,
    registry: VariableRegistry,
    *,
    choose_variable: Optional[VariableSelector] = None,
    cache: Optional[DecompositionCache] = None,
    max_nodes: Optional[int] = None,
    sort_buckets: bool = True,
    read_once_buckets: bool = False,
    stats: Optional[CircuitCompilationStats] = None,
    vectorized: Optional[bool] = None,
) -> Circuit:
    """Compile lineage into an arithmetic :class:`Circuit`.

    Parameters
    ----------
    choose_variable:
        Shannon pivot selector; pass the engine's configured selector so
        the shared ``cache`` entries (keyed per configuration) apply.
    cache:
        A :class:`~repro.core.memo.DecompositionCache` shared with the
        confidence paths; compiling after a run replays its recorded
        decompositions.  A private cache is created when omitted.
    max_nodes:
        Node budget.  ``None`` compiles exactly; otherwise sub-DNFs
        beyond the budget become residual-interval leaves (the circuit
        then evaluates to sound bounds rather than a point).
    sort_buckets, read_once_buckets:
        Fig. 3 heuristic flags for residual-leaf bounds — pass the
        engine's values so bounds (and the cache binding) agree with
        the confidence paths.
    """
    selector = choose_variable or max_frequency_choice
    if cache is None:
        cache = DecompositionCache()
    cache.bind(
        DecompositionCache.bind_config(
            registry, selector, sort_buckets, read_once_buckets
        )
    )
    cache.trim()
    if stats is None:
        stats = CircuitCompilationStats()
    builder = _Builder(stats)
    #: reduced DNF -> node index (subcircuit sharing).
    memo: Dict[DNF, int] = {}

    bounds_cache = cache.bounds

    def leaf_bounds(leaf: DNF) -> Tuple[float, float]:
        bounds = bounds_cache.get(leaf)
        if bounds is None:
            bounds = independent_bounds(
                leaf,
                registry,
                sort_by_probability=sort_buckets,
                allow_read_once_buckets=read_once_buckets,
                vectorized=vectorized,
            )
            bounds_cache[leaf] = bounds
        return bounds

    def clause_node(clause) -> int:
        atom_ids = clause.atom_ids
        if len(atom_ids) == 1:
            atom_id = atom_ids[0]
            var_id = next(iter(clause.variable_ids))
            return builder.atom(atom_id, var_id)
        children = []
        for atom_id in atom_ids:
            var_id, _name, _value = atom_entry(atom_id)
            children.append(builder.atom(atom_id, var_id))
        return builder.inner(KIND_PROD, children)

    def build(dnf_in: DNF, reduced: bool) -> int:
        if reduced:
            current = dnf_in
        else:
            current = cache.reduced.get(dnf_in)
            if current is None:
                current = dnf_in.remove_subsumed()
                cache.reduced[dnf_in] = current
        if current.is_false():
            return builder.const(0.0)
        if current.is_true():
            return builder.const(1.0)
        if current.is_single_clause():
            return clause_node(current.sole_clause())

        node = memo.get(current)
        if node is not None:
            stats.shared += 1
            return node

        if max_nodes is not None and stats.nodes >= max_nodes:
            node = builder.residual(
                leaf_bounds(current), current.variable_ids, current
            )
            memo[current] = node
            return node

        components = cache.components.get(current)
        if components is None:
            cache.misses += 1
            stats.cold_steps += 1
            components = independent_or_partition(current)
            cache.components[current] = components
        else:
            cache.hits += 1
        if len(components) > 1:
            children = [
                build(component, True) for component in components
            ]
            node = builder.inner(KIND_OR, children)
            memo[current] = node
            return node

        if current in cache.factors:
            cache.hits += 1
            factors = cache.factors[current]
        else:
            cache.misses += 1
            stats.cold_steps += 1
            factors = independent_and_factorization(current)
            cache.factors[current] = factors
        if factors is not None:
            children = [build(factor, True) for factor in factors]
            node = builder.inner(KIND_PROD, children)
            memo[current] = node
            return node

        branches = cache.branches.get(current)
        if branches is None:
            cache.misses += 1
            stats.cold_steps += 1
            pivot = selector(current)
            branches = shannon_expansion(current, pivot, registry)
            cache.branches[current] = branches
        else:
            cache.hits += 1
        stats.shannon_expansions += 1
        children = []
        for branch in branches:
            atom_node = clause_node(
                Clause({branch.variable: branch.value})
            )
            if branch.cofactor.is_true():
                children.append(atom_node)
                continue
            cofactor_node = build(branch.cofactor, False)
            children.append(
                builder.inner(KIND_PROD, [atom_node, cofactor_node])
            )
        if len(children) == 1:
            node = children[0]
        else:
            node = builder.inner(KIND_SUM, children)
        memo[current] = node
        return node

    # Shannon chains can be as deep as the variable count (IQ lineage,
    # Thm. 6.9); same headroom as exact_probability_compiled.
    with raised_recursion_limit(
        dnf.size() + len(dnf.variable_ids) + 100
    ):
        root = build(dnf, False)
    # The root must be the last node for the linear sweeps; shared
    # subcircuit roots can predate later nodes, so alias when needed.
    if root != len(builder.kinds) - 1:
        builder.inner(KIND_SUM, [root])
    return Circuit(
        registry,
        builder.kinds,
        builder.arg0,
        builder.arg1,
        builder.children,
        builder.consts,
        builder.residuals,
        builder.atom_nodes,
        builder.var_atoms,
        residual_dnfs=builder.residual_dnfs,
    )


def expand_residuals(
    circuit: Circuit, replacements: Dict[int, Circuit]
) -> Circuit:
    """Splice compiled subcircuits in place of residual leaves.

    ``replacements`` maps residual indices (positions in
    :attr:`Circuit.residuals`) to circuits compiled from the matching
    :attr:`Circuit.residual_dnfs` entries — the caller compiles them
    (typically via :meth:`~repro.engine.ConfidenceEngine.compile_circuit`,
    so the shared decomposition cache replays the original trace) and
    this function performs the structural surgery: a full rebuild pass
    that inlines each subcircuit where its leaf stood, dedupes atom
    nodes across the seam (gradients assume one input node per atom),
    and re-applies any conditioning so atoms that only existed inside
    the residual get pinned too.  Soundness: the residual's stored
    bounds were sound for the sub-DNF, and the subcircuit computes that
    sub-DNF's probability, so the expanded circuit's bounds are nested
    within the original's.

    The result is a **new** circuit (the input is untouched), so
    identity-keyed kernel caches stay coherent.
    """
    if not replacements:
        return circuit
    for index, sub in replacements.items():
        if not 0 <= index < len(circuit.residuals):
            raise IndexError(
                f"residual index {index} out of range for "
                f"{len(circuit.residuals)} leaves"
            )
        if sub.registry is not circuit.registry:
            raise ValueError(
                "replacement circuit was compiled against a different "
                "registry"
            )
        if sub._pinned or sub._conditioned_map:
            raise ValueError(
                "replacement circuits must be unconditioned — compile "
                "the residual sub-DNF directly; conditioning is "
                "re-applied to the expanded circuit as a whole"
            )
    stats = CircuitCompilationStats()
    builder = _Builder(stats)

    def rebuild(
        source: Circuit, inline: Optional[Dict[int, Circuit]]
    ) -> int:
        """Emit ``source``'s nodes into the builder; returns the root.

        ``inline`` maps residual indices to subcircuits to splice
        (only for the outer circuit; inlined subs keep their own
        residual leaves as leaves).
        """
        if not len(source.kinds):
            return builder.const(0.0)
        mapping = [0] * len(source.kinds)
        for index in range(len(source.kinds)):
            kind = source.kinds[index]
            if kind == KIND_ATOM:
                atom_id = source.arg0[index]
                var_id, _name, _value = atom_entry(atom_id)
                mapping[index] = builder.atom(atom_id, var_id)
            elif kind == KIND_CONST:
                mapping[index] = builder.const(
                    source.consts[source.arg0[index]]
                )
            elif kind == KIND_RESIDUAL:
                slot = source.arg0[index]
                sub = inline.get(slot) if inline is not None else None
                if sub is None:
                    low, high, vids = source.residuals[slot]
                    mapping[index] = builder.residual(
                        (low, high), vids, source.residual_dnfs[slot]
                    )
                else:
                    mapping[index] = rebuild(sub, None)
            else:
                span = [
                    mapping[child]
                    for child in source.children[
                        source.arg0[index]:source.arg1[index]
                    ]
                ]
                mapping[index] = builder.inner(kind, span)
        return mapping[-1]

    root = rebuild(circuit, replacements)
    # Same invariant as compile_circuit: the root must be the last node
    # (atom dedup across the splice seam can map it earlier).
    if root != len(builder.kinds) - 1:
        builder.inner(KIND_SUM, [root])
    expanded = Circuit(
        circuit.registry,
        builder.kinds,
        builder.arg0,
        builder.arg1,
        builder.children,
        builder.consts,
        builder.residuals,
        builder.atom_nodes,
        builder.var_atoms,
        residual_dnfs=builder.residual_dnfs,
    )
    for variable, value in circuit._conditioned_map.items():
        expanded = expanded.condition(variable, value)
    return expanded
