"""Arithmetic circuits over interned atom probabilities.

A :class:`Circuit` is the d-DNNF/AC view of a d-tree (paper, Section IV):
the decomposition structure — ``⊗`` independent-or, ``⊙``
independent-and, ``⊕`` exclusive-or, clause products — is valid for
*any* assignment of atom probabilities, so once a lineage formula has
been decomposed, its probability under a **new** probability map is a
single linear sweep over the circuit instead of a fresh decomposition.

The circuit is flat and array-backed: node kinds, argument slots, and
the flattened child lists live in :mod:`array` arrays, emitted in
topological order (children strictly before parents, root last), so

* :meth:`Circuit.evaluate` is one forward sweep,
* :meth:`Circuit.gradients` is one forward plus one backward sweep
  (reverse-mode differentiation: ``∂P/∂p(atom)`` for *every* input atom
  at once),
* :meth:`Circuit.condition` clamps a variable to a value (probability
  1 for the chosen atom, 0 for its siblings — the degenerate
  distribution), turning what-if questions into plain evaluations.

Partial circuits
----------------
Circuits compiled under a node budget (the anytime analogue of a
truncated ε-run) carry **residual leaves**: sub-DNFs that were not
expanded, stored with their Fig. 3 heuristic bounds *and* their
variable set.  Evaluation then propagates ``[lower, upper]`` intervals
(the monotone combination formulas of Prop. 5.4).  A probability
override or conditioning that touches a residual's variables
invalidates its stored bounds, so those leaves soundly widen to
``[0, 1]``; overrides confined to the expanded part of the circuit keep
the stored bounds valid.
"""

from __future__ import annotations

import math
from array import array
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from ..core.variables import (
    VariableRegistry,
    atom_entry,
    lookup_atom,
    lookup_variable,
    variable_name,
)

__all__ = [
    "Circuit",
    "KIND_CONST",
    "KIND_ATOM",
    "KIND_PROD",
    "KIND_OR",
    "KIND_SUM",
    "KIND_RESIDUAL",
]

Bounds = Tuple[float, float]

#: Constant node — ``arg0`` indexes :attr:`Circuit.consts`.
KIND_CONST = 0
#: Input node — ``arg0`` is the interned atom id whose probability feeds
#: the circuit.
KIND_ATOM = 1
#: ``⊙`` / clause product — value ``Π children``.
KIND_PROD = 2
#: ``⊗`` independent-or — value ``1 − Π (1 − child)``.
KIND_OR = 3
#: ``⊕`` exclusive-or — value ``min(1, Σ children)``.
KIND_SUM = 4
#: Residual leaf of a partial circuit — ``arg0`` indexes
#: :attr:`Circuit.residuals`.
KIND_RESIDUAL = 5

#: Probability overrides: ``variable -> P(variable = True)`` for Boolean
#: variables, or ``variable -> {value: probability}`` in general.
ProbOverrides = Mapping[Hashable, Union[float, Mapping[Hashable, float]]]


class Circuit:
    """A compiled lineage formula as a flat arithmetic circuit.

    Instances are produced by :func:`repro.circuits.compile_circuit`
    (or the engine/session layers on top of it); the constructor wires
    pre-built arrays and is not part of the public surface.

    Attributes
    ----------
    registry:
        The probability space supplying base atom probabilities.
    kinds, arg0, arg1, children:
        The flat node arrays.  ``kinds[i]`` is one of the ``KIND_*``
        constants; inner nodes store their child span as
        ``children[arg0[i]:arg1[i]]``; leaves use ``arg0`` as documented
        per kind.  Children always precede parents; the root is the
        last node.
    consts:
        Constant values referenced by ``KIND_CONST`` nodes.
    residuals:
        ``(lower, upper, variable_ids)`` per residual leaf of a partial
        circuit (empty for exact circuits).
    atom_nodes:
        ``atom id -> node index`` for every input node.
    var_atoms:
        ``variable id -> [atom ids]`` for every variable with an input
        node in the circuit.
    """

    __slots__ = (
        "registry",
        "kinds",
        "arg0",
        "arg1",
        "children",
        "consts",
        "residuals",
        "atom_nodes",
        "var_atoms",
        "residual_dnfs",
        "_residual_vids",
        "_pinned",
        "_pinned_vids",
        "_conditioned_map",
        "_kernel",
    )

    def __init__(
        self,
        registry: VariableRegistry,
        kinds: array,
        arg0: array,
        arg1: array,
        children: array,
        consts: List[float],
        residuals: List[Tuple[float, float, FrozenSet[int]]],
        atom_nodes: Dict[int, int],
        var_atoms: Dict[int, List[int]],
        residual_dnfs: Optional[List[Optional[object]]] = None,
        _pinned: Optional[Dict[int, float]] = None,
        _pinned_vids: FrozenSet[int] = frozenset(),
        _conditioned: Optional[Dict[Hashable, Hashable]] = None,
    ) -> None:
        self.registry = registry
        self.kinds = kinds
        self.arg0 = arg0
        self.arg1 = arg1
        self.children = children
        self.consts = consts
        self.residuals = residuals
        self.atom_nodes = atom_nodes
        self.var_atoms = var_atoms
        #: Parallel to :attr:`residuals`: the unexpanded sub-DNF behind
        #: each residual leaf, when known.  Compile-time circuits carry
        #: them, and format-v2 stores persist them (version-1 stores
        #: predate that), so entries may be ``None`` — those leaves are
        #: not refinable via :func:`repro.circuits.expand_residuals`.
        self.residual_dnfs: List[Optional[object]] = (
            list(residual_dnfs)
            if residual_dnfs is not None
            else [None] * len(residuals)
        )
        #: Lazily built :class:`~repro.circuits.CircuitKernel` for this
        #: exact node/pin configuration (see ``circuit_kernel()`` in
        #: :mod:`repro.circuits.kernels`).  ``condition()`` and residual
        #: expansion return *new* Circuit objects, so identity is the
        #: invalidation rule — a cached kernel can never go stale.
        self._kernel: Optional[object] = None
        #: Union of residual-leaf variable sets: overrides on these
        #: variables void the affected stored bounds even when the
        #: variable has no input node in the expanded part.
        residual_vids: set = set()
        for _low, _high, vids in residuals:
            residual_vids.update(vids)
        self._residual_vids = frozenset(residual_vids)
        #: atom id -> clamped probability (conditioning), applied under
        #: any overrides.
        self._pinned: Dict[int, float] = _pinned or {}
        #: variables clamped so far; residuals touching them are void.
        self._pinned_vids = _pinned_vids
        #: variable -> clamped value, as requested via condition().
        self._conditioned_map: Dict[Hashable, Hashable] = (
            _conditioned or {}
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def is_exact(self) -> bool:
        """True when the circuit has no residual leaves: evaluation is
        an exact probability, not an interval."""
        return not self.residuals

    @property
    def conditioned(self) -> Dict[Hashable, Hashable]:
        """The ``variable -> value`` clamps applied via :meth:`condition`."""
        return dict(self._conditioned_map)

    def variables(self) -> List[Hashable]:
        """The variable names feeding the circuit (deterministic order)."""
        return sorted(
            (variable_name(vid) for vid in self.var_atoms),
            key=repr,
        )

    def node_histogram(self) -> Dict[str, int]:
        """Node counts by kind (mirrors ``DTree.inner_node_histogram``)."""
        names = {
            KIND_CONST: "const",
            KIND_ATOM: "atom",
            KIND_PROD: "independent-and",
            KIND_OR: "independent-or",
            KIND_SUM: "exclusive-or",
            KIND_RESIDUAL: "residual",
        }
        histogram: Dict[str, int] = {}
        for kind in self.kinds:
            key = names[kind]
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def residual_dnf(self, index: int) -> Optional[object]:
        """The unexpanded sub-DNF behind residual leaf ``index``.

        ``None`` when out of range or when the leaf's sub-DNF is not
        recorded (circuits reloaded from pre-v2 stores) — such leaves
        evaluate soundly but cannot be refined.
        """
        if 0 <= index < len(self.residual_dnfs):
            return self.residual_dnfs[index]
        return None

    @property
    def refinable(self) -> bool:
        """True when at least one residual leaf carries its sub-DNF,
        i.e. :func:`repro.circuits.expand_residuals` can tighten it."""
        return any(dnf is not None for dnf in self.residual_dnfs)

    def widest_residual(
        self,
        touched_sets: Optional[Iterable[FrozenSet[int]]] = None,
        *,
        refinable_only: bool = True,
    ) -> Optional[int]:
        """Index of the residual leaf with the widest effective bounds.

        The *effective* width of a leaf is its stored ``high - low``,
        or ``1.0`` when any of the ``touched_sets`` (per-scenario
        touched variable ids, as produced by override resolution)
        intersects its variables — those scenarios see the leaf widened
        to ``[0, 1]``, so it dominates the uncertainty of a sweep.
        With ``refinable_only`` (default) leaves without a recorded
        sub-DNF are skipped; returns ``None`` when nothing qualifies.
        """
        touched_union: FrozenSet[int] = frozenset()
        if touched_sets is not None:
            acc: set = set()
            for touched in touched_sets:
                acc.update(touched)
            acc.update(self._pinned_vids)
            touched_union = frozenset(acc)
        elif self._pinned_vids:
            touched_union = self._pinned_vids
        best: Optional[int] = None
        best_width = -1.0
        for index, (low, high, vids) in enumerate(self.residuals):
            if refinable_only and self.residual_dnfs[index] is None:
                continue
            width = high - low
            if touched_union and not touched_union.isdisjoint(vids):
                width = 1.0
            if width > best_width:
                best = index
                best_width = width
        return best

    def __repr__(self) -> str:
        state = "exact" if self.is_exact else (
            f"partial, {len(self.residuals)} residual leaves"
        )
        return (
            f"Circuit({len(self.kinds)} nodes over "
            f"{len(self.atom_nodes)} atoms, {state})"
        )

    # ------------------------------------------------------------------
    # Override resolution
    # ------------------------------------------------------------------
    def _resolve_overrides(
        self, prob_overrides: Optional[ProbOverrides]
    ) -> Tuple[Dict[int, float], FrozenSet[int]]:
        """``atom id -> probability`` map plus the touched variable ids.

        Accepts ``variable -> float`` (Boolean shorthand for
        ``P(variable = True)``) and ``variable -> {value: prob}``
        distributions.  Conditioning clamps (:meth:`condition`) are
        merged last and take precedence.
        """
        resolved: Dict[int, float] = {}
        touched: set = set()
        if prob_overrides:
            for name, spec in prob_overrides.items():
                if name not in self.registry:
                    # Unknown to the probability space: a typo, not a
                    # no-op — same rationale as condition().
                    raise KeyError(f"unknown random variable {name!r}")
                is_mapping = isinstance(spec, Mapping)
                if is_mapping:
                    # Mapping specs are explicit per-variable intent:
                    # validate fully and unconditionally.
                    distribution: Dict[Hashable, float] = dict(spec)
                    self._check_distribution(name, distribution)
                else:
                    prob = float(spec)
                    if not (0.0 <= prob <= 1.0):
                        raise ValueError(
                            f"override P({name!r}) = {prob} is outside "
                            "[0, 1]"
                        )
                var_id = lookup_variable(name)
                if var_id is None or (
                    var_id not in self.var_atoms
                    and var_id not in self._residual_vids
                ):
                    # A real variable this circuit does not depend on:
                    # legitimate no-op (one override map is typically
                    # fanned out across many answer circuits), so the
                    # per-variable work below is skipped for it.
                    continue
                touched.add(var_id)
                if not is_mapping:
                    if not self.registry.is_boolean(name):
                        raise ValueError(
                            f"variable {name!r} is not Boolean; pass a "
                            "full {value: probability} distribution "
                            "instead of a float"
                        )
                    distribution = {True: prob, False: 1.0 - prob}
                if var_id not in self.var_atoms:
                    continue  # only residual leaves see this variable
                for value, prob in distribution.items():
                    atom_id, _vid = lookup_atom(name, value)
                    if atom_id is not None and atom_id in self.atom_nodes:
                        resolved[atom_id] = prob
        if self._pinned:
            resolved.update(self._pinned)
        if self._pinned_vids:
            # Conditioned variables count as touched even when they
            # have no input node (occurrences only inside residuals).
            touched.update(self._pinned_vids)
        return resolved, frozenset(touched)

    def _check_distribution(
        self, name: Hashable, distribution: Mapping[Hashable, float]
    ) -> None:
        """Reject mapping overrides that are not a probability measure.

        The circuit's structural identities (⊕ exclusivity summing to
        the pivot's total mass, ⊗/⊙ independence) hold for *any* valid
        distribution but silently produce non-probabilities for an
        invalid one, so the check the registry applies at registration
        time is applied here too.  Degenerate 0/1 masses are allowed
        (that is what conditioning is).  ``name`` is always a registry
        variable (the caller rejects unknown names first).
        """
        domain = set(self.registry.domain(name))
        missing = domain - set(distribution)
        extra = set(distribution) - domain
        if missing or extra:
            raise ValueError(
                f"override distribution for {name!r} must cover its "
                f"domain exactly (missing {sorted(missing, key=repr)!r},"
                f" extra {sorted(extra, key=repr)!r})"
            )
        for value, prob in distribution.items():
            if not (0.0 <= prob <= 1.0):
                raise ValueError(
                    f"override P({name!r} = {value!r}) = {prob} is "
                    "outside [0, 1]"
                )
        total = math.fsum(distribution.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"override distribution for {name!r} sums to {total}, "
                "expected 1.0"
            )

    def _input_values(
        self, prob_overrides: Optional[ProbOverrides]
    ) -> Tuple[Dict[int, float], FrozenSet[int]]:
        resolved, touched = self._resolve_overrides(prob_overrides)
        registry = self.registry
        values: Dict[int, float] = {}
        for atom_id in self.atom_nodes:
            prob = resolved.get(atom_id)
            if prob is None:
                prob = registry.atom_probability(atom_id)
            values[atom_id] = prob
        return values, touched

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _forward(
        self,
        atom_values: Dict[int, float],
        touched: FrozenSet[int] = frozenset(),
    ) -> List[float]:
        """Point-value forward sweep.

        Residual leaves evaluate at their interval midpoint — the
        *widened* ``[0, 1]`` midpoint when ``touched`` overrides void
        their stored bounds, matching :meth:`evaluate_bounds` so the
        gradient linearization point agrees with the reported value.
        """
        kinds = self.kinds
        arg0 = self.arg0
        arg1 = self.arg1
        children = self.children
        consts = self.consts
        residuals = self.residuals
        values = [0.0] * len(kinds)
        for index in range(len(kinds)):
            kind = kinds[index]
            if kind == KIND_ATOM:
                values[index] = atom_values[arg0[index]]
            elif kind == KIND_PROD:
                product = 1.0
                for child in children[arg0[index]:arg1[index]]:
                    product *= values[child]
                values[index] = product
            elif kind == KIND_OR:
                complement = 1.0
                for child in children[arg0[index]:arg1[index]]:
                    complement *= 1.0 - values[child]
                values[index] = 1.0 - complement
            elif kind == KIND_SUM:
                total = 0.0
                for child in children[arg0[index]:arg1[index]]:
                    total += values[child]
                values[index] = min(1.0, total)
            elif kind == KIND_CONST:
                values[index] = consts[arg0[index]]
            else:  # KIND_RESIDUAL
                low, high, vids = residuals[arg0[index]]
                if touched and not touched.isdisjoint(vids):
                    values[index] = 0.5  # stored bounds voided
                else:
                    values[index] = (low + high) / 2.0
        return values

    def _forward_bounds(
        self,
        atom_values: Dict[int, float],
        touched: FrozenSet[int],
    ) -> List[Bounds]:
        """Interval forward sweep for partial circuits (Prop. 5.4).

        Residual leaves whose variables intersect ``touched`` lose
        their stored bounds (computed under the base probabilities) and
        widen to ``[0, 1]``.
        """
        kinds = self.kinds
        arg0 = self.arg0
        arg1 = self.arg1
        children = self.children
        consts = self.consts
        residuals = self.residuals
        values: List[Bounds] = [(0.0, 0.0)] * len(kinds)
        for index in range(len(kinds)):
            kind = kinds[index]
            if kind == KIND_ATOM:
                prob = atom_values[arg0[index]]
                values[index] = (prob, prob)
            elif kind == KIND_PROD:
                low_acc = 1.0
                high_acc = 1.0
                for child in children[arg0[index]:arg1[index]]:
                    low, high = values[child]
                    low_acc *= low
                    high_acc *= high
                values[index] = (low_acc, high_acc)
            elif kind == KIND_OR:
                low_acc = 1.0
                high_acc = 1.0
                for child in children[arg0[index]:arg1[index]]:
                    low, high = values[child]
                    low_acc *= 1.0 - low
                    high_acc *= 1.0 - high
                values[index] = (1.0 - low_acc, 1.0 - high_acc)
            elif kind == KIND_SUM:
                low_acc = 0.0
                high_acc = 0.0
                for child in children[arg0[index]:arg1[index]]:
                    low, high = values[child]
                    low_acc += low
                    high_acc += high
                values[index] = (min(1.0, low_acc), min(1.0, high_acc))
            elif kind == KIND_CONST:
                value = consts[arg0[index]]
                values[index] = (value, value)
            else:  # KIND_RESIDUAL
                low, high, vids = residuals[arg0[index]]
                if touched and not touched.isdisjoint(vids):
                    values[index] = (0.0, 1.0)
                else:
                    values[index] = (low, high)
        return values

    def evaluate(
        self, prob_overrides: Optional[ProbOverrides] = None
    ) -> float:
        """``P(Φ)`` under the base probabilities with ``prob_overrides``
        overlaid — one O(|circuit|) sweep, no re-decomposition.

        Exact circuits return the exact probability.  Partial circuits
        return the midpoint of :meth:`evaluate_bounds` (use that method
        when the certified interval matters).
        """
        if self.is_exact:
            atom_values, _touched = self._input_values(prob_overrides)
            values = self._forward(atom_values)
            return values[-1] if values else 0.0
        lower, upper = self.evaluate_bounds(prob_overrides)
        return (lower + upper) / 2.0

    def evaluate_bounds(
        self, prob_overrides: Optional[ProbOverrides] = None
    ) -> Bounds:
        """Sound ``[lower, upper]`` bounds on ``P(Φ)`` under overrides.

        Exact circuits return a point interval.  Partial circuits keep
        residual-leaf bounds where the overrides leave them valid and
        widen the rest to ``[0, 1]``.
        """
        atom_values, touched = self._input_values(prob_overrides)
        if self.is_exact:
            values = self._forward(atom_values)
            value = values[-1] if values else 0.0
            return value, value
        bounds = self._forward_bounds(atom_values, touched)
        return bounds[-1] if bounds else (0.0, 0.0)

    # ------------------------------------------------------------------
    # Gradients
    # ------------------------------------------------------------------
    def atom_gradients(
        self, prob_overrides: Optional[ProbOverrides] = None
    ) -> Dict[Tuple[Hashable, Hashable], float]:
        """``∂P/∂p(variable = value)`` for every input atom.

        One forward sweep for values, one backward sweep for adjoints
        (reverse-mode differentiation), so all sensitivities cost the
        same as two evaluations.  On partial circuits the derivatives
        treat residual leaves as constants (their interiors contribute
        nothing), which makes the result approximate; exact circuits
        give exact derivatives of the multilinear probability
        polynomial.
        """
        adjoints = self._atom_adjoints(prob_overrides)
        out: Dict[Tuple[Hashable, Hashable], float] = {}
        for atom_id, adjoint in adjoints.items():
            _vid, name, value = atom_entry(atom_id)
            out[(name, value)] = adjoint
        return out

    def gradients(
        self, prob_overrides: Optional[ProbOverrides] = None
    ) -> Dict[Hashable, float]:
        """``∂P/∂p(x)`` per Boolean variable ``x`` (``p = P(x = True)``).

        This is the sensitivity a tuple-probability update has on the
        answer confidence: ``P(x = True) = p`` and ``P(x = False) =
        1 − p``, so the derivative is ``adj(x=True) − adj(x=False)``.
        Non-Boolean variables are skipped (use :meth:`atom_gradients`);
        conditioned variables are skipped (their inputs are clamped).
        """
        adjoints = self._atom_adjoints(prob_overrides)
        registry = self.registry
        out: Dict[Hashable, float] = {}
        for var_id, atom_ids in self.var_atoms.items():
            if var_id in self._pinned_vids:
                continue
            name = variable_name(var_id)
            if name not in registry or not registry.is_boolean(name):
                continue
            gradient = 0.0
            for atom_id in atom_ids:
                _vid, _name, value = atom_entry(atom_id)
                if value is True:
                    gradient += adjoints[atom_id]
                elif value is False:
                    gradient -= adjoints[atom_id]
            out[name] = gradient
        return out

    def _atom_adjoints(
        self, prob_overrides: Optional[ProbOverrides]
    ) -> Dict[int, float]:
        atom_values, touched = self._input_values(prob_overrides)
        values = self._forward(atom_values, touched)
        size = len(self.kinds)
        if not size:
            return {}
        kinds = self.kinds
        arg0 = self.arg0
        arg1 = self.arg1
        children = self.children
        adjoints = [0.0] * size
        adjoints[-1] = 1.0
        for index in range(size - 1, -1, -1):
            adjoint = adjoints[index]
            if adjoint == 0.0:
                continue
            kind = kinds[index]
            if kind == KIND_PROD:
                span = children[arg0[index]:arg1[index]]
                self._push_product(
                    span, values, adjoints, adjoint, complemented=False
                )
            elif kind == KIND_OR:
                span = children[arg0[index]:arg1[index]]
                self._push_product(
                    span, values, adjoints, adjoint, complemented=True
                )
            elif kind == KIND_SUM:
                for child in children[arg0[index]:arg1[index]]:
                    adjoints[child] += adjoint
        return {
            atom_id: adjoints[node]
            for atom_id, node in self.atom_nodes.items()
        }

    @staticmethod
    def _push_product(
        span: Iterable[int],
        values: List[float],
        adjoints: List[float],
        adjoint: float,
        *,
        complemented: bool,
    ) -> None:
        """Distribute a product node's adjoint onto its children.

        ``∂(Π tⱼ)/∂tᵢ = Π_{j≠i} tⱼ`` computed with prefix/suffix
        products (robust to zero factors, O(children)).  For ``⊗``
        nodes the terms are the complements ``tⱼ = 1 − cⱼ`` and the
        chain rule through ``1 − Π tⱼ`` flips both signs, which cancel:
        ``∂/∂cᵢ = Π_{j≠i} (1 − cⱼ)``.
        """
        ids = list(span)
        count = len(ids)
        if not count:
            return
        terms = [
            (1.0 - values[child]) if complemented else values[child]
            for child in ids
        ]
        prefix = [1.0] * count
        for position in range(1, count):
            prefix[position] = prefix[position - 1] * terms[position - 1]
        suffix = 1.0
        for position in range(count - 1, -1, -1):
            adjoints[ids[position]] += adjoint * prefix[position] * suffix
            suffix *= terms[position]

    # ------------------------------------------------------------------
    # Conditioning
    # ------------------------------------------------------------------
    def condition(self, variable: Hashable, value: Hashable) -> "Circuit":
        """The circuit of ``P(Φ | variable = value)``.

        Clamps the variable to the degenerate distribution — the chosen
        atom at probability 1, its siblings at 0 — which is exactly the
        conditioned product measure, so evaluation and gradients of the
        returned circuit answer what-if questions directly.  The node
        arrays are shared (conditioning is O(domain), not O(circuit));
        the original circuit is untouched.  Conditioning a variable
        inside a residual leaf voids that leaf's stored bounds (it
        widens to ``[0, 1]`` on evaluation).
        """
        if variable not in self.registry:
            # A name the probability space has never seen is a typo,
            # not a no-op: a silently unconditioned what-if answer is
            # worse than an error.
            raise KeyError(f"unknown random variable {variable!r}")
        if value not in self.registry.domain(variable):
            raise KeyError(
                f"value {value!r} not in domain of variable "
                f"{variable!r}"
            )
        var_id = lookup_variable(variable)
        target_atom, _vid = lookup_atom(variable, value)
        pinned = dict(self._pinned)
        if var_id is not None:
            for atom_id in self.var_atoms.get(var_id, ()):
                pinned[atom_id] = 1.0 if atom_id == target_atom else 0.0
        pinned_vids = self._pinned_vids
        if var_id is not None and (
            var_id in self.var_atoms or var_id in self._residual_vids
        ):
            pinned_vids = pinned_vids | {var_id}
        conditioned = dict(self._conditioned_map)
        conditioned[variable] = value
        return Circuit(
            self.registry,
            self.kinds,
            self.arg0,
            self.arg1,
            self.children,
            self.consts,
            self.residuals,
            self.atom_nodes,
            self.var_atoms,
            residual_dnfs=self.residual_dnfs,
            _pinned=pinned,
            _pinned_vids=pinned_vids,
            _conditioned=conditioned,
        )
