"""Scenario sweeps: one circuit, thousands of probability worlds.

A *sweep* evaluates a compiled circuit under a whole list of override
scenarios — a sensitivity grid, a what-if parameter scan, a stress
batch of probability worlds — in one call.  On the numpy backend
(:mod:`repro.circuits.kernels`) the circuit is lowered once and the
scenarios flow through it as a ``(scenarios × atoms)`` matrix; without
numpy the same functions fall back to per-scenario scalar sweeps, so
results are available (and, for evaluation and bounds, bit-identical)
on every install.

Scenario maps use exactly the :meth:`Circuit.evaluate` override
vocabulary — ``{variable: P(True)}`` floats for Boolean variables or
``{variable: {value: prob}}`` distributions — and are validated the
same way (unknown variables raise, irrelevant ones are no-ops, touched
residual leaves widen per scenario).

Entry points: :func:`sweep_values`, :func:`sweep_bounds`,
:func:`sweep_gradients`, and the grid helper
:func:`what_if_scenarios`; :class:`SweepResult` is the multi-answer
container returned by :meth:`CompiledResult.sweep` and
:meth:`QueryResult.sweep`.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.variables import atom_entry, variable_name
from .circuit import Bounds, Circuit, ProbOverrides
from .kernels import (
    BACKEND_NUMPY,
    CircuitKernel,
    circuit_kernel,
    kernel_backend,
)

__all__ = [
    "SweepResult",
    "refine_sweep_bounds",
    "sweep_bounds",
    "sweep_gradients",
    "sweep_values",
    "what_if_scenarios",
]

Scenarios = Sequence[Optional[ProbOverrides]]


def what_if_scenarios(
    variable: Hashable, probabilities: Sequence[float]
) -> List[Dict[Hashable, float]]:
    """One scenario per probability: ``[{variable: p}, ...]``.

    The standard one-dimensional what-if grid — sweep a single Boolean
    tuple's probability across a range and watch every answer's
    confidence respond.
    """
    return [{variable: float(prob)} for prob in probabilities]


def _resolved_inputs(
    circuit: Circuit, scenarios: Scenarios
) -> Tuple[List[Dict[int, float]], List[FrozenSet[int]]]:
    """Per-scenario resolved atom overrides + touched variable sets.

    Runs the circuit's own override resolution so the sweep validates
    and widens exactly like the scalar entry points.
    """
    resolved_list: List[Dict[int, float]] = []
    touched_list: List[FrozenSet[int]] = []
    for overrides in scenarios:
        resolved, touched = circuit._resolve_overrides(overrides)
        resolved_list.append(resolved)
        touched_list.append(touched)
    return resolved_list, touched_list


def _scenario_matrix(
    kernel: CircuitKernel, resolved_list: List[Dict[int, float]]
) -> object:
    """The (scenarios, atoms) input matrix for a resolved scenario list."""
    matrix = kernel.base_matrix(len(resolved_list))
    atom_index = kernel.atom_index
    for row, resolved in enumerate(resolved_list):
        for atom_id, prob in resolved.items():
            matrix[row, atom_index[atom_id]] = prob
    return matrix


def _use_kernel(circuit: Circuit, vectorized: Optional[bool]) -> bool:
    backend = kernel_backend(vectorized)
    return backend == BACKEND_NUMPY and len(circuit.kinds) > 0


def sweep_values(
    circuit: Circuit,
    scenarios: Scenarios,
    *,
    vectorized: Optional[bool] = None,
) -> List[float]:
    """``P(Φ)`` per scenario (interval midpoints on partial circuits).

    Bit-identical to ``[circuit.evaluate(s) for s in scenarios]``; the
    numpy backend just pays one batched sweep instead of one Python
    sweep per scenario.
    """
    if not _use_kernel(circuit, vectorized):
        return [circuit.evaluate(overrides) for overrides in scenarios]
    kernel = circuit_kernel(circuit)
    resolved_list, touched_list = _resolved_inputs(circuit, scenarios)
    matrix = _scenario_matrix(kernel, resolved_list)
    return kernel.evaluate_batch(matrix, touched_list).tolist()


def sweep_bounds(
    circuit: Circuit,
    scenarios: Scenarios,
    *,
    vectorized: Optional[bool] = None,
) -> List[Bounds]:
    """Certified ``[lower, upper]`` per scenario (points when exact).

    Bit-identical to per-scenario :meth:`Circuit.evaluate_bounds`.
    """
    if not _use_kernel(circuit, vectorized):
        return [
            circuit.evaluate_bounds(overrides) for overrides in scenarios
        ]
    kernel = circuit_kernel(circuit)
    resolved_list, touched_list = _resolved_inputs(circuit, scenarios)
    matrix = _scenario_matrix(kernel, resolved_list)
    bounds = kernel.bounds_batch(matrix, touched_list)
    return [tuple(row) for row in bounds.tolist()]


def refine_sweep_bounds(
    circuit: Circuit,
    scenarios: Scenarios,
    *,
    compile_subcircuit: "Callable[[object], Circuit]",
    target_width: float = 0.0,
    max_rounds: int = 16,
    vectorized: Optional[bool] = None,
) -> Tuple[Circuit, List[Bounds]]:
    """Tighten a partial circuit's bounds across many scenarios at once.

    The batched analogue of resuming a truncated ε-run: each round
    picks the residual leaf with the widest *effective* width over the
    whole scenario batch (a leaf touched by any scenario's overrides
    counts as ``[0, 1]`` wide — see :meth:`Circuit.widest_residual`),
    compiles its recorded sub-DNF via ``compile_subcircuit`` (pass
    ``engine.compile_circuit`` so the shared decomposition cache
    replays the original trace), splices it in with
    :func:`~repro.circuits.expand_residuals`, and re-sweeps **all**
    scenarios in one batched pass — so uncertainty shrinks uniformly
    across the batch instead of per request.

    Stops when every scenario's interval is at most ``target_width``
    wide, after ``max_rounds`` expansions, or when no refinable leaf
    remains (deserialized circuits do not carry sub-DNFs; their leaves
    are skipped).  Returns the refined circuit — the input is never
    mutated — and its per-scenario bounds.
    """
    from .compiler import expand_residuals

    bounds = sweep_bounds(circuit, scenarios, vectorized=vectorized)
    rounds = 0
    while circuit.residuals and rounds < max_rounds:
        if all(high - low <= target_width for low, high in bounds):
            break
        _resolved, touched_list = _resolved_inputs(circuit, scenarios)
        index = circuit.widest_residual(touched_list)
        if index is None:
            break
        sub_dnf = circuit.residual_dnfs[index]
        circuit = expand_residuals(
            circuit, {index: compile_subcircuit(sub_dnf)}
        )
        bounds = sweep_bounds(circuit, scenarios, vectorized=vectorized)
        rounds += 1
    return circuit, bounds


def sweep_gradients(
    circuit: Circuit,
    scenarios: Scenarios,
    *,
    vectorized: Optional[bool] = None,
) -> List[Dict[Hashable, float]]:
    """Per-scenario Boolean-variable gradients ``∂P/∂p(x)``.

    The batched :meth:`Circuit.gradients`: each scenario's dict maps
    every unpinned Boolean input variable to its sensitivity at that
    scenario's probabilities.  The numpy backend folds atom adjoints
    per variable in the same order as the scalar method; agreement is
    ~1e-12 (adjoint accumulation order differs), not bit-exact.
    """
    if not _use_kernel(circuit, vectorized):
        return [circuit.gradients(overrides) for overrides in scenarios]
    kernel = circuit_kernel(circuit)
    resolved_list, touched_list = _resolved_inputs(circuit, scenarios)
    matrix = _scenario_matrix(kernel, resolved_list)
    adjoints = kernel.gradients_batch(matrix, touched_list)
    registry = circuit.registry
    # (name, signed column list) per reported variable, mirroring the
    # scalar fold: + for the True atom, - for the False atom.
    folds: List[Tuple[Hashable, List[Tuple[float, int]]]] = []
    for var_id, atom_ids in circuit.var_atoms.items():
        if var_id in circuit._pinned_vids:
            continue
        name = variable_name(var_id)
        if name not in registry or not registry.is_boolean(name):
            continue
        signed: List[Tuple[float, int]] = []
        for atom_id in atom_ids:
            _vid, _name, value = atom_entry(atom_id)
            if value is True:
                signed.append((1.0, kernel.atom_index[atom_id]))
            elif value is False:
                signed.append((-1.0, kernel.atom_index[atom_id]))
        folds.append((name, signed))
    out: List[Dict[Hashable, float]] = []
    for row in range(adjoints.shape[0]):
        gradients: Dict[Hashable, float] = {}
        for name, signed in folds:
            gradient = 0.0
            for sign, column in signed:
                gradient += sign * adjoints[row, column]
            gradients[name] = gradient
        out.append(gradients)
    return out


class SweepResult:
    """A scenario sweep over a whole answer set.

    ``values[i][s]`` is answer ``i``'s confidence in scenario ``s``
    (interval midpoint for partial circuits).  ``backend`` records
    which kernel produced the numbers (``"numpy"`` or ``"scalar"``) —
    they agree bit-for-bit, so the field is provenance, not semantics.
    """

    __slots__ = ("answers", "values", "backend")

    def __init__(
        self,
        answers: Sequence[Tuple[Hashable, ...]],
        values: Sequence[Sequence[float]],
        backend: str,
    ) -> None:
        self.answers = list(answers)
        self.values = [list(row) for row in values]
        self.backend = backend

    @property
    def scenario_count(self) -> int:
        return len(self.values[0]) if self.values else 0

    def __len__(self) -> int:
        return len(self.answers)

    def row(self, answer: Tuple[Hashable, ...]) -> List[float]:
        """The per-scenario values of one answer tuple."""
        try:
            index = self.answers.index(answer)
        except ValueError:
            raise KeyError(f"unknown answer {answer!r}") from None
        return list(self.values[index])

    def column(self, scenario: int) -> List[Tuple[Tuple[Hashable, ...], float]]:
        """All answers' values in one scenario, as (answer, value) pairs."""
        return [
            (answer, self.values[index][scenario])
            for index, answer in enumerate(self.answers)
        ]

    def __repr__(self) -> str:
        return (
            f"SweepResult({len(self.answers)} answers × "
            f"{self.scenario_count} scenarios, {self.backend} backend)"
        )
