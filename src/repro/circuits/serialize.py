"""Versioned binary serialization of compiled circuits.

A :class:`~repro.circuits.Circuit` is an in-memory artifact over the
*process-wide* intern tables of :mod:`repro.core.variables`: its node
arrays reference dense atom/variable ids that are assigned in first-seen
order and therefore differ from process to process.  This module is the
stable wire/disk form that removes that dependency: every record carries
its own **name tables** — the variable names and ``(variable, value)``
atom entries the circuit touches — and the node arrays are rewritten
against local table indices.  Deserialization re-interns the names in
the receiving process and rebuilds the arrays over whatever dense ids
that process assigns, so a circuit saved anywhere loads anywhere,
regardless of intern-table state on either side.

Two layers:

* **Records** — :func:`encode_circuit` / :func:`decode_circuit` turn one
  circuit (plus, optionally, the lineage DNF it answers, so cache keys
  survive) into self-contained bytes.  :func:`encode_cache_slice` /
  :func:`merge_cache_slice` do the same for the cone of
  :class:`~repro.core.memo.DecompositionCache` entries a compilation
  walked, which is how sharded workers ship their warm decompositions
  back to the coordinator (:mod:`repro.engine_parallel`).
* **Stores** — :func:`save_circuit_store` / :func:`load_circuit_store`
  wrap a sequence of keyed records in a versioned header (magic, format
  version, intern-table digest for provenance, payload digest for
  corruption detection) — the on-disk format behind
  :meth:`~repro.circuits.CircuitCache.save` /
  :meth:`~repro.circuits.CircuitCache.load` and ``ProbDB`` session
  warm-start.

Format notes (version 2)
------------------------
The header is ``magic (4s) | version (u16) | flags (u16) | intern
digest (16) | payload digest (16) | entry count (u32)``, all
little-endian, followed by length-prefixed records.  The intern digest
fingerprints the *saving* process's intern snapshot; it is recorded for
debuggability (``circuit_store_info``) and deliberately **not** checked
on load — names, not ids, are the portable currency.  The payload
digest is checked: a store that fails it is corrupt and rejected.

Node structure is written as raw little-endian arrays; arbitrary
variable names and domain values ride in a pickled name table (the same
self-contained convention as ``Atom.__reduce__``).  Residual-interval
leaves of partial circuits serialize with their bounds and variable
sets, and :meth:`Circuit.condition` clamps are re-applied on load, so
partial and conditioned circuits round-trip too.

Version 2 additionally records, per residual leaf, the **sub-DNF** the
truncated compilation left behind (name-based, exactly like lineage
keys), making persisted partial circuits resumable: a fresh process
can keep expanding residual leaves where the saving process stopped.
Version-1 stores remain loadable; their partial circuits evaluate
soundly but are read-only (``Circuit.refinable`` is false).

What invalidates a store
------------------------
Loading validates every atom against the receiving registry: a store
referencing a variable the registry no longer has (or a value outside
its domain) fails with :class:`CircuitStoreError` (or is skipped with
``strict=False``).  Changed *probabilities* do not invalidate exact
circuits — they read probabilities at evaluation time — but they do
stale the stored residual bounds of partial circuits, which were
computed under save-time probabilities.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import struct
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from array import array

from ..core.decompositions import ShannonBranch
from ..core.dnf import DNF
from ..core.events import Clause
from ..core.memo import DecompositionCache
from ..core.variables import (
    VariableRegistry,
    atom_entry,
    intern_atom,
    intern_snapshot,
    intern_variable,
    variable_name,
    variable_repr,
)
from .circuit import (
    KIND_ATOM,
    KIND_CONST,
    KIND_OR,
    KIND_PROD,
    KIND_RESIDUAL,
    KIND_SUM,
    Circuit,
)

__all__ = [
    "CircuitStoreError",
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "encode_circuit",
    "decode_circuit",
    "encode_cache_slice",
    "decode_cache_slice",
    "merge_cache_slice",
    "save_circuit_store",
    "load_circuit_store",
    "circuit_store_info",
    "intern_table_digest",
]

#: On-disk format version; bumped on any incompatible layout change.
#: Version 2 appends each residual leaf's sub-DNF (name-based, like
#: lineage keys) so persisted partial circuits stay *refinable* —
#: ``refine_sweep_bounds`` / ``expand_residuals`` can resume a
#: truncated run in another process.  Version-1 stores still load, but
#: their residual leaves carry no sub-DNF and are read-only: sound to
#: evaluate, impossible to tighten.
FORMAT_VERSION = 2

#: Store versions this build can read (older versions degrade — see
#: :data:`FORMAT_VERSION`).
SUPPORTED_VERSIONS = frozenset({1, 2})

_MAGIC = b"RCIR"
#: ``magic | version | flags | intern digest | payload digest | count``.
_HEADER = struct.Struct("<4sHH16s16sI")

PathLike = Union[str, "os.PathLike[str]"]


class CircuitStoreError(ValueError):
    """A circuit store (or record) that cannot be read.

    Raised on bad magic, unsupported format versions, payload
    corruption, truncation, and — under strict loading — entries whose
    atoms the receiving registry does not know.
    """


def intern_table_digest() -> bytes:
    """A 16-byte fingerprint of this process's intern tables.

    Recorded in store headers for provenance/debugging: two processes
    with equal digests have identical dense-id assignments.  Loading
    never requires a match — records carry names, not ids.
    """
    payload = pickle.dumps(intern_snapshot(), protocol=4)
    return hashlib.blake2b(payload, digest_size=16).digest()


# ----------------------------------------------------------------------
# Low-level reader/writer
# ----------------------------------------------------------------------
class _Writer:
    __slots__ = ("buffer",)

    def __init__(self) -> None:
        self.buffer = io.BytesIO()

    def u8(self, value: int) -> None:
        self.buffer.write(struct.pack("<B", value))

    def u32(self, value: int) -> None:
        self.buffer.write(struct.pack("<I", value))

    def u64(self, value: int) -> None:
        self.buffer.write(struct.pack("<Q", value))

    def f64(self, value: float) -> None:
        self.buffer.write(struct.pack("<d", value))

    def bytes_(self, payload: bytes) -> None:
        self.u64(len(payload))
        self.buffer.write(payload)

    def i64_seq(self, values: Iterable[int]) -> None:
        values = list(values)
        self.u64(len(values))
        self.buffer.write(struct.pack(f"<{len(values)}q", *values))

    def u32_seq(self, values: Iterable[int]) -> None:
        values = list(values)
        self.u32(len(values))
        self.buffer.write(struct.pack(f"<{len(values)}I", *values))

    def f64_seq(self, values: Iterable[float]) -> None:
        values = list(values)
        self.u32(len(values))
        self.buffer.write(struct.pack(f"<{len(values)}d", *values))

    def getvalue(self) -> bytes:
        return self.buffer.getvalue()


class _Reader:
    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def _take(self, count: int) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise CircuitStoreError(
                "truncated circuit record: wanted "
                f"{count} bytes at offset {self.offset}, "
                f"{len(self.data) - self.offset} left"
            )
        chunk = self.data[self.offset:end]
        self.offset = end
        return chunk

    def u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def bytes_(self) -> bytes:
        return self._take(self.u64())

    def i64_seq(self) -> List[int]:
        count = self.u64()
        return list(struct.unpack(f"<{count}q", self._take(8 * count)))

    def u32_seq(self) -> List[int]:
        count = self.u32()
        return list(struct.unpack(f"<{count}I", self._take(4 * count)))

    def f64_seq(self) -> List[float]:
        count = self.u32()
        return list(struct.unpack(f"<{count}d", self._take(8 * count)))

    def done(self) -> bool:
        return self.offset == len(self.data)


# ----------------------------------------------------------------------
# Name tables
# ----------------------------------------------------------------------
class _NameTable:
    """Local variable/atom tables for one record.

    Interned ids are process-private; a record instead references
    **local indices** into these tables, and the tables themselves carry
    the original names/values (pickled — arbitrary hashables, same
    convention as ``Atom.__reduce__``).
    """

    __slots__ = ("var_index", "var_names", "atom_index", "atom_specs")

    def __init__(self) -> None:
        self.var_index: Dict[int, int] = {}
        self.var_names: List[Hashable] = []
        self.atom_index: Dict[int, int] = {}
        self.atom_specs: List[Tuple[int, Hashable]] = []

    def add_var(self, var_id: int, name: Hashable) -> int:
        local = self.var_index.get(var_id)
        if local is None:
            local = len(self.var_names)
            self.var_index[var_id] = local
            self.var_names.append(name)
        return local

    def add_atom(self, atom_id: int) -> int:
        local = self.atom_index.get(atom_id)
        if local is None:
            var_id, name, value = atom_entry(atom_id)
            var_local = self.add_var(var_id, name)
            local = len(self.atom_specs)
            self.atom_index[atom_id] = local
            self.atom_specs.append((var_local, value))
        return local

    def dump(self, writer: _Writer, extra: Any = None) -> None:
        payload = pickle.dumps(
            (tuple(self.var_names), tuple(self.atom_specs), extra),
            protocol=4,
        )
        writer.bytes_(payload)


class _LoadedTable:
    """A record's name tables re-interned into this process."""

    __slots__ = ("var_ids", "atom_ids", "extra")

    def __init__(self, reader: _Reader) -> None:
        try:
            var_names, atom_specs, extra = pickle.loads(reader.bytes_())
        except CircuitStoreError:
            raise
        except Exception as exc:
            raise CircuitStoreError(
                f"unreadable record name table: {exc}"
            ) from exc
        self.var_ids = [intern_variable(name) for name in var_names]
        self.atom_ids: List[int] = []
        for var_local, value in atom_specs:
            name = var_names[var_local]
            atom_id, _var_id = intern_atom(name, value)
            self.atom_ids.append(atom_id)
        self.extra = extra

    def atom(self, local: int) -> int:
        try:
            return self.atom_ids[local]
        except IndexError:
            raise CircuitStoreError(
                f"record references atom index {local} outside its "
                f"table of {len(self.atom_ids)}"
            ) from None

    def var(self, local: int) -> int:
        try:
            return self.var_ids[local]
        except IndexError:
            raise CircuitStoreError(
                f"record references variable index {local} outside its "
                f"table of {len(self.var_ids)}"
            ) from None

    def validate_against(self, registry: VariableRegistry) -> None:
        """Reject atoms the registry does not know (see module docs)."""
        for atom_id in self.atom_ids:
            _var_id, name, value = atom_entry(atom_id)
            if name not in registry:
                raise CircuitStoreError(
                    f"stored circuit references variable {name!r}, "
                    "which the registry does not define — the store "
                    "predates a schema change; delete it to recompile"
                )
            if value not in registry.domain(name):
                raise CircuitStoreError(
                    f"stored circuit references atom "
                    f"{name!r} = {value!r}, outside the registry's "
                    "domain for that variable — the store predates a "
                    "schema change; delete it to recompile"
                )


def _dump_dnf(writer: _Writer, dnf: DNF, table: _NameTable) -> None:
    clauses = dnf.sorted_clauses()
    writer.u32(len(clauses))
    for clause in clauses:
        writer.u32_seq(
            table.add_atom(atom_id) for atom_id in clause.atom_ids
        )


def _load_dnf(reader: _Reader, table: _LoadedTable) -> DNF:
    clause_count = reader.u32()
    clauses = []
    for _ in range(clause_count):
        ids = tuple(table.atom(local) for local in reader.u32_seq())
        clauses.append(Clause._from_atom_ids(ids))
    return DNF(clauses)


# ----------------------------------------------------------------------
# Circuit records
# ----------------------------------------------------------------------
def encode_circuit(
    circuit: Circuit,
    key: Optional[DNF] = None,
    *,
    format_version: int = FORMAT_VERSION,
) -> bytes:
    """One circuit (plus optional lineage key) as self-contained bytes.

    The record is valid in any process: node arrays are rewritten
    against a local atom table carrying variable *names* and values,
    and :func:`decode_circuit` re-interns them on the receiving side.
    ``key`` is the lineage DNF the circuit answers —
    :class:`~repro.circuits.CircuitCache` stores round-trip it so a
    reloaded cache keeps answering by lineage equality.
    ``format_version`` selects the record layout — pass ``1`` to write
    a store readable by pre-v2 code (residual sub-DNFs are dropped, so
    reloaded partial circuits evaluate but cannot refine).
    """
    if format_version not in SUPPORTED_VERSIONS:
        raise CircuitStoreError(
            f"cannot encode format version {format_version} "
            f"(supported: {sorted(SUPPORTED_VERSIONS)})"
        )
    table = _NameTable()
    body = _Writer()

    # Local atom table in node order, so var_atoms (which records atoms
    # in first-emission order) rebuilds exactly.
    ordered_atoms = sorted(
        circuit.atom_nodes.items(), key=lambda item: item[1]
    )
    for atom_id, _node in ordered_atoms:
        table.add_atom(atom_id)
    # Residual variable sets may name variables with no input node in
    # the expanded part; their names come straight off the intern table.
    for _low, _high, vids in circuit.residuals:
        for var_id in sorted(vids, key=variable_repr):
            table.add_var(var_id, variable_name(var_id))

    # Node arrays; KIND_ATOM arg0 is rewritten to the local atom index.
    kinds = circuit.kinds
    arg0 = list(circuit.arg0)
    for atom_id, node in circuit.atom_nodes.items():
        arg0[node] = table.atom_index[atom_id]
    body.u64(len(kinds))
    body.buffer.write(bytes(kinds))
    body.i64_seq(arg0)
    body.i64_seq(circuit.arg1)
    body.i64_seq(circuit.children)
    body.f64_seq(circuit.consts)

    body.u32(len(circuit.residuals))
    for slot, (low, high, vids) in enumerate(circuit.residuals):
        body.f64(low)
        body.f64(high)
        body.u32_seq(
            table.var_index[var_id]
            for var_id in sorted(vids, key=variable_repr)
        )
        # Format v2: the residual's sub-DNF rides along (when known —
        # circuits reloaded from v1 stores have none), so a persisted
        # partial circuit can keep refining in any process.  Its atoms
        # may extend the table; the table is dumped after the body.
        if format_version >= 2:
            sub_dnf = circuit.residual_dnf(slot)
            if isinstance(sub_dnf, DNF):
                body.u8(1)
                _dump_dnf(body, sub_dnf, table)
            else:
                body.u8(0)

    if key is None:
        body.u8(0)
    else:
        # May add atoms the circuit itself dropped (subsumption,
        # constant folding) — which is why the table is serialized
        # only after the whole body is built.
        body.u8(1)
        _dump_dnf(body, key, table)

    writer = _Writer()
    conditioned = tuple(circuit.conditioned.items())
    table.dump(writer, extra=conditioned)
    writer.buffer.write(body.getvalue())
    return writer.getvalue()


def _check_node_structure(
    kinds: array,
    arg0: List[int],
    arg1: List[int],
    children: List[int],
    consts: List[float],
    residual_count: int,
) -> None:
    """Reject internally inconsistent node arrays.

    The store's payload digest only proves the bytes are what the
    writer wrote — a buggy (or hostile) writer can produce digest-valid
    records whose spans point outside the children array, which
    Python's forgiving slicing would then evaluate *silently wrong*.
    Loud rejection is the module's contract, so every span and index is
    range-checked before a :class:`Circuit` is built.  (Atom indices
    are range-checked at resolution time by the loaded name table.)
    """
    child_count = len(children)
    for node, kind in enumerate(kinds):
        if kind in (KIND_PROD, KIND_OR, KIND_SUM):
            start, end = arg0[node], arg1[node]
            if not (0 <= start <= end <= child_count):
                raise CircuitStoreError(
                    f"node {node}: child span [{start}, {end}) outside "
                    f"the children array of {child_count}"
                )
            for child in children[start:end]:
                # Topological order: children strictly precede parents.
                if not (0 <= child < node):
                    raise CircuitStoreError(
                        f"node {node}: child index {child} is not an "
                        "earlier node"
                    )
        elif kind == KIND_CONST:
            if not (0 <= arg0[node] < len(consts)):
                raise CircuitStoreError(
                    f"node {node}: constant index {arg0[node]} outside "
                    f"the constant table of {len(consts)}"
                )
        elif kind == KIND_RESIDUAL:
            if not (0 <= arg0[node] < residual_count):
                raise CircuitStoreError(
                    f"node {node}: residual index {arg0[node]} outside "
                    f"the residual table of {residual_count}"
                )


def decode_circuit(
    data: bytes,
    registry: VariableRegistry,
    *,
    validate: bool = True,
    format_version: int = FORMAT_VERSION,
) -> Tuple[Circuit, Optional[DNF]]:
    """Rebuild a circuit (and its lineage key, if recorded) from bytes.

    Names are re-interned into *this* process's tables, so the record
    may come from any process in any intern state.  With ``validate``
    (the default) every referenced atom must exist in ``registry`` —
    see the module docstring on store invalidation.  ``format_version``
    selects the record layout (stores carry it in their header);
    version-1 records lack residual sub-DNFs, so their partial circuits
    load read-only.
    """
    if format_version not in SUPPORTED_VERSIONS:
        raise CircuitStoreError(
            f"unsupported circuit-record format version {format_version}"
        )
    reader = _Reader(data)
    table = _LoadedTable(reader)
    if validate:
        table.validate_against(registry)

    node_count = reader.u64()
    kinds = array("B")
    kinds.frombytes(reader._take(node_count))
    if any(kind > 5 for kind in kinds):
        raise CircuitStoreError("record contains an unknown node kind")
    arg0_values = reader.i64_seq()
    arg1_values = reader.i64_seq()
    children_values = reader.i64_seq()
    consts = reader.f64_seq()
    if not (len(arg0_values) == len(arg1_values) == node_count):
        raise CircuitStoreError(
            "record node arrays disagree on the node count"
        )
    residual_count = reader.u32()
    residuals: List[Tuple[float, float, FrozenSet[int]]] = []
    residual_dnfs: List[Optional[DNF]] = []
    for _ in range(residual_count):
        low = reader.f64()
        high = reader.f64()
        vids = frozenset(table.var(local) for local in reader.u32_seq())
        residuals.append((low, high, vids))
        if format_version >= 2 and reader.u8():
            residual_dnfs.append(_load_dnf(reader, table))
        else:
            residual_dnfs.append(None)
    _check_node_structure(
        kinds, arg0_values, arg1_values, children_values, consts,
        residual_count,
    )

    atom_nodes: Dict[int, int] = {}
    var_atoms: Dict[int, List[int]] = {}
    for node, kind in enumerate(kinds):
        if kind != KIND_ATOM:
            continue
        atom_id = table.atom(arg0_values[node])
        arg0_values[node] = atom_id
        atom_nodes[atom_id] = node
        var_id, _name, _value = atom_entry(atom_id)
        var_atoms.setdefault(var_id, []).append(atom_id)

    circuit = Circuit(
        registry,
        kinds,
        array("q", arg0_values),
        array("q", arg1_values),
        array("q", children_values),
        consts,
        residuals,
        atom_nodes,
        var_atoms,
        residual_dnfs=residual_dnfs,
    )
    conditioned = table.extra or ()
    for variable, value in conditioned:
        try:
            circuit = circuit.condition(variable, value)
        except KeyError as exc:
            raise CircuitStoreError(
                f"stored conditioning {variable!r} = {value!r} is not "
                f"valid for this registry: {exc}"
            ) from exc

    key: Optional[DNF] = None
    if reader.u8():
        key = _load_dnf(reader, table)
    if not reader.done():
        raise CircuitStoreError(
            f"{len(reader.data) - reader.offset} trailing bytes after "
            "circuit record"
        )
    return circuit, key


# ----------------------------------------------------------------------
# Decomposition-cache slices
# ----------------------------------------------------------------------
def _cone_entries(
    cache: DecompositionCache, roots: Iterable[DNF]
) -> Tuple[
    Dict[DNF, DNF],
    Dict[DNF, List[DNF]],
    Dict[DNF, Optional[List[DNF]]],
    Dict[DNF, List[ShannonBranch]],
    Dict[DNF, Tuple[float, float]],
    Dict[DNF, float],
]:
    """The cache entries a compile of the ``roots`` walks (best-effort).

    Mirrors the traversal of
    :func:`repro.circuits.compiler.compile_circuit`: reduction, then ⊗
    components, then ⊙ factors, then Shannon branches.  Roots with
    overlapping cones (the whole point of the shared cache) contribute
    their shared entries **once**.  Entries absent from the cache
    (evicted, or past a residual cut) are simply not in the slice — a
    partial slice still warms everything it covers.
    """
    reduced: Dict[DNF, DNF] = {}
    components: Dict[DNF, List[DNF]] = {}
    factors: Dict[DNF, Optional[List[DNF]]] = {}
    branches: Dict[DNF, List[ShannonBranch]] = {}
    bounds: Dict[DNF, Tuple[float, float]] = {}
    exact: Dict[DNF, float] = {}
    seen: set = set()
    stack: List[DNF] = list(roots)
    while stack:
        dnf = stack.pop()
        current = cache.reduced.get(dnf)
        if current is not None:
            reduced[dnf] = current
        else:
            current = dnf
        if current in seen:
            continue
        seen.add(current)
        if current in cache.bounds:
            bounds[current] = cache.bounds[current]
        if current in cache.exact:
            exact[current] = cache.exact[current]
        if (
            current.is_false()
            or current.is_true()
            or current.is_single_clause()
        ):
            continue
        current_components = cache.components.get(current)
        if current_components is not None:
            components[current] = current_components
            if len(current_components) > 1:
                stack.extend(current_components)
                continue
        if current in cache.factors:
            current_factors = cache.factors[current]
            factors[current] = current_factors
            if current_factors is not None:
                stack.extend(current_factors)
                continue
        current_branches = cache.branches.get(current)
        if current_branches is not None:
            branches[current] = current_branches
            stack.extend(
                branch.cofactor for branch in current_branches
            )
    return reduced, components, factors, branches, bounds, exact


def encode_cache_slice(
    cache: DecompositionCache, *roots: DNF
) -> bytes:
    """The decomposition cones of the ``roots`` as self-contained bytes.

    This is what a sharded worker ships back with its compiled
    circuits — one *union* slice per shard, so cones shared between a
    shard's answers are serialized once: merged into the coordinator's
    cache (:func:`merge_cache_slice`), a later coordinator compile or
    refinement of the same (or overlapping) lineage replays the
    worker's decompositions instead of re-searching them.
    """
    reduced, components, factors, branches, bounds, exact = (
        _cone_entries(cache, roots)
    )
    writer = _Writer()
    table = _NameTable()
    body = _Writer()

    def dump(dnf: DNF) -> None:
        _dump_dnf(body, dnf, table)

    body.u32(len(reduced))
    for key, value in reduced.items():
        dump(key)
        dump(value)
    body.u32(len(components))
    for key, parts in components.items():
        dump(key)
        body.u32(len(parts))
        for part in parts:
            dump(part)
    body.u32(len(factors))
    for key, parts_or_none in factors.items():
        dump(key)
        if parts_or_none is None:
            body.u8(0)
        else:
            body.u8(1)
            body.u32(len(parts_or_none))
            for part in parts_or_none:
                dump(part)
    body.u32(len(branches))
    for key, branch_list in branches.items():
        dump(key)
        body.u32(len(branch_list))
        for branch in branch_list:
            atom_id, _var_id = intern_atom(branch.variable, branch.value)
            body.u32(table.add_atom(atom_id))
            body.f64(branch.probability)
            dump(branch.cofactor)
    body.u32(len(bounds))
    for key, (low, high) in bounds.items():
        dump(key)
        body.f64(low)
        body.f64(high)
    body.u32(len(exact))
    for key, value in exact.items():
        dump(key)
        body.f64(value)

    table.dump(writer)
    writer.buffer.write(body.getvalue())
    return writer.getvalue()


def decode_cache_slice(data: bytes) -> Tuple[
    Dict[DNF, DNF],
    Dict[DNF, List[DNF]],
    Dict[DNF, Optional[List[DNF]]],
    Dict[DNF, List[ShannonBranch]],
    Dict[DNF, Tuple[float, float]],
    Dict[DNF, float],
]:
    """Decode a cache slice into this process's interned DNFs."""
    reader = _Reader(data)
    table = _LoadedTable(reader)

    def load() -> DNF:
        return _load_dnf(reader, table)

    reduced = {load(): load() for _ in range(reader.u32())}
    components = {
        load(): [load() for _ in range(reader.u32())]
        for _ in range(reader.u32())
    }
    factors: Dict[DNF, Optional[List[DNF]]] = {}
    for _ in range(reader.u32()):
        key = load()
        if reader.u8():
            factors[key] = [load() for _ in range(reader.u32())]
        else:
            factors[key] = None
    branches: Dict[DNF, List[ShannonBranch]] = {}
    for _ in range(reader.u32()):
        key = load()
        branch_list = []
        for _ in range(reader.u32()):
            atom_id = table.atom(reader.u32())
            probability = reader.f64()
            cofactor = load()
            _var_id, name, value = atom_entry(atom_id)
            branch_list.append(
                ShannonBranch(name, value, probability, cofactor)
            )
        branches[key] = branch_list
    bounds = {
        load(): (reader.f64(), reader.f64())
        for _ in range(reader.u32())
    }
    exact = {load(): reader.f64() for _ in range(reader.u32())}
    if not reader.done():
        raise CircuitStoreError(
            f"{len(reader.data) - reader.offset} trailing bytes after "
            "cache slice"
        )
    return reduced, components, factors, branches, bounds, exact


def merge_cache_slice(data: bytes, cache: DecompositionCache) -> int:
    """Merge an encoded slice into ``cache``; returns entries merged.

    The caller is responsible for the cache being bound to a
    configuration the slice is valid under (same registry values, same
    pivot-selection semantics, same bounds-heuristic flags) — the
    sharded execution layer guarantees this by construction, since
    worker engines run copies of the coordinator's config.
    """
    reduced, components, factors, branches, bounds, exact = (
        decode_cache_slice(data)
    )
    cache.reduced.update(reduced)
    cache.components.update(components)
    cache.factors.update(factors)
    cache.branches.update(branches)
    cache.bounds.update(bounds)
    cache.exact.update(exact)
    cache.trim()
    return (
        len(reduced) + len(components) + len(factors)
        + len(branches) + len(bounds) + len(exact)
    )


# ----------------------------------------------------------------------
# Stores
# ----------------------------------------------------------------------
def save_circuit_store(
    path: PathLike,
    entries: Iterable[Tuple[Optional[DNF], Circuit]],
    *,
    format_version: int = FORMAT_VERSION,
) -> int:
    """Write ``(lineage key, circuit)`` pairs as a versioned store.

    Returns the number of entries written.  The write is atomic-ish: a
    temp file in the same directory is renamed over ``path``, so a
    crash mid-save never leaves a half-written store behind.
    ``format_version=1`` writes the pre-sub-DNF layout for old readers
    (see :func:`encode_circuit`).
    """
    records = [
        encode_circuit(circuit, key=key, format_version=format_version)
        for key, circuit in entries
    ]
    payload_writer = _Writer()
    for record in records:
        payload_writer.bytes_(record)
    payload = payload_writer.getvalue()
    header = _HEADER.pack(
        _MAGIC,
        format_version,
        0,
        intern_table_digest(),
        hashlib.blake2b(payload, digest_size=16).digest(),
        len(records),
    )
    path = os.fspath(path)
    temp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(temp_path, "wb") as handle:
            handle.write(header)
            handle.write(payload)
        os.replace(temp_path, path)
    except BaseException:
        # A failed write (disk full, permissions) must not strand the
        # temp file next to the store.
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return len(records)


def _read_store(
    path: PathLike,
) -> Tuple[Dict[str, object], bytes, int]:
    """Parse and verify a store header; returns (info, payload, count)."""
    with open(path, "rb") as handle:
        raw = handle.read()
    if len(raw) < _HEADER.size:
        raise CircuitStoreError(
            f"{os.fspath(path)!r} is too short to be a circuit store "
            f"({len(raw)} bytes, header needs {_HEADER.size})"
        )
    magic, version, _flags, intern_digest, payload_digest, count = (
        _HEADER.unpack_from(raw)
    )
    if magic != _MAGIC:
        raise CircuitStoreError(
            f"{os.fspath(path)!r} is not a circuit store "
            f"(bad magic {magic!r})"
        )
    if version not in SUPPORTED_VERSIONS:
        raise CircuitStoreError(
            f"unsupported circuit-store format version {version}; "
            f"this build reads versions "
            f"{sorted(SUPPORTED_VERSIONS)} — recompile the store with "
            "the matching library version"
        )
    payload = raw[_HEADER.size:]
    actual = hashlib.blake2b(payload, digest_size=16).digest()
    if actual != payload_digest:
        raise CircuitStoreError(
            f"circuit store {os.fspath(path)!r} is corrupted: payload "
            "digest mismatch"
        )
    info: Dict[str, object] = {
        "format_version": version,
        "entries": count,
        "intern_digest": intern_digest.hex(),
        "payload_bytes": len(payload),
    }
    return info, payload, count


def load_circuit_store(
    path: PathLike,
    registry: VariableRegistry,
    *,
    strict: bool = True,
) -> List[Tuple[Optional[DNF], Circuit]]:
    """Read a store back into ``(lineage key, circuit)`` pairs.

    Every record's atoms are validated against ``registry``.  With
    ``strict`` (the default) the first invalid record raises
    :class:`CircuitStoreError`; with ``strict=False`` invalid records
    are skipped, which lets a session warm-start from a store whose
    database has since lost some tuples.  Version-1 stores load with
    their partial circuits read-only (no residual sub-DNFs recorded).
    """
    info, payload, count = _read_store(path)
    version = int(info["format_version"])  # type: ignore[arg-type]
    reader = _Reader(payload)
    entries: List[Tuple[Optional[DNF], Circuit]] = []
    for index in range(count):
        record = reader.bytes_()
        try:
            circuit, key = decode_circuit(
                record, registry, format_version=version
            )
        except CircuitStoreError as exc:
            if strict:
                raise CircuitStoreError(
                    f"store entry {index}: {exc}"
                ) from exc
            continue
        entries.append((key, circuit))
    if not reader.done():
        raise CircuitStoreError(
            f"{len(reader.data) - reader.offset} trailing bytes after "
            "the last store entry"
        )
    return entries


def circuit_store_info(path: PathLike) -> Dict[str, object]:
    """Header metadata of a store, without decoding any circuit.

    Includes whether the store's intern digest matches this process
    (``intern_digest_matches`` — purely informational; loading works
    either way because records carry names).
    """
    info, _payload, _count = _read_store(path)
    info["intern_digest_matches"] = (
        info["intern_digest"] == intern_table_digest().hex()
    )
    return info
